#!/bin/sh
# Regenerates bench_output.txt: every paper figure/table at full
# settings, extension/ablation benches on a representative subset.
# Set CAMEO_BENCH_JOBS=$(nproc) to run each bench's simulation grid on
# all cores; tables are bit-identical to a serial run.
#
# Every bench runs even when an earlier one fails; the script exits
# nonzero at the end listing every failed bench, so one broken figure
# neither hides later failures nor silently yields a partial output
# that exits 0.
set -u
cd "$(dirname "$0")"

# Fail fast with a clear message when the bench binaries are missing
# or stale-configured, instead of erroring mid-run on the first ./
# invocation.
if [ ! -d build/bench ]; then
    echo "error: build/bench not found." >&2
    echo "Build first:  cmake -B build -S . && cmake --build build -j" >&2
    exit 1
fi
for b in fig02_motivation perf_hotpath perf_queue perf_warmup perf_banshee; do
    if [ ! -x "build/bench/$b" ]; then
        echo "error: build/bench/$b missing or not executable." >&2
        echo "Rebuild:  cmake --build build -j" >&2
        exit 1
    fi
done

failed=""
timings=""

# run_bench LABEL NAME [ARGS...]: banner, run, record wall-clock and
# failures instead of aborting the sweep.
run_bench() {
    _label="$1"
    _b="$2"
    shift 2
    echo "===================================================================="
    echo "===== $_label"
    echo "===================================================================="
    _start=$(date +%s)
    if "./build/bench/$_b" "$@"; then
        _status=ok
    else
        _rc=$?
        _status="FAILED($_rc)"
        echo "***** bench/$_b FAILED with exit status $_rc" >&2
        failed="$failed $_b"
    fi
    _secs=$(( $(date +%s) - _start ))
    echo "----- bench/$_b: ${_secs}s ($_status)"
    timings="$timings$_b $_secs $_status\n"
    echo
}

for b in fig02_motivation fig03_dram_trends table1_config table2_workloads \
         fig08_llt_latency fig09_llt_designs fig12_llp table3_llp_accuracy \
         fig13_speedup table4_bandwidth fig14_energy fig15_placement; do
    run_bench "bench/$b" "$b"
done
export CAMEO_BENCH_WORKLOADS=mcf,GemsFDTD,zeusmp,milc,soplex,libquantum,omnetpp,leslie3d
for b in ablation_llp_table ablation_capacity_ratio ablation_cameo_freq \
         ablation_refresh mix_study; do
    run_bench "bench/$b (workload subset: $CAMEO_BENCH_WORKLOADS)" "$b"
done
unset CAMEO_BENCH_WORKLOADS
run_bench "bench/micro_components" micro_components --benchmark_min_time=0.2
run_bench "bench/perf_hotpath (simulator throughput -> BENCH_hotpath.json)" \
    perf_hotpath
run_bench "bench/perf_queue (queued contention -> BENCH_queue.json)" \
    perf_queue
run_bench "bench/perf_warmup (functional warmup speedup -> BENCH_warmup.json)" \
    perf_warmup
run_bench "bench/perf_banshee (replacement traffic -> BENCH_banshee.json)" \
    perf_banshee

echo "===================================================================="
echo "===== wall-clock summary"
echo "===================================================================="
printf "$timings" | awk '
    { printf "  %-28s %6ss  %s\n", $1, $2, $3; total += $2 }
    END { printf "  %-28s %6ss\n", "TOTAL", total }'

if [ -n "$failed" ]; then
    echo "error: failed benches:$failed" >&2
    exit 1
fi
