#!/bin/sh
# Regenerates bench_output.txt: every paper figure/table at full
# settings, extension/ablation benches on a representative subset.
# Set CAMEO_BENCH_JOBS=$(nproc) to run each bench's simulation grid on
# all cores; tables are bit-identical to a serial run.
set -u
cd "$(dirname "$0")"
{
for b in fig02_motivation fig03_dram_trends table1_config table2_workloads \
         fig08_llt_latency fig09_llt_designs fig12_llp table3_llp_accuracy \
         fig13_speedup table4_bandwidth fig14_energy fig15_placement; do
    echo "===================================================================="
    echo "===== bench/$b"
    echo "===================================================================="
    ./build/bench/$b
    echo
done
export CAMEO_BENCH_WORKLOADS=mcf,GemsFDTD,zeusmp,milc,soplex,libquantum,omnetpp,leslie3d
for b in ablation_llp_table ablation_capacity_ratio ablation_cameo_freq \
         ablation_refresh mix_study; do
    echo "===================================================================="
    echo "===== bench/$b (workload subset: $CAMEO_BENCH_WORKLOADS)"
    echo "===================================================================="
    ./build/bench/$b
    echo
done
echo "===================================================================="
echo "===== bench/micro_components"
echo "===================================================================="
./build/bench/micro_components --benchmark_min_time=0.2
echo
echo "===================================================================="
echo "===== bench/perf_hotpath (simulator throughput -> BENCH_hotpath.json)"
echo "===================================================================="
./build/bench/perf_hotpath
}
