/**
 * @file
 * Ablation (beyond the paper's published data): stacked DRAM as a
 * fraction of total memory. The paper fixes stacked at 25% ("a quarter
 * or even half of the overall capacity"); this sweep varies the split
 * at constant total capacity, which also varies the congruence-group
 * size K = total/stacked and the number of off-chip candidates the LLP
 * must choose among.
 */

#include <iostream>

#include "bench_common.hh"
#include "stats/table.hh"
#include "util/math.hh"

int
main()
{
    using namespace cameo;
    using namespace cameo::bench;

    const SystemConfig base = benchConfig();
    const auto workloads = benchWorkloads();
    const std::uint64_t total = base.totalMemoryBytes();

    std::cout << "Ablation: stacked fraction of total memory "
                 "(constant total " << (total >> 20) << " MB)\n";

    TextTable table("Capacity-ratio sweep (geometric means over " +
                    std::to_string(workloads.size()) + " workloads)");
    table.setHeader({"Stacked", "K", "Gmean CAMEO", "Gmean Cache",
                     "Mean stacked-svc%"});
    for (const std::uint64_t frac : {8ull, 4ull, 2ull}) {
        SystemConfig config = base;
        config.stackedBytes = total / frac;
        config.offchipBytes = total - config.stackedBytes;
        std::vector<double> cameo_s, cache_s, svc;
        for (const auto &wl : workloads) {
            std::cout << "  [1/" << frac << " " << wl.name << "]..."
                      << std::flush;
            const RunResult b =
                runWorkload(config, OrgKind::Baseline, wl);
            const RunResult r = runWorkload(config, OrgKind::Cameo, wl);
            const RunResult c =
                runWorkload(config, OrgKind::AlloyCache, wl);
            cameo_s.push_back(
                speedup(static_cast<double>(b.execTime),
                        static_cast<double>(r.execTime)));
            cache_s.push_back(
                speedup(static_cast<double>(b.execTime),
                        static_cast<double>(c.execTime)));
            svc.push_back(100.0 * r.stackedServiceFraction());
        }
        std::cout << "\n";
        table.addRow({"1/" + std::to_string(frac),
                      TextTable::cell(std::uint64_t{frac}),
                      TextTable::cell(geometricMean(cameo_s)),
                      TextTable::cell(geometricMean(cache_s)),
                      TextTable::cell(arithmeticMean(svc), 1)});
    }
    table.print(std::cout);
    std::cout << "\nNote: larger stacked fractions raise CAMEO's "
                 "stacked-service rate and shrink K; the baseline also "
                 "shrinks (less off-chip), so gains compound.\n";
    return 0;
}
