/**
 * @file
 * Ablation (beyond the paper's published data): stacked DRAM as a
 * fraction of total memory. The paper fixes stacked at 25% ("a quarter
 * or even half of the overall capacity"); this sweep varies the split
 * at constant total capacity, which also varies the congruence-group
 * size K = total/stacked and the number of off-chip candidates the LLP
 * must choose among.
 */

#include <iostream>

#include "bench_common.hh"
#include "stats/table.hh"
#include "util/math.hh"

int
main()
{
    using namespace cameo;
    using namespace cameo::bench;

    const SystemConfig base = benchConfig();
    const auto workloads = benchWorkloads();
    const std::uint64_t total = base.totalMemoryBytes();

    std::cout << "Ablation: stacked fraction of total memory "
                 "(constant total " << (total >> 20) << " MB)\n";

    TextTable table("Capacity-ratio sweep (geometric means over " +
                    std::to_string(workloads.size()) + " workloads)");
    table.setHeader({"Stacked", "K", "Gmean CAMEO", "Gmean Cache",
                     "Mean stacked-svc%"});

    // Flatten (fraction x workload x {baseline, cameo, cache}) into one
    // sweep; slot arithmetic below mirrors this enumeration order.
    const std::vector<std::uint64_t> fracs{8, 4, 2};
    std::vector<SweepJob> jobs;
    jobs.reserve(fracs.size() * workloads.size() * 3);
    for (const std::uint64_t frac : fracs) {
        SystemConfig config = base;
        config.stackedBytes = total / frac;
        config.offchipBytes = total - config.stackedBytes;
        for (const auto &wl : workloads) {
            const std::string prefix =
                "1/" + std::to_string(frac) + " " + wl.name;
            jobs.push_back({prefix + "/baseline", [config, wl] {
                                return runWorkload(
                                    config, OrgKind::Baseline, wl);
                            }});
            jobs.push_back({prefix + "/CAMEO", [config, wl] {
                                return runWorkload(config, OrgKind::Cameo,
                                                   wl);
                            }});
            jobs.push_back({prefix + "/Cache", [config, wl] {
                                return runWorkload(
                                    config, OrgKind::AlloyCache, wl);
                            }});
        }
    }
    const std::vector<RunResult> results = runSweep(std::move(jobs));

    for (std::size_t f = 0; f < fracs.size(); ++f) {
        std::vector<double> cameo_s, cache_s, svc;
        for (std::size_t w = 0; w < workloads.size(); ++w) {
            const std::size_t slot = (f * workloads.size() + w) * 3;
            const RunResult &b = results[slot];
            const RunResult &r = results[slot + 1];
            const RunResult &c = results[slot + 2];
            cameo_s.push_back(
                speedup(static_cast<double>(b.execTime),
                        static_cast<double>(r.execTime)));
            cache_s.push_back(
                speedup(static_cast<double>(b.execTime),
                        static_cast<double>(c.execTime)));
            svc.push_back(100.0 * r.stackedServiceFraction());
        }
        table.addRow({"1/" + std::to_string(fracs[f]),
                      TextTable::cell(std::uint64_t{fracs[f]}),
                      TextTable::cell(geometricMean(cameo_s)),
                      TextTable::cell(geometricMean(cache_s)),
                      TextTable::cell(arithmeticMean(svc), 1)});
    }
    table.print(std::cout);
    std::cout << "\nNote: larger stacked fractions raise CAMEO's "
                 "stacked-service rate and shrink K; the baseline also "
                 "shrinks (less off-chip), so gains compound.\n";
    return 0;
}
