/**
 * @file
 * Figure 13 (the paper's headline result): speedup of Cache,
 * TLM-Static, TLM-Dynamic, CAMEO (Co-Located LLT + LLP), and the
 * idealistic DoubleUse over the no-stacked-DRAM baseline, for every
 * Table II workload, with per-category and overall geometric means.
 *
 * Paper: Cache +50%, TLM-Static +33%, TLM-Dynamic +50%, CAMEO +78%,
 * DoubleUse +82% (Gmean ALL). Expected shape: CAMEO outperforms both
 * Cache and TLM and comes close to DoubleUse.
 */

#include <iostream>

#include "bench_common.hh"

int
main()
{
    using namespace cameo;
    using namespace cameo::bench;

    const SystemConfig config = benchConfig();
    const std::vector<DesignPoint> points{
        point("Cache", OrgKind::AlloyCache, config),
        point("TLM-Static", OrgKind::TlmStatic, config),
        point("TLM-Dynamic", OrgKind::TlmDynamic, config),
        point("CAMEO", OrgKind::Cameo, config),
        point("DoubleUse", OrgKind::DoubleUse, config),
    };
    const auto workloads = benchWorkloads();

    std::cout << "Reproducing Figure 13: speedup with stacked memory "
                 "(baseline = no stacked DRAM)\n";
    const auto rows = runComparison(config, points, workloads, &std::cout);
    printSpeedupTable("Figure 13: Speedup over baseline", points, rows,
                      std::cout);

    // Optional machine-readable output for plotting.
    if (const char *csv = std::getenv("CAMEO_BENCH_CSV")) {
        if (writeSpeedupCsv(points, rows, csv))
            std::cout << "\nwrote " << csv << "\n";
        else
            std::cout << "\nfailed to write " << csv << "\n";
    }
    return 0;
}
