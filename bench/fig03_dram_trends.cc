/**
 * @file
 * Figure 3: DRAM capacity and bandwidth across technologies. The paper
 * plots per-module capacity and peak bandwidth collected from public
 * specifications (DDR3, DDR4, LPDDR, HBM, HMC) to argue that stacked
 * DRAM delivers ~8x bandwidth but only a fraction of commodity
 * capacity. We tabulate the same specification data alongside the
 * derived peak bandwidths of this simulator's two Table I modules.
 */

#include <iostream>

#include "dram/timings.hh"
#include "stats/table.hh"

int
main()
{
    using namespace cameo;

    TextTable table("Figure 3: DRAM capacity and bandwidth by "
                    "technology (from public specifications)");
    table.setHeader({"Technology", "Module capacity", "Peak bandwidth",
                     "Role in paper"});
    table.addRow({"DDR3-1600 (JESD79-3)", "2-8 GB/DIMM", "12.8 GB/s/ch",
                  "commodity off-chip"});
    table.addRow({"DDR4-2400 (JESD79-4)", "4-16 GB/DIMM", "19.2 GB/s/ch",
                  "commodity off-chip"});
    table.addRow({"LPDDR2 (mobile)", "0.125-1 GB", "4.3 GB/s/ch",
                  "low-power alternative"});
    table.addRow({"HBM (JESD235)", "1-4 GB/stack", "128 GB/s/stack",
                  "stacked DRAM"});
    table.addRow({"HMC Gen2", "2-4 GB/cube", "160-240 GB/s/cube",
                  "stacked DRAM"});
    table.print(std::cout);

    const DramTimings s = stackedTimings();
    const DramTimings o = offchipTimings();
    const double cpu_ghz = s.cpuMhz / 1000.0;
    const auto gbps = [&](const DramTimings &t) {
        return t.peakBytesPerCycle() * cpu_ghz;
    };

    std::cout << "\nSimulator modules (Table I parameters):\n"
              << "  stacked : " << s.channels << " channels x "
              << s.busWidthBits << "b @ " << s.busMhz
              << "MHz DDR -> " << gbps(s) << " GB/s peak\n"
              << "  off-chip: " << o.channels << " channels x "
              << o.busWidthBits << "b @ " << o.busMhz
              << "MHz DDR -> " << gbps(o) << " GB/s peak\n"
              << "  ratio   : " << gbps(s) / gbps(o)
              << "x (the paper's ~8x stacked bandwidth advantage)\n";
    return 0;
}
