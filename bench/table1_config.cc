/**
 * @file
 * Table I: baseline system configuration — echoes the paper-scale and
 * default (scaled) configurations with derived quantities (idle
 * latencies, peak bandwidths, LLT sizes, LLP storage), verifying the
 * capacity arithmetic the paper quotes (64MB LLT for 16GB, 512B of
 * LLP state, 97% useful LEAD capacity).
 */

#include <iostream>

#include "core/cameo_controller.hh"
#include "core/lead_layout.hh"
#include "stats/table.hh"
#include "system/config.hh"

namespace
{

void
describe(const char *title, const cameo::SystemConfig &config)
{
    using namespace cameo;
    TextTable table(title);
    table.setHeader({"Parameter", "Value"});
    const auto row = [&](const std::string &k, const std::string &v) {
        table.addRow({k, v});
    };
    const auto mb = [](std::uint64_t b) {
        return std::to_string(b >> 20) + " MB";
    };

    row("Cores", std::to_string(config.numCores) + " @ " +
                     std::to_string(config.stacked.cpuMhz) + " MHz, 2-wide");
    row("Shared L3", mb(config.l3Bytes) + " (" +
                         std::to_string(config.l3Bytes >> 10) + " KB), " +
                         std::to_string(config.l3Ways) + "-way, " +
                         std::to_string(config.l3HitLatency) + " cycles");
    row("Stacked DRAM", mb(config.stackedBytes) + ", " +
                            std::to_string(config.stacked.channels) +
                            " ch x " +
                            std::to_string(config.stacked.busWidthBits) +
                            "b @ " + std::to_string(config.stacked.busMhz) +
                            " MHz (DDR)");
    row("Off-chip DRAM", mb(config.offchipBytes) + ", " +
                             std::to_string(config.offchip.channels) +
                             " ch x " +
                             std::to_string(config.offchip.busWidthBits) +
                             "b @ " +
                             std::to_string(config.offchip.busMhz) +
                             " MHz (DDR)");
    row("tCAS-tRCD-tRP-tRAS", std::to_string(config.stacked.tCas) + "-" +
                                  std::to_string(config.stacked.tRcd) + "-" +
                                  std::to_string(config.stacked.tRp) + "-" +
                                  std::to_string(config.stacked.tRas) +
                                  " bus cycles (both modules)");
    row("Page fault", std::to_string(config.pageFaultLatency) + " cycles");

    // Derived.
    row("Stacked idle latency (64B)",
        std::to_string(config.stacked.idleLatency(64)) + " cycles");
    row("Off-chip idle latency (64B)",
        std::to_string(config.offchip.idleLatency(64)) + " cycles");

    const std::uint64_t stacked_lines = config.stackedBytes / kLineBytes;
    const std::uint64_t total_lines = config.totalMemoryBytes() / kLineBytes;
    const std::uint64_t groups = stacked_lines;
    const std::uint64_t k = total_lines / stacked_lines;
    row("Congruence groups",
        std::to_string(groups) + " of " + std::to_string(k) + " lines");
    const LineLocationTable llt_probe(1, static_cast<std::uint32_t>(k));
    row("LLT size (paper encoding)",
        std::to_string(groups * k * 2 / 8 >> 20) + " MB (" +
            std::to_string(groups * k * 2 / 8) + " B)");
    const LeadLayout lead(stacked_lines);
    row("LEAD useful capacity",
        TextTable::cell(100.0 * lead.usableLines() / stacked_lines, 1) +
            "% (" + std::to_string(lead.usableLines()) + " of " +
            std::to_string(stacked_lines) + " lines)");
    const LineLocationPredictor llp_probe(PredictorKind::Llp,
                                          config.numCores,
                                          static_cast<std::uint32_t>(k));
    row("LLP storage", std::to_string(llp_probe.storageBytes()) + " B (" +
                           std::to_string(config.numCores) +
                           " cores x 256 x 2b)");
    table.print(std::cout);
    std::cout << "\n";
}

} // namespace

int
main()
{
    std::cout << "Reproducing Table I: system configurations\n\n";
    describe("Table I at paper scale (4GB + 12GB)", cameo::paperConfig());
    describe("Default scaled configuration (1/512 capacities)",
             cameo::defaultConfig());
    return 0;
}
