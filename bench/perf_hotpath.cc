/**
 * @file
 * Hot-path throughput microbench: wall-clock simulated accesses per
 * second for each memory organization.
 *
 * Unlike the figure/table benches, this one measures the *simulator*,
 * not the simulated machine: it times complete single-threaded runs
 * (core model + TLB + page table + L3 + organization) with the
 * sanctioned exp/Stopwatch and reports accesses/sec. The numbers seed
 * the bench trajectory for perf PRs: rerun on the same machine before
 * and after a change to see hot-path speedups (simulated stats must
 * stay bit-identical; test_golden proves that separately).
 *
 * Environment:
 *   CAMEO_BENCH_ACCESSES     accesses per core per run (default 200K)
 *   CAMEO_BENCH_REPS         timed repetitions per organization; the
 *                            best (highest-throughput) rep is reported
 *                            (default 3)
 *   CAMEO_BENCH_HOTPATH_OUT  output JSON path
 *                            (default BENCH_hotpath.json)
 *
 * Output: a stdout table plus a JSON file with one record per
 * organization, consumed by CI's perf-smoke artifact upload.
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "exp/stopwatch.hh"
#include "system/system.hh"

namespace
{

/** One organization's measured throughput. */
struct HotpathResult
{
    std::string org;
    std::uint64_t accesses = 0;
    double bestSeconds = 0.0;
    double accessesPerSec = 0.0;
};

} // namespace

int
main()
{
    using namespace cameo;
    using namespace cameo::bench;

    SystemConfig config = benchConfig();

    std::string error;
    std::uint64_t reps = 3;
    if (const auto v = envUint("CAMEO_BENCH_REPS", &error))
        reps = *v;
    if (!error.empty())
        std::cerr << "warning: " << error << " (using default " << reps
                  << ")\n";
    if (reps == 0)
        reps = 1;

    const char *out_env = std::getenv("CAMEO_BENCH_HOTPATH_OUT");
    const std::string out_path =
        out_env != nullptr ? out_env : "BENCH_hotpath.json";

    // The workload exercises every hot path: streaming pages (TLB +
    // page-table pressure), pointer chasing (dependence stalls), and a
    // hot set (L3 hits). mcf is the paper's canonical memory-bound
    // benchmark and part of the golden matrix.
    const WorkloadProfile &workload = *findWorkload("mcf");

    const std::vector<std::pair<std::string, OrgKind>> orgs{
        {"Baseline", OrgKind::Baseline},
        {"AlloyCache", OrgKind::AlloyCache},
        {"CAMEO", OrgKind::Cameo},
        {"TLM-Dynamic", OrgKind::TlmDynamic},
    };

    std::cout << "Hot-path throughput: simulated accesses/sec per "
                 "organization\n"
              << "(workload " << workload.name << ", "
              << config.accessesPerCore << " accesses x "
              << config.numCores << " cores, best of " << reps
              << " reps)\n\n";

    std::vector<HotpathResult> results;
    for (const auto &[label, kind] : orgs) {
        HotpathResult r;
        r.org = label;
        for (std::uint64_t rep = 0; rep < reps; ++rep) {
            Stopwatch watch;
            const RunResult run = runWorkload(config, kind, workload);
            const double secs = watch.seconds();
            if (rep == 0 || secs < r.bestSeconds) {
                r.bestSeconds = secs;
                r.accesses = run.accesses;
            }
        }
        r.accessesPerSec =
            r.bestSeconds > 0.0
                ? static_cast<double>(r.accesses) / r.bestSeconds
                : 0.0;
        std::printf("  %-12s %10llu accesses  %8.3f s  %12.0f acc/s\n",
                    r.org.c_str(),
                    static_cast<unsigned long long>(r.accesses),
                    r.bestSeconds, r.accessesPerSec);
        std::fflush(stdout);
        results.push_back(std::move(r));
    }

    std::ofstream out(out_path, std::ios::trunc);
    if (!out) {
        std::cerr << "error: cannot write " << out_path << "\n";
        return 1;
    }
    out << "{\n"
        << "  \"bench\": \"perf_hotpath\",\n"
        << "  \"workload\": \"" << workload.name << "\",\n"
        << "  \"accesses_per_core\": " << config.accessesPerCore << ",\n"
        << "  \"num_cores\": " << config.numCores << ",\n"
        << "  \"reps\": " << reps << ",\n"
        << "  \"results\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const HotpathResult &r = results[i];
        char line[256];
        std::snprintf(line, sizeof(line),
                      "    {\"org\": \"%s\", \"accesses\": %llu, "
                      "\"best_seconds\": %.6f, "
                      "\"accesses_per_sec\": %.1f}%s\n",
                      r.org.c_str(),
                      static_cast<unsigned long long>(r.accesses),
                      r.bestSeconds, r.accessesPerSec,
                      i + 1 < results.size() ? "," : "");
        out << line;
    }
    out << "  ]\n}\n";
    out.close();
    std::cout << "\nwrote " << out_path << "\n";
    return out.good() ? 0 : 1;
}
