/**
 * @file
 * Queued-timing contention bench: Blocking vs Queued execution time,
 * achieved off-chip bandwidth, and controller queue occupancy on the
 * bandwidth-heavy Table-IV workloads.
 *
 * Unlike perf_hotpath (which times the simulator), this bench measures
 * the *simulated machine*: how much the DRAM controller queues — the
 * bounded in-service read window and the posted-write drain — stretch
 * execution relative to the contention-free Blocking mode, and how
 * deep the queues actually run (p50/p95/p99 occupancy from the
 * stats/distribution percentiles).
 *
 * Environment:
 *   CAMEO_BENCH_ACCESSES   accesses per core per run (default: the
 *                          shared bench default)
 *   CAMEO_BENCH_WORKLOADS  comma-separated workload override; default
 *                          is the bandwidth-heavy set below
 *   CAMEO_BENCH_JOBS       sweep worker threads
 *   CAMEO_BENCH_QUEUE_OUT  output JSON path (default BENCH_queue.json)
 *
 * Output: a stdout table plus BENCH_queue.json with one record per
 * (workload, organization), consumed by CI's queued perf-smoke
 * artifact upload and EXPERIMENTS.md's contention section.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "stats/table.hh"
#include "system/system.hh"

namespace
{

using namespace cameo;

/** Queued-mode controller telemetry pulled from one run's registry. */
struct QueueTelemetry
{
    double readDepthP50 = 0.0;
    double readDepthP95 = 0.0;
    double readDepthP99 = 0.0;
    double writeDepthP95 = 0.0;
    std::uint64_t queueFullStalls = 0;
    std::uint64_t writeDrains = 0;
};

/** One (workload, organization) comparison row. */
struct QueueResult
{
    std::string workload;
    std::string org;
    Tick execBlocking = 0;
    Tick execQueued = 0;
    std::uint64_t offchipBytes = 0;
    double bwBlocking = 0.0; ///< off-chip bytes per kilo-tick
    double bwQueued = 0.0;
    QueueTelemetry queued;

    double slowdown() const
    {
        return execBlocking > 0 ? static_cast<double>(execQueued) /
                                      static_cast<double>(execBlocking)
                                : 0.0;
    }
};

QueueTelemetry
collectTelemetry(StatRegistry &stats)
{
    QueueTelemetry t;
    if (const Distribution *d =
            stats.findDistribution("dram.offchip.readQueueDepth")) {
        t.readDepthP50 = d->percentile(0.50);
        t.readDepthP95 = d->percentile(0.95);
        t.readDepthP99 = d->percentile(0.99);
    }
    if (const Distribution *d =
            stats.findDistribution("dram.offchip.writeQueueDepth"))
        t.writeDepthP95 = d->percentile(0.95);
    if (const Counter *c =
            stats.findCounter("dram.offchip.queueFullStalls"))
        t.queueFullStalls = c->value();
    if (const Counter *c = stats.findCounter("dram.offchip.writeDrains"))
        t.writeDrains = c->value();
    return t;
}

/** Off-chip bytes per kilo-tick (a scale-free bandwidth figure). */
double
bandwidth(std::uint64_t bytes, Tick exec_time)
{
    return exec_time > 0
               ? 1000.0 * static_cast<double>(bytes) /
                     static_cast<double>(exec_time)
               : 0.0;
}

} // namespace

int
main()
{
    using namespace cameo::bench;

    SystemConfig blocking = benchConfig();
    blocking.timingMode = TimingMode::Blocking;
    SystemConfig queued = blocking;
    queued.timingMode = TimingMode::Queued;

    const char *out_env = std::getenv("CAMEO_BENCH_QUEUE_OUT");
    const std::string out_path =
        out_env != nullptr ? out_env : "BENCH_queue.json";

    // Bandwidth-heavy defaults: the Table-IV workloads with the most
    // DRAM traffic per instruction on each side of the category split.
    std::vector<WorkloadProfile> workloads;
    if (std::getenv("CAMEO_BENCH_WORKLOADS") != nullptr) {
        workloads = benchWorkloads();
    } else {
        for (const char *name : {"mcf", "GemsFDTD", "milc", "leslie3d"})
            workloads.push_back(*findWorkload(name));
    }

    const std::vector<std::pair<std::string, OrgKind>> orgs{
        {"Baseline", OrgKind::Baseline},
        {"Cache", OrgKind::AlloyCache},
        {"CAMEO", OrgKind::Cameo},
    };

    std::cout << "Queued-timing contention: Blocking vs Queued on "
                 "bandwidth-heavy workloads\n"
              << "(" << blocking.accessesPerCore << " accesses x "
              << blocking.numCores << " cores; queues: read window "
              << queued.dramQueues.readWindow << ", write depth "
              << queued.dramQueues.writeQueueDepth << ", drain "
              << queued.dramQueues.drainHighWatermark << "->"
              << queued.dramQueues.drainLowWatermark << ")\n\n";

    // Every (workload, org, mode) simulation is one sweep job; stats
    // land in per-job slots, so the sweep stays bit-deterministic.
    const std::size_t n = workloads.size() * orgs.size();
    std::vector<QueueResult> results(n);
    std::vector<QueueTelemetry> telemetry(n);
    std::vector<SweepJob> jobs;
    for (std::size_t w = 0; w < workloads.size(); ++w) {
        for (std::size_t o = 0; o < orgs.size(); ++o) {
            const std::size_t slot = w * orgs.size() + o;
            const WorkloadProfile &wl = workloads[w];
            const OrgKind kind = orgs[o].second;
            jobs.push_back({wl.name + "/" + orgs[o].first + "/blocking",
                            [&, kind, &wl = workloads[w]] {
                                return runWorkload(blocking, kind, wl);
                            }});
            jobs.push_back({wl.name + "/" + orgs[o].first + "/queued",
                            [&, slot, kind, &wl = workloads[w]] {
                                System system(queued, kind, wl);
                                RunResult r = system.run();
                                telemetry[slot] =
                                    collectTelemetry(system.stats());
                                return r;
                            }});
        }
    }
    const std::vector<RunResult> runs = runSweep(std::move(jobs));

    TextTable table("Queued vs Blocking (off-chip bandwidth in "
                    "bytes/kilo-tick)");
    table.setHeader({"Workload", "Org", "Slowdown", "BW-Blk", "BW-Q",
                     "RdQ-p50", "RdQ-p95", "RdQ-p99", "WrQ-p95",
                     "Stalls", "Drains"});
    for (std::size_t w = 0; w < workloads.size(); ++w) {
        for (std::size_t o = 0; o < orgs.size(); ++o) {
            const std::size_t slot = w * orgs.size() + o;
            const RunResult &rb = runs[2 * slot];
            const RunResult &rq = runs[2 * slot + 1];
            QueueResult &res = results[slot];
            res.workload = workloads[w].name;
            res.org = orgs[o].first;
            res.execBlocking = rb.execTime;
            res.execQueued = rq.execTime;
            res.offchipBytes = rq.offchipBytes;
            res.bwBlocking = bandwidth(rb.offchipBytes, rb.execTime);
            res.bwQueued = bandwidth(rq.offchipBytes, rq.execTime);
            res.queued = telemetry[slot];
            table.addRow({res.workload, res.org,
                          TextTable::cell(res.slowdown()) + "x",
                          TextTable::cell(res.bwBlocking, 1),
                          TextTable::cell(res.bwQueued, 1),
                          TextTable::cell(res.queued.readDepthP50, 1),
                          TextTable::cell(res.queued.readDepthP95, 1),
                          TextTable::cell(res.queued.readDepthP99, 1),
                          TextTable::cell(res.queued.writeDepthP95, 1),
                          TextTable::cell(res.queued.queueFullStalls),
                          TextTable::cell(res.queued.writeDrains)});
        }
    }
    table.print(std::cout);

    std::ofstream out(out_path, std::ios::trunc);
    if (!out) {
        std::cerr << "error: cannot write " << out_path << "\n";
        return 1;
    }
    out << "{\n"
        << "  \"bench\": \"perf_queue\",\n"
        << "  \"accesses_per_core\": " << blocking.accessesPerCore
        << ",\n"
        << "  \"num_cores\": " << blocking.numCores << ",\n"
        << "  \"read_window\": " << queued.dramQueues.readWindow << ",\n"
        << "  \"write_queue_depth\": " << queued.dramQueues.writeQueueDepth
        << ",\n"
        << "  \"results\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const QueueResult &r = results[i];
        char line[512];
        std::snprintf(
            line, sizeof(line),
            "    {\"workload\": \"%s\", \"org\": \"%s\", "
            "\"exec_blocking\": %llu, \"exec_queued\": %llu, "
            "\"slowdown\": %.4f, "
            "\"bw_blocking_bytes_per_ktick\": %.2f, "
            "\"bw_queued_bytes_per_ktick\": %.2f, "
            "\"read_depth_p50\": %.2f, \"read_depth_p95\": %.2f, "
            "\"read_depth_p99\": %.2f, \"write_depth_p95\": %.2f, "
            "\"queue_full_stalls\": %llu, \"write_drains\": %llu}%s\n",
            r.workload.c_str(), r.org.c_str(),
            static_cast<unsigned long long>(r.execBlocking),
            static_cast<unsigned long long>(r.execQueued), r.slowdown(),
            r.bwBlocking, r.bwQueued, r.queued.readDepthP50,
            r.queued.readDepthP95, r.queued.readDepthP99,
            r.queued.writeDepthP95,
            static_cast<unsigned long long>(r.queued.queueFullStalls),
            static_cast<unsigned long long>(r.queued.writeDrains),
            i + 1 < results.size() ? "," : "");
        out << line;
    }
    out << "  ]\n}\n";
    out.close();
    std::cout << "\nwrote " << out_path << "\n";
    return out.good() ? 0 : 1;
}
