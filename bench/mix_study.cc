/**
 * @file
 * Extension study: multi-programmed mixes. The paper evaluates
 * homogeneous rate mode; real consolidated systems co-schedule
 * capacity hogs with latency-sensitive neighbours, which is where a
 * design must balance OS-visible capacity against line locality for
 * *different* tenants simultaneously. Each mix interleaves its members
 * round-robin across the cores.
 */

#include <iostream>
#include <vector>

#include "bench_common.hh"
#include "stats/table.hh"
#include "util/math.hh"

int
main()
{
    using namespace cameo;
    using namespace cameo::bench;

    const SystemConfig config = benchConfig();

    const std::vector<std::vector<const char *>> mixes{
        {"mcf", "libquantum"},          // capacity hog + stream
        {"GemsFDTD", "omnetpp"},        // capacity + pointer chaser
        {"milc", "gcc"},                // two latency-bound
        {"zeusmp", "sphinx3", "milc", "xalancbmk"}, // 4-way consolidation
    };

    const std::vector<std::pair<const char *, OrgKind>> designs{
        {"Cache", OrgKind::AlloyCache},
        {"TLM-Static", OrgKind::TlmStatic},
        {"CAMEO", OrgKind::Cameo},
        {"DoubleUse", OrgKind::DoubleUse},
    };

    std::cout << "Extension: multi-programmed mixes (round-robin over "
              << config.numCores << " cores)\n";

    TextTable table("Mixed-workload speedups over baseline");
    std::vector<std::string> header{"Mix"};
    for (const auto &[label, kind] : designs)
        header.push_back(label);
    table.setHeader(std::move(header));

    // One sweep over (mix x {baseline, designs...}); slot arithmetic
    // below mirrors this enumeration order.
    std::vector<std::string> labels;
    std::vector<SweepJob> jobs;
    jobs.reserve(mixes.size() * (designs.size() + 1));
    for (const auto &mix : mixes) {
        std::vector<WorkloadProfile> profiles;
        std::string label;
        for (const char *name : mix) {
            profiles.push_back(*findWorkload(name));
            label += (label.empty() ? "" : "+") + std::string(name);
        }
        labels.push_back(label);
        jobs.push_back({label + "/baseline", [config, profiles] {
                            return runMix(config, OrgKind::Baseline,
                                          profiles);
                        }});
        for (const auto &[dlabel, kind] : designs) {
            jobs.push_back(
                {label + "/" + dlabel, [config, kind = kind, profiles] {
                     return runMix(config, kind, profiles);
                 }});
        }
    }
    const std::vector<RunResult> results = runSweep(std::move(jobs));

    const std::size_t stride = designs.size() + 1;
    for (std::size_t m = 0; m < mixes.size(); ++m) {
        const RunResult &base = results[m * stride];
        std::vector<std::string> row{labels[m]};
        for (std::size_t d = 0; d < designs.size(); ++d) {
            const RunResult &r = results[m * stride + 1 + d];
            row.push_back(TextTable::cell(
                speedup(static_cast<double>(base.execTime),
                        static_cast<double>(r.execTime))));
        }
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    return 0;
}
