/**
 * @file
 * Extension study: multi-programmed mixes. The paper evaluates
 * homogeneous rate mode; real consolidated systems co-schedule
 * capacity hogs with latency-sensitive neighbours, which is where a
 * design must balance OS-visible capacity against line locality for
 * *different* tenants simultaneously. Each mix interleaves its members
 * round-robin across the cores.
 */

#include <iostream>
#include <vector>

#include "bench_common.hh"
#include "stats/table.hh"
#include "util/math.hh"

int
main()
{
    using namespace cameo;
    using namespace cameo::bench;

    const SystemConfig config = benchConfig();

    const std::vector<std::vector<const char *>> mixes{
        {"mcf", "libquantum"},          // capacity hog + stream
        {"GemsFDTD", "omnetpp"},        // capacity + pointer chaser
        {"milc", "gcc"},                // two latency-bound
        {"zeusmp", "sphinx3", "milc", "xalancbmk"}, // 4-way consolidation
    };

    const std::vector<std::pair<const char *, OrgKind>> designs{
        {"Cache", OrgKind::AlloyCache},
        {"TLM-Static", OrgKind::TlmStatic},
        {"CAMEO", OrgKind::Cameo},
        {"DoubleUse", OrgKind::DoubleUse},
    };

    std::cout << "Extension: multi-programmed mixes (round-robin over "
              << config.numCores << " cores)\n";

    TextTable table("Mixed-workload speedups over baseline");
    std::vector<std::string> header{"Mix"};
    for (const auto &[label, kind] : designs)
        header.push_back(label);
    table.setHeader(std::move(header));

    for (const auto &mix : mixes) {
        std::vector<WorkloadProfile> profiles;
        std::string label;
        for (const char *name : mix) {
            profiles.push_back(*findWorkload(name));
            label += (label.empty() ? "" : "+") + std::string(name);
        }
        std::cout << "  [" << label << "] baseline..." << std::flush;
        const RunResult base =
            runMix(config, OrgKind::Baseline, profiles);
        std::vector<std::string> row{label};
        for (const auto &[dlabel, kind] : designs) {
            std::cout << " " << dlabel << "..." << std::flush;
            const RunResult r = runMix(config, kind, profiles);
            row.push_back(TextTable::cell(
                speedup(static_cast<double>(base.execTime),
                        static_cast<double>(r.execTime))));
        }
        std::cout << "\n";
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    return 0;
}
