/**
 * @file
 * Figure 15: optimized page placement for TLM — frequency-based
 * (TLM-Freq) and oracular (TLM-Oracle) — against TLM-Dynamic and
 * CAMEO.
 *
 * Paper: CAMEO +78% vs TLM-Freq +61%; page-granularity migration still
 * hurts Capacity-Limited workloads, while for small-footprint
 * latency workloads frequency placement can beat CAMEO (conflict
 * misses in CAMEO's direct-mapped congruence groups).
 */

#include <iostream>

#include "bench_common.hh"

int
main()
{
    using namespace cameo;
    using namespace cameo::bench;

    const SystemConfig config = benchConfig();
    const std::vector<DesignPoint> points{
        point("TLM-Dynamic", OrgKind::TlmDynamic, config),
        point("TLM-Freq", OrgKind::TlmFreq, config),
        point("TLM-Oracle", OrgKind::TlmOracle, config),
        point("CAMEO", OrgKind::Cameo, config),
    };
    const auto workloads = benchWorkloads();

    std::cout << "Reproducing Figure 15: optimized TLM page placement "
                 "vs CAMEO\n";
    const auto rows = runComparison(config, points, workloads, &std::cout);
    printSpeedupTable("Figure 15: Optimized placement", points, rows,
                      std::cout);
    return 0;
}
