/**
 * @file
 * Banshee replacement-traffic bench: Queued-mode bus bytes across all
 * 17 workloads for Cache (Alloy), CAMEO, TLM-Dynamic, and Banshee.
 *
 * Banshee's entire claim (Yu et al., MICRO 2017) is bandwidth
 * efficiency: by caching the page mapping in the PTE/TLB path and
 * admitting pages only when a sampled frequency counter crosses a
 * threshold, it migrates rarely — so the DRAM bus carries demand
 * traffic, not replacement traffic. This bench measures exactly that
 * on the simulated machine: per (workload, org), the stacked and
 * off-chip bus bytes, bytes per demand access, and the migration/swap
 * counts that generate the replacement component.
 *
 * Environment:
 *   CAMEO_BENCH_ACCESSES     accesses per core per run
 *   CAMEO_BENCH_WORKLOADS    comma-separated workload override;
 *                            default is all 17
 *   CAMEO_BENCH_JOBS         sweep worker threads
 *   CAMEO_BENCH_BANSHEE_OUT  output JSON path (default
 *                            BENCH_banshee.json)
 *
 * Output: a stdout table plus BENCH_banshee.json with one record per
 * (workload, organization) and per-org total-traffic summaries,
 * consumed by CI's perf-smoke artifact upload and EXPERIMENTS.md's
 * Banshee section.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hh"
#include "stats/table.hh"
#include "system/system.hh"

namespace
{

using namespace cameo;

/** One (workload, organization) traffic row. */
struct TrafficResult
{
    std::string workload;
    std::string org;
    Tick execTime = 0;
    std::uint64_t accesses = 0;
    std::uint64_t stackedBytes = 0;
    std::uint64_t offchipBytes = 0;
    std::uint64_t swaps = 0;
    std::uint64_t pageMigrations = 0;

    std::uint64_t totalBytes() const
    {
        return stackedBytes + offchipBytes;
    }

    double bytesPerAccess() const
    {
        return accesses > 0 ? static_cast<double>(totalBytes()) /
                                  static_cast<double>(accesses)
                            : 0.0;
    }
};

} // namespace

int
main()
{
    using namespace cameo::bench;

    SystemConfig config = benchConfig();
    config.timingMode = TimingMode::Queued;

    const char *out_env = std::getenv("CAMEO_BENCH_BANSHEE_OUT");
    const std::string out_path =
        out_env != nullptr ? out_env : "BENCH_banshee.json";

    const std::vector<WorkloadProfile> workloads = benchWorkloads();
    const std::vector<std::pair<std::string, OrgKind>> orgs{
        {"Cache", OrgKind::AlloyCache},
        {"TLM-Dynamic", OrgKind::TlmDynamic},
        {"CAMEO", OrgKind::Cameo},
        {"Banshee", OrgKind::Banshee},
    };

    std::cout << "Banshee replacement traffic: Queued-mode bus bytes "
                 "per organization\n"
              << "(" << config.accessesPerCore << " accesses x "
              << config.numCores << " cores; Banshee sample rate "
              << config.bansheeSampleRate << ", hot threshold "
              << config.bansheeHotThreshold << ")\n\n";

    std::vector<SweepJob> jobs;
    for (const WorkloadProfile &wl : workloads) {
        for (const auto &org : orgs) {
            jobs.push_back({wl.name + "/" + org.first,
                            [&config, kind = org.second, &wl] {
                                return runWorkload(config, kind, wl);
                            }});
        }
    }
    const std::vector<RunResult> runs = runSweep(std::move(jobs));

    std::vector<TrafficResult> results;
    results.reserve(runs.size());
    TextTable table("Queued bus traffic (bytes/access; swaps and page "
                    "migrations are replacement events)");
    table.setHeader({"Workload", "Org", "Stacked-B", "Offchip-B",
                     "B/access", "Swaps", "Migrations"});
    std::vector<std::uint64_t> org_bytes(orgs.size(), 0);
    for (std::size_t w = 0; w < workloads.size(); ++w) {
        for (std::size_t o = 0; o < orgs.size(); ++o) {
            const RunResult &r = runs[w * orgs.size() + o];
            TrafficResult res;
            res.workload = workloads[w].name;
            res.org = orgs[o].first;
            res.execTime = r.execTime;
            res.accesses = r.accesses;
            res.stackedBytes = r.stackedBytes;
            res.offchipBytes = r.offchipBytes;
            res.swaps = r.swaps;
            res.pageMigrations = r.pageMigrations;
            org_bytes[o] += res.totalBytes();
            table.addRow({res.workload, res.org,
                          TextTable::cell(res.stackedBytes),
                          TextTable::cell(res.offchipBytes),
                          TextTable::cell(res.bytesPerAccess(), 1),
                          TextTable::cell(res.swaps),
                          TextTable::cell(res.pageMigrations)});
            results.push_back(std::move(res));
        }
    }
    table.print(std::cout);

    std::cout << "\nTotal bus bytes across the workload set:\n";
    for (std::size_t o = 0; o < orgs.size(); ++o) {
        std::cout << "  " << orgs[o].first << ": " << org_bytes[o];
        if (orgs[o].first != "Banshee" && org_bytes[o] > 0) {
            std::cout << "  (Banshee = "
                      << TextTable::cell(
                             100.0 *
                                 static_cast<double>(
                                     org_bytes[orgs.size() - 1]) /
                                 static_cast<double>(org_bytes[o]),
                             1)
                      << "% of this)";
        }
        std::cout << "\n";
    }

    std::ofstream out(out_path, std::ios::trunc);
    if (!out) {
        std::cerr << "error: cannot write " << out_path << "\n";
        return 1;
    }
    out << "{\n"
        << "  \"bench\": \"perf_banshee\",\n"
        << "  \"accesses_per_core\": " << config.accessesPerCore
        << ",\n"
        << "  \"num_cores\": " << config.numCores << ",\n"
        << "  \"banshee_sample_rate\": " << config.bansheeSampleRate
        << ",\n"
        << "  \"banshee_hot_threshold\": " << config.bansheeHotThreshold
        << ",\n"
        << "  \"results\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const TrafficResult &r = results[i];
        char line[512];
        std::snprintf(
            line, sizeof(line),
            "    {\"workload\": \"%s\", \"org\": \"%s\", "
            "\"exec_time\": %llu, \"accesses\": %llu, "
            "\"stacked_bytes\": %llu, \"offchip_bytes\": %llu, "
            "\"bytes_per_access\": %.3f, "
            "\"swaps\": %llu, \"page_migrations\": %llu}%s\n",
            r.workload.c_str(), r.org.c_str(),
            static_cast<unsigned long long>(r.execTime),
            static_cast<unsigned long long>(r.accesses),
            static_cast<unsigned long long>(r.stackedBytes),
            static_cast<unsigned long long>(r.offchipBytes),
            r.bytesPerAccess(),
            static_cast<unsigned long long>(r.swaps),
            static_cast<unsigned long long>(r.pageMigrations),
            i + 1 < results.size() ? "," : "");
        out << line;
    }
    out << "  ],\n"
        << "  \"total_bytes\": {";
    for (std::size_t o = 0; o < orgs.size(); ++o) {
        out << "\"" << orgs[o].first << "\": " << org_bytes[o]
            << (o + 1 < orgs.size() ? ", " : "");
    }
    out << "}\n}\n";
    out.close();
    std::cout << "\nwrote " << out_path << "\n";
    return out.good() ? 0 : 1;
}
