/**
 * @file
 * Figure 2 (motivation): performance of stacked DRAM as hardware cache,
 * as Two-Level Memory with and without page migration, and as the
 * idealistic DoubleUse system.
 *
 * Paper: Cache +50% overall but marginal for Capacity-Limited;
 * TLM-Static +33% overall (+67% capacity / +18% latency);
 * TLM-Dynamic +50% but *below* TLM-Static for Capacity-Limited
 * (migration bandwidth); DoubleUse +82%.
 */

#include <iostream>

#include "bench_common.hh"

int
main()
{
    using namespace cameo;
    using namespace cameo::bench;

    const SystemConfig config = benchConfig();
    const std::vector<DesignPoint> points{
        point("Cache", OrgKind::AlloyCache, config),
        point("TLM-Static", OrgKind::TlmStatic, config),
        point("TLM-Dynamic", OrgKind::TlmDynamic, config),
        point("DoubleUse", OrgKind::DoubleUse, config),
    };
    const auto workloads = benchWorkloads();

    std::cout << "Reproducing Figure 2: motivation — cache vs "
                 "two-level-memory vs idealistic DoubleUse\n";
    const auto rows = runComparison(config, points, workloads, &std::cout);
    printSpeedupTable("Figure 2: Speedup over baseline", points, rows,
                      std::cout);
    return 0;
}
