/**
 * @file
 * Shared helpers for the figure/table bench binaries.
 *
 * Every bench regenerates one artifact of the paper's evaluation on
 * the scaled default configuration. Trace length can be overridden
 * with the CAMEO_BENCH_ACCESSES environment variable (accesses per
 * core) and the workload set narrowed with CAMEO_BENCH_WORKLOADS
 * (comma-separated benchmark names) for quick runs.
 */

#ifndef CAMEO_BENCH_BENCH_COMMON_HH
#define CAMEO_BENCH_BENCH_COMMON_HH

#include <cstdlib>
#include <string>
#include <vector>

#include "system/config.hh"
#include "system/experiment.hh"
#include "trace/workloads.hh"

namespace cameo::bench
{

/** Default config with the env-var trace-length override applied. */
inline SystemConfig
benchConfig()
{
    SystemConfig config = defaultConfig();
    if (const char *env = std::getenv("CAMEO_BENCH_ACCESSES"))
        config.accessesPerCore = std::strtoull(env, nullptr, 10);
    return config;
}

/** Workload list, optionally narrowed by CAMEO_BENCH_WORKLOADS. */
inline std::vector<WorkloadProfile>
benchWorkloads()
{
    const char *env = std::getenv("CAMEO_BENCH_WORKLOADS");
    if (env == nullptr)
        return allWorkloads();
    std::vector<WorkloadProfile> out;
    std::string names(env);
    std::size_t pos = 0;
    while (pos <= names.size()) {
        const std::size_t comma = names.find(',', pos);
        const std::string name =
            names.substr(pos, comma == std::string::npos ? std::string::npos
                                                         : comma - pos);
        if (const WorkloadProfile *profile = findWorkload(name))
            out.push_back(*profile);
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return out;
}

/** Design point with the shared bench config. */
inline DesignPoint
point(std::string label, OrgKind kind, const SystemConfig &config)
{
    return DesignPoint{std::move(label), kind, config};
}

} // namespace cameo::bench

#endif // CAMEO_BENCH_BENCH_COMMON_HH
