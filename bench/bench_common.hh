/**
 * @file
 * Shared helpers for the figure/table bench binaries.
 *
 * Every bench regenerates one artifact of the paper's evaluation on
 * the scaled default configuration. Trace length can be overridden
 * with the CAMEO_BENCH_ACCESSES environment variable (accesses per
 * core), a warmup prefix added with CAMEO_BENCH_WARMUP (accesses per
 * core, replayed at functional fidelity before the measured region —
 * DESIGN.md §13), and the workload set narrowed with
 * CAMEO_BENCH_WORKLOADS (comma-separated benchmark names) for quick
 * runs. All are parsed strictly: malformed numbers and unknown
 * workload names warn on stderr instead of being silently accepted or
 * dropped.
 *
 * Simulations execute on the parallel sweep engine (exp/sweep.hh);
 * CAMEO_BENCH_JOBS caps the worker threads (default: all hardware
 * threads). Results are bit-identical for any job count.
 */

#ifndef CAMEO_BENCH_BENCH_COMMON_HH
#define CAMEO_BENCH_BENCH_COMMON_HH

#include <cstdlib>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "exp/sweep.hh"
#include "system/config.hh"
#include "exp/experiment.hh"
#include "trace/workloads.hh"
#include "util/env.hh"

namespace cameo::bench
{

/** Default config with the env-var trace-length override applied. */
inline SystemConfig
benchConfig()
{
    SystemConfig config = defaultConfig();
    std::string error;
    if (const auto accesses = envUint("CAMEO_BENCH_ACCESSES", &error))
        config.accessesPerCore = *accesses;
    if (!error.empty())
        std::cerr << "warning: " << error << " (using default "
                  << config.accessesPerCore << ")\n";
    // Warmup-heavy benches default to the functional fast path: the
    // warmup prefix updates architectural state exactly but skips all
    // timing, then the measured region runs detailed.
    error.clear();
    if (const auto warmup = envUint("CAMEO_BENCH_WARMUP", &error)) {
        config.warmupAccessesPerCore = *warmup;
        if (*warmup > 0)
            config.warmupPolicy = WarmupPolicy::Functional;
    }
    if (!error.empty())
        std::cerr << "warning: " << error << " (running without "
                     "warmup)\n";
    // Benches re-run the same workloads across many organizations and
    // config points: record each stream once, replay it everywhere
    // (bit-identical; CAMEO_TRACE_ARENA_MB=0 opts out).
    config.useTraceArena = true;
    return config;
}

/** Workload list, optionally narrowed by CAMEO_BENCH_WORKLOADS. */
inline std::vector<WorkloadProfile>
benchWorkloads()
{
    const char *env = std::getenv("CAMEO_BENCH_WORKLOADS");
    if (env == nullptr)
        return allWorkloads();
    std::vector<std::string> unknown;
    std::vector<WorkloadProfile> out = workloadsByNames(env, &unknown);
    for (const std::string &name : unknown) {
        std::cerr << "warning: CAMEO_BENCH_WORKLOADS: unknown workload '"
                  << name << "' (ignored)\n";
    }
    if (out.empty()) {
        std::cerr << "warning: CAMEO_BENCH_WORKLOADS matched no "
                     "workloads; using all\n";
        return allWorkloads();
    }
    return out;
}

/** Design point with the shared bench config. */
inline DesignPoint
point(std::string label, OrgKind kind, const SystemConfig &config)
{
    return DesignPoint{std::move(label), kind, config};
}

/**
 * Run a flat job list on the sweep engine with progress on stdout.
 * Results come back in submission order, so benches can index them by
 * the same arithmetic they used to enumerate the jobs.
 */
inline std::vector<RunResult>
runSweep(std::vector<SweepJob> jobs)
{
    ProgressReporter progress(&std::cout);
    SweepOptions options;
    options.progress = &progress;
    return SweepRunner(options).run(std::move(jobs));
}

} // namespace cameo::bench

#endif // CAMEO_BENCH_BENCH_COMMON_HH
