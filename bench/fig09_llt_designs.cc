/**
 * @file
 * Figure 9: speedup of the three Line Location Table designs —
 * Ideal-LLT (zero overhead), Embedded-LLT (serial lookup from a
 * reserved stacked region), and Co-Located LLT (LEAD) — all without
 * location prediction (serial access, SAM), as in the paper's
 * Section IV evaluation.
 *
 * Paper: Embedded-LLT slows down latency-sensitive workloads;
 * Co-Located reaches +74% vs Ideal's +80%, the gap coming from
 * serialized off-chip accesses.
 */

#include <iostream>

#include "bench_common.hh"

int
main()
{
    using namespace cameo;
    using namespace cameo::bench;

    SystemConfig base = benchConfig();
    base.predictorKind = PredictorKind::Sam;

    SystemConfig ideal = base;
    ideal.lltKind = LltKind::Ideal;
    SystemConfig embedded = base;
    embedded.lltKind = LltKind::Embedded;
    SystemConfig colocated = base;
    colocated.lltKind = LltKind::CoLocated;

    const std::vector<DesignPoint> points{
        point("Ideal-LLT", OrgKind::Cameo, ideal),
        point("Embedded-LLT", OrgKind::Cameo, embedded),
        point("CoLocated-LLT", OrgKind::Cameo, colocated),
    };
    const auto workloads = benchWorkloads();

    std::cout << "Reproducing Figure 9: CAMEO speedup under different "
                 "LLT designs (no location prediction)\n";
    const auto rows = runComparison(base, points, workloads, &std::cout);
    printSpeedupTable("Figure 9: Speedup of LLT designs", points, rows,
                      std::cout);
    return 0;
}
