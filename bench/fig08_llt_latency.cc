/**
 * @file
 * Figure 8: analytic access-latency comparison of the LLT designs for
 * a single request serviced in isolation, in both latency units (the
 * paper normalizes stacked = 1 unit, off-chip = 2 units) and the
 * actual unloaded cycle counts of the Table I modules.
 *
 * Cases: H = requested line resident in stacked DRAM, M = resident in
 * off-chip DRAM. Paper's unit results:
 *   Baseline       M: 2
 *   Ideal-LLT      H: 1, M: 2
 *   Embedded-LLT   H: 2, M: 3
 *   Co-Located     H: 1, M: 3
 */

#include <iostream>

#include "util/types.hh"
#include "core/lead_layout.hh"
#include "dram/timings.hh"
#include "stats/table.hh"

int
main()
{
    using namespace cameo;

    const DramTimings stacked = stackedTimings();
    const DramTimings offchip = offchipTimings();

    const double s_line =
        static_cast<double>(stacked.idleLatency(kLineBytes));
    const double s_lead = static_cast<double>(
        stacked.idleLatency(LeadLayout::kLeadBurstBytes));
    const double o_line =
        static_cast<double>(offchip.idleLatency(kLineBytes));

    // The paper's unit: one stacked access.
    const auto units = [&](double cycles) { return cycles / s_line; };

    TextTable table("Figure 8: Unloaded access latency per LLT design "
                    "(cycles at 3.2GHz; units of one stacked access)");
    table.setHeader({"Design", "Hit cycles", "Hit units", "Miss cycles",
                     "Miss units"});

    // Baseline: every access goes off-chip.
    table.addRow({"Baseline(no stacked)", "-", "-",
                  TextTable::cell(o_line, 0),
                  TextTable::cell(units(o_line), 2)});
    // Ideal-LLT: location known instantly.
    table.addRow({"Ideal-LLT", TextTable::cell(s_line, 0),
                  TextTable::cell(units(s_line), 2),
                  TextTable::cell(o_line, 0),
                  TextTable::cell(units(o_line), 2)});
    // Embedded-LLT: LLT read, then data access.
    table.addRow({"Embedded-LLT", TextTable::cell(s_line + s_line, 0),
                  TextTable::cell(units(s_line + s_line), 2),
                  TextTable::cell(s_line + o_line, 0),
                  TextTable::cell(units(s_line + o_line), 2)});
    // Co-Located LLT: LEAD read covers LLT+data on a hit; a miss
    // serializes the off-chip access behind the LEAD read.
    table.addRow({"CoLocated-LLT", TextTable::cell(s_lead, 0),
                  TextTable::cell(units(s_lead), 2),
                  TextTable::cell(s_lead + o_line, 0),
                  TextTable::cell(units(s_lead + o_line), 2)});
    // Co-Located + correct off-chip prediction: parallel fetch.
    table.addRow({"CoLocated+LLP(correct)", TextTable::cell(s_lead, 0),
                  TextTable::cell(units(s_lead), 2),
                  TextTable::cell(std::max(s_lead, o_line), 0),
                  TextTable::cell(units(std::max(s_lead, o_line)), 2)});
    table.print(std::cout);

    std::cout << "\nNote: stacked line access = " << s_line
              << " cycles; LEAD (80B) = " << s_lead
              << " cycles; off-chip line = " << o_line
              << " cycles — the paper's 1-vs-2-unit ratio.\n";
    return 0;
}
