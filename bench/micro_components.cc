/**
 * @file
 * google-benchmark microbenchmarks of the hot simulator components:
 * DRAM timing model, LLT operations, LLP prediction, cache access, and
 * the synthetic generator. These guard the simulator's own performance
 * (the figure benches run hundreds of millions of these operations).
 */

#include <benchmark/benchmark.h>

#include "cache/set_assoc_cache.hh"
#include "core/cameo_controller.hh"
#include "dram/dram_module.hh"
#include "trace/generator.hh"
#include "trace/workloads.hh"
#include "util/rng.hh"

namespace
{

using namespace cameo;

void
BM_DramAccess(benchmark::State &state)
{
    DramModule mod("bm", offchipTimings(), 24ull << 20);
    Rng rng(1);
    Tick now = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            mod.access(now, rng.next(mod.capacityLines()), false, 64));
        now += 20;
    }
}
BENCHMARK(BM_DramAccess);

void
BM_LltSwap(benchmark::State &state)
{
    LineLocationTable llt(1 << 17, 4);
    Rng rng(2);
    for (auto _ : state) {
        const std::uint64_t g = rng.next(llt.numGroups());
        llt.swapSlots(g, rng.next(4u), rng.next(4u));
        benchmark::DoNotOptimize(llt.locationOf(g, 0));
    }
}
BENCHMARK(BM_LltSwap);

void
BM_LlpPredictUpdate(benchmark::State &state)
{
    LineLocationPredictor llp(PredictorKind::Llp, 8, 4);
    Rng rng(3);
    for (auto _ : state) {
        const auto core = static_cast<std::uint32_t>(rng.next(8));
        const InstAddr pc = 0x400000 + 4 * rng.next(256);
        const auto actual = static_cast<std::uint32_t>(rng.next(4));
        const std::uint32_t pred = llp.predict(core, pc, actual);
        llp.update(core, pc, pred, actual);
        benchmark::DoNotOptimize(pred);
    }
}
BENCHMARK(BM_LlpPredictUpdate);

void
BM_L3Access(benchmark::State &state)
{
    SetAssocCache cache("bm.l3", 64 << 10, 16, 24);
    Rng rng(4);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.access(rng.next(1 << 18), rng.chance(0.3)));
    }
}
BENCHMARK(BM_L3Access);

void
BM_Generator(benchmark::State &state)
{
    const WorkloadProfile *wl = findWorkload("milc");
    GeneratorParams gp;
    gp.footprintBytes = 4 << 20;
    SyntheticGenerator gen(*wl, gp, 5);
    for (auto _ : state)
        benchmark::DoNotOptimize(gen.next());
}
BENCHMARK(BM_Generator);

void
BM_CameoAccess(benchmark::State &state)
{
    DramTimings st = stackedTimings();
    st.linesPerRow = LeadLayout::kLeadsPerRow;
    DramModule stacked("bm.stk", st, 8 << 20);
    DramModule offchip("bm.off", offchipTimings(), 24 << 20);
    CameoController ctrl(
        CameoParams{LltKind::CoLocated, PredictorKind::Llp, 8}, stacked,
        offchip, (8 << 20) / 64, (32 << 20) / 64);
    Rng rng(6);
    Tick now = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            ctrl.access(now, rng.next((32ull << 20) / 64), false,
                        0x400000 + 4 * rng.next(64),
                        static_cast<std::uint32_t>(rng.next(8))));
        now += 25;
    }
}
BENCHMARK(BM_CameoAccess);

} // namespace

BENCHMARK_MAIN();
