/**
 * @file
 * Ablation: CAMEO vs CAMEO-Freq (Section VI-D's closing suggestion —
 * frequency-directed swap admission). The filter should help the
 * migration-hostile workloads (poor spatial/temporal locality means
 * most swaps never pay off) and be neutral where CAMEO already keeps
 * its stacked slots hot.
 */

#include <iostream>

#include "bench_common.hh"
#include "stats/table.hh"

int
main()
{
    using namespace cameo;
    using namespace cameo::bench;

    const SystemConfig config = benchConfig();
    const std::vector<DesignPoint> points{
        point("CAMEO", OrgKind::Cameo, config),
        point("CAMEO-Freq", OrgKind::CameoFreq, config),
    };
    const auto workloads = benchWorkloads();

    std::cout << "Ablation: frequency-directed swap admission "
                 "(Section VI-D extension)\n";
    const auto rows = runComparison(config, points, workloads, &std::cout);
    printSpeedupTable("CAMEO vs CAMEO-Freq", points, rows, std::cout);

    std::cout << "\nOff-chip write traffic saved by the filter:\n";
    for (const auto &row : rows) {
        const double stock =
            static_cast<double>(row.runs[0].offchipBytes);
        const double freq =
            static_cast<double>(row.runs[1].offchipBytes);
        std::cout << "  " << row.workload.name << ": "
                  << TextTable::cell(100.0 * (1.0 - freq / stock), 1)
                  << "% fewer off-chip bytes\n";
    }
    return 0;
}
