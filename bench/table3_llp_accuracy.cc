/**
 * @file
 * Table III: accuracy of the Line Location Predictor, broken into the
 * paper's five cases, for SAM / LLP / Perfect, aggregated over all
 * workloads (percent of predictions).
 *
 * Paper: SAM 70.3% (the stacked-service fraction), LLP 91.7%,
 * Perfect 100%.
 */

#include <array>
#include <iostream>

#include "bench_common.hh"
#include "stats/table.hh"

int
main()
{
    using namespace cameo;
    using namespace cameo::bench;

    SystemConfig base = benchConfig();
    base.lltKind = LltKind::CoLocated;

    const std::array<PredictorKind, 3> kinds{
        PredictorKind::Sam, PredictorKind::Llp, PredictorKind::Perfect};

    // Aggregate the five Table III cases over every workload.
    std::array<std::array<double, 5>, 3> percent{};
    std::array<double, 3> accuracy{};

    const auto workloads = benchWorkloads();
    std::vector<SweepJob> jobs;
    jobs.reserve(kinds.size() * workloads.size());
    for (const PredictorKind kind : kinds) {
        SystemConfig config = base;
        config.predictorKind = kind;
        for (const auto &wl : workloads) {
            jobs.push_back(
                {std::string(predictorKindName(kind)) + "/" + wl.name,
                 [config, wl] {
                     return runWorkload(config, OrgKind::Cameo, wl);
                 }});
        }
    }
    const std::vector<RunResult> results = runSweep(std::move(jobs));

    for (std::size_t k = 0; k < kinds.size(); ++k) {
        std::uint64_t cases[5] = {0, 0, 0, 0, 0};
        std::uint64_t total = 0;
        for (std::size_t w = 0; w < workloads.size(); ++w) {
            const RunResult &r = results[k * workloads.size() + w];
            for (int c = 0; c < 5; ++c) {
                cases[c] += r.llpCases[c];
                total += r.llpCases[c];
            }
        }
        for (int c = 0; c < 5; ++c)
            percent[k][c] = total ? 100.0 * cases[c] / total : 0.0;
        accuracy[k] = percent[k][0] + percent[k][3];
    }

    TextTable table("Table III: Accuracy of Line Location Predictor "
                    "(percent of L3-miss reads)");
    table.setHeader({"Serviced by", "Prediction", "SAM", "LLP", "Perfect"});
    const char *rows[5][2] = {
        {"Stacked", "Stacked"},        {"Stacked", "Off-chip"},
        {"Off-chip", "Stacked"},       {"Off-chip", "Off-chip (OK)"},
        {"Off-chip", "Off-chip (Wrong)"},
    };
    // Print in the paper's row order: case 1, 2, 3, 4, 5.
    const int order[5] = {0, 1, 2, 3, 4};
    for (int i = 0; i < 5; ++i) {
        const int c = order[i];
        table.addRow({rows[c][0], rows[c][1],
                      TextTable::cell(percent[0][c], 1),
                      TextTable::cell(percent[1][c], 1),
                      TextTable::cell(percent[2][c], 1)});
    }
    table.addRow({"Overall Accuracy", "", TextTable::cell(accuracy[0], 1),
                  TextTable::cell(accuracy[1], 1),
                  TextTable::cell(accuracy[2], 1)});
    table.print(std::cout);
    return 0;
}
