/**
 * @file
 * Shard-fleet scaling study: the same multi-workload Queued-pipeline
 * sweep run in-process (the reference) and as worker fleets of 1, 2, 4
 * and 8 shards, timing each and byte-comparing every fleet's merged
 * CSV against the reference.
 *
 * The binary is its own worker: the orchestrator re-executes argv[0]
 * with --worker --shards=N (the fleet appends --shard-index=i), and
 * the worker rebuilds the identical job list from the identical
 * environment — the job spec is a pure function of the bench env vars.
 *
 * Byte-identity is the gating half: the bench exits non-zero if any
 * fleet's CSV differs from the in-process reference. The scaling half
 * is host telemetry: wall times and speedups are recorded in the JSON
 * with the host's core count, and the 2.5x-at-4-shards target is only
 * enforced when the host has at least 4 cores — a 1-core container
 * cannot honestly demonstrate multi-process scaling, and pretending
 * otherwise would be fabrication.
 *
 * Environment:
 *   CAMEO_BENCH_ACCESSES   accesses per core per run (default 40000)
 *   CAMEO_BENCH_WORKLOADS  comma-separated workload override
 *                          (default: the first 8 of Table II)
 *   CAMEO_BENCH_SHARD_OUT  output JSON path (default BENCH_shard.json)
 *
 * Output: a stdout table plus BENCH_shard.json with the scaling curve,
 * consumed by CI's shard-smoke artifact upload and EXPERIMENTS.md's
 * sharding section.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.hh"
#include "shard/fleet.hh"
#include "system/system.hh"
#include "util/env.hh"

namespace
{

using namespace cameo;

/** One fleet execution. */
struct FleetPhase
{
    unsigned shards = 0; ///< 0 = in-process reference.
    double wallSeconds = 0.0;
    std::string csv;
    bool ok = true;
};

/** The sweep every mode runs: a pure function of the bench env. */
std::vector<SweepJob>
shardBenchJobs()
{
    SystemConfig config = cameo::bench::benchConfig();
    if (std::getenv("CAMEO_BENCH_ACCESSES") == nullptr)
        config.accessesPerCore = 40'000;
    config.timingMode = TimingMode::Queued;
    // Each process records its own streams; the fleet axis under test
    // is process count, not asset sharing (cameo-shard's
    // --trace-cache-dir covers that).
    config.useTraceArena = false;

    std::vector<WorkloadProfile> workloads;
    if (std::getenv("CAMEO_BENCH_WORKLOADS") != nullptr) {
        workloads = cameo::bench::benchWorkloads();
    } else {
        const std::vector<WorkloadProfile> all = allWorkloads();
        workloads.assign(all.begin(),
                         all.begin() +
                             std::min<std::size_t>(8, all.size()));
    }

    std::vector<SweepJob> jobs;
    jobs.reserve(workloads.size());
    for (const WorkloadProfile &wl : workloads) {
        SweepJob job;
        job.label = wl.name + "/CAMEO";
        job.run = [config, wl] {
            return runWorkload(config, OrgKind::Cameo, wl);
        };
        jobs.push_back(std::move(job));
    }
    return jobs;
}

std::string
resultsCsv(const std::vector<RunResult> &results)
{
    std::ostringstream out;
    writeShardResultsCsv(out, results);
    return out.str();
}

/** Parse "--flag=N" from argv (strict); @p fallback when absent. */
unsigned
argvUint(int argc, char **argv, const char *prefix, unsigned fallback)
{
    const std::size_t len = std::strlen(prefix);
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], prefix, len) != 0)
            continue;
        std::uint64_t value = 0;
        if (parseUintStrict(argv[i] + len, value) ==
            ParseUintStatus::Ok)
            return static_cast<unsigned>(value);
        std::cerr << "warning: malformed " << argv[i] << " (using "
                  << fallback << ")\n";
    }
    return fallback;
}

} // namespace

int
main(int argc, char **argv)
{
    bool worker = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--worker") == 0)
            worker = true;
    }
    if (worker) {
        const unsigned shards =
            argvUint(argc, argv, "--shards=", 1);
        const unsigned index =
            argvUint(argc, argv, "--shard-index=", 0);
        return runShardWorker(shardBenchJobs(), index, shards);
    }

    const char *out_env = std::getenv("CAMEO_BENCH_SHARD_OUT");
    const std::string out_path =
        out_env != nullptr ? out_env : "BENCH_shard.json";
    const unsigned host_cores = std::thread::hardware_concurrency();

    std::vector<SweepJob> jobs = shardBenchJobs();
    std::cout << "Shard-fleet scaling study: " << jobs.size()
              << " Queued-pipeline jobs, host cores: " << host_cores
              << "\n\n";

    std::vector<FleetPhase> phases;
    {
        FleetPhase phase;
        SweepOptions options;
        options.jobs = 1;
        SweepRunner runner(options);
        const std::vector<RunResult> results = runner.run(jobs);
        phase.wallSeconds = runner.telemetry().wallSeconds;
        phase.csv = resultsCsv(results);
        phases.push_back(std::move(phase));
    }

    bool identical = true;
    bool fleets_ok = true;
    for (const unsigned shards : {1u, 2u, 4u, 8u}) {
        FleetPhase phase;
        phase.shards = shards;
        FleetOptions options;
        options.shards = shards;
        options.workerCommand = {argv[0], "--worker",
                                 "--shards=" + std::to_string(shards)};
        FleetOutcome outcome = runShardFleet(jobs.size(), options);
        phase.wallSeconds = outcome.wallSeconds;
        phase.ok = outcome.ok();
        if (!phase.ok) {
            fleets_ok = false;
            for (const ShardFailure &f : outcome.failures) {
                std::cerr << "error: shards=" << shards << ": shard "
                          << f.shard << ": " << f.detail << "\n";
            }
        } else {
            phase.csv = resultsCsv(outcome.results);
            if (phase.csv != phases[0].csv) {
                identical = false;
                std::cerr << "error: shards=" << shards
                          << " CSV differs from the in-process "
                             "reference\n";
            }
        }
        phases.push_back(std::move(phase));
    }

    const auto wallOf = [&phases](unsigned shards) {
        for (const FleetPhase &p : phases) {
            if (p.shards == shards)
                return p.wallSeconds;
        }
        return 0.0;
    };
    const auto speedupOf = [&wallOf](unsigned shards) {
        return wallOf(shards) > 0.0 ? wallOf(1) / wallOf(shards) : 0.0;
    };

    std::cout << "Phase        Wall (s)   vs 1 shard   identical\n";
    for (const FleetPhase &phase : phases) {
        char line[96];
        std::snprintf(
            line, sizeof(line), "%-12s %8.3f   %8.2fx   %s\n",
            phase.shards == 0
                ? "in-process"
                : ("shards=" + std::to_string(phase.shards)).c_str(),
            phase.wallSeconds,
            phase.shards == 0 ? 1.0 : speedupOf(phase.shards),
            phase.ok ? (phase.csv == phases[0].csv ? "yes" : "NO")
                     : "FLEET FAILED");
        std::cout << line;
    }

    const double speedup4 = speedupOf(4);
    const bool enforce_target = host_cores >= 4;
    const bool target_met = speedup4 >= 2.5;
    std::cout << "\nspeedup at 4 shards: " << speedup4 << "x (target "
              << "2.5x, " << (enforce_target ? "enforced" : "recorded "
                                                            "only: host "
                                                            "has < 4 "
                                                            "cores")
              << ")\n"
              << (identical && fleets_ok
                      ? "all fleets byte-identical to the reference\n"
                      : "DIVERGENCE OR FLEET FAILURE\n");

    std::ofstream out(out_path, std::ios::trunc);
    if (!out) {
        std::cerr << "error: cannot write " << out_path << "\n";
        return 1;
    }
    out << "{\n"
        << "  \"bench\": \"perf_shard\",\n"
        << "  \"host_cores\": " << host_cores << ",\n"
        << "  \"jobs\": " << jobs.size() << ",\n"
        << "  \"byte_identical\": "
        << (identical && fleets_ok ? "true" : "false") << ",\n"
        << "  \"target_speedup_4\": 2.5,\n"
        << "  \"target_enforced\": "
        << (enforce_target ? "true" : "false") << ",\n"
        << "  \"target_met\": " << (target_met ? "true" : "false")
        << ",\n"
        << "  \"note\": \"speedups are host telemetry; on hosts with "
           "fewer than 4 cores the scaling target is recorded but not "
           "enforced\",\n"
        << "  \"phases\": [\n";
    for (std::size_t i = 0; i < phases.size(); ++i) {
        char line[128];
        std::snprintf(line, sizeof(line),
                      "    {\"shards\": %u, \"wall_seconds\": %.4f, "
                      "\"speedup_vs_1\": %.3f}%s\n",
                      phases[i].shards, phases[i].wallSeconds,
                      phases[i].shards == 0 ? 1.0
                                            : speedupOf(phases[i].shards),
                      i + 1 < phases.size() ? "," : "");
        out << line;
    }
    out << "  ]\n}\n";
    out.close();
    std::cout << "wrote " << out_path << "\n";

    const bool pass = identical && fleets_ok &&
                      (!enforce_target || target_met) && out.good();
    return pass ? 0 : 1;
}
