/**
 * @file
 * Ablation (beyond the paper's published data): Line Location Predictor
 * table size. Section V claims "a 256-entry (8-bit index) table is
 * quite effective"; this sweep shows the accuracy/speedup curve from a
 * single shared register (1 entry — the paper's strawman "single LLR")
 * up to 4K entries per core.
 */

#include <iostream>

#include "bench_common.hh"
#include "stats/table.hh"
#include "util/math.hh"

int
main()
{
    using namespace cameo;
    using namespace cameo::bench;

    SystemConfig base = benchConfig();
    base.lltKind = LltKind::CoLocated;
    base.predictorKind = PredictorKind::Llp;
    const auto workloads = benchWorkloads();

    std::cout << "Ablation: LLP table size (per core)\n";

    TextTable table("LLP table-size sweep (geometric means over " +
                    std::to_string(workloads.size()) + " workloads)");
    table.setHeader({"Entries/core", "Storage/core", "Gmean speedup",
                     "Mean accuracy%"});
    for (const std::uint32_t entries : {1u, 16u, 64u, 256u, 1024u, 4096u}) {
        SystemConfig config = base;
        config.llpTableEntries = entries;
        std::vector<double> speedups, accuracies;
        for (const auto &wl : workloads) {
            std::cout << "  [" << entries << "/" << wl.name << "]..."
                      << std::flush;
            const RunResult b =
                runWorkload(config, OrgKind::Baseline, wl);
            const RunResult r = runWorkload(config, OrgKind::Cameo, wl);
            speedups.push_back(
                speedup(static_cast<double>(b.execTime),
                        static_cast<double>(r.execTime)));
            accuracies.push_back(100.0 * r.llpAccuracy);
        }
        std::cout << "\n";
        table.addRow({TextTable::cell(std::uint64_t{entries}),
                      std::to_string(entries * 2 / 8) + " B",
                      TextTable::cell(geometricMean(speedups)),
                      TextTable::cell(arithmeticMean(accuracies), 1)});
    }
    table.print(std::cout);
    return 0;
}
