/**
 * @file
 * Ablation (beyond the paper's published data): Line Location Predictor
 * table size. Section V claims "a 256-entry (8-bit index) table is
 * quite effective"; this sweep shows the accuracy/speedup curve from a
 * single shared register (1 entry — the paper's strawman "single LLR")
 * up to 4K entries per core.
 */

#include <iostream>

#include "bench_common.hh"
#include "stats/table.hh"
#include "util/math.hh"

int
main()
{
    using namespace cameo;
    using namespace cameo::bench;

    SystemConfig base = benchConfig();
    base.lltKind = LltKind::CoLocated;
    base.predictorKind = PredictorKind::Llp;
    const auto workloads = benchWorkloads();

    std::cout << "Ablation: LLP table size (per core)\n";

    TextTable table("LLP table-size sweep (geometric means over " +
                    std::to_string(workloads.size()) + " workloads)");
    table.setHeader({"Entries/core", "Storage/core", "Gmean speedup",
                     "Mean accuracy%"});

    // Flatten (entries x workload x {baseline, cameo}) into one sweep.
    const std::vector<std::uint32_t> sizes{1, 16, 64, 256, 1024, 4096};
    std::vector<SweepJob> jobs;
    jobs.reserve(sizes.size() * workloads.size() * 2);
    for (const std::uint32_t entries : sizes) {
        SystemConfig config = base;
        config.llpTableEntries = entries;
        for (const auto &wl : workloads) {
            const std::string prefix =
                std::to_string(entries) + "/" + wl.name;
            jobs.push_back({prefix + "/baseline", [config, wl] {
                                return runWorkload(
                                    config, OrgKind::Baseline, wl);
                            }});
            jobs.push_back({prefix + "/CAMEO", [config, wl] {
                                return runWorkload(config, OrgKind::Cameo,
                                                   wl);
                            }});
        }
    }
    const std::vector<RunResult> results = runSweep(std::move(jobs));

    for (std::size_t s = 0; s < sizes.size(); ++s) {
        std::vector<double> speedups, accuracies;
        for (std::size_t w = 0; w < workloads.size(); ++w) {
            const std::size_t slot = (s * workloads.size() + w) * 2;
            const RunResult &b = results[slot];
            const RunResult &r = results[slot + 1];
            speedups.push_back(
                speedup(static_cast<double>(b.execTime),
                        static_cast<double>(r.execTime)));
            accuracies.push_back(100.0 * r.llpAccuracy);
        }
        table.addRow({TextTable::cell(std::uint64_t{sizes[s]}),
                      std::to_string(sizes[s] * 2 / 8) + " B",
                      TextTable::cell(geometricMean(speedups)),
                      TextTable::cell(arithmeticMean(accuracies), 1)});
    }
    table.print(std::cout);
    return 0;
}
