/**
 * @file
 * Ablation: DRAM refresh. Table I does not specify refresh parameters,
 * so the reproduction's default leaves refresh unmodelled; this bench
 * quantifies what DDR3-class refresh (tREFI 7.8us, tRFC 350ns — a
 * ~4.5% duty cycle) does to the headline comparison.
 */

#include <iostream>

#include "bench_common.hh"

int
main()
{
    using namespace cameo;
    using namespace cameo::bench;

    const SystemConfig plain = benchConfig();

    SystemConfig refreshed = plain;
    refreshed.offchip.tRefi = 6240; // 7.8us @ 800MHz bus
    refreshed.offchip.tRfc = 280;   // 350ns
    refreshed.stacked.tRefi = 12480; // 7.8us @ 1.6GHz bus
    refreshed.stacked.tRfc = 560;

    const std::vector<DesignPoint> points{
        point("Cache", OrgKind::AlloyCache, plain),
        point("Cache+refresh", OrgKind::AlloyCache, refreshed),
        point("CAMEO", OrgKind::Cameo, plain),
        point("CAMEO+refresh", OrgKind::Cameo, refreshed),
    };
    const auto workloads = benchWorkloads();

    std::cout << "Ablation: DDR3-class refresh on both memories\n"
              << "(baseline runs without refresh in both columns, so "
                 "the +refresh columns show the design under refresh "
                 "against the same reference)\n";
    const auto rows = runComparison(plain, points, workloads, &std::cout);
    printSpeedupTable("Refresh ablation", points, rows, std::cout);
    return 0;
}
