/**
 * @file
 * Figure 14: normalized power and energy-delay product (EDP) for
 * Cache, TLM-Static, TLM-Dynamic, and CAMEO, using the Section VI-C
 * activity-based model.
 *
 * Paper: power — Cache +14%, CAMEO +37%, TLM-Dynamic +51%;
 * EDP — Cache -4%, TLM-Static -21%, CAMEO -49% (lower is better).
 */

#include <iostream>
#include <map>

#include "bench_common.hh"
#include "energy/power_model.hh"
#include "stats/table.hh"
#include "util/math.hh"

int
main()
{
    using namespace cameo;
    using namespace cameo::bench;

    const SystemConfig config = benchConfig();
    const std::vector<DesignPoint> points{
        point("Cache", OrgKind::AlloyCache, config),
        point("TLM-Static", OrgKind::TlmStatic, config),
        point("TLM-Dynamic", OrgKind::TlmDynamic, config),
        point("CAMEO", OrgKind::Cameo, config),
    };
    const auto workloads = benchWorkloads();

    std::cout << "Reproducing Figure 14: power and EDP normalized to "
                 "baseline\n";
    const auto rows = runComparison(config, points, workloads, &std::cout);

    std::map<std::size_t, std::vector<double>> power_all, edp_all;
    std::map<std::pair<std::size_t, WorkloadCategory>, std::vector<double>>
        power_cat, edp_cat;

    for (const auto &row : rows) {
        for (std::size_t i = 0; i < points.size(); ++i) {
            const RunResult &r = row.runs[i];
            EnergyInputs in;
            in.category = row.workload.category;
            in.timeRatio = static_cast<double>(r.execTime) /
                           static_cast<double>(row.baseline.execTime);
            in.offchipByteRatio =
                static_cast<double>(r.offchipBytes) /
                static_cast<double>(row.baseline.offchipBytes);
            in.stackedByteRatio =
                static_cast<double>(r.stackedBytes) /
                static_cast<double>(row.baseline.offchipBytes);
            in.storageByteRatio =
                row.baseline.storageBytes
                    ? static_cast<double>(r.storageBytes) /
                          static_cast<double>(row.baseline.storageBytes)
                    : 1.0;
            in.hasStacked = true;
            const double p = normalizedPower(in).total();
            const double e = normalizedEdp(in);
            power_all[i].push_back(p);
            edp_all[i].push_back(e);
            power_cat[{i, in.category}].push_back(p);
            edp_cat[{i, in.category}].push_back(e);
        }
    }

    TextTable table("Figure 14: Normalized power and EDP "
                    "(baseline = 1.00; EDP lower is better)");
    table.setHeader({"Design", "Power-Cap", "Power-Lat", "Power-All",
                     "EDP-Cap", "EDP-Lat", "EDP-All"});
    for (std::size_t i = 0; i < points.size(); ++i) {
        using WC = WorkloadCategory;
        table.addRow(
            {points[i].label,
             TextTable::cell(
                 arithmeticMean(power_cat[{i, WC::CapacityLimited}])),
             TextTable::cell(
                 arithmeticMean(power_cat[{i, WC::LatencyLimited}])),
             TextTable::cell(arithmeticMean(power_all[i])),
             TextTable::cell(
                 arithmeticMean(edp_cat[{i, WC::CapacityLimited}])),
             TextTable::cell(
                 arithmeticMean(edp_cat[{i, WC::LatencyLimited}])),
             TextTable::cell(arithmeticMean(edp_all[i]))});
    }
    table.print(std::cout);
    return 0;
}
