/**
 * @file
 * Trace-arena before/after study: the same multi-organization,
 * multi-config sweep with the arena cache off and on, at one and at
 * eight workers, plus a records/s microbenchmark of the three stream
 * sources (fresh generator, arena replay, mmap'd packed trace file).
 *
 * The sweep deliberately includes TLM-Oracle: without the arena every
 * oracle job generates its streams twice (page-heat pre-pass + run)
 * and re-profiles the heat histogram, so the arena's memoization is
 * visible exactly where real sweeps pay for it. The config axis varies
 * off-chip capacity, which does not enter GeneratorParams — all points
 * of one workload share one set of per-core arenas. Runs use a warmup
 * window of half the measured accesses: the direct path fast-forwards
 * by generating and discarding those records per job, while arena
 * replay jumps over them through the packed trace's checkpoint table.
 *
 * All four phases must produce bit-identical results; the bench exits
 * non-zero if any field of any run differs.
 *
 * Environment:
 *   CAMEO_BENCH_ACCESSES   accesses per core per run
 *   CAMEO_BENCH_WORKLOADS  comma-separated workload override
 *                          (default mcf,astar)
 *   CAMEO_BENCH_ARENA_OUT  output JSON path (default BENCH_arena.json)
 *   CAMEO_TRACE_ARENA_MB   arena cache cap; 0 turns the "on" phases
 *                          into plain generator runs (speedup ~1)
 *
 * Output: a stdout table plus BENCH_arena.json with per-phase wall
 * times, the jobs=1 and jobs=8 speedups, cache counters, and the
 * micro records/s figures, consumed by CI's arena-smoke artifact
 * upload and EXPERIMENTS.md's arena section.
 */

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hh"
#include "exp/stopwatch.hh"
#include "stats/table.hh"
#include "system/system.hh"
#include "trace/trace_arena.hh"
#include "trace/trace_file.hh"
#include "util/mmap_file.hh"

namespace
{

using namespace cameo;

/** One timed sweep execution. */
struct PhaseResult
{
    std::string label;
    bool arena = false;
    unsigned jobs = 0;
    double wallSeconds = 0.0;
    std::vector<RunResult> results;
};

/** One micro-benchmark row: how fast a source refills. */
struct MicroResult
{
    std::string source;
    std::uint64_t records = 0;
    double seconds = 0.0;

    double nsPerRecord() const
    {
        return records > 0 ? 1e9 * seconds / static_cast<double>(records)
                           : 0.0;
    }
    double recordsPerSecond() const
    {
        return seconds > 0.0 ? static_cast<double>(records) / seconds
                             : 0.0;
    }
};

bool
sameResult(const RunResult &a, const RunResult &b)
{
    return a.execTime == b.execTime && a.instructions == b.instructions &&
           a.accesses == b.accesses && a.l3Hits == b.l3Hits &&
           a.l3Misses == b.l3Misses && a.stackedBytes == b.stackedBytes &&
           a.offchipBytes == b.offchipBytes &&
           a.majorFaults == b.majorFaults &&
           a.minorFaults == b.minorFaults &&
           a.servicedStacked == b.servicedStacked &&
           a.servicedOffchip == b.servicedOffchip && a.swaps == b.swaps &&
           a.llpCases == b.llpCases &&
           a.pageMigrations == b.pageMigrations;
}

/**
 * Run the full (workload x org x capacity) matrix once. The cache is
 * cleared first, so every arena-on phase pays its own recording cost —
 * the measured speedup includes materialization, not just replay.
 */
PhaseResult
runPhase(const std::vector<WorkloadProfile> &workloads,
         const std::vector<std::pair<std::string, OrgKind>> &orgs,
         const std::vector<std::uint64_t> &offchip_mb,
         const SystemConfig &base, bool arena, unsigned jobs)
{
    TraceArenaCache::instance().clear();

    std::vector<SystemConfig> configs;
    configs.reserve(offchip_mb.size());
    for (const std::uint64_t mb : offchip_mb) {
        SystemConfig config = base;
        config.offchipBytes = mb << 20;
        config.useTraceArena = arena;
        configs.push_back(config);
    }

    std::vector<SweepJob> sweep;
    sweep.reserve(workloads.size() * orgs.size() * configs.size());
    for (const WorkloadProfile &wl : workloads) {
        for (const auto &org : orgs) {
            for (std::size_t c = 0; c < configs.size(); ++c) {
                sweep.push_back(
                    {wl.name + "/" + org.first + "/" +
                         std::to_string(offchip_mb[c]) + "MB",
                     [&config = configs[c], kind = org.second, &wl] {
                         return runWorkload(config, kind, wl);
                     }});
            }
        }
    }

    SweepOptions options;
    options.jobs = jobs;
    options.traceArena = arena;
    SweepRunner runner(options);

    PhaseResult phase;
    phase.arena = arena;
    phase.jobs = jobs;
    phase.label = std::string(arena ? "arena" : "direct") + "/jobs=" +
                  std::to_string(jobs);
    phase.results = runner.run(std::move(sweep));
    phase.wallSeconds = runner.telemetry().wallSeconds;
    return phase;
}

/** Time @p source refilling @p records accesses in 4096-chunks. */
MicroResult
timeSource(AccessSource &source, const std::string &label,
           std::uint64_t records)
{
    std::vector<Access> buf(4096);
    // Warm the source (first-touch allocation, page-in).
    source.refill(buf.data(), buf.size());

    MicroResult micro;
    micro.source = label;
    micro.records = records;
    std::uint64_t sink = 0;
    Stopwatch watch;
    std::uint64_t left = records;
    while (left > 0) {
        const std::size_t n = static_cast<std::size_t>(
            std::min<std::uint64_t>(left, buf.size()));
        source.refill(buf.data(), n);
        sink += buf[n - 1].vaddr;
        left -= n;
    }
    micro.seconds = watch.seconds();
    if (sink == 0xdeadbeef) // Defeat dead-code elimination.
        std::cerr << "";
    return micro;
}

} // namespace

int
main()
{
    using namespace cameo::bench;

    SystemConfig base = benchConfig();
    base.warmupAccessesPerCore = base.accessesPerCore / 2;

    const char *out_env = std::getenv("CAMEO_BENCH_ARENA_OUT");
    const std::string out_path =
        out_env != nullptr ? out_env : "BENCH_arena.json";

    // One capacity-limited and one latency-limited workload keep the
    // default run short while exercising both stream shapes.
    std::vector<WorkloadProfile> workloads;
    if (std::getenv("CAMEO_BENCH_WORKLOADS") != nullptr) {
        workloads = benchWorkloads();
    } else {
        for (const char *name : {"mcf", "astar"})
            workloads.push_back(*findWorkload(name));
    }

    // Baseline (generation-bound) plus TLM-Oracle (generates each
    // stream twice and profiles page heat — the arena's best case).
    const std::vector<std::pair<std::string, OrgKind>> orgs{
        {"Baseline", OrgKind::Baseline},
        {"TLM-Oracle", OrgKind::TlmOracle},
    };
    const std::vector<std::uint64_t> offchip_mb{24, 32, 48};
    const unsigned kParallelJobs = 8;

    std::cout << "Trace-arena sweep study: "
              << workloads.size() * orgs.size() * offchip_mb.size()
              << " runs (" << workloads.size() << " workloads x "
              << orgs.size() << " orgs x " << offchip_mb.size()
              << " off-chip capacities), " << base.accessesPerCore
              << " accesses (+" << base.warmupAccessesPerCore
              << " warmup) x " << base.numCores << " cores\n"
              << "arena cache cap: "
              << TraceArenaCache::instance().capBytes() / (1024 * 1024)
              << " MB\n\n";

    // Phase order keeps each arena-on phase paying its own recording.
    std::vector<PhaseResult> phases;
    phases.push_back(
        runPhase(workloads, orgs, offchip_mb, base, false, 1));
    phases.push_back(
        runPhase(workloads, orgs, offchip_mb, base, false, kParallelJobs));
    phases.push_back(
        runPhase(workloads, orgs, offchip_mb, base, true, kParallelJobs));
    const TraceArenaStats arena_stats = TraceArenaCache::instance().stats();
    phases.push_back(
        runPhase(workloads, orgs, offchip_mb, base, true, 1));

    // Every phase must reproduce the first bit-for-bit.
    bool identical = true;
    for (const PhaseResult &phase : phases) {
        if (phase.results.size() != phases[0].results.size()) {
            identical = false;
            break;
        }
        for (std::size_t i = 0; i < phase.results.size(); ++i) {
            if (!sameResult(phase.results[i], phases[0].results[i])) {
                std::cerr << "error: " << phase.label << " run " << i
                          << " (" << phase.results[i].workload << "/"
                          << phase.results[i].orgName
                          << ") differs from " << phases[0].label << "\n";
                identical = false;
            }
        }
    }

    TextTable table("Sweep wall-clock by phase");
    table.setHeader({"Phase", "Jobs", "Wall (s)", "Speedup"});
    const auto wallOf = [&](bool arena, unsigned jobs) {
        for (const PhaseResult &p : phases) {
            if (p.arena == arena && p.jobs == jobs)
                return p.wallSeconds;
        }
        return 0.0;
    };
    for (const PhaseResult &phase : phases) {
        const double direct = wallOf(false, phase.jobs);
        table.addRow({phase.arena ? "arena" : "direct",
                      TextTable::cell(std::uint64_t{phase.jobs}),
                      TextTable::cell(phase.wallSeconds, 3),
                      phase.arena && phase.wallSeconds > 0.0
                          ? TextTable::cell(direct / phase.wallSeconds) +
                                "x"
                          : std::string("-")});
    }
    table.print(std::cout);

    const double speedup1 =
        wallOf(true, 1) > 0.0 ? wallOf(false, 1) / wallOf(true, 1) : 0.0;
    const double speedup8 = wallOf(true, kParallelJobs) > 0.0
                                ? wallOf(false, kParallelJobs) /
                                      wallOf(true, kParallelJobs)
                                : 0.0;
    std::cout << "\nspeedup: " << speedup1 << "x at jobs=1, " << speedup8
              << "x at jobs=" << kParallelJobs << " ("
              << (identical ? "all phases bit-identical"
                            : "RESULTS DIVERGED")
              << ")\n"
              << "arena: " << arena_stats.recordings << " recordings, "
              << arena_stats.hits << " hits, " << arena_stats.heatMisses
              << " heat profiles, " << arena_stats.heatHits
              << " heat hits, " << arena_stats.residentBytes / 1024
              << " KiB resident\n\n";

    // Micro: raw refill throughput of the three stream sources over
    // the same workload/params/seed.
    const WorkloadProfile &micro_wl = workloads.front();
    const GeneratorParams micro_gp = base.generatorParamsFor(micro_wl);
    const std::uint64_t kMicroArena = 1'000'000;  // arena records
    const std::uint64_t kMicroReplay = 4'000'000; // records timed

    std::vector<MicroResult> micro;
    {
        SyntheticGenerator gen(micro_wl, micro_gp, base.seed);
        micro.push_back(timeSource(gen, "generator", kMicroReplay));
    }
    const auto arena =
        TraceArena::record(micro_wl, micro_gp, base.seed, kMicroArena);
    {
        ArenaReplaySource replay(arena);
        micro.push_back(timeSource(replay, "arena-replay", kMicroReplay));
    }
    {
        const std::string trace_path =
            (std::filesystem::temp_directory_path() /
             "cameo_perf_arena.ctp")
                .string();
        std::string error;
        if (!writePackedTraceFile(trace_path, arena->view(), "perf_arena",
                                  &error)) {
            std::cerr << "error: " << error << "\n";
            return 1;
        }
        TraceReader reader(trace_path, TraceMode::Auto);
        micro.push_back(timeSource(
            reader,
            reader.zeroCopy() ? "trace-file-mmap" : "trace-file-loaded",
            kMicroReplay));
        std::remove(trace_path.c_str());
    }

    TextTable micro_table("Stream source refill throughput");
    micro_table.setHeader({"Source", "ns/record", "Mrecords/s"});
    for (const MicroResult &m : micro) {
        micro_table.addRow({m.source, TextTable::cell(m.nsPerRecord(), 1),
                            TextTable::cell(
                                m.recordsPerSecond() / 1e6, 1)});
    }
    micro_table.print(std::cout);

    std::ofstream out(out_path, std::ios::trunc);
    if (!out) {
        std::cerr << "error: cannot write " << out_path << "\n";
        return 1;
    }
    out << "{\n"
        << "  \"bench\": \"perf_arena\",\n"
        << "  \"accesses_per_core\": " << base.accessesPerCore << ",\n"
        << "  \"warmup_accesses_per_core\": "
        << base.warmupAccessesPerCore << ",\n"
        << "  \"num_cores\": " << base.numCores << ",\n"
        << "  \"workloads\": [";
    for (std::size_t i = 0; i < workloads.size(); ++i)
        out << (i ? ", " : "") << "\"" << workloads[i].name << "\"";
    out << "],\n  \"orgs\": [";
    for (std::size_t i = 0; i < orgs.size(); ++i)
        out << (i ? ", " : "") << "\"" << orgs[i].first << "\"";
    out << "],\n  \"offchip_mb\": [";
    for (std::size_t i = 0; i < offchip_mb.size(); ++i)
        out << (i ? ", " : "") << offchip_mb[i];
    out << "],\n"
        << "  \"bit_identical\": " << (identical ? "true" : "false")
        << ",\n"
        << "  \"phases\": [\n";
    for (std::size_t i = 0; i < phases.size(); ++i) {
        char line[160];
        std::snprintf(line, sizeof(line),
                      "    {\"arena\": %s, \"jobs\": %u, "
                      "\"wall_seconds\": %.4f}%s\n",
                      phases[i].arena ? "true" : "false", phases[i].jobs,
                      phases[i].wallSeconds,
                      i + 1 < phases.size() ? "," : "");
        out << line;
    }
    char tail[640];
    std::snprintf(
        tail, sizeof(tail),
        "  ],\n"
        "  \"speedup_jobs1\": %.3f,\n"
        "  \"speedup_jobs8\": %.3f,\n"
        "  \"arena_stats\": {\"recordings\": %llu, \"hits\": %llu, "
        "\"disk_loads\": %llu, \"evictions\": %llu, "
        "\"resident_bytes\": %llu, \"heat_hits\": %llu, "
        "\"heat_misses\": %llu},\n"
        "  \"micro\": [\n",
        speedup1, speedup8,
        static_cast<unsigned long long>(arena_stats.recordings),
        static_cast<unsigned long long>(arena_stats.hits),
        static_cast<unsigned long long>(arena_stats.diskLoads),
        static_cast<unsigned long long>(arena_stats.evictions),
        static_cast<unsigned long long>(arena_stats.residentBytes),
        static_cast<unsigned long long>(arena_stats.heatHits),
        static_cast<unsigned long long>(arena_stats.heatMisses));
    out << tail;
    for (std::size_t i = 0; i < micro.size(); ++i) {
        char line[224];
        std::snprintf(line, sizeof(line),
                      "    {\"source\": \"%s\", \"records\": %llu, "
                      "\"ns_per_record\": %.2f, "
                      "\"records_per_second\": %.0f}%s\n",
                      micro[i].source.c_str(),
                      static_cast<unsigned long long>(micro[i].records),
                      micro[i].nsPerRecord(), micro[i].recordsPerSecond(),
                      i + 1 < micro.size() ? "," : "");
        out << line;
    }
    out << "  ]\n}\n";
    out.close();
    std::cout << "\nwrote " << out_path << "\n";
    return identical && out.good() ? 0 : 1;
}
