/**
 * @file
 * Figure 12: CAMEO (Co-Located LLT) with no prediction (SAM), the
 * Line Location Predictor (LLP), and a perfect predictor.
 *
 * Paper: SAM +74% (printed as "no prediction 68%" in the figure
 * caption for a different workload cut), LLP +78%, Perfect +80% —
 * i.e. the LLP recovers most of the serialization loss and lands
 * within ~2% of perfect.
 */

#include <iostream>

#include "bench_common.hh"

int
main()
{
    using namespace cameo;
    using namespace cameo::bench;

    SystemConfig base = benchConfig();
    base.lltKind = LltKind::CoLocated;

    SystemConfig sam = base;
    sam.predictorKind = PredictorKind::Sam;
    SystemConfig llp = base;
    llp.predictorKind = PredictorKind::Llp;
    SystemConfig perfect = base;
    perfect.predictorKind = PredictorKind::Perfect;

    const std::vector<DesignPoint> points{
        point("SAM(no-pred)", OrgKind::Cameo, sam),
        point("LLP", OrgKind::Cameo, llp),
        point("Perfect", OrgKind::Cameo, perfect),
    };
    const auto workloads = benchWorkloads();

    std::cout << "Reproducing Figure 12: CAMEO speedup with location "
                 "prediction\n";
    const auto rows = runComparison(base, points, workloads, &std::cout);
    printSpeedupTable("Figure 12: Location prediction", points, rows,
                      std::cout);
    return 0;
}
