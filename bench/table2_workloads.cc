/**
 * @file
 * Table II: workload characteristics — the calibration check. For each
 * benchmark profile we run the baseline system and report the measured
 * L3 MPKI and the scaled footprint against the paper's Table II
 * targets, plus the behaviour knobs the generator uses.
 */

#include <iostream>

#include "bench_common.hh"
#include "stats/table.hh"

int
main()
{
    using namespace cameo;
    using namespace cameo::bench;

    const SystemConfig config = benchConfig();
    const auto workloads = benchWorkloads();

    std::cout << "Reproducing Table II: workload characteristics "
                 "(measured on the baseline system)\n";

    TextTable table("Table II: Workload characteristics (scaled x1/" +
                    std::to_string(static_cast<int>(config.scaleFactor)) +
                    ")");
    table.setHeader({"Workload", "Category", "Paper MPKI", "Meas MPKI",
                     "Paper footprint", "Scaled footprint",
                     "Lines/page", "Faults"});
    std::vector<SweepJob> jobs;
    jobs.reserve(workloads.size());
    for (const auto &wl : workloads) {
        jobs.push_back({wl.name + "/baseline", [&config, wl] {
                            return runWorkload(config, OrgKind::Baseline,
                                               wl);
                        }});
    }
    const std::vector<RunResult> results = runSweep(std::move(jobs));

    for (std::size_t i = 0; i < workloads.size(); ++i) {
        const WorkloadProfile &wl = workloads[i];
        const RunResult &r = results[i];
        const GeneratorParams gp = config.generatorParamsFor(wl);
        table.addRow(
            {wl.name, categoryName(wl.category),
             TextTable::cell(wl.paperMpki, 1), TextTable::cell(r.mpki(), 1),
             TextTable::cell(wl.paperFootprintGb, 1) + " GB",
             TextTable::cell(static_cast<double>(gp.footprintBytes) *
                                 config.numCores / (1 << 20),
                             1) +
                 " MB",
             TextTable::cell(std::uint64_t{wl.linesPerPage}),
             TextTable::cell(r.majorFaults)});
    }
    std::cout << "\n";
    table.print(std::cout);
    return 0;
}
