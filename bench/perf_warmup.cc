/**
 * @file
 * Switchable-fidelity warmup bench: wall-clock speedup of functional
 * fast-forward warmup over detailed warmup on a warmup-heavy sweep.
 *
 * Like perf_hotpath, this bench measures the *simulator*, not the
 * simulated machine. Each run spends warmupAccessesPerCore warming
 * architectural state (10x the measured region by default) and then
 * simulates the measured region in detailed mode. The only variable is
 * the warmup policy: WarmupPolicy::Functional takes the no-timing fast
 * path, WarmupPolicy::Detailed runs the full timing model. Both end
 * the warmup in byte-identical architectural state (test_fidelity.cc
 * proves this per organization via snapshot identity), so the measured
 * region's statistics are equal and the wall-clock ratio is a pure
 * simulator speedup. A full-registry equality check on a small 1-core
 * run is repeated here so the committed JSON carries its own evidence.
 *
 * The default sweep is deliberately warmup-heavy and contention-heavy:
 * queued timing with 24 cores makes detailed warmup pay for queue
 * occupancy, bank conflicts, and kernel events that the functional
 * path skips, while streaming workloads keep the functional path's own
 * obligatory work (LLT swaps, LLP training, paging) honest.
 *
 * Environment:
 *   CAMEO_BENCH_ACCESSES     measured accesses per core (default 100K)
 *   CAMEO_BENCH_WARMUP       warmup accesses per core (default 1M)
 *   CAMEO_BENCH_CORES        simulated cores (default 24)
 *   CAMEO_BENCH_REPS         timed repetitions per policy; best rep
 *                            is reported (default 1)
 *   CAMEO_BENCH_WORKLOADS    comma-separated override; default
 *                            libquantum,leslie3d,lbm
 *   CAMEO_BENCH_WARMUP_OUT   output JSON path
 *                            (default BENCH_warmup.json)
 *
 * Output: a stdout table plus a JSON file with one record per
 * workload and the aggregate speedup, consumed by CI's perf-smoke
 * artifact upload and EXPERIMENTS.md's warmup section.
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "exp/stopwatch.hh"
#include "system/system.hh"

namespace
{

using namespace cameo;

/** One workload's functional-vs-detailed warmup comparison. */
struct WarmupResult
{
    std::string workload;
    double functionalSeconds = 0.0;
    double detailedSeconds = 0.0;
    std::uint64_t warmupAccesses = 0;   ///< aggregate, all cores
    std::uint64_t measuredAccesses = 0; ///< aggregate, all cores

    double speedup() const
    {
        return functionalSeconds > 0.0
                   ? detailedSeconds / functionalSeconds
                   : 0.0;
    }
};

/** Best-of-reps wall-clock for one (config, workload) run. */
double
timeRuns(const SystemConfig &config, const WorkloadProfile &workload,
         std::uint64_t reps, RunResult *last)
{
    double best = 0.0;
    for (std::uint64_t rep = 0; rep < reps; ++rep) {
        Stopwatch watch;
        const RunResult run = runWorkload(config, OrgKind::Cameo, workload);
        const double secs = watch.seconds();
        if (rep == 0 || secs < best)
            best = secs;
        if (last != nullptr)
            *last = run;
    }
    return best;
}

/**
 * Differential evidence for the committed JSON: a small 1-core run
 * must produce an identical stats registry (every counter and
 * distribution, timing included — the switch drains in-flight
 * transactions and resets timing in both policies) under functional
 * and detailed warmup.
 */
bool
statsEqualCheck(const SystemConfig &base, const WorkloadProfile &workload)
{
    SystemConfig small = base;
    small.numCores = 1;
    small.accessesPerCore = 3'000;
    small.warmupAccessesPerCore = 30'000;

    std::string dumps[2];
    const WarmupPolicy policies[2] = {WarmupPolicy::Functional,
                                      WarmupPolicy::Detailed};
    for (int i = 0; i < 2; ++i) {
        SystemConfig config = small;
        config.warmupPolicy = policies[i];
        System system(config, OrgKind::Cameo, workload);
        system.run();
        std::ostringstream os;
        system.stats().dumpJson(os);
        dumps[i] = os.str();
    }
    return !dumps[0].empty() && dumps[0] == dumps[1];
}

} // namespace

int
main()
{
    using namespace cameo::bench;

    SystemConfig config = benchConfig();
    config.timingMode = TimingMode::Queued;
    // Warmup-heavy defaults (10:1 warmup:measure) unless the shared
    // env overrides were given.
    if (std::getenv("CAMEO_BENCH_ACCESSES") == nullptr)
        config.accessesPerCore = 100'000;
    if (std::getenv("CAMEO_BENCH_WARMUP") == nullptr)
        config.warmupAccessesPerCore = 1'000'000;
    std::string error;
    config.numCores = 24;
    if (const auto cores = envUint("CAMEO_BENCH_CORES", &error))
        config.numCores = static_cast<std::uint32_t>(*cores);
    if (!error.empty())
        std::cerr << "warning: " << error << " (using default "
                  << config.numCores << ")\n";

    error.clear();
    std::uint64_t reps = 1;
    if (const auto v = envUint("CAMEO_BENCH_REPS", &error))
        reps = *v;
    if (!error.empty())
        std::cerr << "warning: " << error << " (using default " << reps
                  << ")\n";
    if (reps == 0)
        reps = 1;

    const char *out_env = std::getenv("CAMEO_BENCH_WARMUP_OUT");
    const std::string out_path =
        out_env != nullptr ? out_env : "BENCH_warmup.json";

    // Streaming, bandwidth-heavy Table-IV workloads: detailed warmup
    // pays full queued-timing freight while the functional path still
    // performs every LLT swap and page fault they generate.
    std::vector<WorkloadProfile> workloads;
    if (std::getenv("CAMEO_BENCH_WORKLOADS") != nullptr) {
        workloads = benchWorkloads();
    } else {
        for (const char *name : {"libquantum", "leslie3d", "lbm"})
            workloads.push_back(*findWorkload(name));
    }

    SystemConfig functional = config;
    functional.warmupPolicy = WarmupPolicy::Functional;
    SystemConfig detailed = config;
    detailed.warmupPolicy = WarmupPolicy::Detailed;

    std::cout << "Switchable-fidelity warmup: functional vs detailed "
                 "warmup wall-clock\n"
              << "(" << config.warmupAccessesPerCore << " warmup + "
              << config.accessesPerCore << " measured accesses x "
              << config.numCores << " cores, queued timing, CAMEO, "
              << "best of " << reps << " rep(s))\n\n";

    std::vector<WarmupResult> results;
    for (const WorkloadProfile &workload : workloads) {
        WarmupResult r;
        r.workload = workload.name;
        // Record the trace arena once (untimed) so both timed policies
        // replay the identical packed stream.
        runWorkload(functional, OrgKind::Cameo, workload);

        RunResult run;
        r.functionalSeconds = timeRuns(functional, workload, reps, &run);
        r.warmupAccesses = run.warmupAccesses;
        r.measuredAccesses = run.accesses;
        r.detailedSeconds = timeRuns(detailed, workload, reps, nullptr);

        std::printf("  %-12s functional %7.3f s  detailed %7.3f s  "
                    "speedup %5.2fx\n",
                    r.workload.c_str(), r.functionalSeconds,
                    r.detailedSeconds, r.speedup());
        std::fflush(stdout);
        results.push_back(std::move(r));
    }

    double funcTotal = 0.0;
    double detTotal = 0.0;
    for (const WarmupResult &r : results) {
        funcTotal += r.functionalSeconds;
        detTotal += r.detailedSeconds;
    }
    const double aggregate = funcTotal > 0.0 ? detTotal / funcTotal : 0.0;
    std::printf("  %-12s functional %7.3f s  detailed %7.3f s  "
                "speedup %5.2fx\n",
                "AGGREGATE", funcTotal, detTotal, aggregate);

    const bool stats_equal = statsEqualCheck(config, workloads.front());
    std::printf("\n  1-core stats identity (functional == detailed "
                "warmup): %s\n",
                stats_equal ? "PASS" : "FAIL");

    std::ofstream out(out_path, std::ios::trunc);
    if (!out) {
        std::cerr << "error: cannot write " << out_path << "\n";
        return 1;
    }
    out << "{\n"
        << "  \"bench\": \"perf_warmup\",\n"
        << "  \"org\": \"CAMEO\",\n"
        << "  \"timing\": \"queued\",\n"
        << "  \"num_cores\": " << config.numCores << ",\n"
        << "  \"warmup_accesses_per_core\": "
        << config.warmupAccessesPerCore << ",\n"
        << "  \"measured_accesses_per_core\": " << config.accessesPerCore
        << ",\n"
        << "  \"reps\": " << reps << ",\n"
        << "  \"stats_equal\": " << (stats_equal ? "true" : "false")
        << ",\n"
        << "  \"aggregate_speedup\": ";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.4f", aggregate);
    out << buf << ",\n  \"results\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const WarmupResult &r = results[i];
        char line[384];
        std::snprintf(
            line, sizeof(line),
            "    {\"workload\": \"%s\", "
            "\"warmup_accesses\": %llu, \"measured_accesses\": %llu, "
            "\"functional_seconds\": %.6f, \"detailed_seconds\": %.6f, "
            "\"speedup\": %.4f}%s\n",
            r.workload.c_str(),
            static_cast<unsigned long long>(r.warmupAccesses),
            static_cast<unsigned long long>(r.measuredAccesses),
            r.functionalSeconds, r.detailedSeconds, r.speedup(),
            i + 1 < results.size() ? "," : "");
        out << line;
    }
    out << "  ]\n}\n";
    out.close();
    std::cout << "\nwrote " << out_path << "\n";
    return out.good() && stats_equal ? 0 : 1;
}
