/**
 * @file
 * Table IV: bandwidth usage (bytes transferred) in stacked DRAM,
 * off-chip DRAM, and storage, normalized to the baseline, averaged per
 * workload category.
 *
 * Paper (Capacity-Limited / Latency-Limited):
 *   Cache   stacked 1.93/1.76, off-chip 0.55/0.29, storage 1.00
 *   TLM-S   stacked 0.26/0.25, off-chip 0.74/0.75, storage 0.78
 *   TLM-D   stacked 2.54/1.95, off-chip 2.19/1.10, storage 0.78
 *   CAMEO   stacked 1.89/1.51, off-chip 1.07/0.47, storage 0.79
 */

#include <iostream>
#include <map>

#include "bench_common.hh"
#include "stats/table.hh"
#include "util/math.hh"

int
main()
{
    using namespace cameo;
    using namespace cameo::bench;

    const SystemConfig config = benchConfig();
    const std::vector<DesignPoint> points{
        point("Cache", OrgKind::AlloyCache, config),
        point("TLM-Static", OrgKind::TlmStatic, config),
        point("TLM-Dynamic", OrgKind::TlmDynamic, config),
        point("CAMEO", OrgKind::Cameo, config),
    };
    const auto workloads = benchWorkloads();

    std::cout << "Reproducing Table IV: bandwidth usage normalized to "
                 "baseline\n";
    const auto rows = runComparison(config, points, workloads, &std::cout);

    // Average ratios per category (arithmetic mean of per-workload
    // ratios, as the paper tabulates).
    struct Acc
    {
        std::vector<double> stacked, offchip, storage;
    };
    std::map<std::pair<std::size_t, WorkloadCategory>, Acc> acc;
    for (const auto &row : rows) {
        for (std::size_t i = 0; i < points.size(); ++i) {
            const RunResult &r = row.runs[i];
            Acc &a = acc[{i, row.workload.category}];
            const double base_off =
                static_cast<double>(row.baseline.offchipBytes);
            a.stacked.push_back(static_cast<double>(r.stackedBytes) /
                                base_off);
            a.offchip.push_back(static_cast<double>(r.offchipBytes) /
                                base_off);
            if (row.baseline.storageBytes > 0) {
                a.storage.push_back(
                    static_cast<double>(r.storageBytes) /
                    static_cast<double>(row.baseline.storageBytes));
            }
        }
    }

    TextTable table("Table IV: Bandwidth usage (normalized to baseline "
                    "off-chip / storage bytes)");
    table.setHeader({"Design", "Cap-Stacked", "Cap-Offchip", "Cap-Storage",
                     "Lat-Stacked", "Lat-Offchip"});
    for (std::size_t i = 0; i < points.size(); ++i) {
        const Acc &cap =
            acc[{i, WorkloadCategory::CapacityLimited}];
        const Acc &lat =
            acc[{i, WorkloadCategory::LatencyLimited}];
        const auto mean_or = [](const std::vector<double> &v) {
            return v.empty() ? 0.0 : arithmeticMean(v);
        };
        table.addRow({points[i].label,
                      TextTable::cell(mean_or(cap.stacked)) + "x",
                      TextTable::cell(mean_or(cap.offchip)) + "x",
                      TextTable::cell(mean_or(cap.storage)) + "x",
                      TextTable::cell(mean_or(lat.stacked)) + "x",
                      TextTable::cell(mean_or(lat.offchip)) + "x"});
    }
    table.print(std::cout);
    return 0;
}
