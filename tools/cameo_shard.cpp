/**
 * @file
 * cameo-shard: multi-process sharded sweep runner (DESIGN.md §15).
 *
 * Runs a workload × organization sweep matrix either in-process (the
 * reference mode) or as a fleet of worker subprocesses, and writes the
 * merged results as deterministic CSV — byte-identical between the two
 * modes and across any shard count:
 *
 *   cameo-shard --workloads=milc,mcf --orgs=cameo,cache          # in-process
 *   cameo-shard --workloads=milc,mcf --orgs=cameo,cache --shards=4
 *
 * Flags:
 *   --workloads   comma-separated Table II benchmark names (default milc)
 *   --orgs        comma-separated organization names         (default cameo)
 *   --accesses    L3-level accesses per core                 (default 200000)
 *   --cores       number of cores                            (default 8)
 *   --stacked-mb  stacked DRAM capacity in MB                (default 8)
 *   --offchip-mb  off-chip DRAM capacity in MB               (default 24)
 *   --seed        RNG seed                                   (default 42)
 *   --timing      blocking|queued memory pipeline            (default blocking)
 *   --warmup      warmup accesses per core (see cameo_sim)   (default 0)
 *   --fidelity    skip|functional|detailed warmup fidelity   (default skip)
 *   --warm-prefix warm-start prefix accesses per core; jobs
 *                 fast-forward through a shared cached prefix
 *                 snapshot (exp/warm_start.hh)               (default 0 = off)
 *   --shards      worker process count; 0 runs the sweep
 *                 in-process (reference mode). Also the
 *                 CAMEO_SHARDS environment variable; the flag
 *                 wins                                       (default 0)
 *   --jobs        sweep threads for the in-process mode and
 *                 per worker (default 1: determinism needs no
 *                 thread pinning, processes are the axis)
 *   --trace-cache-dir  shared packed-trace directory: the whole fleet
 *                 records each workload stream once (also
 *                 CAMEO_TRACE_CACHE_DIR)
 *   --warm-cache-dir   shared warm-start checkpoint directory: the
 *                 whole fleet simulates each warm prefix once (also
 *                 CAMEO_WARM_CACHE_DIR)
 *   --out         CSV output path (default: stdout)
 *   --summary-json     also write a JSON summary (deterministic
 *                 aggregates only — no wall-clock, no shard count)
 *   --progress    stream per-job completion lines to stderr
 *
 * Worker plumbing (normally set by the orchestrator, documented for
 * debugging): --worker turns this invocation into a shard worker that
 * runs its slice (--shard-index, also CAMEO_SHARD_INDEX) of the same
 * job list and streams framed results to the fd in
 * CAMEO_SHARD_RESULT_FD (default: stdout).
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "exp/sweep.hh"
#include "exp/warm_start.hh"
#include "shard/fleet.hh"
#include "system/system.hh"
#include "trace/trace_arena.hh"
#include "trace/workloads.hh"
#include "util/cli.hh"
#include "util/env.hh"

namespace
{

using namespace cameo;

std::vector<std::string>
splitCsv(const std::string &text)
{
    std::vector<std::string> out;
    std::string item;
    std::istringstream in(text);
    while (std::getline(in, item, ',')) {
        if (!item.empty())
            out.push_back(item);
    }
    return out;
}

/** Env-default for a flag: strictly parsed, malformed values warn. */
std::uint64_t
envDefault(const char *name, std::uint64_t fallback)
{
    std::string error;
    const std::optional<std::uint64_t> value = envUint(name, &error);
    if (!error.empty()) {
        std::cerr << "warning: " << error << " (using default "
                  << fallback << ")\n";
    }
    return value.value_or(fallback);
}

/** The deterministic JSON summary: aggregates of the merged results. */
void
writeSummaryJson(std::ostream &os, const std::vector<RunResult> &results)
{
    RunResult total;
    bool first = true;
    for (const RunResult &r : results) {
        if (first) {
            total = r;
            first = false;
        } else {
            total.merge(r);
        }
    }
    char accuracy[40];
    std::snprintf(accuracy, sizeof(accuracy), "%.17g",
                  total.llpAccuracy);
    os << "{\n"
       << "  \"tool\": \"cameo-shard\",\n"
       << "  \"jobs\": " << results.size() << ",\n"
       << "  \"aggregate\": {\n"
       << "    \"exec_time_max\": " << total.execTime << ",\n"
       << "    \"instructions\": " << total.instructions << ",\n"
       << "    \"accesses\": " << total.accesses << ",\n"
       << "    \"l3_hits\": " << total.l3Hits << ",\n"
       << "    \"l3_misses\": " << total.l3Misses << ",\n"
       << "    \"major_faults\": " << total.majorFaults << ",\n"
       << "    \"minor_faults\": " << total.minorFaults << ",\n"
       << "    \"serviced_stacked\": " << total.servicedStacked << ",\n"
       << "    \"serviced_offchip\": " << total.servicedOffchip << ",\n"
       << "    \"swaps\": " << total.swaps << ",\n"
       << "    \"page_migrations\": " << total.pageMigrations << ",\n"
       << "    \"llp_accuracy\": " << accuracy << "\n"
       << "  }\n"
       << "}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    const CliParser cli(argc, argv);

    // Parse every flag up front, in every mode, so a worker inheriting
    // the orchestrator's argv never warns about "unknown" output flags.
    const std::vector<std::string> workload_names =
        splitCsv(cli.getString("workloads", "milc"));
    const std::vector<std::string> org_names =
        splitCsv(cli.getString("orgs", "cameo"));
    const std::uint64_t accesses = cli.getUint("accesses", 200'000);
    const std::uint64_t cores = cli.getUint("cores", 8);
    const std::uint64_t stacked_mb = cli.getUint("stacked-mb", 8);
    const std::uint64_t offchip_mb = cli.getUint("offchip-mb", 24);
    const std::uint64_t seed = cli.getUint("seed", 42);
    const std::string timing = cli.getString("timing", "blocking");
    const std::uint64_t warmup = cli.getUint("warmup", 0);
    const std::string fidelity = cli.getString("fidelity", "");
    const std::uint64_t warm_prefix = cli.getUint("warm-prefix", 0);
    const unsigned shards = static_cast<unsigned>(
        cli.getUint("shards", envDefault("CAMEO_SHARDS", 0)));
    const unsigned shard_index = static_cast<unsigned>(cli.getUint(
        "shard-index", envDefault("CAMEO_SHARD_INDEX", 0)));
    const bool worker = cli.getBool("worker");
    const unsigned jobs =
        static_cast<unsigned>(cli.getUint("jobs", 1));
    const std::string trace_dir = cli.getString("trace-cache-dir", "");
    const std::string warm_dir = cli.getString("warm-cache-dir", "");
    const std::string out_path = cli.getString("out", "");
    const std::string summary_path = cli.getString("summary-json", "");
    const bool progress = cli.getBool("progress");

    for (const std::string &flag : cli.unknownFlags())
        std::cerr << "warning: unknown flag --" << flag << "\n";
    for (const std::string &err : cli.errors())
        std::cerr << "error: " << err << "\n";
    if (!cli.errors().empty())
        return EXIT_FAILURE;

    SystemConfig config = defaultConfig();
    config.accessesPerCore = accesses;
    config.numCores = static_cast<std::uint32_t>(cores);
    config.stackedBytes = stacked_mb << 20;
    config.offchipBytes = offchip_mb << 20;
    config.seed = seed;
    if (timing == "blocking")
        config.timingMode = TimingMode::Blocking;
    else if (timing == "queued")
        config.timingMode = TimingMode::Queued;
    else {
        std::cerr << "unknown --timing (blocking|queued)\n";
        return EXIT_FAILURE;
    }
    config.warmupAccessesPerCore = warmup;
    if (warmup != 0 && warmup >= accesses) {
        std::cerr << "error: --warmup must be smaller than "
                     "--accesses\n";
        return EXIT_FAILURE;
    }
    if (!fidelity.empty()) {
        if (fidelity == "skip")
            config.warmupPolicy = WarmupPolicy::Skip;
        else if (fidelity == "functional")
            config.warmupPolicy = WarmupPolicy::Functional;
        else if (fidelity == "detailed")
            config.warmupPolicy = WarmupPolicy::Detailed;
        else {
            std::cerr << "error: unknown --fidelity '" << fidelity
                      << "' (skip|functional|detailed)\n";
            return EXIT_FAILURE;
        }
    }
    if (warm_prefix != 0 &&
        warm_prefix * config.numCores >= config.accessesPerCore) {
        std::cerr << "error: --warm-prefix * --cores must leave slack "
                     "below --accesses\n";
        return EXIT_FAILURE;
    }

    // Shared warm assets: one packed-trace directory and one
    // warm-start checkpoint directory per fleet. Workers inherit both
    // flags through their argv, so every process points at the same
    // files and the per-file locks (util/fs_lock.hh) make exactly one
    // of them record each asset.
    if (!trace_dir.empty())
        TraceArenaCache::instance().setCacheDir(trace_dir);
    if (!warm_dir.empty())
        WarmStartCache::instance().setCacheDir(warm_dir);
    config.useTraceArena = org_names.size() > 1 || !trace_dir.empty();

    // The job matrix: workloads (outer) x organizations (inner), in
    // flag order. Every mode — in-process, orchestrator, worker —
    // derives the identical list from the identical flags.
    std::vector<OrgKind> kinds;
    kinds.reserve(org_names.size());
    for (const std::string &name : org_names) {
        const std::optional<OrgKind> kind = orgKindFromName(name);
        if (!kind) {
            std::cerr << "unknown --orgs entry \"" << name << "\"\n";
            return EXIT_FAILURE;
        }
        kinds.push_back(*kind);
    }
    std::vector<SweepJob> sweep_jobs;
    for (const std::string &wl_name : workload_names) {
        const WorkloadProfile *profile = findWorkload(wl_name);
        if (profile == nullptr) {
            std::cerr << "unknown --workloads entry \"" << wl_name
                      << "\"\n";
            return EXIT_FAILURE;
        }
        for (const OrgKind kind : kinds) {
            SweepJob job;
            job.label = std::string(profile->name) + "/" +
                        orgKindName(kind);
            job.run = [config, kind, profile, warm_prefix] {
                return warm_prefix != 0
                           ? runWorkloadWarmStarted(config, kind,
                                                    *profile,
                                                    warm_prefix)
                           : runWorkload(config, kind, *profile);
            };
            sweep_jobs.push_back(std::move(job));
        }
    }
    if (sweep_jobs.empty()) {
        std::cerr << "error: empty job matrix (--workloads/--orgs)\n";
        return EXIT_FAILURE;
    }

    if (worker)
        return runShardWorker(sweep_jobs, shard_index,
                              shards == 0 ? 1 : shards);

    std::vector<RunResult> results;
    if (shards == 0) {
        // In-process reference mode.
        ProgressReporter reporter(progress ? &std::cerr : nullptr);
        SweepOptions options;
        options.jobs = jobs;
        options.progress = progress ? &reporter : nullptr;
        results = SweepRunner(options).run(std::move(sweep_jobs));
    } else {
        ProgressReporter reporter(progress ? &std::cerr : nullptr);
        FleetOptions options;
        options.shards = shards;
        options.progress = progress ? &reporter : nullptr;
        options.workerCommand.assign(argv, argv + argc);
        options.workerCommand.push_back("--worker");
        options.workerCommand.push_back("--shards=" +
                                        std::to_string(shards));
        FleetOutcome outcome = runShardFleet(sweep_jobs.size(), options);
        if (!outcome.ok()) {
            for (const ShardFailure &f : outcome.failures) {
                std::cerr << "error: shard " << f.shard << ": "
                          << f.detail << "\n";
            }
            for (const std::size_t index : outcome.missing) {
                std::cerr << "error: no result for job " << index
                          << " (" << sweep_jobs[index].label << ")\n";
            }
            std::cerr << "error: fleet failed; no output written\n";
            return EXIT_FAILURE;
        }
        results = std::move(outcome.results);
        if (progress) {
            char wall[40];
            std::snprintf(wall, sizeof(wall), "%.2f",
                          outcome.wallSeconds);
            reporter.line("fleet: " + std::to_string(shards) +
                          " shards, " + std::to_string(results.size()) +
                          " jobs in " + wall + "s");
        }
    }

    if (out_path.empty()) {
        writeShardResultsCsv(std::cout, results);
    } else {
        std::ofstream out(out_path, std::ios::binary);
        if (!out) {
            std::cerr << "error: cannot write --out " << out_path
                      << "\n";
            return EXIT_FAILURE;
        }
        writeShardResultsCsv(out, results);
    }
    if (!summary_path.empty()) {
        std::ofstream out(summary_path, std::ios::binary);
        if (!out) {
            std::cerr << "error: cannot write --summary-json "
                      << summary_path << "\n";
            return EXIT_FAILURE;
        }
        writeSummaryJson(out, results);
    }
    return EXIT_SUCCESS;
}
