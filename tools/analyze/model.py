"""Repository model: source files, findings, in-file suppressions."""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from functools import cached_property
from pathlib import Path

from .lexer import Lexed

CXX_SUFFIXES = {".hh", ".cc", ".cpp", ".hpp"}
SOURCE_DIRS = ("src", "tests", "bench", "examples", "tools")

# Subtrees never analyzed as part of the repo proper.  The analyzer's
# own test fixtures deliberately violate every pass.
EXCLUDED_SUBTREES = ("tests/analyze_fixtures",)

# `// cameo-analyze: allow(rule): justification` suppresses matching
# findings on its own line and the line directly below.  A
# justification is mandatory: bare allows are themselves a finding.
SUPPRESS_RE = re.compile(
    r"cameo-analyze:\s*allow\(([\w/,\- ]+)\)\s*(?::\s*(\S.*))?"
)


@dataclass(frozen=True)
class Finding:
    rule: str  # "pass" or "pass/subrule"
    path: str  # repo-relative posix path
    line: int  # 1-based; 0 for whole-file findings
    message: str

    @property
    def pass_name(self) -> str:
        return self.rule.split("/", 1)[0]

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.rule, self.message)


@dataclass
class Suppression:
    rules: tuple[str, ...]
    line: int
    justification: str
    used: bool = False

    def covers(self, rule: str) -> bool:
        for r in self.rules:
            if rule == r or rule.startswith(r + "/"):
                return True
        return False


class SourceFile:
    """One analyzed file: raw text, lazy lexed view, suppressions."""

    def __init__(self, root: Path, path: Path) -> None:
        self.path = path
        self.rel = path.relative_to(root).as_posix()
        self.text = path.read_text(encoding="utf-8")

    @cached_property
    def lexed(self) -> Lexed:
        return Lexed(self.text)

    @cached_property
    def lines(self) -> list[str]:
        return self.text.splitlines()

    @cached_property
    def suppressions(self) -> list[Suppression]:
        out: list[Suppression] = []
        for lineno, line in enumerate(self.lines, 1):
            m = SUPPRESS_RE.search(line)
            if m:
                rules = tuple(
                    r.strip() for r in m.group(1).split(",") if r.strip()
                )
                out.append(Suppression(rules, lineno, m.group(2) or ""))
        return out

    def suppression_for(self, finding: Finding) -> Suppression | None:
        for s in self.suppressions:
            if finding.line in (s.line, s.line + 1) and s.covers(
                finding.rule
            ):
                return s
        return None


@dataclass
class Repo:
    """The whole analyzed tree plus per-run shared state."""

    root: Path
    files: list[SourceFile] = field(default_factory=list)

    @classmethod
    def load(cls, root: Path) -> "Repo":
        root = root.resolve()
        repo = cls(root=root)
        for top in SOURCE_DIRS:
            base = root / top
            if not base.is_dir():
                continue
            for path in sorted(base.rglob("*")):
                if path.suffix not in CXX_SUFFIXES or not path.is_file():
                    continue
                rel = path.relative_to(root).as_posix()
                if rel.startswith(tuple(t + "/" for t in EXCLUDED_SUBTREES)):
                    continue
                repo.files.append(SourceFile(root, path))
        return repo

    @cached_property
    def by_rel(self) -> dict[str, SourceFile]:
        return {f.rel: f for f in self.files}

    def src_files(self) -> list[SourceFile]:
        return [f for f in self.files if f.rel.startswith("src/")]

    def resolve_include(
        self, includer: SourceFile, inc_path: str
    ) -> SourceFile | None:
        """Resolve a quoted include to a repo file.  The build adds
        ``src/`` to the include path, so ``"dir/file.hh"`` means
        ``src/dir/file.hh``; fall back to includer-relative lookup
        (tests include ``golden_common.hh`` that way)."""
        candidate = self.by_rel.get(f"src/{inc_path}")
        if candidate is not None:
            return candidate
        sibling = (
            Path(includer.rel).parent.joinpath(inc_path).as_posix()
        )
        return self.by_rel.get(sibling)

    def read_json(self, rel: str):
        """Load a repo-relative JSON file, or None if absent."""
        path = self.root / rel
        if not path.is_file():
            return None
        with open(path, encoding="utf-8") as fh:
            return json.load(fh)

    def read_text(self, rel: str) -> str | None:
        path = self.root / rel
        if not path.is_file():
            return None
        return path.read_text(encoding="utf-8")


def apply_suppressions(
    repo: Repo,
    findings: list[Finding],
    checked_rules: list[str] | None = None,
) -> tuple[list[Finding], list[Finding]]:
    """Split findings into (active, suppressed) and flag bad allows:
    a suppression without a justification, or one that matches nothing,
    is itself a finding (so stale allows can't accumulate).  When only
    a subset of passes ran, pass their rule ids as ``checked_rules`` so
    suppressions owned by skipped passes are not reported as unused."""
    active: list[Finding] = []
    suppressed: list[Finding] = []
    for finding in findings:
        sf = repo.by_rel.get(finding.path)
        s = sf.suppression_for(finding) if sf is not None else None
        if s is not None and s.justification:
            s.used = True
            suppressed.append(finding)
        else:
            active.append(finding)

    for sf in repo.files:
        for s in sf.suppressions:
            if not s.justification:
                active.append(
                    Finding(
                        "suppression/missing-justification",
                        sf.rel,
                        s.line,
                        "cameo-analyze: allow(...) needs a ': reason'",
                    )
                )
            elif not s.used:
                if checked_rules is not None and not any(
                    s.covers(rule) for rule in checked_rules
                ):
                    continue
                active.append(
                    Finding(
                        "suppression/unused",
                        sf.rel,
                        s.line,
                        f"suppression for {','.join(s.rules)} matches "
                        f"no finding; remove it",
                    )
                )
    return active, suppressed
