"""Stats-schema consistency pass.

The simulator's credibility argument is bit-reproducible stats, which
makes stat *names* load-bearing in three places that no compiler ties
together: the registration sites in code, the checked-in golden-stats
JSON keys, and the names cited in the docs.  This pass extracts the
code-side schema and cross-checks the other two, so a rename breaks
analysis instead of silently orphaning goldens:

  stats-schema/orphaned-golden-key  a golden_stats*.json stat key that
                                    is no longer a RunResult field
  stats-schema/unknown-golden-run   a golden run key whose workload or
                                    org label no longer exists
  stats-schema/unknown-lookup       findCounter()/findDistribution()
                                    naming an unregistered stat
  stats-schema/unknown-doc-stat     a doc-cited dotted stat name that
                                    is not registered anywhere

Schema extraction is lexical.  Full names come from string literals in
construction position (``swaps_("cameo.swaps", ...)``); composed names
(``name_ + ".hits"``) contribute a base ("l3") and a suffix (".hits")
that citations may combine.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from ..model import Finding, Repo

NAME = "stats-schema"
RULES = [
    "stats-schema/orphaned-golden-key",
    "stats-schema/unknown-golden-run",
    "stats-schema/unknown-lookup",
    "stats-schema/unknown-doc-stat",
]

GOLDEN_GLOB = "tests/golden/golden_stats*.json"
RUN_RESULT_HEADER = "src/system/system.hh"
WORKLOADS_FILE = "src/trace/workloads.cc"
GOLDEN_COMMON = "tests/golden_common.hh"
DOC_FILES = ("DESIGN.md", "EXPERIMENTS.md", "README.md")

_FULL_NAME_RE = re.compile(r"^[a-z][A-Za-z0-9]*(\.[A-Za-z0-9]+)+$")
_BASE_NAME_RE = re.compile(r"^[a-z][a-z0-9]*$")
_SUFFIX_RE = re.compile(r"^\.[a-zA-Z][A-Za-z0-9]*$")
_DOC_CITE_RE = re.compile(r"`([A-Za-z0-9_.]+)`")
_CTOR_IDENTS = {"Counter", "Distribution", "makeCounter",
                "makeDistribution"}
_LOOKUP_IDENTS = {"findCounter", "findDistribution"}
_FILE_EXTENSIONS = {
    "hh", "cc", "hpp", "cpp", "h", "py", "json", "md", "yml", "yaml",
    "txt", "csv", "cmake", "sh", "js", "html", "sarif",
}


@dataclass
class Schema:
    full: set[str] = field(default_factory=set)
    bases: set[str] = field(default_factory=set)
    suffixes: set[str] = field(default_factory=set)
    lookups: list[tuple[str, str, int]] = field(default_factory=list)

    def resolves(self, name: str) -> bool:
        if name in self.full:
            return True
        head, dot, tail = name.rpartition(".")
        if not dot:
            return False
        return (head in self.full or head in self.bases) and \
            ("." + tail) in self.suffixes

    @property
    def prefixes(self) -> set[str]:
        return {n.split(".", 1)[0] for n in self.full} | self.bases


def extract_schema(repo: Repo) -> Schema:
    schema = Schema()
    for sf in repo.src_files():
        tokens = sf.lexed.tokens
        for i, t in enumerate(tokens):
            if t.kind != "string":
                continue
            prev = tokens[i - 1] if i > 0 else None
            prev2 = tokens[i - 2] if i > 1 else None
            in_ctor = (
                prev is not None
                and prev.text == "("
                and prev2 is not None
                and prev2.kind == "ident"
                and (prev2.text.endswith("_")
                     or prev2.text in _CTOR_IDENTS)
            )
            if in_ctor and prev2.text in _LOOKUP_IDENTS:
                in_ctor = False
            if in_ctor:
                if _FULL_NAME_RE.match(t.text):
                    schema.full.add(t.text)
                elif _BASE_NAME_RE.match(t.text):
                    schema.bases.add(t.text)
            if (
                prev is not None
                and prev.text == "("
                and prev2 is not None
                and prev2.kind == "ident"
                and prev2.text in _LOOKUP_IDENTS
                and _FULL_NAME_RE.match(t.text)
            ):
                schema.lookups.append((t.text, sf.rel, t.line))
            # Composed-name suffix: ".hits" adjacent to a '+' token.
            if _SUFFIX_RE.match(t.text):
                neighbor = prev.text if prev is not None else ""
                nxt = tokens[i + 1] if i + 1 < len(tokens) else None
                if neighbor == "+" or (nxt is not None
                                       and nxt.text == "+"):
                    schema.suffixes.add(t.text)
    return schema


def run_result_fields(repo: Repo) -> set[str]:
    sf = repo.by_rel.get(RUN_RESULT_HEADER)
    if sf is None:
        return set()
    tokens = sf.lexed.tokens
    fields: set[str] = set()
    i = 0
    n = len(tokens)
    while i < n - 1:
        if (
            tokens[i].kind == "ident"
            and tokens[i].text == "struct"
            and tokens[i + 1].kind == "ident"
            and tokens[i + 1].text == "RunResult"
        ):
            break
        i += 1
    else:
        return fields
    depth = 0
    while i < n:
        t = tokens[i]
        if t.kind == "punct" and t.text == "{":
            depth += 1
        elif t.kind == "punct" and t.text == "}":
            depth -= 1
            if depth == 0:
                break
        elif t.kind == "ident" and depth == 1:
            nxt = tokens[i + 1] if i + 1 < n else None
            if nxt is not None and nxt.kind == "punct" and \
                    nxt.text in ("=", ";", "{"):
                prev = tokens[i - 1]
                if prev.kind == "ident" or (
                    prev.kind == "punct" and prev.text in (">", "*", "&")
                ):
                    fields.add(t.text)
        i += 1
    return fields


def _string_literals(repo: Repo, rel: str) -> set[str]:
    sf = repo.by_rel.get(rel)
    if sf is None:
        return set()
    return {t.text for t in sf.lexed.string_literals()}


def _line_of(text: str, needle: str) -> int:
    for lineno, line in enumerate(text.splitlines(), 1):
        if needle in line:
            return lineno
    return 1


def run(repo: Repo) -> list[Finding]:
    findings: list[Finding] = []
    schema = extract_schema(repo)
    fields = run_result_fields(repo)
    workload_names = {
        s
        for s in _string_literals(repo, WORKLOADS_FILE)
        if _BASE_NAME_RE.match(s)
    }
    org_labels = _string_literals(repo, GOLDEN_COMMON)

    for golden_path in sorted(repo.root.glob(GOLDEN_GLOB)):
        rel = golden_path.relative_to(repo.root).as_posix()
        data = repo.read_json(rel)
        text = repo.read_text(rel) or ""
        if not isinstance(data, dict):
            continue
        for run_key, stats in data.items():
            if not isinstance(stats, dict):
                continue
            workload, _, org = run_key.partition("/")
            if fields or workload_names:
                if workload_names and workload not in workload_names:
                    findings.append(
                        Finding(
                            "stats-schema/unknown-golden-run",
                            rel,
                            _line_of(text, f'"{run_key}"'),
                            f'run key "{run_key}": workload '
                            f'"{workload}" is not defined in '
                            f"{WORKLOADS_FILE}",
                        )
                    )
                if org_labels and org and org not in org_labels:
                    findings.append(
                        Finding(
                            "stats-schema/unknown-golden-run",
                            rel,
                            _line_of(text, f'"{run_key}"'),
                            f'run key "{run_key}": org label "{org}" '
                            f"is not defined in {GOLDEN_COMMON}",
                        )
                    )
            for stat_key in stats:
                if fields and stat_key not in fields:
                    findings.append(
                        Finding(
                            "stats-schema/orphaned-golden-key",
                            rel,
                            _line_of(text, f'"{stat_key}"'),
                            f'stat key "{stat_key}" is not a RunResult '
                            f"field in {RUN_RESULT_HEADER}; the golden "
                            f"entry is orphaned (rename drift?)",
                        )
                    )

    for name, rel, line in schema.lookups:
        if not schema.resolves(name):
            findings.append(
                Finding(
                    "stats-schema/unknown-lookup",
                    rel,
                    line,
                    f'stat lookup "{name}" matches no registered stat '
                    f"name; registration and lookup have drifted",
                )
            )

    prefixes = schema.prefixes
    for doc in DOC_FILES:
        text = repo.read_text(doc)
        if text is None:
            continue
        for lineno, line in enumerate(text.splitlines(), 1):
            for m in _DOC_CITE_RE.finditer(line):
                cited = m.group(1)
                if "." not in cited or not _FULL_NAME_RE.match(cited):
                    continue
                if cited.rsplit(".", 1)[-1] in _FILE_EXTENSIONS:
                    continue
                if cited.split(".", 1)[0] not in prefixes:
                    continue
                if not schema.resolves(cited):
                    findings.append(
                        Finding(
                            "stats-schema/unknown-doc-stat",
                            doc,
                            lineno,
                            f"`{cited}` is cited here but no such stat "
                            f"is registered in src/",
                        )
                    )
    return findings
