"""Pass registry.  Each pass module exposes ``NAME`` and
``run(repo) -> list[Finding]``."""

from __future__ import annotations

from . import (
    audit_coverage,
    conventions,
    determinism,
    layering,
    stats_schema,
)

ALL_PASSES = [
    layering,
    stats_schema,
    determinism,
    audit_coverage,
    conventions,
]


def pass_names() -> list[str]:
    return [p.NAME for p in ALL_PASSES]


def rule_ids() -> list[str]:
    out: list[str] = []
    for p in ALL_PASSES:
        out.extend(getattr(p, "RULES", [p.NAME]))
    return out
