"""Determinism taint pass.

Bit-reproducible runs are the whole point of the golden suites, so
entropy (wall clocks, hardware randomness) is confined to two exempt
wrappers: the seeded RNG (``src/util/rng``) and the sweep engine's
host-side stopwatch (``src/exp/stopwatch``).  The legacy lint only
banned *direct* use per file; this pass is strictly stronger: it walks
the transitive include closure and flags any file that *reaches* an
entropy header through a non-exempt chain, reporting the chain.

Traversal does not descend into the exempt files — including the
stopwatch's interface is fine, re-exporting ``<chrono>`` is not.

  determinism/tainted-include  a file reaches <chrono>/<random>/<ctime>
                               through non-exempt includes
"""

from __future__ import annotations

from ..model import Finding, Repo

NAME = "determinism"
RULES = ["determinism/tainted-include"]

# Files allowed to touch entropy directly; taint never propagates
# through them (their interfaces are deterministic by contract).
EXEMPT = {
    "src/util/rng.hh",
    "src/util/rng.cc",
    "src/exp/stopwatch.hh",
    "src/exp/stopwatch.cc",
}

# System headers that expose nondeterminism.
ENTROPY_HEADERS = {
    "chrono",
    "random",
    "ctime",
    "time.h",
    "sys/time.h",
}


def run(repo: Repo) -> list[Finding]:
    findings: list[Finding] = []

    memo: dict[str, tuple[str, ...]] = {}

    def taint_chain(rel: str, visiting: frozenset[str]) -> tuple[str, ...]:
        """Chain from this file to an entropy header, or () if clean.
        Exempt files are clean by contract; include cycles are treated
        as clean here (the layering pass reports them)."""
        if rel in memo:
            return memo[rel]
        if rel in EXEMPT or rel in visiting:
            return ()
        sf = repo.by_rel.get(rel)
        if sf is None:
            return ()
        chain: tuple[str, ...] = ()
        for inc in sf.lexed.includes:
            if inc.angled and inc.path in ENTROPY_HEADERS:
                chain = (rel, f"<{inc.path}>")
                break
        if not chain:
            for inc in sf.lexed.includes:
                if inc.angled:
                    continue
                target = repo.resolve_include(sf, inc.path)
                if target is None or target.rel == rel:
                    continue
                sub = taint_chain(target.rel, visiting | {rel})
                if sub:
                    chain = (rel,) + sub
                    break
        if not visiting:
            memo[rel] = chain
        return chain

    for sf in repo.files:
        if sf.rel in EXEMPT:
            continue
        chain = taint_chain(sf.rel, frozenset())
        if not chain:
            continue
        # Anchor the finding at the include that starts the chain.
        culprit = chain[1]
        line = 1
        for inc in sf.lexed.includes:
            resolved = (
                f"<{inc.path}>"
                if inc.angled
                else getattr(
                    repo.resolve_include(sf, inc.path), "rel", None
                )
            )
            if resolved == culprit:
                line = inc.line
                break
        findings.append(
            Finding(
                "determinism/tainted-include",
                sf.rel,
                line,
                "reaches entropy via "
                + " -> ".join(chain[1:])
                + "; simulation code must stay bit-reproducible "
                "(use util/rng, or encapsulate the clock like "
                "exp/stopwatch)",
            )
        )
    return findings
