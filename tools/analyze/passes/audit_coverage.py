"""Audit-coverage pass.

The runtime audit layer (DESIGN.md section 6) re-checks the paper's
invariants at full simulation speed, but only where someone remembered
to put a ``CAMEO_AUDIT``.  This pass closes that gap for the audited
structures: every *mutation site* of the LLT permutation array, the
queued DRAM channel queues, and the kernel's dispatch clock must sit
within ``WINDOW`` lines of an audit call (the macro itself or one of
the structure's auditor hooks), or carry an in-file suppression with a
justification.

  audit-coverage/unaudited-mutation
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..model import Finding, Repo

NAME = "audit-coverage"
RULES = ["audit-coverage/unaudited-mutation"]

WINDOW = 10  # lines before/after the mutation that may hold the audit


@dataclass(frozen=True)
class Structure:
    name: str
    files: tuple[str, ...]
    mutation: re.Pattern
    audit: re.Pattern


STRUCTURES = [
    Structure(
        name="LLT permutation array",
        files=("src/core/line_location_table.cc",),
        mutation=re.compile(
            r"loc_\[[^\]]*\]\s*=(?!=)|std\s*::\s*swap\s*\(\s*loc_\["
        ),
        audit=re.compile(r"CAMEO_AUDIT|verifyGroup"),
    ),
    Structure(
        name="DRAM channel queues",
        files=("src/dram/dram_module.cc",),
        mutation=re.compile(
            r"(?:writeQueue|inServiceReads)\s*\.\s*"
            r"(?:push_back|pop_front|pop_back|erase|clear)\s*\("
        ),
        audit=re.compile(r"CAMEO_AUDIT|protoAudit_\s*\."),
    ),
    Structure(
        name="page remap bijection",
        files=("src/orgs/policy/page_remap_mapping.cc",),
        mutation=re.compile(
            r"(?:physToDev_|devToPhys_)\s*(?:\[[^\]]*\])?\s*=(?!=)"
            r"|std\s*::\s*swap\s*\(\s*physToDev_"
        ),
        audit=re.compile(r"CAMEO_AUDIT"),
    ),
    Structure(
        name="kernel clock",
        files=("src/sim/kernel.cc",),
        mutation=re.compile(r"->\s*step\s*\(\s*\)|events_\.runOne\s*\("),
        audit=re.compile(r"CAMEO_AUDIT|auditor_\s*\."),
    ),
]


def run(repo: Repo) -> list[Finding]:
    findings: list[Finding] = []
    for structure in STRUCTURES:
        for rel in structure.files:
            sf = repo.by_rel.get(rel)
            if sf is None:
                continue
            stripped_lines = sf.lexed.stripped.splitlines()
            audited = [
                bool(structure.audit.search(line))
                for line in stripped_lines
            ]
            for lineno, line in enumerate(stripped_lines, 1):
                if not structure.mutation.search(line):
                    continue
                lo = max(lineno - 1 - WINDOW, 0)
                hi = min(lineno + WINDOW, len(audited))
                if any(audited[lo:hi]):
                    continue
                findings.append(
                    Finding(
                        "audit-coverage/unaudited-mutation",
                        rel,
                        lineno,
                        f"mutation of audited structure "
                        f"({structure.name}) has no audit within "
                        f"{WINDOW} lines; add a CAMEO_AUDIT re-checking "
                        f"the invariant, or suppress with a "
                        f"justification",
                    )
                )
    return findings
