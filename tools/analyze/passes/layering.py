"""Include-graph layering pass.

Builds the whole-program include graph and enforces the declared layer
manifest (``tools/analyze/layers.json``):

  layering/unmapped-dir     a src/ directory absent from the manifest
  layering/upward-include   a file includes a header from a higher band
  layering/cross-band       a file includes a sibling directory in the
                            same band (bands are independent by design)
  layering/cycle            directory-level strongly connected component
  layering/unresolved-include  quoted include that resolves to no file
  layering/dead-include     quoted include providing no name the
                            including file ever mentions

Dead-include detection is lexical: the target header's *provided
names* (types, macros, using-aliases, functions and namespace-scope
constants, extracted from the token stream with brace-depth tracking)
are intersected with the identifier set of the including file.  The
extraction deliberately over-collects — an extra provided name can
only hide a dead include, never invent one.
"""

from __future__ import annotations

import json
from functools import lru_cache
from pathlib import Path

from ..lexer import Lexed
from ..model import Finding, Repo, SourceFile

NAME = "layering"
RULES = [
    "layering/unmapped-dir",
    "layering/upward-include",
    "layering/cross-band",
    "layering/cycle",
    "layering/unresolved-include",
    "layering/dead-include",
]

_KEYWORDS = {
    "alignas", "alignof", "auto", "bool", "break", "case", "catch",
    "char", "class", "const", "constexpr", "const_cast", "continue",
    "decltype", "default", "delete", "do", "double", "dynamic_cast",
    "else", "enum", "explicit", "extern", "false", "float", "for",
    "friend", "goto", "if", "inline", "int", "long", "mutable",
    "namespace", "new", "noexcept", "nullptr", "operator", "private",
    "protected", "public", "register", "reinterpret_cast", "return",
    "short", "signed", "sizeof", "static", "static_assert",
    "static_cast", "struct", "switch", "template", "this", "throw",
    "true", "try", "typedef", "typeid", "typename", "union",
    "unsigned", "using", "virtual", "void", "volatile", "while",
    "final", "override", "assert", "std",
}


def load_manifest(root: Path) -> dict:
    """The analyzed tree's manifest if it ships one (fixtures do),
    else the packaged manifest next to this module."""
    local = root / "tools" / "analyze" / "layers.json"
    path = local if local.is_file() else Path(__file__).parent.parent / "layers.json"
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)


def _layer_map(manifest: dict) -> dict[str, int]:
    return {
        d: i
        for i, band in enumerate(manifest.get("layers", []))
        for d in band
    }


def provided_names(lexed: Lexed) -> set[str]:
    """Names a header offers to its includers (over-approximation)."""
    names: set[str] = set()
    for d in lexed.directives:
        if d.name == "define" and d.rest:
            macro = d.rest.split()[0].split("(")[0]
            if macro:
                names.add(macro)

    tokens = lexed.tokens
    # Effective brace depth: namespace braces are transparent.
    depth = 0
    transparent: list[bool] = []
    typedef_depth: int | None = None
    i = 0
    n = len(tokens)
    while i < n:
        t = tokens[i]
        prev = tokens[i - 1] if i > 0 else None
        nxt = tokens[i + 1] if i + 1 < n else None
        if t.kind == "punct":
            if t.text == "{":
                # `namespace [a[::b]...] {` braces are transparent:
                # walk back over the (possibly qualified) name.
                is_ns = False
                back = i - 1
                while back >= 0:
                    b = tokens[back]
                    if b.kind == "ident":
                        if b.text == "namespace":
                            is_ns = True
                            break
                        back -= 1
                    elif b.kind == "punct" and b.text == ":":
                        back -= 1
                    else:
                        break
                transparent.append(is_ns)
                if not is_ns:
                    depth += 1
            elif t.text == "}":
                if transparent and not transparent.pop():
                    depth = max(depth - 1, 0)
            elif t.text == ";":
                if typedef_depth == depth and prev is not None and \
                        prev.kind == "ident":
                    names.add(prev.text)
                typedef_depth = None
            i += 1
            continue
        if t.kind != "ident":
            i += 1
            continue

        if t.text in ("class", "struct", "union", "enum"):
            j = i + 1
            if (
                t.text == "enum"
                and j < n
                and tokens[j].kind == "ident"
                and tokens[j].text in ("class", "struct")
            ):
                j += 1
            if j < n and tokens[j].kind == "ident":
                names.add(tokens[j].text)
            i = j + 1
            continue
        if t.text == "typedef":
            typedef_depth = depth
            i += 1
            continue
        if t.text == "using" and nxt is not None and nxt.kind == "ident":
            after = tokens[i + 2] if i + 2 < n else None
            if after is not None and after.text == "=":
                names.add(nxt.text)
            i += 1
            continue
        if t.text in _KEYWORDS:
            i += 1
            continue
        if depth <= 1 and nxt is not None and nxt.kind == "punct":
            prev_punct = prev.text if prev is not None and \
                prev.kind == "punct" else ""
            if nxt.text == "(" and prev_punct not in (".",):
                if not (prev is not None and prev.kind == "ident"
                        and prev.text in ("return", "case")):
                    names.add(t.text)
            elif nxt.text in ("=", "{", ";") and prev is not None and (
                prev.kind == "ident" or prev_punct in (">", "*", "&", "]")
            ):
                names.add(t.text)
        i += 1
    return names


def _directory(rel: str) -> str | None:
    """Band key for a src/ file: its directory path relative to src/.

    Nested directories (src/orgs/policy/...) get their own key so the
    manifest can band them separately from their parent.
    """
    parts = rel.split("/")
    if parts[0] == "src" and len(parts) >= 3:
        return "/".join(parts[1:-1])
    return None


def _sccs(graph: dict[str, set[str]]) -> list[list[str]]:
    """Tarjan's strongly connected components, deterministic order."""
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    out: list[list[str]] = []
    counter = [0]

    def strongconnect(v: str) -> None:
        index[v] = low[v] = counter[0]
        counter[0] += 1
        stack.append(v)
        on_stack.add(v)
        for w in sorted(graph.get(v, ())):
            if w not in index:
                strongconnect(w)
                low[v] = min(low[v], low[w])
            elif w in on_stack:
                low[v] = min(low[v], index[w])
        if low[v] == index[v]:
            comp = []
            while True:
                w = stack.pop()
                on_stack.discard(w)
                comp.append(w)
                if w == v:
                    break
            out.append(sorted(comp))

    for v in sorted(graph):
        if v not in index:
            strongconnect(v)
    return out


def run(repo: Repo) -> list[Finding]:
    manifest = load_manifest(repo.root)
    layer_of = _layer_map(manifest)
    overrides: dict[str, str] = manifest.get("overrides", {})
    findings: list[Finding] = []

    @lru_cache(maxsize=None)
    def provided(rel: str) -> frozenset[str]:
        return frozenset(provided_names(repo.by_rel[rel].lexed))

    def layer_dir(sf: SourceFile) -> str | None:
        if sf.rel in overrides:
            return overrides[sf.rel]
        return _directory(sf.rel)

    # Directory-level graph for cycle reporting: dir -> dir with the
    # first file:line that introduces each edge.
    dir_edges: dict[str, set[str]] = {}
    edge_site: dict[tuple[str, str], tuple[str, int]] = {}

    seen_dirs: set[str] = set()
    for sf in repo.files:
        src_dir = layer_dir(sf)
        if src_dir is not None:
            seen_dirs.add(src_dir)
        for inc in sf.lexed.includes:
            if inc.angled:
                continue
            target = repo.resolve_include(sf, inc.path)
            if target is None:
                findings.append(
                    Finding(
                        "layering/unresolved-include",
                        sf.rel,
                        inc.line,
                        f'"{inc.path}" resolves to no repo file '
                        f"(typo, or a deleted header)",
                    )
                )
                continue

            tgt_dir = layer_dir(target)
            if src_dir is not None and tgt_dir is not None \
                    and src_dir != tgt_dir:
                dir_edges.setdefault(src_dir, set()).add(tgt_dir)
                edge_site.setdefault(
                    (src_dir, tgt_dir), (sf.rel, inc.line)
                )
                src_layer = layer_of.get(src_dir)
                tgt_layer = layer_of.get(tgt_dir)
                if src_layer is not None and tgt_layer is not None:
                    if tgt_layer > src_layer:
                        findings.append(
                            Finding(
                                "layering/upward-include",
                                sf.rel,
                                inc.line,
                                f"src/{src_dir} (band {src_layer}) must "
                                f"not include src/{tgt_dir} (band "
                                f"{tgt_layer}); invert the dependency "
                                f"or move the shared piece down",
                            )
                        )
                    elif tgt_layer == src_layer:
                        findings.append(
                            Finding(
                                "layering/cross-band",
                                sf.rel,
                                inc.line,
                                f"src/{src_dir} and src/{tgt_dir} share "
                                f"band {src_layer} and must stay "
                                f"independent",
                            )
                        )

            # Dead include: the target provides no name this file uses.
            stem_match = (
                Path(sf.rel).stem == Path(target.rel).stem
                and sf.rel != target.rel
            )
            if not stem_match and target.rel != sf.rel:
                offered = provided(target.rel)
                if offered and not (offered & sf.lexed.identifiers()):
                    findings.append(
                        Finding(
                            "layering/dead-include",
                            sf.rel,
                            inc.line,
                            f'"{inc.path}" provides nothing this file '
                            f"references; drop the include",
                        )
                    )

    for d in sorted(seen_dirs):
        if d not in layer_of:
            findings.append(
                Finding(
                    "layering/unmapped-dir",
                    f"src/{d}",
                    0,
                    f"src/{d} is not in tools/analyze/layers.json; "
                    f"add it to a band",
                )
            )

    for comp in _sccs(dir_edges):
        if len(comp) < 2:
            continue
        anchor = min(
            edge_site[(a, b)]
            for a in comp
            for b in comp
            if (a, b) in edge_site
        )
        findings.append(
            Finding(
                "layering/cycle",
                anchor[0],
                anchor[1],
                "directory cycle among src/{"
                + ", ".join(comp)
                + "}; layering requires a DAG",
            )
        )
    return findings
