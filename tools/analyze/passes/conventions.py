"""Repo-convention pass: the seven legacy ``tools/lint.py`` rules,
ported onto the shared lexer so one tool owns repo conventions.

  conventions/include-guard     CAMEO_<DIR>_<FILE>_HH guards
  conventions/file-doc          Doxygen @file comment in src headers
  conventions/nondeterminism    direct rand()/time()/clock()/
                                random_device/<chrono> wall-clock use
                                (the determinism pass adds the
                                transitive version)
  conventions/hygiene           tabs, trailing whitespace, final newline
  conventions/hot-path-container  std hash containers in src/vm,
                                src/orgs (use util/flat_map.hh)
  conventions/dram-pipeline     direct DramModule::access in pipeline
                                layers (use DramModule::request)
  conventions/generator-use     direct SyntheticGenerator in sweep or
                                bench code (use TraceArenaCache)
"""

from __future__ import annotations

import re
from pathlib import Path

from ..model import Finding, Repo, SourceFile

NAME = "conventions"
RULES = [
    "conventions/include-guard",
    "conventions/file-doc",
    "conventions/nondeterminism",
    "conventions/hygiene",
    "conventions/hot-path-container",
    "conventions/dram-pipeline",
    "conventions/generator-use",
]

# Files allowed to reach for entropy: the deterministic RNG wrappers,
# plus the sweep engine's host-side stopwatch (wall-clock telemetry for
# throughput reporting; its readings never feed simulation state).
NONDETERMINISM_EXEMPT = {
    "src/util/rng.hh",
    "src/util/rng.cc",
    "src/exp/stopwatch.hh",
    "src/exp/stopwatch.cc",
}

# (human name, regex) for banned nondeterminism sources.  Applied to
# comment- and string-stripped code, case-sensitively.
BANNED_PATTERNS = [
    ("rand()", re.compile(r"(?<![\w:])s?rand\s*\(")),
    ("time()/clock()", re.compile(r"(?<![\w:.>])(?:time|clock)\s*\(")),
    ("std::random_device", re.compile(r"std\s*::\s*random_device")),
    (
        "<chrono> wall clock",
        re.compile(
            r"std\s*::\s*chrono\s*::\s*"
            r"(?:system_clock|steady_clock|high_resolution_clock)"
        ),
    ),
]

# Directories whose per-access data structures must use util/flat_map.hh
# rather than the node-allocating std hash containers.
HOT_PATH_DIRS = ("src/vm", "src/orgs")

# Hot-path files allowed to keep std hash containers (cold-path setup
# code only).  Currently empty; add "src/vm/foo.cc" style paths here.
HASH_MAP_ALLOWLIST: set[str] = set()

HASH_MAP_INCLUDE_RE = re.compile(
    r"^\s*#\s*include\s*<(unordered_map|unordered_set)>"
)

# Layers that must reach DRAM devices through DramModule::request (the
# transaction pipeline's entry point) rather than the blocking
# DramModule::access shim.
DRAM_PIPELINE_DIRS = ("src/orgs", "src/core", "src/system")

# Pipeline-layer files allowed to call DramModule::access directly
# (none today; the blocking shim lives in src/dram and is out of
# scope).  Add "src/orgs/foo.cc" style paths here.
DRAM_ACCESS_ALLOWLIST: set[str] = set()

# DRAM modules are uniformly named stacked_/offchip_ or reached via the
# stackedModule()/offchipModule() accessors; match .access( on any of
# those spellings.
DRAM_ACCESS_RE = re.compile(
    r"(?:(?:stacked_|offchip_)\s*\.|stackedModule\(\)\s*->"
    r"|offchipModule\(\)\s*\.)\s*access\s*\("
)

# Layers that must obtain access streams from the trace-arena cache
# (record once, replay everywhere) instead of constructing generators.
GENERATOR_BAN_DIRS = ("src/exp", "bench")

# Files allowed to construct SyntheticGenerator directly: benches whose
# whole point is measuring the raw generator against arena replay.
GENERATOR_ALLOWLIST = {
    "bench/micro_components.cc",
    "bench/perf_arena.cc",
}

GENERATOR_RE = re.compile(r"\bSyntheticGenerator\b")


def expected_guard(rel: str) -> str:
    """CAMEO_<DIR>_<FILE>_HH for a path like src/dir/file.hh."""
    parts = Path(rel).parts[1:-1] + (Path(rel).stem,)
    mangled = "_".join(re.sub(r"[^A-Za-z0-9]", "_", p) for p in parts)
    return f"CAMEO_{mangled.upper()}_HH"


def _check_include_guard(sf: SourceFile, findings: list[Finding]) -> None:
    guard = expected_guard(sf.rel)
    ifndef = next(
        (d for d in sf.lexed.directives if d.name == "ifndef"), None
    )
    if ifndef is None:
        findings.append(
            Finding(
                "conventions/include-guard",
                sf.rel,
                1,
                f"missing include guard (#ifndef {guard})",
            )
        )
        return
    actual = ifndef.rest.split()[0] if ifndef.rest else ""
    if actual != guard:
        findings.append(
            Finding(
                "conventions/include-guard",
                sf.rel,
                ifndef.line,
                f"include guard '{actual}' should be '{guard}'",
            )
        )
        return
    if not any(
        d.name == "define" and d.rest.split()[0:1] == [guard]
        for d in sf.lexed.directives
    ):
        findings.append(
            Finding(
                "conventions/include-guard",
                sf.rel,
                ifndef.line,
                f"missing '#define {guard}'",
            )
        )
    if not re.search(rf"#\s*endif\s*//\s*{re.escape(guard)}\s*$", sf.text):
        findings.append(
            Finding(
                "conventions/include-guard",
                sf.rel,
                len(sf.lines),
                f"missing trailing '#endif // {guard}'",
            )
        )


def _check_file_doc(sf: SourceFile, findings: list[Finding]) -> None:
    head = "\n".join(sf.lines[:10])
    if "@file" not in head:
        findings.append(
            Finding(
                "conventions/file-doc",
                sf.rel,
                1,
                "missing Doxygen '@file' comment at top of header",
            )
        )


def _check_nondeterminism(sf: SourceFile, findings: list[Finding]) -> None:
    if sf.rel in NONDETERMINISM_EXEMPT:
        return
    for lineno, line in enumerate(sf.lexed.stripped.splitlines(), 1):
        for name, pattern in BANNED_PATTERNS:
            if pattern.search(line):
                findings.append(
                    Finding(
                        "conventions/nondeterminism",
                        sf.rel,
                        lineno,
                        f"banned nondeterminism source {name}; use "
                        f"util/rng (seeded, reproducible)",
                    )
                )


def _check_hot_path_containers(
    sf: SourceFile, findings: list[Finding]
) -> None:
    if not sf.rel.startswith(tuple(d + "/" for d in HOT_PATH_DIRS)):
        return
    if sf.rel in HASH_MAP_ALLOWLIST:
        return
    for lineno, line in enumerate(sf.lines, 1):
        m = HASH_MAP_INCLUDE_RE.match(line)
        if m:
            findings.append(
                Finding(
                    "conventions/hot-path-container",
                    sf.rel,
                    lineno,
                    f"<{m.group(1)}> in hot-path directory; use "
                    f"util/flat_map.hh (or add to HASH_MAP_ALLOWLIST "
                    f"for cold-path code)",
                )
            )


def _check_dram_pipeline(sf: SourceFile, findings: list[Finding]) -> None:
    if not sf.rel.startswith(tuple(d + "/" for d in DRAM_PIPELINE_DIRS)):
        return
    if sf.rel in DRAM_ACCESS_ALLOWLIST:
        return
    for lineno, line in enumerate(sf.lexed.stripped.splitlines(), 1):
        if DRAM_ACCESS_RE.search(line):
            findings.append(
                Finding(
                    "conventions/dram-pipeline",
                    sf.rel,
                    lineno,
                    "direct DramModule::access call in pipeline layer; "
                    "use DramModule::request (or add to "
                    "DRAM_ACCESS_ALLOWLIST)",
                )
            )


def _check_generator_use(sf: SourceFile, findings: list[Finding]) -> None:
    if not sf.rel.startswith(tuple(d + "/" for d in GENERATOR_BAN_DIRS)):
        return
    if sf.rel in GENERATOR_ALLOWLIST:
        return
    for lineno, line in enumerate(sf.lexed.stripped.splitlines(), 1):
        if GENERATOR_RE.search(line):
            findings.append(
                Finding(
                    "conventions/generator-use",
                    sf.rel,
                    lineno,
                    "direct SyntheticGenerator use in sweep/bench code; "
                    "get streams from "
                    "TraceArenaCache::instance().source() (or add to "
                    "GENERATOR_ALLOWLIST)",
                )
            )


def _check_hygiene(sf: SourceFile, findings: list[Finding]) -> None:
    for lineno, line in enumerate(sf.lines, 1):
        if "\t" in line:
            findings.append(
                Finding(
                    "conventions/hygiene",
                    sf.rel,
                    lineno,
                    "tab character (use spaces)",
                )
            )
        if line != line.rstrip():
            findings.append(
                Finding(
                    "conventions/hygiene",
                    sf.rel,
                    lineno,
                    "trailing whitespace",
                )
            )
    if sf.text and not sf.text.endswith("\n"):
        findings.append(
            Finding(
                "conventions/hygiene",
                sf.rel,
                len(sf.lines),
                "missing newline at end of file",
            )
        )
    if sf.text.endswith("\n\n"):
        findings.append(
            Finding(
                "conventions/hygiene",
                sf.rel,
                len(sf.lines),
                "multiple blank lines at end of file",
            )
        )


def run(repo: Repo) -> list[Finding]:
    findings: list[Finding] = []
    for sf in repo.files:
        if sf.rel.startswith("src/") and sf.rel.endswith(".hh"):
            _check_include_guard(sf, findings)
            _check_file_doc(sf, findings)
        _check_nondeterminism(sf, findings)
        _check_hot_path_containers(sf, findings)
        _check_dram_pipeline(sf, findings)
        _check_generator_use(sf, findings)
        _check_hygiene(sf, findings)
    return findings
