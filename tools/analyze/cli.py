"""Command-line driver: run the passes, apply suppressions and the
baseline, print ``file:line: [rule] message`` findings, optionally emit
SARIF, and exit non-zero when anything new surfaced."""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from . import baseline as baseline_mod
from .model import Repo, apply_suppressions
from .passes import ALL_PASSES, pass_names, rule_ids
from .sarif import render as render_sarif

DEFAULT_BASELINE = Path(__file__).parent / "baseline.json"


def _parse_args(argv: list[str]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="cameo-analyze",
        description="Multi-pass whole-program static analyzer for the "
        "CAMEO simulator.",
    )
    parser.add_argument(
        "root",
        nargs="?",
        default=None,
        help="repository root (default: two levels above this package)",
    )
    parser.add_argument(
        "--sarif",
        metavar="PATH",
        help="write findings as SARIF 2.1.0 to PATH ('-' for stdout)",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        default=str(DEFAULT_BASELINE),
        help="baseline file (default: tools/analyze/baseline.json)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline with the current findings and exit 0",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline (report every finding)",
    )
    parser.add_argument(
        "--passes",
        metavar="NAMES",
        help="comma-separated subset of passes to run "
        f"(default: all of {','.join(pass_names())})",
    )
    parser.add_argument(
        "--list-passes",
        action="store_true",
        help="list pass names and exit",
    )
    return parser.parse_args(argv)


def main(argv: list[str] | None = None) -> int:
    args = _parse_args(sys.argv[1:] if argv is None else argv)

    if args.list_passes:
        for name in pass_names():
            print(name)
        return 0

    root = (
        Path(args.root)
        if args.root is not None
        else Path(__file__).resolve().parent.parent.parent
    )
    if not root.is_dir():
        print(f"cameo-analyze: no such directory: {root}",
              file=sys.stderr)
        return 2

    selected = ALL_PASSES
    if args.passes:
        wanted = {p.strip() for p in args.passes.split(",") if p.strip()}
        unknown = wanted - set(pass_names())
        if unknown:
            print(
                "cameo-analyze: unknown pass(es): "
                + ", ".join(sorted(unknown)),
                file=sys.stderr,
            )
            return 2
        selected = [p for p in ALL_PASSES if p.NAME in wanted]

    repo = Repo.load(root)
    findings = []
    for pass_module in selected:
        findings.extend(pass_module.run(repo))

    checked_rules = [r for p in selected for r in p.RULES]
    active, suppressed = apply_suppressions(repo, findings, checked_rules)

    baseline_path = Path(args.baseline)
    if args.update_baseline:
        baseline_mod.save(baseline_path, repo, active)
        print(
            f"cameo-analyze: baseline updated with {len(active)} "
            f"finding(s) at {baseline_path}",
            file=sys.stderr,
        )
        return 0

    known = (
        set() if args.no_baseline else baseline_mod.load(baseline_path)
    )
    new, baselined = baseline_mod.split(repo, active, known)

    if args.sarif:
        sarif_text = render_sarif(new, baselined, suppressed, rule_ids())
        if args.sarif == "-":
            sys.stdout.write(sarif_text)
        else:
            Path(args.sarif).write_text(sarif_text, encoding="utf-8")

    for finding in sorted(new, key=lambda f: f.sort_key()):
        print(finding.render())

    print(
        f"cameo-analyze: {len(repo.files)} files, "
        f"{len(selected)} pass(es): {len(new)} new, "
        f"{len(baselined)} baselined, {len(suppressed)} suppressed",
        file=sys.stderr,
    )
    return 1 if new else 0
