"""SARIF 2.1.0 emitter.

One run, one result per finding.  Baselined and in-file-suppressed
findings are included with a ``suppressions`` entry so SARIF viewers
show the full picture; gating looks only at unsuppressed results.
Output is deterministic (sorted results, no timestamps) so a SARIF
snapshot can be golden-tested.
"""

from __future__ import annotations

import json

from . import __version__
from .model import Finding

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_LEVELS = {
    "suppression": "warning",
}


def _result(finding: Finding, suppression_kind: str | None) -> dict:
    result = {
        "ruleId": finding.rule,
        "level": _LEVELS.get(finding.pass_name, "error"),
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path,
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {"startLine": max(finding.line, 1)},
                }
            }
        ],
    }
    if suppression_kind is not None:
        result["suppressions"] = [{"kind": suppression_kind}]
    return result


def render(
    active: list[Finding],
    baselined: list[Finding],
    suppressed: list[Finding],
    rule_ids: list[str],
) -> str:
    """Render the full SARIF log as a JSON string."""
    results = (
        [(f, None) for f in active]
        + [(f, "external") for f in baselined]
        + [(f, "inSource") for f in suppressed]
    )
    results.sort(key=lambda pair: pair[0].sort_key())
    rules = [
        {"id": rule_id, "name": rule_id.replace("/", "-")}
        for rule_id in sorted(set(rule_ids) | {f.rule for f, _ in results})
    ]
    log = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "cameo-analyze",
                        "version": __version__,
                        "informationUri": (
                            "https://github.com/cameo-sim/cameo"
                            "/tree/main/tools/analyze"
                        ),
                        "rules": rules,
                    }
                },
                "columnKind": "utf16CodeUnits",
                "originalUriBaseIds": {
                    "SRCROOT": {"uri": "file:///REPO/"}
                },
                "results": [_result(f, kind) for f, kind in results],
            }
        ],
    }
    return json.dumps(log, indent=2, sort_keys=False) + "\n"
