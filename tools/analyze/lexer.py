"""Comment/string-aware C++ lexer shared by every analyzer pass.

Not a full C++ tokenizer — just enough structure for whole-program
analysis: identifiers, string/char literals, numbers, punctuation, and
preprocessor directives, each tagged with its 1-based source line.
Comment text is skipped (suppression comments are scanned on the raw
lines by ``model.py``), and a line-preserving comment/string-stripped
view of the file is kept for the regex-based legacy rules.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

_IDENT_RE = re.compile(r"[A-Za-z_]\w*")
# Includes C++14 digit separators (1'000'000) so the apostrophe is not
# mistaken for a char literal.
_NUMBER_RE = re.compile(r"\.?\d(?:[\w.]|'\w|[eEpP][+-])*")
_INCLUDE_RE = re.compile(r'^\s*#\s*include\s*(?:"([^"]+)"|<([^>]+)>)')
_DIRECTIVE_RE = re.compile(r"^\s*#\s*(\w+)(.*)$", re.S)


@dataclass(frozen=True)
class Token:
    kind: str  # "ident" | "string" | "char" | "number" | "punct"
    text: str  # identifier spelling / literal contents / punctuation
    line: int  # 1-based


@dataclass(frozen=True)
class Include:
    path: str  # as written between the delimiters
    angled: bool  # <...> (system) vs "..." (repo-local)
    line: int  # 1-based


@dataclass(frozen=True)
class Directive:
    name: str  # "include", "define", "ifndef", ...
    rest: str  # remainder of the directive line, comment-stripped
    line: int  # 1-based


def strip_comments_and_strings(code: str) -> str:
    """Blank out comments and string/char literals, preserving line
    structure so reported line numbers stay accurate."""
    out: list[str] = []
    i, n = 0, len(code)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = code[i]
        nxt = code[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
            elif c == "'":
                state = "char"
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        i += 1
    return "".join(out)


class Lexed:
    """One lexed translation unit."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.stripped = strip_comments_and_strings(text)
        self.tokens: list[Token] = []
        self.includes: list[Include] = []
        self.directives: list[Directive] = []
        self._lex()

    def _lex(self) -> None:
        # Directives and includes come from the stripped view so that
        # commented-out includes are ignored; string *contents* come
        # from the raw text (the stripped view blanks them).
        stripped_lines = self.stripped.splitlines()
        raw_lines = self.text.splitlines()
        for lineno, line in enumerate(stripped_lines, 1):
            if not line.lstrip().startswith("#"):
                continue
            raw = raw_lines[lineno - 1]
            m = _INCLUDE_RE.match(raw)
            if m:
                quoted, angled = m.group(1), m.group(2)
                self.includes.append(
                    Include(quoted or angled, angled is not None, lineno)
                )
            d = _DIRECTIVE_RE.match(line)
            if d:
                self.directives.append(
                    Directive(d.group(1), d.group(2).strip(), lineno)
                )

        # Token stream over the whole file.  Operates on the raw text
        # with a comment-skipping scanner so literal contents survive.
        self._lex_tokens()

    def _lex_tokens(self) -> None:
        text = self.text
        i, n = 0, len(text)
        line = 1
        tokens = self.tokens
        while i < n:
            c = text[i]
            if c == "\n":
                line += 1
                i += 1
                continue
            if c in " \t\r\f\v":
                i += 1
                continue
            nxt = text[i + 1] if i + 1 < n else ""
            if c == "/" and nxt == "/":
                j = text.find("\n", i)
                i = n if j < 0 else j
                continue
            if c == "/" and nxt == "*":
                j = text.find("*/", i + 2)
                end = n if j < 0 else j + 2
                line += text.count("\n", i, end)
                i = end
                continue
            if c == '"' or c == "'":
                start_line = line
                j = i + 1
                while j < n and text[j] != c:
                    if text[j] == "\\":
                        j += 1
                    elif text[j] == "\n":
                        line += 1
                    j += 1
                tokens.append(
                    Token(
                        "string" if c == '"' else "char",
                        text[i + 1 : j],
                        start_line,
                    )
                )
                i = j + 1
                continue
            m = _IDENT_RE.match(text, i)
            if m:
                tokens.append(Token("ident", m.group(0), line))
                i = m.end()
                continue
            if c.isdigit() or (c == "." and nxt.isdigit()):
                m = _NUMBER_RE.match(text, i)
                if m:
                    tokens.append(Token("number", m.group(0), line))
                    i = m.end()
                    continue
            tokens.append(Token("punct", c, line))
            i += 1

    def identifiers(self) -> set[str]:
        """Every identifier spelled anywhere in the file."""
        return {t.text for t in self.tokens if t.kind == "ident"}

    def string_literals(self) -> list[Token]:
        return [t for t in self.tokens if t.kind == "string"]
