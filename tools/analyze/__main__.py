"""Entry point for ``python3 tools/analyze`` (and ``python3 -m
analyze`` from inside ``tools/``)."""

import sys

if __package__ in (None, ""):
    # Invoked as `python3 tools/analyze`: sys.path[0] is the package
    # directory itself, so hoist its parent and import the package.
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
    from analyze.cli import main  # type: ignore[no-redef]
else:
    from .cli import main

sys.exit(main())
