"""cameo-analyze: multi-pass whole-program static analyzer for the
CAMEO simulator.

One comment/string-aware lexer (``lexer.py``) feeds every pass; the
passes themselves live under ``passes/`` and are registered in
``passes/__init__.py``:

  layering       include-graph layering against tools/analyze/layers.json
                 (cycles, upward edges, cross-band edges, dead includes)
  stats-schema   stat names registered in code vs. golden-stats JSON
                 keys vs. names cited in the docs
  determinism    transitive include taint from entropy sources
                 (<chrono>, <random>, <ctime>) into simulation code
  audit-coverage mutation sites of audited structures (LLT, DRAM
                 queues, kernel clock) must sit near a CAMEO_AUDIT
  conventions    the seven legacy tools/lint.py rules (guards, @file
                 docs, direct nondeterminism, hygiene, hot-path
                 containers, DRAM pipeline entry, generator use)

Findings print as ``file:line: [rule] message`` and can be emitted as
SARIF 2.1.0 (``--sarif``).  A fingerprint-stable baseline
(``tools/analyze/baseline.json``, refreshed with ``--update-baseline``)
lets violations be adopted incrementally; the checked-in baseline is
empty and CI gates on keeping it that way.

Suppressing a finding in-file::

    // cameo-analyze: allow(<rule>): <justification>

on the offending line or the line directly above it.  ``<rule>`` may be
a pass name (``layering``) or a full rule id
(``layering/dead-include``).
"""

__version__ = "1.0.0"
