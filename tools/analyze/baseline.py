"""Fingerprint-stable baselines for incremental adoption.

A finding's fingerprint hashes what it *is*, not where it currently
sits: rule id, file path, the whitespace-collapsed text of the flagged
line, and an occurrence index that disambiguates identical lines in the
same file.  Adding or removing unrelated lines therefore does not
invalidate a baseline entry; editing the flagged line (or fixing the
finding) does.
"""

from __future__ import annotations

import hashlib
import json
import re
from pathlib import Path

from .model import Finding, Repo

_WS_RE = re.compile(r"\s+")


def _line_text(repo: Repo, finding: Finding) -> str:
    sf = repo.by_rel.get(finding.path)
    if sf is None or not 1 <= finding.line <= len(sf.lines):
        return ""
    return _WS_RE.sub(" ", sf.lines[finding.line - 1].strip())


def fingerprints(
    repo: Repo, findings: list[Finding]
) -> list[tuple[Finding, str]]:
    """Pair each finding with its stable fingerprint."""
    seen: dict[tuple[str, str, str], int] = {}
    out: list[tuple[Finding, str]] = []
    for finding in sorted(findings, key=Finding.sort_key):
        text = _line_text(repo, finding)
        key = (finding.rule, finding.path, text)
        occurrence = seen.get(key, 0)
        seen[key] = occurrence + 1
        digest = hashlib.sha256(
            "\0".join(
                [finding.rule, finding.path, text, str(occurrence)]
            ).encode()
        ).hexdigest()[:20]
        out.append((finding, digest))
    return out


def load(path: Path) -> set[str]:
    if not path.is_file():
        return set()
    with open(path, encoding="utf-8") as fh:
        data = json.load(fh)
    return {entry["fingerprint"] for entry in data.get("findings", [])}


def save(path: Path, repo: Repo, findings: list[Finding]) -> None:
    entries = [
        {
            "fingerprint": digest,
            "rule": finding.rule,
            "path": finding.path,
            "message": finding.message,
        }
        for finding, digest in fingerprints(repo, findings)
    ]
    payload = {"version": 1, "findings": entries}
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def split(
    repo: Repo, findings: list[Finding], known: set[str]
) -> tuple[list[Finding], list[Finding]]:
    """Partition into (new, baselined)."""
    new: list[Finding] = []
    old: list[Finding] = []
    for finding, digest in fingerprints(repo, findings):
        (old if digest in known else new).append(finding)
    return new, old
