#!/usr/bin/env python3
"""Repository-convention linter for the CAMEO simulator.

Machine-checks the conventions the codebase relies on but no compiler
enforces:

  1. Include guards in ``src/**/*.hh`` are named
     ``CAMEO_<DIR>_<FILE>_HH`` (path components under ``src/``,
     uppercased, non-alphanumerics mapped to ``_``), with the matching
     ``#define`` and a ``#endif // GUARD`` trailer.
  2. Every header under ``src/`` carries a Doxygen ``@file`` comment.
  3. No nondeterminism outside ``src/util/rng`` and the sweep engine's
     host-side stopwatch (``src/exp/stopwatch``): ``rand()``,
     ``srand()``, ``time()``, ``clock()``, ``std::random_device``, and
     the ``<chrono>`` wall clocks are banned in simulation code so runs
     stay bit-reproducible (google-benchmark owns timing in ``bench/``).
  4. Hygiene: no tabs, no trailing whitespace, files end with exactly
     one newline.
  5. No ``<unordered_map>``/``<unordered_set>`` in the hot-path
     directories ``src/vm`` and ``src/orgs``: per-access lookups there
     use ``util/flat_map.hh`` (open addressing, no per-node
     allocation). Cold-path exceptions go in ``HASH_MAP_ALLOWLIST``.
  6. No direct ``DramModule::access`` calls in the pipeline layers
     (``src/orgs``, ``src/core``, ``src/system``): device commands go
     through ``DramModule::request`` so the Queued timing mode sees
     every command (DESIGN.md §9). ``access`` remains only as the
     blocking shim inside ``src/dram`` and for tests. Exceptions go in
     ``DRAM_ACCESS_ALLOWLIST``.
  7. No direct ``SyntheticGenerator`` use in ``src/exp`` and ``bench``:
     sweep and bench code builds access streams through
     ``TraceArenaCache::instance().source()`` (or a ``SystemConfig``
     with ``useTraceArena``) so streams are recorded once and replayed
     everywhere (DESIGN.md §10). Benches that deliberately measure the
     raw generator go in ``GENERATOR_ALLOWLIST``.

Usage: ``python3 tools/lint.py [repo-root]``. Exits non-zero and prints
``file:line: message`` for every violation.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

CXX_SUFFIXES = {".hh", ".cc", ".cpp", ".hpp"}
SOURCE_DIRS = ("src", "tests", "bench", "examples")

# Files allowed to reach for entropy: the deterministic RNG wrappers,
# plus the sweep engine's host-side stopwatch (wall-clock telemetry for
# throughput reporting; its readings never feed simulation state).
NONDETERMINISM_EXEMPT = {
    "src/util/rng.hh",
    "src/util/rng.cc",
    "src/exp/stopwatch.hh",
    "src/exp/stopwatch.cc",
}

# (human name, regex) for banned nondeterminism sources. Applied to
# comment- and string-stripped code, case-sensitively.
BANNED_PATTERNS = [
    ("rand()", re.compile(r"(?<![\w:])s?rand\s*\(")),
    ("time()/clock()", re.compile(r"(?<![\w:.>])(?:time|clock)\s*\(")),
    ("std::random_device", re.compile(r"std\s*::\s*random_device")),
    (
        "<chrono> wall clock",
        re.compile(
            r"std\s*::\s*chrono\s*::\s*"
            r"(?:system_clock|steady_clock|high_resolution_clock)"
        ),
    ),
]


# Directories whose per-access data structures must use util/flat_map.hh
# rather than the node-allocating std hash containers.
HOT_PATH_DIRS = ("src/vm", "src/orgs")

# Hot-path files allowed to keep std hash containers (cold-path setup
# code only). Currently empty; add "src/vm/foo.cc" style paths here.
HASH_MAP_ALLOWLIST: set[str] = set()

HASH_MAP_INCLUDE_RE = re.compile(
    r"^\s*#\s*include\s*<(unordered_map|unordered_set)>"
)


# Layers that must reach DRAM devices through DramModule::request (the
# transaction pipeline's entry point) rather than the blocking
# DramModule::access shim.
DRAM_PIPELINE_DIRS = ("src/orgs", "src/core", "src/system")

# Pipeline-layer files allowed to call DramModule::access directly
# (none today; the blocking shim lives in src/dram and is out of
# scope). Add "src/orgs/foo.cc" style paths here.
DRAM_ACCESS_ALLOWLIST: set[str] = set()

# DRAM modules are uniformly named stacked_/offchip_ or reached via the
# stackedModule()/offchipModule() accessors; match .access( on any of
# those spellings.
DRAM_ACCESS_RE = re.compile(
    r"(?:(?:stacked_|offchip_)\s*\.|stackedModule\(\)\s*->"
    r"|offchipModule\(\)\s*\.)\s*access\s*\("
)


# Layers that must obtain access streams from the trace-arena cache
# (record once, replay everywhere) instead of constructing generators.
GENERATOR_BAN_DIRS = ("src/exp", "bench")

# Files allowed to construct SyntheticGenerator directly: benches whose
# whole point is measuring the raw generator against arena replay.
GENERATOR_ALLOWLIST = {
    "bench/micro_components.cc",
    "bench/perf_arena.cc",
}

GENERATOR_RE = re.compile(r"\bSyntheticGenerator\b")


def strip_comments_and_strings(code: str) -> str:
    """Blank out comments and string/char literals, preserving line
    structure so reported line numbers stay accurate."""
    out: list[str] = []
    i, n = 0, len(code)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = code[i]
        nxt = code[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
            elif c == "'":
                state = "char"
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        i += 1
    return "".join(out)


def expected_guard(rel: Path) -> str:
    """CAMEO_<DIR>_<FILE>_HH for a path like src/dir/file.hh."""
    parts = rel.parts[1:-1] + (rel.stem,)  # drop leading "src"
    mangled = "_".join(re.sub(r"[^A-Za-z0-9]", "_", p) for p in parts)
    return f"CAMEO_{mangled.upper()}_HH"


def check_include_guard(rel: Path, text: str, problems: list[str]) -> None:
    guard = expected_guard(rel)
    lines = text.splitlines()
    ifndef_re = re.compile(r"^\s*#\s*ifndef\s+(\S+)")
    ifndef_line = None
    for lineno, line in enumerate(lines, 1):
        m = ifndef_re.match(line)
        if m:
            ifndef_line = (lineno, m.group(1))
            break
    if ifndef_line is None:
        problems.append(f"{rel}:1: missing include guard (#ifndef {guard})")
        return
    lineno, actual = ifndef_line
    if actual != guard:
        problems.append(
            f"{rel}:{lineno}: include guard '{actual}' should be '{guard}'"
        )
        return
    if not re.search(rf"^\s*#\s*define\s+{re.escape(guard)}\b", text, re.M):
        problems.append(f"{rel}:{lineno}: missing '#define {guard}'")
    if not re.search(rf"#\s*endif\s*//\s*{re.escape(guard)}\s*$", text):
        problems.append(
            f"{rel}:{len(lines)}: missing trailing '#endif // {guard}'"
        )


def check_file_doc(rel: Path, text: str, problems: list[str]) -> None:
    head = "\n".join(text.splitlines()[:10])
    if "@file" not in head:
        problems.append(
            f"{rel}:1: missing Doxygen '@file' comment at top of header"
        )


def check_nondeterminism(rel: Path, text: str, problems: list[str]) -> None:
    if rel.as_posix() in NONDETERMINISM_EXEMPT:
        return
    stripped = strip_comments_and_strings(text)
    for lineno, line in enumerate(stripped.splitlines(), 1):
        for name, pattern in BANNED_PATTERNS:
            if pattern.search(line):
                problems.append(
                    f"{rel}:{lineno}: banned nondeterminism source "
                    f"{name}; use util/rng (seeded, reproducible)"
                )


def check_hot_path_containers(
    rel: Path, text: str, problems: list[str]
) -> None:
    posix = rel.as_posix()
    if not posix.startswith(tuple(d + "/" for d in HOT_PATH_DIRS)):
        return
    if posix in HASH_MAP_ALLOWLIST:
        return
    for lineno, line in enumerate(text.splitlines(), 1):
        m = HASH_MAP_INCLUDE_RE.match(line)
        if m:
            problems.append(
                f"{rel}:{lineno}: <{m.group(1)}> in hot-path directory; "
                f"use util/flat_map.hh (or add to HASH_MAP_ALLOWLIST "
                f"for cold-path code)"
            )


def check_dram_pipeline(rel: Path, text: str, problems: list[str]) -> None:
    posix = rel.as_posix()
    if not posix.startswith(tuple(d + "/" for d in DRAM_PIPELINE_DIRS)):
        return
    if posix in DRAM_ACCESS_ALLOWLIST:
        return
    stripped = strip_comments_and_strings(text)
    for lineno, line in enumerate(stripped.splitlines(), 1):
        if DRAM_ACCESS_RE.search(line):
            problems.append(
                f"{rel}:{lineno}: direct DramModule::access call in "
                f"pipeline layer; use DramModule::request (or add to "
                f"DRAM_ACCESS_ALLOWLIST)"
            )


def check_generator_use(rel: Path, text: str, problems: list[str]) -> None:
    posix = rel.as_posix()
    if not posix.startswith(tuple(d + "/" for d in GENERATOR_BAN_DIRS)):
        return
    if posix in GENERATOR_ALLOWLIST:
        return
    stripped = strip_comments_and_strings(text)
    for lineno, line in enumerate(stripped.splitlines(), 1):
        if GENERATOR_RE.search(line):
            problems.append(
                f"{rel}:{lineno}: direct SyntheticGenerator use in "
                f"sweep/bench code; get streams from "
                f"TraceArenaCache::instance().source() (or add to "
                f"GENERATOR_ALLOWLIST)"
            )


def check_hygiene(rel: Path, text: str, problems: list[str]) -> None:
    for lineno, line in enumerate(text.splitlines(), 1):
        if "\t" in line:
            problems.append(f"{rel}:{lineno}: tab character (use spaces)")
        if line != line.rstrip():
            problems.append(f"{rel}:{lineno}: trailing whitespace")
    if text and not text.endswith("\n"):
        problems.append(f"{rel}: missing newline at end of file")
    if text.endswith("\n\n"):
        problems.append(f"{rel}: multiple blank lines at end of file")


def main(argv: list[str]) -> int:
    root = Path(argv[1]) if len(argv) > 1 else Path(__file__).parent.parent
    root = root.resolve()

    files: list[Path] = []
    for top in SOURCE_DIRS:
        base = root / top
        if base.is_dir():
            files.extend(
                p
                for p in sorted(base.rglob("*"))
                if p.suffix in CXX_SUFFIXES and p.is_file()
            )

    problems: list[str] = []
    for path in files:
        rel = path.relative_to(root)
        text = path.read_text(encoding="utf-8")
        if rel.parts[0] == "src" and rel.suffix == ".hh":
            check_include_guard(rel, text, problems)
            check_file_doc(rel, text, problems)
        check_nondeterminism(rel, text, problems)
        check_hot_path_containers(rel, text, problems)
        check_dram_pipeline(rel, text, problems)
        check_generator_use(rel, text, problems)
        check_hygiene(rel, text, problems)

    for problem in problems:
        print(problem)
    print(
        f"lint.py: {len(files)} files checked, {len(problems)} problem(s)",
        file=sys.stderr,
    )
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
