#!/usr/bin/env python3
"""Thin compatibility shim over ``tools/analyze``.

The seven repository-convention rules that used to live here (include
guards, ``@file`` docs, nondeterminism bans, hygiene, hot-path
containers, DRAM pipeline entry, generator use) are now the
``conventions`` pass of the multi-pass analyzer in ``tools/analyze``,
which also layers the include graph, cross-checks the stats schema,
taints entropy transitively, and audits mutation coverage.

``python3 tools/lint.py [repo-root]`` therefore runs the full analyzer
so one tool owns the conventions. To run only the legacy rules:

    python3 tools/analyze --passes conventions
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from analyze.cli import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
