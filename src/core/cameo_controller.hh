/**
 * @file
 * CameoController: the hardware mechanism of the paper (Sections IV-V).
 *
 * Responsibilities per L3 miss / writeback:
 *  1. locate the line via the Line Location Table (with the latency
 *     behaviour of the configured LLT design: Ideal, Embedded, or
 *     Co-Located, Figures 6-8);
 *  2. service the access from stacked or off-chip DRAM, using the Line
 *     Location Predictor to overlap off-chip fetches with the LEAD read
 *     when configured (Figure 10);
 *  3. on an off-chip-resident access, swap the line with the group's
 *     stacked resident (writeback + fill through the existing queues)
 *     and update the LLT.
 *
 * Modelling notes (see DESIGN.md section 3):
 *  - The Embedded LLT's reserved region is modelled as extra stacked
 *    device lines above the data region, so LLT reads/writes contend
 *    for real banks and buses; its capacity cost is charged by the
 *    organization as a reduction of OS-visible bytes.
 *  - The Co-Located design reads/writes 80-byte LEAD bursts and uses a
 *    31-lines-per-row stacked address map; its 1/32 capacity cost is
 *    likewise charged by the organization.
 */

#ifndef CAMEO_CORE_CAMEO_CONTROLLER_HH
#define CAMEO_CORE_CAMEO_CONTROLLER_HH

#include <cstdint>
#include <functional>
#include <string>

#include "core/congruence_group.hh"
#include "core/lead_layout.hh"
#include "core/line_location_predictor.hh"
#include "core/line_location_table.hh"
#include "dram/dram_module.hh"
#include "snapshot/snapshot.hh"
#include "stats/counter.hh"
#include "stats/registry.hh"
#include "util/types.hh"

namespace cameo
{

/** Which LLT design the controller models (Figure 6 / Section IV). */
enum class LltKind
{
    Ideal,     ///< Zero-latency, zero-storage oracle LLT.
    Embedded,  ///< LLT in a reserved stacked region; serial lookup.
    CoLocated, ///< LLT entry co-located with data (LEAD, Figure 7).
};

/** Printable name of an LLT design. */
const char *lltKindName(LltKind kind);

/** Static configuration of a CameoController. */
struct CameoParams
{
    LltKind llt = LltKind::CoLocated;
    PredictorKind predictor = PredictorKind::Llp;
    std::uint32_t numCores = 8;

    /** LLR entries per core (paper: 256; exposed for ablations). */
    std::uint32_t llpTableEntries = LineLocationPredictor::kTableEntries;
};

/** The CAMEO line-swapping memory controller. */
class CameoController
{
  public:
    /**
     * @param params       LLT design and predictor choice.
     * @param stacked      Stacked DRAM module. For the Embedded design
     *                     its capacity must include lltReserveLines()
     *                     extra lines above @p stacked_data_lines.
     * @param offchip      Off-chip DRAM module.
     * @param stacked_data_lines Stacked data capacity in lines
     *                     (= number of congruence groups; power of 2).
     * @param total_lines  OS-visible line span covered by group math
     *                     (stacked_data_lines * K).
     */
    CameoController(const CameoParams &params, DramModule &stacked,
                    DramModule &offchip, std::uint64_t stacked_data_lines,
                    std::uint64_t total_lines);

    CameoController(const CameoController &) = delete;
    CameoController &operator=(const CameoController &) = delete;

    /**
     * Service one OS-physical line access.
     *
     * @param now      Request time.
     * @param line     OS-physical line address (the "Requested
     *                 Address" of the paper).
     * @param is_write L3 writeback (true) or demand fill (false).
     * @param pc       Missing instruction's address (feeds the LLP).
     * @param core     Requesting core (selects the LLR table).
     * @return Data-arrival time for reads; acceptance time for writes.
     */
    Tick access(Tick now, LineAddr line, bool is_write, InstAddr pc,
                std::uint32_t core);

    /**
     * Functional-fidelity twin of access() (DESIGN.md §13): identical
     * LLT swap decisions (same swap-filter consultation order), LLP
     * prediction + training, and serviced/swap counters — but no DRAM
     * requests and no speculative-fetch squash accounting (wasted /
     * squashed fetches are properties of queue occupancy and are only
     * defined in detailed mode).
     */
    void accessFunctional(LineAddr line, bool is_write, InstAddr pc,
                          std::uint32_t core);

    /**
     * Stacked device lines an Embedded LLT reserves for @p data_lines
     * data lines with group size @p group_size.
     */
    static std::uint64_t lltReserveLines(std::uint64_t data_lines,
                                         std::uint32_t group_size);

    /**
     * Optional swap admission filter (Section VI-D's closing remark:
     * "if page frequency information is available, CAMEO can retain
     * lines from only heavily used pages in stacked DRAM"). When set
     * and it returns false for an off-chip-serviced line, the line is
     * serviced in place — no swap, no victim writeback.
     */
    using SwapFilter = std::function<bool(LineAddr line)>;
    void setSwapFilter(SwapFilter filter) { swapFilter_ = std::move(filter); }

    /** Off-chip services that skipped the swap (filter said no). */
    const Counter &swapsFiltered() const { return swapsFiltered_; }

    /**
     * Exhaustively audit the LLT permutation invariant (Section IV-B:
     * every group's entry is a permutation of its K locations).
     * Violations are reported to the global AuditSink.
     *
     * @return Number of groups violating the invariant (0 = sound).
     */
    std::uint64_t auditLlt() const;

    const LineLocationTable &llt() const { return llt_; }
    const LineLocationPredictor &predictor() const { return predictor_; }
    const CongruenceGroups &groups() const { return groups_; }
    LltKind lltKind() const { return params_.llt; }

    void registerStats(StatRegistry &registry);

    /**
     * Checkpoint the LLT and predictor tables. Counters are registered
     * stats (stats section); the swap filter is a configuration-derived
     * callback the owning organization re-installs at construction.
     */
    void save(SnapshotWriter &w) const
    {
        llt_.save(w);
        predictor_.save(w);
    }
    void restore(SnapshotReader &r)
    {
        llt_.restore(r);
        predictor_.restore(r);
    }

    const Counter &servicedStacked() const { return servicedStacked_; }
    const Counter &servicedOffchip() const { return servicedOffchip_; }
    const Counter &swaps() const { return swaps_; }
    const Counter &wastedFetches() const { return wastedFetches_; }
    const Counter &squashedFetches() const { return squashedFetches_; }

  private:
    /** Stacked device line holding @p group's data. */
    std::uint64_t stackedDataLine(std::uint64_t group) const { return group; }

    /** Stacked device line holding @p group's LLT entry (Embedded). */
    std::uint64_t lltLine(std::uint64_t group) const;

    /** Data burst size for stacked accesses (80B LEAD if co-located). */
    std::uint32_t stackedBurst() const
    {
        return params_.llt == LltKind::CoLocated ? LeadLayout::kLeadBurstBytes
                                                 : kLineBytes;
    }

    /**
     * Move the line at (group, slot, loc != 0) into stacked memory,
     * moving the current stacked resident out to @p loc. Issues the
     * writeback/fill traffic at @p when and updates the LLT.
     *
     * @param victim_in_hand True when the stacked resident's data was
     *        already read (Co-Located LEAD read), so no extra stacked
     *        read is needed.
     */
    void swapIn(Tick when, std::uint64_t group, std::uint32_t slot,
                std::uint32_t loc, bool victim_in_hand);

    /** The architectural half of swapIn(): LLT update + swap count. */
    void swapSlotIn(std::uint64_t group, std::uint32_t slot);

    /** Update a written-back line in place (no swap). */
    Tick writeback(Tick now, std::uint64_t group, std::uint32_t loc);

    /** Consult the swap admission filter (counts rejections). */
    bool shouldSwap(std::uint64_t group, std::uint32_t slot);

    Tick accessIdeal(Tick now, std::uint64_t group, std::uint32_t slot,
                     std::uint32_t loc, bool is_write);
    Tick accessEmbedded(Tick now, std::uint64_t group, std::uint32_t slot,
                        std::uint32_t loc, bool is_write);
    Tick accessCoLocated(Tick now, std::uint64_t group, std::uint32_t slot,
                         std::uint32_t loc, bool is_write, InstAddr pc,
                         std::uint32_t core);

    CameoParams params_;
    DramModule &stacked_;
    DramModule &offchip_;
    CongruenceGroups groups_;
    LineLocationTable llt_;
    LineLocationPredictor predictor_;
    std::uint64_t lltRegionBase_;   ///< First LLT line (Embedded).
    std::uint32_t lltEntriesPerLine_;

    Counter servicedStacked_;
    Counter servicedOffchip_;
    Counter swaps_;
    Counter lltLookups_;
    Counter wastedFetches_;
    Counter squashedFetches_;
    Counter swapsFiltered_;
    SwapFilter swapFilter_;
};

} // namespace cameo

#endif // CAMEO_CORE_CAMEO_CONTROLLER_HH
