#include "core/line_location_predictor.hh"

#include <cassert>

#include "util/bitops.hh"

namespace cameo
{

const char *
predictorKindName(PredictorKind kind)
{
    switch (kind) {
      case PredictorKind::Sam:
        return "SAM";
      case PredictorKind::Llp:
        return "LLP";
      case PredictorKind::Perfect:
        return "Perfect";
    }
    return "Unknown";
}

LineLocationPredictor::LineLocationPredictor(PredictorKind kind,
                                             std::uint32_t num_cores,
                                             std::uint32_t group_size,
                                             std::uint32_t table_entries)
    : kind_(kind), numCores_(num_cores), groupSize_(group_size),
      tableEntries_(table_entries),
      table_(std::size_t{num_cores} * table_entries, 0)
{
    assert(num_cores != 0);
    assert(group_size >= 2 && group_size <= 16);
    assert(table_entries != 0);
    cases_.reserve(5);
    cases_.emplace_back("llp.case1", "in stacked, predicted stacked");
    cases_.emplace_back("llp.case2", "in stacked, predicted off-chip");
    cases_.emplace_back("llp.case3", "off-chip, predicted stacked");
    cases_.emplace_back("llp.case4", "off-chip, predicted correctly");
    cases_.emplace_back("llp.case5",
                        "off-chip, predicted off-chip but wrong");
}

std::uint32_t
LineLocationPredictor::indexOf(InstAddr pc) const
{
    // Instruction addresses are word-aligned; hash so nearby PCs spread
    // over the 8-bit index as the paper's "8-bit index" implies.
    return static_cast<std::uint32_t>(mix64(pc) % tableEntries_);
}

std::uint32_t
LineLocationPredictor::predict(std::uint32_t core, InstAddr pc,
                               std::uint32_t actual_loc) const
{
    assert(core < numCores_);
    switch (kind_) {
      case PredictorKind::Sam:
        return 0;
      case PredictorKind::Perfect:
        return actual_loc;
      case PredictorKind::Llp:
      default:
        return table_[std::size_t{core} * tableEntries_ + indexOf(pc)];
    }
}

void
LineLocationPredictor::update(std::uint32_t core, InstAddr pc,
                              std::uint32_t predicted,
                              std::uint32_t actual_loc)
{
    assert(core < numCores_ && actual_loc < groupSize_);
    cases_[static_cast<std::size_t>(classify(predicted, actual_loc))].inc();
    if (kind_ == PredictorKind::Llp) {
        table_[std::size_t{core} * tableEntries_ + indexOf(pc)] =
            static_cast<std::uint8_t>(actual_loc);
    }
}

PredictionCase
LineLocationPredictor::classify(std::uint32_t predicted,
                                std::uint32_t actual)
{
    if (actual == 0) {
        return predicted == 0 ? PredictionCase::StackedPredStacked
                              : PredictionCase::StackedPredOffchip;
    }
    if (predicted == 0)
        return PredictionCase::OffchipPredStacked;
    return predicted == actual ? PredictionCase::OffchipPredCorrect
                               : PredictionCase::OffchipPredWrong;
}

std::uint64_t
LineLocationPredictor::totalPredictions() const
{
    std::uint64_t total = 0;
    for (const Counter &c : cases_)
        total += c.value();
    return total;
}

double
LineLocationPredictor::accuracy() const
{
    const std::uint64_t total = totalPredictions();
    if (total == 0)
        return 0.0;
    const std::uint64_t good =
        caseCount(PredictionCase::StackedPredStacked) +
        caseCount(PredictionCase::OffchipPredCorrect);
    return static_cast<double>(good) / static_cast<double>(total);
}

std::uint64_t
LineLocationPredictor::storageBytes() const
{
    // Each LLR holds ceil(log2(K)) bits; the paper's K = 4 gives 2 bits
    // per entry -> 64 bytes per core, 512 bytes at 8 cores.
    const unsigned bits = isPowerOfTwo(groupSize_)
                              ? exactLog2(groupSize_)
                              : floorLog2(groupSize_) + 1;
    return divCeil(std::uint64_t{numCores_} * tableEntries_ * bits, 8);
}

void
LineLocationPredictor::save(SnapshotWriter &w) const
{
    w.u8(static_cast<std::uint8_t>(kind_));
    w.u32(numCores_);
    w.u32(tableEntries_);
    w.vecU8(table_);
}

void
LineLocationPredictor::restore(SnapshotReader &r)
{
    const std::uint8_t kind = r.u8();
    const std::uint32_t cores = r.u32();
    const std::uint32_t entries = r.u32();
    if (!r.ok())
        return;
    if (kind != static_cast<std::uint8_t>(kind_) || cores != numCores_ ||
        entries != tableEntries_) {
        r.fail("llp: predictor configuration mismatch (kind/cores/entries)");
        return;
    }
    std::vector<std::uint8_t> table;
    r.vecU8(table);
    if (!r.ok())
        return;
    if (table.size() != table_.size()) {
        r.fail("llp: LLR table size mismatch");
        return;
    }
    table_ = std::move(table);
}

void
LineLocationPredictor::registerStats(StatRegistry &registry,
                                     const std::string &prefix)
{
    // Counters carry fixed names; prefix is informational only and the
    // registry requires uniqueness, so a System registers at most one
    // predictor. (Benches aggregate across systems by reading values.)
    (void)prefix;
    for (Counter &c : cases_)
        registry.add(c);
}

} // namespace cameo
