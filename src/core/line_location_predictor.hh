/**
 * @file
 * Line Location Predictor (Section V).
 *
 * The LLP guesses a line's current location (one of the K positions of
 * its congruence group) before the Line Location Table is consulted, so
 * that a predicted-off-chip access can start in parallel with the
 * stacked-DRAM LEAD read. Unlike DRAM-cache hit predictors, the choice
 * is K-ary, not binary.
 *
 * Three variants cover the paper's Figure 12 and Table III:
 *  - SAM      ("Serial Access Memory"): no prediction — always assume
 *             stacked, i.e. always serialize off-chip accesses;
 *  - LLP      : per-core 256-entry table of 2-bit Line Location
 *             Registers, indexed by (hashed) instruction address, each
 *             recording the location the LLT reported last time
 *             (last-time prediction); 64 bytes per core of state;
 *  - Perfect  : oracle, always correct.
 *
 * Table III's five outcome cases are counted here so the accuracy bench
 * can print the same breakdown.
 */

#ifndef CAMEO_CORE_LINE_LOCATION_PREDICTOR_HH
#define CAMEO_CORE_LINE_LOCATION_PREDICTOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "snapshot/snapshot.hh"
#include "stats/counter.hh"
#include "stats/registry.hh"
#include "util/types.hh"

namespace cameo
{

/** Predictor flavour (Figure 12's three curves). */
enum class PredictorKind
{
    Sam,     ///< No prediction: always access serially.
    Llp,     ///< PC-indexed last-time location predictor.
    Perfect, ///< Oracle.
};

/** Printable name of a predictor kind. */
const char *predictorKindName(PredictorKind kind);

/** Table III outcome classification of one prediction. */
enum class PredictionCase : std::uint8_t
{
    StackedPredStacked = 0,  ///< Case 1: correct, in stacked.
    StackedPredOffchip = 1,  ///< Case 2: wasted off-chip fetch.
    OffchipPredStacked = 2,  ///< Case 3: serialized (latency).
    OffchipPredCorrect = 3,  ///< Case 4: correct, parallel fetch.
    OffchipPredWrong = 4,    ///< Case 5: wasted fetch + serialization.
};

/** The K-ary line location predictor with per-core LLR tables. */
class LineLocationPredictor
{
  public:
    /** Entries per core's LLR table (256 in the paper: 8-bit index). */
    static constexpr std::uint32_t kTableEntries = 256;

    /**
     * @param kind          Variant (SAM / LLP / Perfect).
     * @param num_cores     One LLR table per core.
     * @param group_size    K (locations per congruence group).
     * @param table_entries LLR entries per core (power of two; the
     *                      paper uses 256 — exposed for ablations).
     */
    LineLocationPredictor(PredictorKind kind, std::uint32_t num_cores,
                          std::uint32_t group_size,
                          std::uint32_t table_entries = kTableEntries);

    std::uint32_t tableEntries() const { return tableEntries_; }

    LineLocationPredictor(const LineLocationPredictor &) = delete;
    LineLocationPredictor &operator=(const LineLocationPredictor &) = delete;

    /**
     * Predict the location of the line @p pc is about to access.
     * For the Perfect variant, @p actual_loc is returned; SAM always
     * returns 0 (stacked).
     */
    std::uint32_t predict(std::uint32_t core, InstAddr pc,
                          std::uint32_t actual_loc) const;

    /**
     * Train with the LLT-verified location and record the Table III
     * outcome for the (prediction, actual) pair.
     */
    void update(std::uint32_t core, InstAddr pc, std::uint32_t predicted,
                std::uint32_t actual_loc);

    /** Classify a (predicted, actual) pair per Table III. */
    static PredictionCase classify(std::uint32_t predicted,
                                   std::uint32_t actual);

    PredictorKind kind() const { return kind_; }

    /** Count of outcomes in @p c so far. */
    std::uint64_t caseCount(PredictionCase c) const
    {
        return cases_[static_cast<std::size_t>(c)].value();
    }

    /** Total predictions made. */
    std::uint64_t totalPredictions() const;

    /** Fraction of predictions in cases 1 and 4 (Table III accuracy). */
    double accuracy() const;

    /** Storage cost in bytes (paper: 64B/core tables; 512B total). */
    std::uint64_t storageBytes() const;

    void registerStats(StatRegistry &registry, const std::string &prefix);

    /**
     * Checkpoint the LLR tables. Kind/geometry are structural and
     * verified on restore; the Table III case counters are registered
     * stats and travel in the snapshot's stats section.
     */
    void save(SnapshotWriter &w) const;
    void restore(SnapshotReader &r);

  private:
    std::uint32_t indexOf(InstAddr pc) const;

    PredictorKind kind_;
    std::uint32_t numCores_;
    std::uint32_t groupSize_;
    std::uint32_t tableEntries_;

    /** numCores_ x kTableEntries 2-bit LLRs (stored bytewise). */
    std::vector<std::uint8_t> table_;

    std::vector<Counter> cases_;
};

} // namespace cameo

#endif // CAMEO_CORE_LINE_LOCATION_PREDICTOR_HH
