/**
 * @file
 * Congruence-group address arithmetic (Section IV-A of the paper).
 *
 * With N lines of stacked memory and K*N lines of total OS-visible
 * memory, the lines {g, g+N, g+2N, ...} form congruence group g: they
 * contend for the single stacked slot of that group, exactly like lines
 * contending for a set in a direct-mapped cache. CAMEO only ever swaps
 * lines within a group, so the group index of a line never changes; the
 * *slot* (which member of the group the OS thinks the line is) is the
 * thing the Line Location Table permutes.
 *
 * Nomenclature used throughout the core library:
 *  - group:   line & (N-1)                — the paper's "bottom log2(N)
 *             bits identify the Congruence Group";
 *  - slot:    line >> log2(N)             — which member of the group
 *             (0 = the member whose home is stacked memory);
 *  - location: where a member currently lives: 0 = stacked, p >= 1 =
 *             off-chip device line (p-1)*N + group.
 */

#ifndef CAMEO_CORE_CONGRUENCE_GROUP_HH
#define CAMEO_CORE_CONGRUENCE_GROUP_HH

#include <cstdint>

#include "util/bitops.hh"
#include "util/types.hh"

namespace cameo
{

/** Address arithmetic for congruence groups. */
class CongruenceGroups
{
  public:
    /**
     * @param stacked_lines Stacked-memory capacity in lines (power of
     *                      two; this is the number of groups).
     * @param total_lines   OS-visible capacity in lines; must be a
     *                      multiple of stacked_lines.
     */
    CongruenceGroups(std::uint64_t stacked_lines, std::uint64_t total_lines);

    /** Group of an OS-physical line. */
    std::uint64_t groupOf(LineAddr line) const { return line & groupMask_; }

    /** Slot (group member index) of an OS-physical line. */
    std::uint32_t slotOf(LineAddr line) const
    {
        return static_cast<std::uint32_t>(line >> groupShift_);
    }

    /** Reassemble the OS-physical line from (group, slot). */
    LineAddr lineOf(std::uint64_t group, std::uint32_t slot) const
    {
        return (std::uint64_t{slot} << groupShift_) | group;
    }

    /**
     * Off-chip device line of location @p loc (>= 1) in @p group.
     * Location 0 is stacked and has no off-chip device line.
     */
    std::uint64_t offchipLineOf(std::uint64_t group,
                                std::uint32_t loc) const
    {
        return std::uint64_t{loc - 1} * numGroups_ + group;
    }

    /** Number of congruence groups (= stacked lines). */
    std::uint64_t numGroups() const { return numGroups_; }

    /** Members per group (4 in the paper's 4GB+12GB configuration). */
    std::uint32_t groupSize() const { return groupSize_; }

    /** Total OS-visible lines covered. */
    std::uint64_t totalLines() const
    {
        return numGroups_ * std::uint64_t{groupSize_};
    }

  private:
    std::uint64_t numGroups_;
    std::uint64_t groupMask_;
    unsigned groupShift_;
    std::uint32_t groupSize_;
};

} // namespace cameo

#endif // CAMEO_CORE_CONGRUENCE_GROUP_HH
