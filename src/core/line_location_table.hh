/**
 * @file
 * Line Location Table (Section IV-B).
 *
 * One entry per congruence group, recording where each member (slot)
 * of the group currently lives. An entry is a permutation of the
 * locations {0..K-1}: location 0 is the stacked slot, locations 1..K-1
 * are off-chip. For the paper's K = 4 an entry is exactly one byte
 * (four 2-bit fields); this class stores 4 bits per field for
 * generality up to K = 16 while reporting the paper-accurate encoded
 * size separately.
 *
 * The class is purely functional bookkeeping — where the entry is
 * *stored* (SRAM / embedded region of stacked DRAM / co-located LEAD)
 * and what latency its lookup costs is the CameoController's business.
 */

#ifndef CAMEO_CORE_LINE_LOCATION_TABLE_HH
#define CAMEO_CORE_LINE_LOCATION_TABLE_HH

#include <cstdint>
#include <vector>

#include "snapshot/snapshot.hh"
#include "util/types.hh"

namespace cameo
{

/** Per-group location bookkeeping for every line in the system. */
class LineLocationTable
{
  public:
    /**
     * @param num_groups Number of congruence groups (stacked lines).
     * @param group_size Members per group (K; 4 in the paper).
     *
     * Entries start as the identity mapping: slot i at location i.
     */
    LineLocationTable(std::uint64_t num_groups, std::uint32_t group_size);

    LineLocationTable(const LineLocationTable &) = delete;
    LineLocationTable &operator=(const LineLocationTable &) = delete;

    /** Current location of @p slot in @p group. */
    std::uint32_t locationOf(std::uint64_t group, std::uint32_t slot) const;

    /** Which slot's line currently sits at @p loc in @p group. */
    std::uint32_t slotAt(std::uint64_t group, std::uint32_t loc) const;

    /**
     * Swap the locations of two slots in a group (the LLT update that
     * accompanies every CAMEO line swap).
     */
    void swapSlots(std::uint64_t group, std::uint32_t slot_a,
                   std::uint32_t slot_b);

    /** True if the entry for @p group is a valid permutation. */
    bool verifyGroup(std::uint64_t group) const;

    /**
     * Fault injection: overwrite @p slot's location field with @p loc,
     * bypassing the swap discipline (and therefore able to break the
     * permutation invariant). Exists so the audit tests can prove that
     * LltAuditor catches corruption; production code must never call
     * it.
     */
    void poke(std::uint64_t group, std::uint32_t slot, std::uint32_t loc);

    std::uint64_t numGroups() const { return numGroups_; }
    std::uint32_t groupSize() const { return groupSize_; }

    /**
     * Paper-accurate encoded size of the whole table in bytes: K fields
     * of ceil(log2(K)) bits per group (64MB for the 16GB system).
     */
    std::uint64_t encodedBytes() const;

    /** Number of groups whose mapping differs from identity. */
    std::uint64_t permutedGroups() const;

    /**
     * Checkpoint the full location array. Geometry (group count and K)
     * is structural; restore() verifies it and re-audits every restored
     * entry against the permutation invariant.
     */
    void save(SnapshotWriter &w) const;
    void restore(SnapshotReader &r);

  private:
    std::uint64_t index(std::uint64_t group, std::uint32_t slot) const
    {
        return group * groupSize_ + slot;
    }

    std::uint64_t numGroups_;
    std::uint32_t groupSize_;

    /** location of each slot, 4 bits used per entry, stored bytewise. */
    std::vector<std::uint8_t> loc_;
};

} // namespace cameo

#endif // CAMEO_CORE_LINE_LOCATION_TABLE_HH
