/**
 * @file
 * LEAD (Location Entry And Data) row layout for the Co-Located LLT
 * (Section IV-D, Figure 7).
 *
 * Each 2KB stacked row holds 31 LEADs of 66 bytes (64B data + 1B
 * location-table entry + 1B reserved); the 32nd line's worth of space
 * funds the location entries. Reads use a burst of five on the 16-byte
 * stacked bus (80 bytes, of which 66 are used).
 *
 * The paper remaps a stacked line address X to its LEAD position with
 * [(X + X/31) - LinesIn32MB], computing the division by 31 with a few
 * adders via residue arithmetic (31 = 32 - 1). Both the remap and the
 * adder-only division are implemented and cross-checked here; the
 * timing path in CameoController models the same row-occupancy effect
 * by configuring the stacked module with 31 lines per row.
 */

#ifndef CAMEO_CORE_LEAD_LAYOUT_HH
#define CAMEO_CORE_LEAD_LAYOUT_HH

#include <cstdint>

#include "util/types.hh"

namespace cameo
{

/** Geometry and address remapping of the Co-Located LLT. */
class LeadLayout
{
  public:
    /** Data lines per physical stacked row before LEAD overhead. */
    static constexpr std::uint32_t kLinesPerRow = 32;

    /** LEADs that fit in a row after reserving location-entry space. */
    static constexpr std::uint32_t kLeadsPerRow = 31;

    /** Bytes in one LEAD: 64 data + 1 LTE + 1 reserved. */
    static constexpr std::uint32_t kLeadBytes = 66;

    /** Bus burst that fetches one LEAD: 5 beats x 16B = 80 bytes. */
    static constexpr std::uint32_t kLeadBurstBytes = 80;

    /**
     * @param stacked_lines Physical stacked capacity in lines.
     */
    explicit LeadLayout(std::uint64_t stacked_lines);

    /**
     * Usable stacked capacity in LEAD slots: 31/32 of physical
     * (the 97% useful capacity of the paper).
     */
    std::uint64_t usableLines() const { return usableLines_; }

    /** Physical lines sacrificed to hold location entries. */
    std::uint64_t overheadLines() const
    {
        return stackedLines_ - usableLines_;
    }

    /**
     * Physical stacked line that stores LEAD slot @p x (the paper's
     * X + X/31 remap, before the OS-visibility offset).
     * Precondition: x < usableLines().
     */
    std::uint64_t physicalLineOf(std::uint64_t x) const;

    /**
     * Division by 31 using only shifts and adds, exploiting
     * 31 = 32 - 1: since x = 31q + r, q = (x - r)/31 where
     * r = x mod 31 is computable by summing base-32 digits (residue
     * arithmetic). Returns x / 31 exactly.
     */
    static std::uint64_t adderOnlyDivideBy31(std::uint64_t x);

    /** x mod 31 via base-32 digit summing (no division). */
    static std::uint32_t adderOnlyMod31(std::uint64_t x);

  private:
    std::uint64_t stackedLines_;
    std::uint64_t usableLines_;
};

} // namespace cameo

#endif // CAMEO_CORE_LEAD_LAYOUT_HH
