#include "core/lead_layout.hh"

#include <algorithm>
#include <cassert>

namespace cameo
{

namespace
{

/**
 * Divide by 31 with shifts and adds only, exploiting 31 = 32 - 1:
 * repeatedly fold x = 32*(x>>5) + (x&31) = 31*(x>>5) + ((x>>5)+(x&31)),
 * accumulating (x>>5) into the quotient. This is the "few adders using
 * residue arithmetic" the paper describes for the LEAD remap.
 */
struct DivMod31
{
    std::uint64_t quot;
    std::uint32_t rem;
};

DivMod31
divMod31(std::uint64_t x)
{
    std::uint64_t q = 0;
    while (x > 31) {
        q += x >> 5;
        x = (x >> 5) + (x & 31);
    }
    if (x == 31) {
        ++q;
        x = 0;
    }
    return DivMod31{q, static_cast<std::uint32_t>(x)};
}

} // namespace

LeadLayout::LeadLayout(std::uint64_t stacked_lines)
    : stackedLines_(stacked_lines),
      usableLines_(stacked_lines / kLinesPerRow * kLeadsPerRow +
                   // Partial trailing row (if capacity is not a
                   // multiple of 32 lines) still holds LEADs.
                   std::min<std::uint64_t>(stacked_lines % kLinesPerRow,
                                           kLeadsPerRow))
{
    assert(stacked_lines >= kLinesPerRow);
}

std::uint64_t
LeadLayout::physicalLineOf(std::uint64_t x) const
{
    assert(x < usableLines_);
    // Slot x lives in row x/31 at position x%31; each row occupies 32
    // physical lines. Equivalent to the paper's X + X/31 remap.
    const std::uint64_t result = x + x / kLeadsPerRow;
    assert(result == (x / kLeadsPerRow) * kLinesPerRow + x % kLeadsPerRow);
    return result;
}

std::uint32_t
LeadLayout::adderOnlyMod31(std::uint64_t x)
{
    return divMod31(x).rem;
}

std::uint64_t
LeadLayout::adderOnlyDivideBy31(std::uint64_t x)
{
    return divMod31(x).quot;
}

} // namespace cameo
