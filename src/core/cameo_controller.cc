#include "core/cameo_controller.hh"

#include <algorithm>
#include <cassert>

#include "check/llt_auditor.hh"
#include "util/bitops.hh"

namespace cameo
{

const char *
lltKindName(LltKind kind)
{
    switch (kind) {
      case LltKind::Ideal:
        return "Ideal-LLT";
      case LltKind::Embedded:
        return "Embedded-LLT";
      case LltKind::CoLocated:
        return "CoLocated-LLT";
    }
    return "Unknown";
}

namespace
{

/** Bytes of one LLT entry for a group of size K. */
std::uint32_t
entryBytes(std::uint32_t group_size)
{
    const unsigned bits_per_loc = isPowerOfTwo(group_size)
                                      ? exactLog2(group_size)
                                      : floorLog2(group_size) + 1;
    return static_cast<std::uint32_t>(
        divCeil(std::uint64_t{group_size} * bits_per_loc, 8));
}

} // namespace

std::uint64_t
CameoController::lltReserveLines(std::uint64_t data_lines,
                                 std::uint32_t group_size)
{
    const std::uint32_t per_line = kLineBytes / entryBytes(group_size);
    return divCeil(data_lines, per_line);
}

CameoController::CameoController(const CameoParams &params,
                                 DramModule &stacked, DramModule &offchip,
                                 std::uint64_t stacked_data_lines,
                                 std::uint64_t total_lines)
    : params_(params), stacked_(stacked), offchip_(offchip),
      groups_(stacked_data_lines, total_lines),
      llt_(stacked_data_lines, groups_.groupSize()),
      predictor_(params.predictor, params.numCores, groups_.groupSize(),
                 params.llpTableEntries),
      lltRegionBase_(stacked_data_lines),
      lltEntriesPerLine_(kLineBytes / entryBytes(groups_.groupSize())),
      servicedStacked_("cameo.servicedStacked",
                       "accesses whose line was in stacked DRAM"),
      servicedOffchip_("cameo.servicedOffchip",
                       "accesses whose line was in off-chip DRAM"),
      swaps_("cameo.swaps", "line swaps performed"),
      lltLookups_("cameo.lltLookups",
                  "separate LLT reads (Embedded design)"),
      wastedFetches_("cameo.wastedFetches",
                     "mispredicted off-chip fetches (bandwidth waste)"),
      squashedFetches_("cameo.squashedFetches",
                       "mispredicted fetches squashed before issue"),
      swapsFiltered_("cameo.swapsFiltered",
                     "off-chip services that skipped the swap (cold page)")
{
    // Off-chip must hold the K-1 non-stacked members of every group.
    assert(offchip_.capacityLines() >=
           (groups_.groupSize() - 1) * groups_.numGroups());
    if (params_.llt == LltKind::Embedded) {
        assert(stacked_.capacityLines() >=
               stacked_data_lines +
                   lltReserveLines(stacked_data_lines,
                                   groups_.groupSize()));
    } else {
        assert(stacked_.capacityLines() >= stacked_data_lines);
    }
}

std::uint64_t
CameoController::lltLine(std::uint64_t group) const
{
    return lltRegionBase_ + group / lltEntriesPerLine_;
}

bool
CameoController::shouldSwap(std::uint64_t group, std::uint32_t slot)
{
    if (!swapFilter_ || swapFilter_(groups_.lineOf(group, slot)))
        return true;
    swapsFiltered_.inc();
    return false;
}

Tick
CameoController::access(Tick now, LineAddr line, bool is_write, InstAddr pc,
                        std::uint32_t core)
{
    assert(line < groups_.totalLines());
    const std::uint64_t group = groups_.groupOf(line);
    const std::uint32_t slot = groups_.slotOf(line);
    const std::uint32_t loc = llt_.locationOf(group, slot);

    if (loc == 0)
        servicedStacked_.inc();
    else
        servicedOffchip_.inc();

    if (is_write)
        return writeback(now, group, loc);

    switch (params_.llt) {
      case LltKind::Ideal:
        return accessIdeal(now, group, slot, loc, false);
      case LltKind::Embedded:
        return accessEmbedded(now, group, slot, loc, false);
      case LltKind::CoLocated:
      default:
        return accessCoLocated(now, group, slot, loc, false, pc, core);
    }
}

void
CameoController::accessFunctional(LineAddr line, bool is_write, InstAddr pc,
                                  std::uint32_t core)
{
    assert(line < groups_.totalLines());
    const std::uint64_t group = groups_.groupOf(line);
    const std::uint32_t slot = groups_.slotOf(line);
    const std::uint32_t loc = llt_.locationOf(group, slot);

    if (loc == 0)
        servicedStacked_.inc();
    else
        servicedOffchip_.inc();

    // Writebacks update data in place (see writeback()): no LLT or
    // predictor state changes, only DRAM traffic — nothing to do.
    if (is_write)
        return;

    switch (params_.llt) {
      case LltKind::Ideal:
        if (loc != 0 && shouldSwap(group, slot))
            swapSlotIn(group, slot);
        return;
      case LltKind::Embedded:
        lltLookups_.inc();
        if (loc != 0 && shouldSwap(group, slot))
            swapSlotIn(group, slot);
        return;
      case LltKind::CoLocated:
      default: {
        // Same order as accessCoLocated: predict, then the swap-filter
        // consultation (its counter and any filter side effects come
        // before training), then train the LLP with the verified
        // location. The wasted/squashed speculative-fetch split is
        // queue-occupancy-dependent and detailed-only.
        const std::uint32_t pred = predictor_.predict(core, pc, loc);
        if (loc != 0 && shouldSwap(group, slot))
            swapSlotIn(group, slot);
        predictor_.update(core, pc, pred, loc);
        return;
      }
    }
}

Tick
CameoController::writeback(Tick now, std::uint64_t group, std::uint32_t loc)
{
    // L3 writebacks carry data for a line that was fetched earlier and
    // has since left the L3 — it is not "recently used", so CAMEO
    // updates it in place rather than swapping it in. The location
    // check and the data write both drain through the memory
    // controller's write queue (billed as write/bus traffic):
    //  - Ideal: location is free; write data at its current location.
    //  - Embedded / Co-Located: the LLT consultation is one stacked
    //    access folded into the write drain (for Co-Located it is the
    //    read half of the LEAD read-modify-write).
    if (params_.llt != LltKind::Ideal)
        stacked_.request(now, stackedDataLine(group), true, stackedBurst());

    if (loc == 0)
        return stacked_.request(now, stackedDataLine(group), true,
                               stackedBurst());
    return offchip_.request(now, groups_.offchipLineOf(group, loc), true,
                           kLineBytes);
}

void
CameoController::swapIn(Tick when, std::uint64_t group, std::uint32_t slot,
                        std::uint32_t loc, bool victim_in_hand)
{
    assert(loc != 0);
    const std::uint64_t off_line = groups_.offchipLineOf(group, loc);

    // Read the outgoing stacked resident unless the caller already has
    // it (Co-Located: the LEAD read returned it).
    if (!victim_in_hand)
        stacked_.request(when, stackedDataLine(group), false, stackedBurst());
    // Victim takes the incoming line's old off-chip location.
    offchip_.request(when, off_line, true, kLineBytes);
    // Incoming line is installed in the group's stacked slot (the LEAD
    // write also refreshes the co-located location entry).
    stacked_.request(when, stackedDataLine(group), true, stackedBurst());

    swapSlotIn(group, slot);
}

void
CameoController::swapSlotIn(std::uint64_t group, std::uint32_t slot)
{
    const std::uint32_t victim_slot = llt_.slotAt(group, 0);
    llt_.swapSlots(group, slot, victim_slot);
    swaps_.inc();
}

Tick
CameoController::accessIdeal(Tick now, std::uint64_t group,
                             std::uint32_t slot, std::uint32_t loc,
                             bool is_write)
{
    if (loc == 0) {
        return stacked_.request(now, stackedDataLine(group), is_write,
                               kLineBytes);
    }
    Tick done = now;
    if (!is_write) {
        done = offchip_.request(now, groups_.offchipLineOf(group, loc),
                               false, kLineBytes);
    }
    // Swap traffic goes through the writeback/fill queues; bill it at
    // request time (off the demand critical path).
    if (shouldSwap(group, slot))
        swapIn(now, group, slot, loc, /*victim_in_hand=*/false);
    return done;
}

Tick
CameoController::accessEmbedded(Tick now, std::uint64_t group,
                                std::uint32_t slot, std::uint32_t loc,
                                bool is_write)
{
    // Serial LLT lookup from the reserved stacked region.
    const Tick t_llt = stacked_.request(now, lltLine(group), false,
                                       kLineBytes);
    lltLookups_.inc();

    if (loc == 0) {
        return stacked_.request(t_llt, stackedDataLine(group), is_write,
                               kLineBytes);
    }
    Tick done = t_llt;
    if (!is_write) {
        done = offchip_.request(t_llt, groups_.offchipLineOf(group, loc),
                               false, kLineBytes);
    }
    if (shouldSwap(group, slot)) {
        swapIn(t_llt, group, slot, loc, /*victim_in_hand=*/false);
        // The swap moved lines, so the LLT entry must be rewritten.
        stacked_.request(t_llt, lltLine(group), true, kLineBytes);
    }
    return done;
}

Tick
CameoController::accessCoLocated(Tick now, std::uint64_t group,
                                 std::uint32_t slot, std::uint32_t loc,
                                 bool is_write, InstAddr pc,
                                 std::uint32_t core)
{
    // The LEAD read is the LLT lookup; it also returns the data of
    // whatever line currently occupies the group's stacked slot.
    const Tick t_lead = stacked_.request(now, stackedDataLine(group), false,
                                        stackedBurst());

    // Location prediction applies to demand reads only: writebacks
    // carry their own data and gain nothing from a parallel fetch.
    std::uint32_t pred = 0;
    if (!is_write) {
        pred = predictor_.predict(core, pc, loc);
        if (pred != 0 && pred != loc) {
            // Wrong off-chip guess (case 2 if the line is stacked,
            // case 5 if elsewhere off-chip). The LEAD read verifies
            // the prediction at t_lead; a speculative fetch still
            // queued at that point is squashed before it touches the
            // bus, so it only wastes bandwidth when the off-chip
            // memory could have serviced it immediately.
            const std::uint64_t spec =
                groups_.offchipLineOf(group, pred);
            if (offchip_.earliestServiceStart(spec) <= t_lead) {
                offchip_.request(now, spec, false, kLineBytes);
                wastedFetches_.inc();
            } else {
                squashedFetches_.inc();
            }
        }
    }

    Tick done;
    if (loc == 0) {
        // Data came with the LEAD.
        done = t_lead;
        if (is_write) {
            // Write the updated data back into the LEAD slot.
            stacked_.request(t_lead, stackedDataLine(group), true,
                            stackedBurst());
        }
    } else {
        const std::uint64_t off_line = groups_.offchipLineOf(group, loc);
        if (is_write) {
            done = t_lead;
        } else if (pred == loc) {
            // Correct prediction: off-chip fetch ran in parallel with
            // the LEAD read; completion still waits for the LLT
            // verification (the LEAD read).
            const Tick t_off = offchip_.request(now, off_line, false,
                                               kLineBytes);
            done = std::max(t_lead, t_off);
        } else {
            // Serialized: correct location only known after the LEAD.
            done = offchip_.request(t_lead, off_line, false, kLineBytes);
        }
        if (shouldSwap(group, slot))
            swapIn(now, group, slot, loc, /*victim_in_hand=*/true);
    }

    if (!is_write)
        predictor_.update(core, pc, pred, loc);
    return done;
}

std::uint64_t
CameoController::auditLlt() const
{
    LltAuditor auditor;
    return auditor.auditAll(llt_);
}

void
CameoController::registerStats(StatRegistry &registry)
{
    registry.add(servicedStacked_);
    registry.add(servicedOffchip_);
    registry.add(swaps_);
    registry.add(lltLookups_);
    registry.add(wastedFetches_);
    registry.add(squashedFetches_);
    registry.add(swapsFiltered_);
    predictor_.registerStats(registry, "cameo");
}

} // namespace cameo
