#include "core/congruence_group.hh"

#include <cassert>

namespace cameo
{

CongruenceGroups::CongruenceGroups(std::uint64_t stacked_lines,
                                   std::uint64_t total_lines)
    : numGroups_(stacked_lines)
{
    assert(isPowerOfTwo(stacked_lines) &&
           "stacked capacity must be a power of two lines");
    assert(total_lines % stacked_lines == 0 &&
           "total capacity must be a multiple of stacked capacity");
    groupMask_ = stacked_lines - 1;
    groupShift_ = exactLog2(stacked_lines);
    groupSize_ = static_cast<std::uint32_t>(total_lines / stacked_lines);
    assert(groupSize_ >= 2 && groupSize_ <= 16 &&
           "group size out of supported range");
}

} // namespace cameo
