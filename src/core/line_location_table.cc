#include "core/line_location_table.hh"

#include <cassert>

#include "check/audit.hh"
#include "util/bitops.hh"

namespace cameo
{

LineLocationTable::LineLocationTable(std::uint64_t num_groups,
                                     std::uint32_t group_size)
    : numGroups_(num_groups), groupSize_(group_size)
{
    assert(num_groups != 0);
    assert(group_size >= 2 && group_size <= 16);
    loc_.resize(num_groups * group_size);
    for (std::uint64_t g = 0; g < num_groups; ++g) {
        for (std::uint32_t s = 0; s < group_size; ++s)
            loc_[index(g, s)] = static_cast<std::uint8_t>(s);
    }
    CAMEO_AUDIT(verifyGroup(0),
                "LLT identity initialization is not a permutation");
}

std::uint32_t
LineLocationTable::locationOf(std::uint64_t group, std::uint32_t slot) const
{
    assert(group < numGroups_ && slot < groupSize_);
    return loc_[index(group, slot)];
}

std::uint32_t
LineLocationTable::slotAt(std::uint64_t group, std::uint32_t loc) const
{
    assert(group < numGroups_ && loc < groupSize_);
    for (std::uint32_t s = 0; s < groupSize_; ++s) {
        if (loc_[index(group, s)] == loc)
            return s;
    }
    assert(false && "LLT entry is not a permutation");
    return 0;
}

void
LineLocationTable::swapSlots(std::uint64_t group, std::uint32_t slot_a,
                             std::uint32_t slot_b)
{
    assert(group < numGroups_ && slot_a < groupSize_ && slot_b < groupSize_);
    std::swap(loc_[index(group, slot_a)], loc_[index(group, slot_b)]);
    // Incremental audit: a swap permutes an entry that was a
    // permutation, so the entry must still be one afterwards.
    CAMEO_AUDIT(verifyGroup(group),
                "LLT entry is not a permutation after swapSlots");
}

void
LineLocationTable::poke(std::uint64_t group, std::uint32_t slot,
                        std::uint32_t loc)
{
    assert(group < numGroups_ && slot < groupSize_);
    loc_[index(group, slot)] = static_cast<std::uint8_t>(loc);
}

bool
LineLocationTable::verifyGroup(std::uint64_t group) const
{
    assert(group < numGroups_);
    std::uint32_t seen = 0;
    for (std::uint32_t s = 0; s < groupSize_; ++s) {
        const std::uint32_t l = loc_[index(group, s)];
        if (l >= groupSize_)
            return false;
        if (seen & (1u << l))
            return false;
        seen |= 1u << l;
    }
    return seen == (1u << groupSize_) - 1;
}

std::uint64_t
LineLocationTable::encodedBytes() const
{
    const unsigned bits_per_field =
        isPowerOfTwo(groupSize_) ? exactLog2(groupSize_)
                                 : floorLog2(groupSize_) + 1;
    const std::uint64_t bits =
        numGroups_ * std::uint64_t{groupSize_} * bits_per_field;
    return divCeil(bits, 8);
}

void
LineLocationTable::save(SnapshotWriter &w) const
{
    w.u64(numGroups_);
    w.u32(groupSize_);
    w.vecU8(loc_);
}

void
LineLocationTable::restore(SnapshotReader &r)
{
    const std::uint64_t groups = r.u64();
    const std::uint32_t k = r.u32();
    if (!r.ok())
        return;
    if (groups != numGroups_ || k != groupSize_) {
        r.fail("llt: geometry mismatch: snapshot has " +
               std::to_string(groups) + " groups of " + std::to_string(k) +
               ", this table has " + std::to_string(numGroups_) +
               " groups of " + std::to_string(groupSize_));
        return;
    }
    std::vector<std::uint8_t> loc;
    r.vecU8(loc);
    if (!r.ok())
        return;
    if (loc.size() != loc_.size()) {
        r.fail("llt: location array size mismatch");
        return;
    }
    loc_ = std::move(loc);
    // A snapshot written by save() holds only audited entries, but the
    // bytes may have been hand-edited between save and restore: re-check
    // every group before trusting the table.
    for (std::uint64_t g = 0; g < numGroups_; ++g) {
        if (!verifyGroup(g)) {
            r.fail("llt: restored entry for group " + std::to_string(g) +
                   " is not a permutation");
            return;
        }
    }
}

std::uint64_t
LineLocationTable::permutedGroups() const
{
    std::uint64_t count = 0;
    for (std::uint64_t g = 0; g < numGroups_; ++g) {
        for (std::uint32_t s = 0; s < groupSize_; ++s) {
            if (loc_[index(g, s)] != s) {
                ++count;
                break;
            }
        }
    }
    return count;
}

} // namespace cameo
