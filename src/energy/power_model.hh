/**
 * @file
 * Activity-based power and EDP model (Section VI-C).
 *
 * The paper's model assigns component budgets of baseline system power
 * — Capacity-Limited workloads: 60% processor, 20% memory, 20% storage;
 * Latency-Limited: 70% processor, 30% memory — and derives per-design
 * power from datasheet numbers. We reproduce the same structure:
 * each component has a static share and a dynamic share that scales
 * with its bandwidth *rate* relative to the baseline off-chip rate;
 * stacked DRAM adds its own static power and moves bytes more
 * efficiently. All outputs are normalized to the baseline system, as
 * in Figure 14.
 */

#ifndef CAMEO_ENERGY_POWER_MODEL_HH
#define CAMEO_ENERGY_POWER_MODEL_HH

#include "trace/workloads.hh"

namespace cameo
{

/** Normalized per-component power (baseline total = 1.0). */
struct EnergyBreakdown
{
    double processor = 0.0;
    double stacked = 0.0;
    double offchip = 0.0;
    double storage = 0.0;

    double total() const { return processor + stacked + offchip + storage; }
};

/** Activity ratios of one configuration versus the baseline run. */
struct EnergyInputs
{
    WorkloadCategory category = WorkloadCategory::LatencyLimited;

    /** T_config / T_baseline (< 1 when the design is faster). */
    double timeRatio = 1.0;

    /** Off-chip bytes moved, relative to baseline off-chip bytes. */
    double offchipByteRatio = 1.0;

    /** Stacked bytes moved, relative to baseline *off-chip* bytes. */
    double stackedByteRatio = 0.0;

    /** Storage bytes moved, relative to baseline storage bytes
     *  (ignored for Latency-Limited workloads). */
    double storageByteRatio = 1.0;

    /** False for the baseline itself (no stacked static power). */
    bool hasStacked = true;
};

/** Model constants (documented in DESIGN.md; exposed for ablations). */
struct PowerModelParams
{
    /** Static fraction of each DRAM/storage component's budget. */
    double staticFraction = 0.5;

    /** Stacked static power as a fraction of the memory budget. */
    double stackedStaticShare = 0.36;

    /** Stacked dynamic coefficient: energy per byte relative to
     *  off-chip DRAM (3D stacking moves bits over shorter wires). */
    double stackedDynamicCoeff = 0.15;
};

/** Normalized power of a configuration (baseline = 1.0). */
EnergyBreakdown normalizedPower(const EnergyInputs &inputs,
                                const PowerModelParams &params = {});

/**
 * Normalized energy-delay product: power * timeRatio^2
 * (E*D = P*T * T). Baseline = 1.0; lower is better.
 */
double normalizedEdp(const EnergyInputs &inputs,
                     const PowerModelParams &params = {});

} // namespace cameo

#endif // CAMEO_ENERGY_POWER_MODEL_HH
