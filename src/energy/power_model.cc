#include "energy/power_model.hh"

#include <algorithm>
#include <cassert>

namespace cameo
{

namespace
{

struct Budget
{
    double processor;
    double memory;
    double storage;
};

Budget
budgetFor(WorkloadCategory category)
{
    // Section VI-C's component splits of baseline power.
    if (category == WorkloadCategory::CapacityLimited)
        return Budget{0.60, 0.20, 0.20};
    return Budget{0.70, 0.30, 0.0};
}

} // namespace

EnergyBreakdown
normalizedPower(const EnergyInputs &inputs, const PowerModelParams &params)
{
    assert(inputs.timeRatio > 0.0);
    const Budget budget = budgetFor(inputs.category);
    const double tau = inputs.timeRatio;

    EnergyBreakdown out;
    // Processor power is constant while running (same cores, same
    // frequency); normalized power is per unit time, so it stays at
    // its budget share.
    out.processor = budget.processor;

    // Off-chip DRAM: static share plus dynamic share scaled by the
    // bandwidth *rate* ratio (bytes ratio divided by time ratio).
    out.offchip =
        budget.memory * (params.staticFraction +
                         (1.0 - params.staticFraction) *
                             (inputs.offchipByteRatio / tau));

    // Stacked DRAM: present only in non-baseline designs.
    if (inputs.hasStacked) {
        out.stacked =
            budget.memory * (params.stackedStaticShare +
                             params.stackedDynamicCoeff *
                                 (inputs.stackedByteRatio / tau));
    }

    // Storage: only charged for Capacity-Limited workloads (the
    // Latency-Limited budget gives storage no share).
    if (budget.storage > 0.0) {
        out.storage =
            budget.storage * (params.staticFraction +
                              (1.0 - params.staticFraction) *
                                  (inputs.storageByteRatio / tau));
    }
    return out;
}

double
normalizedEdp(const EnergyInputs &inputs, const PowerModelParams &params)
{
    const double power = normalizedPower(inputs, params).total();
    return power * inputs.timeRatio * inputs.timeRatio;
}

} // namespace cameo
