#include "exp/result_frame.hh"

#include <utility>

#include "snapshot/snapshot.hh"

namespace cameo
{

namespace
{

/** Leading section shared by every frame kind. */
void
writeHeader(SnapshotWriter &w, ShardFrameKind kind, std::uint32_t shard)
{
    w.beginSection("shard");
    w.u32(kResultFrameVersion);
    w.u8(static_cast<std::uint8_t>(kind));
    w.u32(shard);
    w.endSection();
}

} // namespace

std::vector<std::uint8_t>
encodeShardResult(const ShardResultFrame &frame)
{
    SnapshotWriter w;
    writeHeader(w, ShardFrameKind::Result, frame.shard);
    w.beginSection("result");
    w.u64(frame.jobIndex);
    w.str(frame.label);
    w.f64(frame.hostSeconds);
    const RunResult &r = frame.result;
    w.str(r.orgName);
    w.str(r.workload);
    w.u8(static_cast<std::uint8_t>(r.category));
    w.u64(r.execTime);
    w.u64(r.kernelSteps);
    w.b(r.truncated);
    w.u64(r.instructions);
    w.u64(r.accesses);
    w.u64(r.warmupAccesses);
    w.u64(r.l3Hits);
    w.u64(r.l3Misses);
    w.u64(r.stackedBytes);
    w.u64(r.offchipBytes);
    w.u64(r.storageBytes);
    w.u64(r.majorFaults);
    w.u64(r.minorFaults);
    w.u64(r.servicedStacked);
    w.u64(r.servicedOffchip);
    w.u64(r.swaps);
    for (const std::uint64_t c : r.llpCases)
        w.u64(c);
    w.f64(r.llpAccuracy);
    w.u64(r.pageMigrations);
    w.endSection();
    return w.finish();
}

std::vector<std::uint8_t>
encodeShardDone(const ShardDoneFrame &frame)
{
    SnapshotWriter w;
    writeHeader(w, ShardFrameKind::Done, frame.shard);
    w.beginSection("done");
    w.u64(frame.jobsRun);
    w.endSection();
    return w.finish();
}

bool
decodeShardFrame(std::vector<std::uint8_t> bytes, ShardFrameKind *kind,
                 ShardResultFrame *result, ShardDoneFrame *done,
                 std::string *error)
{
    const auto failWith = [error](const std::string &what) {
        if (error != nullptr)
            *error = what;
        return false;
    };

    SnapshotReader r;
    if (!r.open(std::move(bytes)))
        return failWith(r.error());
    if (!r.enterSection("shard"))
        return failWith(r.error());
    const std::uint32_t version = r.u32();
    if (version != kResultFrameVersion) {
        return failWith("result frame version " +
                        std::to_string(version) + " (expected " +
                        std::to_string(kResultFrameVersion) + ")");
    }
    const std::uint8_t raw_kind = r.u8();
    const std::uint32_t shard = r.u32();
    r.leaveSection();
    if (!r.ok())
        return failWith(r.error());

    if (raw_kind == static_cast<std::uint8_t>(ShardFrameKind::Result)) {
        *kind = ShardFrameKind::Result;
        ShardResultFrame f;
        f.shard = shard;
        r.enterSection("result");
        f.jobIndex = r.u64();
        f.label = r.str();
        f.hostSeconds = r.f64();
        RunResult &res = f.result;
        res.orgName = r.str();
        res.workload = r.str();
        res.category = static_cast<WorkloadCategory>(r.u8());
        res.execTime = r.u64();
        res.kernelSteps = r.u64();
        res.truncated = r.b();
        res.instructions = r.u64();
        res.accesses = r.u64();
        res.warmupAccesses = r.u64();
        res.l3Hits = r.u64();
        res.l3Misses = r.u64();
        res.stackedBytes = r.u64();
        res.offchipBytes = r.u64();
        res.storageBytes = r.u64();
        res.majorFaults = r.u64();
        res.minorFaults = r.u64();
        res.servicedStacked = r.u64();
        res.servicedOffchip = r.u64();
        res.swaps = r.u64();
        for (std::uint64_t &c : res.llpCases)
            c = r.u64();
        res.llpAccuracy = r.f64();
        res.pageMigrations = r.u64();
        r.leaveSection();
        if (!r.ok())
            return failWith(r.error());
        *result = std::move(f);
        return true;
    }
    if (raw_kind == static_cast<std::uint8_t>(ShardFrameKind::Done)) {
        *kind = ShardFrameKind::Done;
        ShardDoneFrame f;
        f.shard = shard;
        r.enterSection("done");
        f.jobsRun = r.u64();
        r.leaveSection();
        if (!r.ok())
            return failWith(r.error());
        *done = f;
        return true;
    }
    return failWith("unknown shard frame kind " +
                    std::to_string(raw_kind));
}

} // namespace cameo
