#include "exp/progress.hh"

#include <cstdio>

namespace cameo
{

void
ProgressReporter::setTotal(std::size_t total)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    total_ = total;
}

void
ProgressReporter::jobFinished(const std::string &label, double seconds)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    ++done_;
    if (os_ == nullptr)
        return;
    char timing[32];
    std::snprintf(timing, sizeof(timing), "%.2fs", seconds);
    *os_ << "  [" << done_ << "/" << total_ << "] " << label << " ("
         << timing << ")\n"
         << std::flush;
}

void
ProgressReporter::line(const std::string &text)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    if (os_ == nullptr)
        return;
    *os_ << text << "\n" << std::flush;
}

std::size_t
ProgressReporter::finished() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return done_;
}

} // namespace cameo
