/**
 * @file
 * Warm-start fan-out: share one warmed-up simulation prefix across a
 * sweep (DESIGN.md §12).
 *
 * Sweeps that explore measurement-phase knobs (trace length, step
 * budgets) repeat the same warmup prefix in every job. WarmStartCache
 * runs that prefix ONCE per (structural config, organization, workload)
 * key — to an aggregate access count, mid-flight, via System::runUntil —
 * snapshots it, and hands every later job the same bytes to restore,
 * so N jobs pay one warmup instead of N. Restoring a prefix snapshot
 * into a longer run is exact, not approximate: the resumed simulation
 * is bit-identical to running the long configuration from scratch
 * (test_snapshot.cc pins this).
 *
 * Concurrent requests for the same key collapse onto one computation
 * (shared-future pattern, like TraceArenaCache): the first caller
 * simulates, the rest block on the future and share the bytes.
 *
 * Exclusions: configs with a custom sourceFactory are not cacheable
 * (the factory's streams cannot be keyed) and TLM-Oracle is not
 * warm-startable (its profiling pre-pass depends on the final trace
 * length, which the prefix system does not know) — both fall back to
 * cold runs in runWorkloadWarmStarted().
 */

#ifndef CAMEO_EXP_WARM_START_HH
#define CAMEO_EXP_WARM_START_HH

#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "system/system.hh"

namespace cameo
{

/** Process-wide cache of warmed-up simulation-prefix snapshots. */
class WarmStartCache
{
  public:
    /** Snapshot bytes, shared between all jobs that restore them. */
    using Blob = std::shared_ptr<const std::vector<std::uint8_t>>;

    static WarmStartCache &instance();

    /**
     * The snapshot of @p kind running @p profile under @p config's
     * structural parameters, paused after @p prefix_accesses_per_core
     * accesses per core (aggregate target; individual cores may be a
     * few records apart). The prefix system is configured long enough
     * that no core finishes, so the state is independent of the final
     * run's trace length — any job whose accessesPerCore comfortably
     * exceeds the prefix can restore it. Computed on first request per
     * key; concurrent callers share the computation. Throws
     * std::runtime_error if the prefix simulation cannot be paused or
     * snapshotted (prefix of 0, or a sourceFactory config).
     */
    Blob snapshot(const SystemConfig &config, OrgKind kind,
                  const WorkloadProfile &profile,
                  std::uint64_t prefix_accesses_per_core);

    /**
     * Persist computed prefixes as snapshot files under @p dir and
     * load them back on later misses, so cooperating processes — a
     * shard fleet sharing one warm-start checkpoint directory — pay
     * each warmup once per fleet instead of once per process. Files
     * are written atomically (PID-unique temp + rename) under an
     * advisory per-file lock (util/fs_lock.hh) and embed the full
     * structural key, so a filename-hash collision or stale file is
     * recomputed, never silently restored. An empty @p dir disables
     * persistence. Also configured by CAMEO_WARM_CACHE_DIR.
     */
    void setCacheDir(std::string dir);

    /** The configured persistence directory ("" when disabled). */
    std::string cacheDir() const;

    /** Drop every cached snapshot (tests). Keeps the cache dir. */
    void clear();

    /** Number of distinct prefixes computed so far (telemetry). */
    std::size_t entries() const;

    /** Prefixes served from a cache file instead of simulation. */
    std::size_t diskLoads() const;

  private:
    WarmStartCache() = default;

    mutable std::mutex mutex_;
    std::map<std::string, std::shared_future<Blob>> cache_;
    std::string cacheDir_;
    std::size_t diskLoads_ = 0;
};

/**
 * runWorkload(), but fast-forwarded through a shared warm prefix: the
 * first @p warm_prefix_per_core accesses per core come from (or seed)
 * the WarmStartCache, and only the remainder is simulated here. Falls
 * back to a plain cold runWorkload() when warm-starting does not apply
 * (prefix 0, sourceFactory set, TLM-Oracle) — results are identical
 * either way.
 */
RunResult runWorkloadWarmStarted(const SystemConfig &config, OrgKind kind,
                                 const WorkloadProfile &profile,
                                 std::uint64_t warm_prefix_per_core);

} // namespace cameo

#endif // CAMEO_EXP_WARM_START_HH
