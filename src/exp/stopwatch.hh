/**
 * @file
 * Host-side wall-clock stopwatch for sweep telemetry.
 *
 * This is the one sanctioned wall-clock in the tree outside
 * google-benchmark: the sweep engine (src/exp) reports per-job
 * durations and aggregate throughput, which are properties of the
 * *host*, not of the simulation. Wall-clock readings must never feed
 * simulation state — simulated results stay bit-reproducible — which
 * is why tools/lint.py bans <chrono> clocks everywhere else and
 * exempts exactly this wrapper.
 */

#ifndef CAMEO_EXP_STOPWATCH_HH
#define CAMEO_EXP_STOPWATCH_HH

#include <cstdint>

namespace cameo
{

/** Monotonic wall-clock stopwatch; starts on construction. */
class Stopwatch
{
  public:
    Stopwatch() : startNs_(nowNs()) {}

    /** Restart the elapsed-time origin. */
    void restart() { startNs_ = nowNs(); }

    /** Seconds elapsed since construction or the last restart(). */
    double seconds() const;

  private:
    static std::uint64_t nowNs();

    std::uint64_t startNs_;
};

} // namespace cameo

#endif // CAMEO_EXP_STOPWATCH_HH
