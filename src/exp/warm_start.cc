#include "exp/warm_start.hh"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <stdexcept>
#include <type_traits>
#include <utility>

#include <unistd.h>

#include "util/bitops.hh"
#include "util/fs_lock.hh"

namespace cameo
{

namespace
{

template <typename T>
std::enable_if_t<std::is_integral_v<T> || std::is_enum_v<T>>
appendField(std::string &key, T v)
{
    key += std::to_string(static_cast<std::uint64_t>(v));
    key += '|';
}

void
appendField(std::string &key, double v)
{
    // Hex float: exact round-trip, unlike to_string's fixed precision.
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%a|", v);
    key += buf;
}

void
appendTimings(std::string &key, const DramTimings &t)
{
    appendField(key, t.cpuMhz);
    appendField(key, t.busMhz);
    appendField(key, t.channels);
    appendField(key, t.banksPerChannel);
    appendField(key, t.busWidthBits);
    appendField(key, t.rowBytes);
    appendField(key, t.linesPerRow);
    appendField(key, t.tCas);
    appendField(key, t.tRcd);
    appendField(key, t.tRp);
    appendField(key, t.tRas);
    appendField(key, t.tRefi);
    appendField(key, t.tRfc);
}

/**
 * Cache key over every configuration field that shapes the simulated
 * state — i.e. everything except the measurement length
 * (accessesPerCore), the step budget, and host-side knobs (trace
 * arena, jobs), which by construction do not affect the prefix.
 */
std::string
prefixKey(const SystemConfig &config, OrgKind kind,
          const WorkloadProfile &profile, std::uint64_t prefix)
{
    std::string key;
    key.reserve(320);
    appendField(key, static_cast<std::uint64_t>(kind));
    key += profile.name;
    key += '|';
    appendField(key, prefix);
    appendField(key, config.numCores);
    appendField(key, config.cyclesPerInstruction);
    appendField(key, config.maxMlp);
    appendField(key, config.l3Bytes);
    appendField(key, config.l3Ways);
    appendField(key, config.l3HitLatency);
    appendField(key, config.l3HitStall);
    appendField(key, config.stackedBytes);
    appendField(key, config.offchipBytes);
    appendTimings(key, config.stacked);
    appendTimings(key, config.offchip);
    appendField(key, config.pageFaultLatency);
    appendField(key, static_cast<std::uint64_t>(config.timingMode));
    appendField(key, config.dramQueues.readWindow);
    appendField(key, config.dramQueues.writeQueueDepth);
    appendField(key, config.dramQueues.drainHighWatermark);
    appendField(key, config.dramQueues.drainLowWatermark);
    appendField(key, static_cast<std::uint64_t>(config.lltKind));
    appendField(key, static_cast<std::uint64_t>(config.predictorKind));
    appendField(key, config.llpTableEntries);
    appendField(key, config.freqEpochAccesses);
    appendField(key, config.tlmVictimProbes);
    appendField(key, config.tlmMigrateThreshold);
    appendField(key, config.bansheeSampleRate);
    appendField(key, config.bansheeHotThreshold);
    appendField(key, config.bansheePteCacheEntries);
    appendField(key, config.scaleFactor);
    appendField(key, config.warmupAccessesPerCore);
    appendField(key, static_cast<std::uint64_t>(config.warmupPolicy));
    appendField(key, config.seed);
    return key;
}

WarmStartCache::Blob
computePrefix(const SystemConfig &config, OrgKind kind,
              const WorkloadProfile &profile, std::uint64_t prefix)
{
    // The prefix system's trace is sized so no core can finish before
    // the aggregate target (each core would have to eat the whole
    // aggregate alone); an unfinished system's state is independent of
    // its configured trace length, which is what makes the snapshot
    // reusable by jobs of any (longer) length.
    const std::uint64_t aggregate = prefix * config.numCores;
    SystemConfig warm = config;
    warm.accessesPerCore = aggregate;
    warm.maxKernelSteps = 0;

    System system(warm, kind, profile);
    if (!system.runUntil(aggregate))
        throw std::runtime_error(
            "warm-start: prefix run finished before its target");

    SnapshotWriter w;
    system.save(w);
    return std::make_shared<const std::vector<std::uint8_t>>(w.finish());
}

/** Stable file name for a prefix key under the cache directory. */
std::string
diskPathFor(const std::string &dir, const std::string &key)
{
    char name[40];
    std::snprintf(name, sizeof(name), "warm-%016llx.snap",
                  static_cast<unsigned long long>(fnv1a64(key)));
    return dir + "/" + name;
}

/**
 * Load a persisted prefix. The file is a two-section snapshot —
 * "warmkey" (the full structural key, compared against @p key) and
 * "warmblob" (the System snapshot bytes) — so CRC damage, truncation,
 * and filename-hash collisions all read as a miss.
 */
WarmStartCache::Blob
loadPrefixFile(const std::string &path, const std::string &key)
{
    SnapshotReader r;
    if (!r.openFile(path))
        return nullptr;
    if (!r.enterSection("warmkey"))
        return nullptr;
    const std::string stored_key = r.str();
    r.leaveSection();
    if (!r.ok() || stored_key != key)
        return nullptr;
    std::vector<std::uint8_t> bytes;
    if (!r.enterSection("warmblob"))
        return nullptr;
    r.vecU8(bytes);
    r.leaveSection();
    if (!r.ok())
        return nullptr;
    return std::make_shared<const std::vector<std::uint8_t>>(
        std::move(bytes));
}

/** Persist @p blob atomically (PID-unique temp + rename). */
void
storePrefixFile(const std::string &path, const std::string &key,
                const std::vector<std::uint8_t> &blob)
{
    SnapshotWriter w;
    w.beginSection("warmkey");
    w.str(key);
    w.endSection();
    w.beginSection("warmblob");
    w.vecU8(blob);
    w.endSection();
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid());
    std::string error;
    if (!w.writeFile(tmp, &error)) {
        std::fprintf(stderr, "warning: warm-start cache: %s\n",
                     error.c_str());
        return;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        std::remove(tmp.c_str());
}

} // namespace

WarmStartCache &
WarmStartCache::instance()
{
    static WarmStartCache cache;
    static const bool dir_init = [] {
        if (const char *dir = std::getenv("CAMEO_WARM_CACHE_DIR");
            dir != nullptr && dir[0] != '\0') {
            cache.setCacheDir(dir);
        }
        return true;
    }();
    (void)dir_init;
    return cache;
}

void
WarmStartCache::setCacheDir(std::string dir)
{
    if (!dir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(dir, ec);
        if (ec) {
            std::fprintf(stderr,
                         "warning: cannot create warm-start cache "
                         "directory %s: %s\n",
                         dir.c_str(), ec.message().c_str());
        }
    }
    const std::lock_guard<std::mutex> lock(mutex_);
    cacheDir_ = std::move(dir);
}

std::string
WarmStartCache::cacheDir() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return cacheDir_;
}

std::size_t
WarmStartCache::diskLoads() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return diskLoads_;
}

WarmStartCache::Blob
WarmStartCache::snapshot(const SystemConfig &config, OrgKind kind,
                         const WorkloadProfile &profile,
                         std::uint64_t prefix_accesses_per_core)
{
    if (prefix_accesses_per_core == 0)
        throw std::runtime_error("warm-start: prefix must be nonzero");
    if (config.sourceFactory)
        throw std::runtime_error(
            "warm-start: sourceFactory streams cannot be cached");

    const std::string key =
        prefixKey(config, kind, profile, prefix_accesses_per_core);

    std::shared_future<Blob> fut;
    std::promise<Blob> mine;
    bool creator = false;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        const auto it = cache_.find(key);
        if (it != cache_.end()) {
            fut = it->second;
        } else {
            fut = mine.get_future().share();
            cache_.emplace(key, fut);
            creator = true;
        }
    }
    if (creator) {
        try {
            Blob blob;
            const std::string dir = cacheDir();
            if (!dir.empty()) {
                // Lock -> re-check -> compute or load, like the trace
                // arena's recorder guard: one fleet member simulates
                // the prefix, the rest restore its file.
                const std::string path = diskPathFor(dir, key);
                blob = loadPrefixFile(path, key);
                FileLock disk_lock;
                if (blob == nullptr) {
                    disk_lock = FileLock::acquire(path + ".lock");
                    blob = loadPrefixFile(path, key);
                }
                if (blob == nullptr) {
                    blob = computePrefix(config, kind, profile,
                                         prefix_accesses_per_core);
                    storePrefixFile(path, key, *blob);
                } else {
                    const std::lock_guard<std::mutex> lock(mutex_);
                    ++diskLoads_;
                }
            } else {
                blob = computePrefix(config, kind, profile,
                                     prefix_accesses_per_core);
            }
            mine.set_value(std::move(blob));
        } catch (...) {
            mine.set_exception(std::current_exception());
        }
    }
    return fut.get();
}

void
WarmStartCache::clear()
{
    const std::lock_guard<std::mutex> lock(mutex_);
    cache_.clear();
}

std::size_t
WarmStartCache::entries() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return cache_.size();
}

RunResult
runWorkloadWarmStarted(const SystemConfig &config, OrgKind kind,
                       const WorkloadProfile &profile,
                       std::uint64_t warm_prefix_per_core)
{
    // See the header: these cases cannot share a prefix; a cold run is
    // bit-identical anyway, just slower.
    if (warm_prefix_per_core == 0 || config.sourceFactory ||
        kind == OrgKind::TlmOracle) {
        return runWorkload(config, kind, profile);
    }
    assert(warm_prefix_per_core * config.numCores <
               config.accessesPerCore &&
           "prefix must leave slack below the measured trace length");

    const WarmStartCache::Blob blob = WarmStartCache::instance().snapshot(
        config, kind, profile, warm_prefix_per_core);

    System system(config, kind, profile);
    SnapshotReader r;
    if (r.open(*blob))
        system.restore(r);
    if (!r.ok())
        throw std::runtime_error("warm-start: restore failed: " +
                                 r.error());
    return system.run();
}

} // namespace cameo
