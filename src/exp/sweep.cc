#include "exp/sweep.hh"

#include <cstdio>
#include <deque>
#include <exception>
#include <iostream>
#include <memory>
#include <mutex>
#include <numeric>
#include <thread>
#include <utility>

#include "exp/stopwatch.hh"
#include "util/env.hh"
#include "util/rng.hh"

namespace cameo
{

namespace
{

/**
 * Per-worker job-index deques with stealing. The owner pops from the
 * front of its own deque; an idle worker steals from the back of the
 * first non-empty victim. Jobs never spawn jobs, so once every deque
 * is empty the sweep is over and workers simply return.
 */
class WorkStealingScheduler
{
  public:
    WorkStealingScheduler(std::size_t num_jobs, unsigned workers,
                          std::uint64_t shuffle_seed)
        : queues_(workers)
    {
        std::vector<std::size_t> order(num_jobs);
        std::iota(order.begin(), order.end(), std::size_t{0});
        if (shuffle_seed != 0) {
            // Deterministic Fisher-Yates driven by the repo Rng, so a
            // given seed always produces the same submission order.
            Rng rng(shuffle_seed);
            for (std::size_t i = num_jobs; i > 1; --i)
                std::swap(order[i - 1], order[rng.next(i)]);
        }
        for (auto &queue : queues_)
            queue = std::make_unique<Queue>();
        for (std::size_t i = 0; i < order.size(); ++i)
            queues_[i % workers]->jobs.push_back(order[i]);
    }

    /** Next job for @p worker (own queue, then stealing); false when
     *  every queue is drained. */
    bool
    take(unsigned worker, std::size_t &out)
    {
        if (popFront(*queues_[worker], out))
            return true;
        for (std::size_t v = 1; v < queues_.size(); ++v) {
            const std::size_t victim = (worker + v) % queues_.size();
            if (popBack(*queues_[victim], out))
                return true;
        }
        return false;
    }

  private:
    struct Queue
    {
        std::mutex mutex;
        std::deque<std::size_t> jobs;
    };

    static bool
    popFront(Queue &queue, std::size_t &out)
    {
        const std::lock_guard<std::mutex> lock(queue.mutex);
        if (queue.jobs.empty())
            return false;
        out = queue.jobs.front();
        queue.jobs.pop_front();
        return true;
    }

    static bool
    popBack(Queue &queue, std::size_t &out)
    {
        const std::lock_guard<std::mutex> lock(queue.mutex);
        if (queue.jobs.empty())
            return false;
        out = queue.jobs.back();
        queue.jobs.pop_back();
        return true;
    }

    std::vector<std::unique_ptr<Queue>> queues_;
};

} // namespace

unsigned
SweepRunner::resolveJobs(unsigned requested)
{
    if (requested != 0)
        return requested;
    std::string error;
    if (const auto env = envUint("CAMEO_BENCH_JOBS", &error)) {
        if (*env != 0)
            return static_cast<unsigned>(*env);
        std::cerr << "warning: CAMEO_BENCH_JOBS: expected a job count "
                     ">= 1, got '0' (using auto)\n";
    } else if (!error.empty()) {
        std::cerr << "warning: " << error << " (using auto)\n";
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw != 0 ? hw : 1;
}

std::vector<RunResult>
SweepRunner::run(std::vector<SweepJob> jobs)
{
    telemetry_ = SweepTelemetry{};
    telemetry_.runs = jobs.size();
    telemetry_.jobSeconds.assign(jobs.size(), 0.0);
    if (jobs.empty()) {
        telemetry_.workers = 0;
        return {};
    }

    const unsigned workers = static_cast<unsigned>(
        std::min<std::size_t>(resolveJobs(options_.jobs), jobs.size()));
    telemetry_.workers = workers;
    if (options_.progress != nullptr)
        options_.progress->setTotal(jobs.size());

    std::vector<RunResult> results(jobs.size());
    std::vector<std::exception_ptr> errors(jobs.size());
    WorkStealingScheduler scheduler(jobs.size(), workers,
                                    options_.shuffleSeed);

    const auto worker_loop = [&](unsigned worker) {
        std::size_t idx = 0;
        while (scheduler.take(worker, idx)) {
            Stopwatch watch;
            try {
                results[idx] = jobs[idx].run();
            } catch (...) {
                errors[idx] = std::current_exception();
            }
            telemetry_.jobSeconds[idx] = watch.seconds();
            if (options_.progress != nullptr) {
                options_.progress->jobFinished(
                    jobs[idx].label, telemetry_.jobSeconds[idx]);
            }
        }
    };

    Stopwatch wall;
    if (workers == 1) {
        // Serial reference path: no threads, same code path otherwise.
        worker_loop(0);
    } else {
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (unsigned w = 0; w < workers; ++w)
            pool.emplace_back(worker_loop, w);
        for (std::thread &t : pool)
            t.join();
    }
    telemetry_.wallSeconds = wall.seconds();

    if (options_.progress != nullptr) {
        char summary[128];
        std::snprintf(summary, sizeof(summary),
                      "sweep: %zu runs in %.2fs (%.2f runs/s, jobs=%u)",
                      telemetry_.runs, telemetry_.wallSeconds,
                      telemetry_.runsPerSecond(), workers);
        options_.progress->line(summary);
    }

    for (const std::exception_ptr &error : errors) {
        if (error)
            std::rethrow_exception(error);
    }
    return results;
}

std::vector<SpeedupRow>
runComparison(const SystemConfig &base_config,
              std::span<const DesignPoint> points,
              std::span<const WorkloadProfile> workloads,
              const SweepOptions &options)
{
    // Arena routing: flip useTraceArena on local config copies (the
    // originals are the caller's). Configs with a custom sourceFactory
    // keep their stream provider either way.
    SystemConfig arena_base = base_config;
    arena_base.useTraceArena =
        options.traceArena && !arena_base.sourceFactory;
    if (options.warmupPolicy)
        arena_base.warmupPolicy = *options.warmupPolicy;
    std::vector<DesignPoint> arena_points(points.begin(), points.end());
    for (DesignPoint &point : arena_points) {
        point.config.useTraceArena =
            options.traceArena && !point.config.sourceFactory;
        if (options.warmupPolicy)
            point.config.warmupPolicy = *options.warmupPolicy;
    }

    // Job layout: for each workload, the baseline run followed by one
    // run per design point. The flat index encodes the (row, column)
    // slot, so reassembly below is pure arithmetic.
    std::vector<SweepJob> jobs;
    jobs.reserve(workloads.size() * (arena_points.size() + 1));
    for (const WorkloadProfile &wl : workloads) {
        jobs.push_back(
            {wl.name + "/baseline", [&arena_base, wl] {
                 return runWorkload(arena_base, OrgKind::Baseline, wl);
             }});
        for (const DesignPoint &point : arena_points) {
            jobs.push_back(
                {wl.name + "/" + point.label, [&point, wl] {
                     return runWorkload(point.config, point.kind, wl);
                 }});
        }
    }

    SweepRunner runner(options);
    std::vector<RunResult> results = runner.run(std::move(jobs));

    std::vector<SpeedupRow> rows;
    rows.reserve(workloads.size());
    const std::size_t stride = points.size() + 1;
    for (std::size_t w = 0; w < workloads.size(); ++w) {
        SpeedupRow row;
        row.workload = workloads[w];
        row.baseline = std::move(results[w * stride]);
        row.runs.reserve(points.size());
        for (std::size_t p = 0; p < points.size(); ++p)
            row.runs.push_back(std::move(results[w * stride + 1 + p]));
        rows.push_back(std::move(row));
    }
    return rows;
}

} // namespace cameo
