#include "exp/stopwatch.hh"

#include <chrono>

namespace cameo
{

std::uint64_t
Stopwatch::nowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

double
Stopwatch::seconds() const
{
    return static_cast<double>(nowNs() - startNs_) * 1e-9;
}

} // namespace cameo
