#include "exp/experiment.hh"

#include <cassert>
#include <fstream>

#include "exp/sweep.hh"
#include "stats/table.hh"
#include "util/math.hh"

namespace cameo
{

double
SpeedupRow::speedupOf(std::size_t i) const
{
    assert(i < runs.size());
    return speedup(static_cast<double>(baseline.execTime),
                   static_cast<double>(runs[i].execTime));
}

std::vector<SpeedupRow>
runComparison(const SystemConfig &base_config,
              std::span<const DesignPoint> points,
              std::span<const WorkloadProfile> workloads,
              std::ostream *progress)
{
    ProgressReporter reporter(progress);
    SweepOptions options;
    options.progress = progress != nullptr ? &reporter : nullptr;
    return runComparison(base_config, points, workloads, options);
}

double
gmeanSpeedup(std::span<const SpeedupRow> rows, std::size_t i)
{
    std::vector<double> values;
    values.reserve(rows.size());
    for (const SpeedupRow &row : rows)
        values.push_back(row.speedupOf(i));
    return geometricMean(values);
}

double
gmeanSpeedup(std::span<const SpeedupRow> rows, std::size_t i,
             WorkloadCategory category)
{
    std::vector<double> values;
    for (const SpeedupRow &row : rows) {
        if (row.workload.category == category)
            values.push_back(row.speedupOf(i));
    }
    return geometricMean(values);
}

void
printSpeedupTable(const std::string &title,
                  std::span<const DesignPoint> points,
                  std::span<const SpeedupRow> rows, std::ostream &os)
{
    TextTable table(title);
    std::vector<std::string> header{"Workload", "Category"};
    for (const DesignPoint &point : points)
        header.push_back(point.label);
    table.setHeader(std::move(header));

    for (const SpeedupRow &row : rows) {
        std::vector<std::string> cells{row.workload.name,
                                       categoryName(row.workload.category)};
        for (std::size_t i = 0; i < points.size(); ++i)
            cells.push_back(TextTable::cell(row.speedupOf(i)));
        table.addRow(std::move(cells));
    }

    const auto add_gmean_row = [&](const std::string &name, auto getter) {
        std::vector<std::string> cells{name, ""};
        for (std::size_t i = 0; i < points.size(); ++i) {
            const double g = getter(i);
            cells.push_back(g > 0.0 ? TextTable::cell(g) : "n/a");
        }
        table.addRow(std::move(cells));
    };
    add_gmean_row("Gmean-Capacity", [&](std::size_t i) {
        return gmeanSpeedup(rows, i, WorkloadCategory::CapacityLimited);
    });
    add_gmean_row("Gmean-Latency", [&](std::size_t i) {
        return gmeanSpeedup(rows, i, WorkloadCategory::LatencyLimited);
    });
    add_gmean_row("Gmean-ALL",
                  [&](std::size_t i) { return gmeanSpeedup(rows, i); });

    table.print(os);
}

bool
writeSpeedupCsv(std::span<const DesignPoint> points,
                std::span<const SpeedupRow> rows, const std::string &path)
{
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        return false;

    out << "workload,category,baseline_exec";
    for (const DesignPoint &p : points) {
        out << "," << p.label << "_exec," << p.label << "_speedup,"
            << p.label << "_stackedBytes," << p.label << "_offchipBytes,"
            << p.label << "_storageBytes";
    }
    out << "\n";

    for (const SpeedupRow &row : rows) {
        out << row.workload.name << ","
            << categoryName(row.workload.category) << ","
            << row.baseline.execTime;
        for (std::size_t i = 0; i < points.size(); ++i) {
            const RunResult &r = row.runs[i];
            out << "," << r.execTime << "," << row.speedupOf(i) << ","
                << r.stackedBytes << "," << r.offchipBytes << ","
                << r.storageBytes;
        }
        out << "\n";
    }
    out.close();
    return !out.fail();
}

} // namespace cameo
