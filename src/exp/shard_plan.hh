/**
 * @file
 * Deterministic shard planning for cross-process sweeps.
 *
 * A sweep's job list is partitioned over N worker processes by *stable
 * job key*, not by arrival order: each job's key is a pure function of
 * its label (and its occurrence index, for duplicate labels), and its
 * shard is that key reduced modulo the shard count. Two consequences,
 * both load-bearing for the byte-identity guarantee (DESIGN.md §15):
 *
 *  - Every process that enumerates the same sweep spec computes the
 *    same plan — orchestrator and workers never exchange job lists,
 *    only (shard index, shard count).
 *  - The assignment is invariant under permutation of the job list:
 *    reordering the spec moves jobs between submission slots but never
 *    between shards, so per-shard caches (trace arenas, warm-start
 *    snapshots) stay stable across spec refactorings.
 *
 * Within a shard, jobs run in global submission order; the merged
 * result vector is indexed by global submission index, which is what
 * makes the merge independent of shard completion interleaving.
 */

#ifndef CAMEO_EXP_SHARD_PLAN_HH
#define CAMEO_EXP_SHARD_PLAN_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace cameo
{

/**
 * Stable 64-bit key of one job: FNV-1a over "label#occurrence".
 * @p occurrence distinguishes duplicate labels (the i-th duplicate
 * keeps its key when the list around it changes).
 */
std::uint64_t shardJobKey(std::string_view label,
                          std::uint64_t occurrence);

/** Shard owning @p key in an @p shards-way fleet (key mod shards). */
unsigned shardOfKey(std::uint64_t key, unsigned shards);

/** One sweep's partition over a fleet. */
struct ShardPlan
{
    unsigned shards = 1;

    /** Owning shard per job, indexed by submission order. */
    std::vector<unsigned> shardOf;

    /** Global submission indices per shard, each list ascending. */
    std::vector<std::vector<std::size_t>> jobsOf;
};

/**
 * Partition @p labels (the sweep's job labels in submission order)
 * over @p shards workers. Every index appears in exactly one shard's
 * list. @p shards of 0 is clamped to 1.
 */
ShardPlan planShards(const std::vector<std::string> &labels,
                     unsigned shards);

} // namespace cameo

#endif // CAMEO_EXP_SHARD_PLAN_HH
