/**
 * @file
 * Experiment harness shared by the bench binaries: run a set of design
 * points against a set of workloads (plus the baseline), compute
 * speedups, and print paper-style tables with per-category and overall
 * geometric means.
 */

#ifndef CAMEO_EXP_EXPERIMENT_HH
#define CAMEO_EXP_EXPERIMENT_HH

#include <ostream>
#include <span>
#include <string>
#include <vector>

#include "system/system.hh"

namespace cameo
{

/** One column of a comparison: an organization plus its config. */
struct DesignPoint
{
    std::string label;
    OrgKind kind = OrgKind::Cameo;
    SystemConfig config;
};

/** One workload's results across all design points. */
struct SpeedupRow
{
    WorkloadProfile workload;
    RunResult baseline;
    std::vector<RunResult> runs; ///< Parallel to the design points.

    /** Speedup of design point @p i versus the baseline. */
    double speedupOf(std::size_t i) const;
};

/**
 * Run the baseline plus every design point over every workload.
 *
 * Executes on the parallel sweep engine (exp/sweep.hh) with the
 * default worker count (CAMEO_BENCH_JOBS, else hardware concurrency);
 * results are bit-identical to a serial run for any worker count. Use
 * the SweepOptions overload in exp/sweep.hh to control workers or
 * progress directly.
 *
 * @param base_config Config used for the shared baseline runs.
 * @param points      Design points (columns).
 * @param workloads   Workloads (rows).
 * @param progress    Optional stream for per-run progress lines.
 */
std::vector<SpeedupRow>
runComparison(const SystemConfig &base_config,
              std::span<const DesignPoint> points,
              std::span<const WorkloadProfile> workloads,
              std::ostream *progress = nullptr);

/**
 * Print a Figure 13-style speedup table: one row per workload, then
 * Gmean rows for each category and overall.
 */
void printSpeedupTable(const std::string &title,
                       std::span<const DesignPoint> points,
                       std::span<const SpeedupRow> rows, std::ostream &os);

/** Geometric-mean speedup of design point @p i over @p rows,
 *  optionally restricted to one category. */
double gmeanSpeedup(std::span<const SpeedupRow> rows, std::size_t i);
double gmeanSpeedup(std::span<const SpeedupRow> rows, std::size_t i,
                    WorkloadCategory category);

/**
 * Write a comparison as CSV (one row per workload: name, category,
 * baseline exec time, then per-design-point exec time, speedup, and
 * the module byte counters). Returns false on I/O failure.
 */
bool writeSpeedupCsv(std::span<const DesignPoint> points,
                     std::span<const SpeedupRow> rows,
                     const std::string &path);

} // namespace cameo

#endif // CAMEO_EXP_EXPERIMENT_HH
