/**
 * @file
 * Thread-safe progress reporting for the sweep engine.
 *
 * The old experiment harness streamed partial lines ("[mcf]
 * baseline... Cache...") to a raw std::ostream*, which interleaves
 * garbage the moment two workers report at once. ProgressReporter
 * replaces it: every emission is one whole line written under a mutex,
 * so concurrent workers produce readable (if arbitrarily ordered)
 * output. A null stream turns every call into a cheap counter update,
 * so callers never need progress-vs-quiet branches.
 */

#ifndef CAMEO_EXP_PROGRESS_HH
#define CAMEO_EXP_PROGRESS_HH

#include <cstddef>
#include <mutex>
#include <ostream>
#include <string>

namespace cameo
{

/** Serializes whole-line progress output from concurrent workers. */
class ProgressReporter
{
  public:
    /** @param os Destination stream; nullptr counts silently. */
    explicit ProgressReporter(std::ostream *os = nullptr) : os_(os) {}

    ProgressReporter(const ProgressReporter &) = delete;
    ProgressReporter &operator=(const ProgressReporter &) = delete;

    /** Announce the total job count (shown as "[done/total]"). */
    void setTotal(std::size_t total);

    /**
     * Record one finished job and (with a stream) print one atomic
     * "  [done/total] label (1.23s)" line.
     */
    void jobFinished(const std::string &label, double seconds);

    /** Print one raw line (a '\n' is appended) atomically. */
    void line(const std::string &text);

    /** Jobs reported finished so far. */
    std::size_t finished() const;

  private:
    std::ostream *os_;
    mutable std::mutex mutex_;
    std::size_t total_ = 0;
    std::size_t done_ = 0;
};

} // namespace cameo

#endif // CAMEO_EXP_PROGRESS_HH
