#include "exp/shard_plan.hh"

#include <map>

#include "util/bitops.hh"

namespace cameo
{

std::uint64_t
shardJobKey(std::string_view label, std::uint64_t occurrence)
{
    // Hash the label, then continue the same FNV stream over the
    // occurrence suffix — equivalent to fnv1a64(label + "#" + n) but
    // allocation-free.
    std::uint64_t hash = fnv1a64(label);
    hash = fnv1a64("#", hash);
    return fnv1a64(std::to_string(occurrence), hash);
}

unsigned
shardOfKey(std::uint64_t key, unsigned shards)
{
    if (shards <= 1)
        return 0;
    return static_cast<unsigned>(key % shards);
}

ShardPlan
planShards(const std::vector<std::string> &labels, unsigned shards)
{
    ShardPlan plan;
    plan.shards = shards == 0 ? 1 : shards;
    plan.shardOf.reserve(labels.size());
    plan.jobsOf.assign(plan.shards, {});

    std::map<std::string, std::uint64_t> occurrences;
    for (std::size_t i = 0; i < labels.size(); ++i) {
        const std::uint64_t occurrence = occurrences[labels[i]]++;
        const unsigned shard =
            shardOfKey(shardJobKey(labels[i], occurrence), plan.shards);
        plan.shardOf.push_back(shard);
        plan.jobsOf[shard].push_back(i);
    }
    return plan;
}

} // namespace cameo
