/**
 * @file
 * Versioned binary result frames for cross-process sweeps.
 *
 * A shard worker ships every finished RunResult back to the
 * orchestrator as one self-contained snapshot buffer (SnapshotWriter's
 * magic + container version + per-section CRC-32 apply, so a torn or
 * corrupted pipe read is detected, never silently merged), wrapped for
 * the stream by snapshot/frame.hh. Inside the container, the "shard"
 * section leads with kResultFrameVersion — bump it on ANY field
 * change, exactly like kSnapshotVersion; readers reject other
 * versions outright.
 *
 * Two frame kinds exist: Result (one job's RunResult, tagged with its
 * global submission index so the orchestrator merges in submission
 * order regardless of arrival order) and Done (a shard's end-of-stream
 * marker carrying its job count, which distinguishes a clean exit from
 * a death mid-stream). The per-job host wall time travels in the
 * Result frame for progress display only — it never enters merged
 * deterministic output.
 */

#ifndef CAMEO_EXP_RESULT_FRAME_HH
#define CAMEO_EXP_RESULT_FRAME_HH

#include <cstdint>
#include <string>
#include <vector>

#include "system/system.hh"

namespace cameo
{

/** Frame layout version; bump on any field change. */
inline constexpr std::uint32_t kResultFrameVersion = 1;

/** Discriminator carried in every frame's "shard" section. */
enum class ShardFrameKind : std::uint8_t
{
    Result = 1, ///< One finished job.
    Done = 2,   ///< Shard end-of-stream marker.
};

/** One finished job, tagged for submission-order merge. */
struct ShardResultFrame
{
    std::uint32_t shard = 0;

    /** Global submission index in the full (unsharded) job list. */
    std::uint64_t jobIndex = 0;

    std::string label;

    /** Host wall time of this job (progress display only). */
    double hostSeconds = 0.0;

    RunResult result;
};

/** End-of-stream marker: the shard ran @p jobsRun jobs and exited. */
struct ShardDoneFrame
{
    std::uint32_t shard = 0;
    std::uint64_t jobsRun = 0;
};

/** Serialize one Result frame (snapshot container included). */
std::vector<std::uint8_t> encodeShardResult(const ShardResultFrame &frame);

/** Serialize one Done frame (snapshot container included). */
std::vector<std::uint8_t> encodeShardDone(const ShardDoneFrame &frame);

/**
 * Parse one frame buffer. Validates the snapshot container (magic,
 * version, CRCs) and kResultFrameVersion, then fills @p result or
 * @p done according to @p kind. False + @p error on any defect.
 */
bool decodeShardFrame(std::vector<std::uint8_t> bytes,
                      ShardFrameKind *kind, ShardResultFrame *result,
                      ShardDoneFrame *done, std::string *error);

} // namespace cameo

#endif // CAMEO_EXP_RESULT_FRAME_HH
