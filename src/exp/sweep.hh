/**
 * @file
 * Work-stealing parallel sweep engine for experiment matrices.
 *
 * Every figure/table bench runs an embarrassingly parallel matrix of
 * independent, deterministically-seeded simulations (baseline + each
 * design point, for each workload). SweepRunner executes such a job
 * list on N worker threads and returns results in submission order, so
 * serial (jobs=1) and parallel (jobs=N) sweeps are bit-identical:
 *
 *  - Each job is a pure function of its captured config: every System
 *    derives all randomness from SystemConfig::seed, owns its whole
 *    simulation state (StatRegistry included), and shares only the
 *    thread-safe AuditSink and the immutable workload registry.
 *  - Results land in a pre-sized slot per job, so assembly order is
 *    the submission order no matter which worker finishes when.
 *
 * Scheduling is work-stealing: job indices are dealt round-robin onto
 * per-worker deques; a worker pops its own queue from the front and,
 * when empty, steals from the back of a victim's queue. Long jobs
 * (capacity-limited workloads run minutes, latency-limited seconds)
 * therefore never strand idle workers behind a static partition.
 *
 * Worker count resolution: explicit SweepOptions::jobs, else the
 * CAMEO_BENCH_JOBS environment variable (strictly parsed; malformed
 * values warn and are ignored), else std::thread::hardware_concurrency.
 */

#ifndef CAMEO_EXP_SWEEP_HH
#define CAMEO_EXP_SWEEP_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "exp/progress.hh"
#include "exp/experiment.hh"
#include "sim/fidelity.hh"

namespace cameo
{

/** One independent unit of sweep work. */
struct SweepJob
{
    /** Progress label, e.g. "mcf/CAMEO". */
    std::string label;

    /** Runs one simulation; must not touch shared mutable state. */
    std::function<RunResult()> run;
};

/** Knobs for one sweep. */
struct SweepOptions
{
    /** Worker threads; 0 resolves via CAMEO_BENCH_JOBS, then
     *  hardware_concurrency. 1 runs inline on the calling thread. */
    unsigned jobs = 0;

    /** Optional thread-safe progress sink (not owned). */
    ProgressReporter *progress = nullptr;

    /**
     * Non-zero: deterministically permute the submission order of the
     * internal job queues with this seed. Results are still returned
     * in submission order; the determinism tests use this to prove
     * results do not depend on execution order.
     */
    std::uint64_t shuffleSeed = 0;

    /**
     * Route the sweep's access streams through the process-wide
     * TraceArenaCache (DESIGN.md §10): the first job touching a
     * workload records its stream once, every other job replays the
     * packed arena. Replay is bit-identical to fresh generation, so
     * this is purely a wall-clock knob. Applied by runComparison() to
     * configs without a custom sourceFactory; ignored entirely when
     * the cache is disabled via CAMEO_TRACE_ARENA_MB=0.
     */
    bool traceArena = true;

    /**
     * When set, runComparison() overrides every config's warmup policy
     * with this value (on its local copies, like traceArena). Lets
     * warmup-heavy sweeps fast-forward through their warmup at
     * functional fidelity (DESIGN.md §13) without editing each design
     * point. Configs whose warmupAccessesPerCore is 0 are unaffected.
     */
    std::optional<WarmupPolicy> warmupPolicy;
};

/** Host-side measurements of the last SweepRunner::run call. */
struct SweepTelemetry
{
    std::size_t runs = 0;        ///< Jobs executed.
    unsigned workers = 0;        ///< Worker threads used.
    double wallSeconds = 0.0;    ///< End-to-end wall-clock time.
    std::vector<double> jobSeconds; ///< Per-job wall time, submission order.

    /** Aggregate throughput; 0 when nothing ran. */
    double runsPerSecond() const
    {
        return wallSeconds > 0.0
                   ? static_cast<double>(runs) / wallSeconds
                   : 0.0;
    }
};

/** Executes job lists on a work-stealing thread pool. */
class SweepRunner
{
  public:
    explicit SweepRunner(SweepOptions options = {})
        : options_(options)
    {
    }

    /**
     * Run every job and return their results in submission order.
     * Reports per-job completion and a final throughput summary to the
     * configured progress reporter. If jobs threw, the first exception
     * (in submission order) is rethrown after all workers drain.
     */
    std::vector<RunResult> run(std::vector<SweepJob> jobs);

    /** Telemetry of the last run() call. */
    const SweepTelemetry &telemetry() const { return telemetry_; }

    /**
     * Resolve a requested worker count: @p requested if non-zero, else
     * CAMEO_BENCH_JOBS (strictly parsed; 0 or malformed values warn on
     * stderr and fall through), else hardware_concurrency, else 1.
     */
    static unsigned resolveJobs(unsigned requested);

  private:
    SweepOptions options_;
    SweepTelemetry telemetry_;
};

/**
 * Parallel equivalent of runComparison(): baseline plus every design
 * point over every workload, executed on the sweep engine. Results are
 * bit-identical to the serial harness for any worker count.
 */
std::vector<SpeedupRow>
runComparison(const SystemConfig &base_config,
              std::span<const DesignPoint> points,
              std::span<const WorkloadProfile> workloads,
              const SweepOptions &options);

} // namespace cameo

#endif // CAMEO_EXP_SWEEP_HH
