/**
 * @file
 * Versioned, sectioned, CRC-guarded binary snapshots of simulator
 * state.
 *
 * A snapshot is a flat byte buffer: a fixed header (magic + format
 * version + section count) followed by named sections. Each section
 * carries its own length and a CRC-32 over its payload, so corruption
 * and truncation are pinpointed to a byte offset at open time —
 * mirroring the validatePackedTrace error style — before any component
 * sees a single field. Sections are entered strictly in the order they
 * were written: the reader refuses out-of-order access, which is what
 * makes save -> restore -> save produce byte-identical output (the
 * round-trip property the differential tests pin down).
 *
 * All integers are little-endian and written through explicit
 * byte-shifting, so snapshots are portable across hosts regardless of
 * native endianness or struct layout. Floating-point values travel as
 * IEEE-754 bit patterns.
 *
 * What is deliberately NOT serialized (see DESIGN.md §12): derived or
 * reconstructible state such as refill-ring contents (recreate the
 * source and skip() to the cursor), TLB entries (host-side telemetry;
 * restored cold), and audit shadow state (resynchronized from the
 * restored structures).
 */

#ifndef CAMEO_SNAPSHOT_SNAPSHOT_HH
#define CAMEO_SNAPSHOT_SNAPSHOT_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace cameo
{

/** First 8 bytes of every snapshot file. */
inline constexpr char kSnapshotMagic[8] = {'C', 'A', 'M', 'E',
                                           'O', 'S', 'N', 'P'};

/**
 * Format version. Bump on ANY layout change — field added, removed,
 * reordered, or re-typed in any section — and regenerate the committed
 * golden snapshot (CAMEO_UPDATE_GOLDEN=1, see tests/test_snapshot.cc).
 * Readers reject any other version outright; there is no migration.
 */
inline constexpr std::uint32_t kSnapshotVersion = 2;

/** CRC-32 (IEEE 802.3, reflected 0xEDB88320) over @p n bytes. */
std::uint32_t snapshotCrc32(const void *data, std::size_t n);

/**
 * Serializer producing the snapshot byte buffer.
 *
 * Usage: beginSection("name"), typed writes, endSection(), repeated;
 * then finish() (or writeFile()) to obtain the framed buffer. Sections
 * cannot nest. Writers are single-use.
 */
class SnapshotWriter
{
  public:
    SnapshotWriter() = default;

    void beginSection(std::string_view name);
    void endSection();

    void u8(std::uint8_t v);
    void u16(std::uint16_t v);
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    void b(bool v) { u8(v ? 1 : 0); }
    void f64(double v);
    /** Length-prefixed UTF-8 string (u32 length). */
    void str(std::string_view s);
    /** Raw bytes, no length prefix (caller wrote the count). */
    void bytes(const void *data, std::size_t n);

    void vecU8(const std::vector<std::uint8_t> &v);
    void vecU32(const std::vector<std::uint32_t> &v);
    void vecU64(const std::vector<std::uint64_t> &v);

    /** Frame header + sections into the final buffer. */
    std::vector<std::uint8_t> finish();

    /** finish() and write to @p path; false + message on I/O error. */
    bool writeFile(const std::string &path, std::string *error = nullptr);

  private:
    struct Section
    {
        std::string name;
        std::uint64_t payloadBegin = 0; ///< Offset into payload_.
        std::uint64_t payloadEnd = 0;
    };

    std::vector<std::uint8_t> payload_; ///< Concatenated payloads.
    std::vector<Section> sections_;
    bool inSection_ = false;
    bool finished_ = false;
};

/**
 * Deserializer over a snapshot byte buffer.
 *
 * open() validates the whole frame up front — magic, version, section
 * framing, payload CRCs — and reports the first problem with its byte
 * offset. After a successful open, components call enterSection() (in
 * exactly the order the sections were written), typed reads, then
 * leaveSection(), which verifies the payload was consumed exactly.
 *
 * Error handling is by sticky flag, not exceptions: the first failure
 * latches error(); every later read returns zero and every later call
 * is a no-op, so restore code can run straight through and check ok()
 * once at the end. Components flag semantic mismatches (wrong org,
 * wrong geometry) through fail().
 */
class SnapshotReader
{
  public:
    SnapshotReader() = default;

    /** Parse + validate @p data. False (with error()) on any defect. */
    bool open(std::vector<std::uint8_t> data);

    /** Read @p path fully, then open(). */
    bool openFile(const std::string &path);

    bool ok() const { return error_.empty(); }
    const std::string &error() const { return error_; }
    std::uint32_t version() const { return version_; }
    std::size_t sectionCount() const { return sections_.size(); }

    /** Record a failure; first message wins, later ones are dropped. */
    void fail(const std::string &what);

    /** Enter the next section; fails unless its name is @p name. */
    bool enterSection(std::string_view name);
    /** Leave the section; fails if payload bytes remain unread. */
    bool leaveSection();

    std::uint8_t u8();
    std::uint16_t u16();
    std::uint32_t u32();
    std::uint64_t u64();
    bool b() { return u8() != 0; }
    double f64();
    std::string str();
    void bytesInto(void *out, std::size_t n);

    void vecU8(std::vector<std::uint8_t> &out);
    void vecU32(std::vector<std::uint32_t> &out);
    void vecU64(std::vector<std::uint64_t> &out);

  private:
    struct Section
    {
        std::string name;
        std::uint64_t begin = 0; ///< Absolute payload offset in data_.
        std::uint64_t end = 0;
    };

    bool overrun(std::size_t n);

    std::vector<std::uint8_t> data_;
    std::vector<Section> sections_;
    std::size_t nextSection_ = 0;
    std::size_t cursor_ = 0; ///< Absolute offset of the next read.
    std::uint64_t sectionEnd_ = 0;
    bool inSection_ = false;
    std::uint32_t version_ = 0;
    std::string error_;
    std::string currentName_;
};

/**
 * Implemented by every module whose state a System snapshot covers.
 * Contract: restore() consumes exactly the bytes save() wrote, fields
 * in the same order, and flags structural mismatches via
 * SnapshotReader::fail() instead of applying partial state.
 */
class Checkpointable
{
  public:
    virtual ~Checkpointable() = default;
    virtual void save(SnapshotWriter &w) const = 0;
    virtual void restore(SnapshotReader &r) = 0;
};

} // namespace cameo

#endif // CAMEO_SNAPSHOT_SNAPSHOT_HH
