/**
 * @file
 * Snapshot serialization helpers for FlatMap-based containers.
 *
 * The maps are serialized at exact slot granularity — slot index, key,
 * value for every occupied slot, plus the table's slot count — rather
 * than as a key/value set. Re-inserting the same set into a fresh map
 * would reproduce the entries but not necessarily the probe-chain
 * displacement produced by the original insert/erase history, and
 * iteration order (which simulation code may observe) would drift. The
 * exact layout makes save -> restore -> save byte-identical.
 */

#ifndef CAMEO_SNAPSHOT_FLAT_MAP_IO_HH
#define CAMEO_SNAPSHOT_FLAT_MAP_IO_HH

#include <cstdint>
#include <string>

#include "snapshot/snapshot.hh"
#include "util/flat_map.hh"

namespace cameo
{

/** Serialize @p map's exact slot layout (occupied slots only). */
template <typename Map>
void
saveFlatMap(SnapshotWriter &w, const Map &map)
{
    w.u64(map.capacity());
    w.u64(map.size());
    for (std::size_t i = 0; i < map.capacity(); ++i) {
        if (!map.slotOccupied(i))
            continue;
        w.u64(i);
        w.u64(static_cast<std::uint64_t>(map.slotAt(i).first));
        w.u64(static_cast<std::uint64_t>(map.slotAt(i).second));
    }
}

/**
 * Restore @p map from a saveFlatMap image. @p what names the container
 * in error messages. Structural defects (non-power-of-two slot count,
 * out-of-range or duplicate slot index) flag @p r.
 */
template <typename Map>
void
restoreFlatMap(SnapshotReader &r, Map &map, const char *what)
{
    const std::uint64_t slots = r.u64();
    const std::uint64_t entries = r.u64();
    if (!r.ok())
        return;
    if (slots != 0 && (slots & (slots - 1)) != 0) {
        r.fail(std::string("snapshot: ") + what + " slot count " +
               std::to_string(slots) + " is not a power of two");
        return;
    }
    if (entries > slots) {
        r.fail(std::string("snapshot: ") + what + " has more entries (" +
               std::to_string(entries) + ") than slots (" +
               std::to_string(slots) + ")");
        return;
    }
    map.restoreLayout(static_cast<std::size_t>(slots));
    for (std::uint64_t i = 0; i < entries && r.ok(); ++i) {
        const std::uint64_t idx = r.u64();
        const std::uint64_t key = r.u64();
        const std::uint64_t value = r.u64();
        if (idx >= slots ||
            map.slotOccupied(static_cast<std::size_t>(idx))) {
            r.fail(std::string("snapshot: ") + what + " slot index " +
                   std::to_string(idx) + " is out of range or reused");
            return;
        }
        using Value = typename Map::value_type::second_type;
        map.placeSlot(static_cast<std::size_t>(idx),
                      static_cast<typename Map::value_type::first_type>(
                          key),
                      static_cast<Value>(value));
    }
}

} // namespace cameo

#endif // CAMEO_SNAPSHOT_FLAT_MAP_IO_HH
