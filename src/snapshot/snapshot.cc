/**
 * @file
 * Snapshot frame encoding/decoding: little-endian primitives, section
 * framing, and open-time validation with offset-pinpointing errors.
 */

#include "snapshot/snapshot.hh"

#include <array>
#include <cassert>
#include <cstdio>
#include <cstring>

namespace cameo
{

namespace
{

/** Header: magic[8] + u32 version + u32 sectionCount. */
constexpr std::size_t kHeaderBytes = 16;

std::string
hex32(std::uint32_t v)
{
    char buf[16];
    std::snprintf(buf, sizeof buf, "%08x", v);
    return buf;
}

void
putU32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    out.push_back(static_cast<std::uint8_t>(v));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
    out.push_back(static_cast<std::uint8_t>(v >> 16));
    out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void
putU64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    putU32(out, static_cast<std::uint32_t>(v));
    putU32(out, static_cast<std::uint32_t>(v >> 32));
}

} // namespace

std::uint32_t
snapshotCrc32(const void *data, std::size_t n)
{
    // Table generated on first use; reflected polynomial 0xEDB88320.
    static const auto table = [] {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    const auto *p = static_cast<const std::uint8_t *>(data);
    std::uint32_t crc = 0xFFFFFFFFu;
    for (std::size_t i = 0; i < n; ++i)
        crc = table[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
    return crc ^ 0xFFFFFFFFu;
}

void
SnapshotWriter::beginSection(std::string_view name)
{
    assert(!inSection_ && !finished_ && !name.empty());
    inSection_ = true;
    sections_.push_back(
        {std::string(name), payload_.size(), payload_.size()});
}

void
SnapshotWriter::endSection()
{
    assert(inSection_);
    inSection_ = false;
    sections_.back().payloadEnd = payload_.size();
}

void
SnapshotWriter::u8(std::uint8_t v)
{
    assert(inSection_);
    payload_.push_back(v);
}

void
SnapshotWriter::u16(std::uint16_t v)
{
    u8(static_cast<std::uint8_t>(v));
    u8(static_cast<std::uint8_t>(v >> 8));
}

void
SnapshotWriter::u32(std::uint32_t v)
{
    u16(static_cast<std::uint16_t>(v));
    u16(static_cast<std::uint16_t>(v >> 16));
}

void
SnapshotWriter::u64(std::uint64_t v)
{
    u32(static_cast<std::uint32_t>(v));
    u32(static_cast<std::uint32_t>(v >> 32));
}

void
SnapshotWriter::f64(double v)
{
    std::uint64_t bits = 0;
    static_assert(sizeof bits == sizeof v);
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
}

void
SnapshotWriter::str(std::string_view s)
{
    u32(static_cast<std::uint32_t>(s.size()));
    bytes(s.data(), s.size());
}

void
SnapshotWriter::bytes(const void *data, std::size_t n)
{
    assert(inSection_);
    const auto *p = static_cast<const std::uint8_t *>(data);
    payload_.insert(payload_.end(), p, p + n);
}

void
SnapshotWriter::vecU8(const std::vector<std::uint8_t> &v)
{
    u64(v.size());
    bytes(v.data(), v.size());
}

void
SnapshotWriter::vecU32(const std::vector<std::uint32_t> &v)
{
    u64(v.size());
    for (std::uint32_t x : v)
        u32(x);
}

void
SnapshotWriter::vecU64(const std::vector<std::uint64_t> &v)
{
    u64(v.size());
    for (std::uint64_t x : v)
        u64(x);
}

std::vector<std::uint8_t>
SnapshotWriter::finish()
{
    assert(!inSection_ && !finished_);
    finished_ = true;
    std::vector<std::uint8_t> out;
    out.reserve(kHeaderBytes + payload_.size() + sections_.size() * 32);
    out.insert(out.end(), kSnapshotMagic, kSnapshotMagic + 8);
    putU32(out, kSnapshotVersion);
    putU32(out, static_cast<std::uint32_t>(sections_.size()));
    for (const Section &s : sections_) {
        putU32(out, static_cast<std::uint32_t>(s.name.size()));
        out.insert(out.end(), s.name.begin(), s.name.end());
        const std::uint64_t len = s.payloadEnd - s.payloadBegin;
        putU64(out, len);
        putU32(out, snapshotCrc32(payload_.data() + s.payloadBegin,
                                  static_cast<std::size_t>(len)));
        out.insert(out.end(), payload_.begin() + s.payloadBegin,
                   payload_.begin() + s.payloadEnd);
    }
    return out;
}

bool
SnapshotWriter::writeFile(const std::string &path, std::string *error)
{
    const std::vector<std::uint8_t> data = finish();
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) {
        if (error != nullptr)
            *error = "snapshot: cannot open '" + path + "' for writing";
        return false;
    }
    const std::size_t wrote =
        data.empty() ? 0 : std::fwrite(data.data(), 1, data.size(), f);
    const bool closed = std::fclose(f) == 0;
    if (wrote != data.size() || !closed) {
        if (error != nullptr)
            *error = "snapshot: short write to '" + path + "'";
        return false;
    }
    return true;
}

bool
SnapshotReader::open(std::vector<std::uint8_t> data)
{
    data_ = std::move(data);
    sections_.clear();
    nextSection_ = 0;
    error_.clear();
    // Bounds-checked scalar readers over the frame; any overrun is a
    // truncation defect reported at its byte offset.
    std::size_t at = 0;
    const auto need = [&](std::size_t n, const char *what) {
        if (data_.size() - at < n) {
            fail("snapshot: truncated " + std::string(what) +
                 " at offset " + std::to_string(at) + " (need " +
                 std::to_string(n) + " bytes, have " +
                 std::to_string(data_.size() - at) + ")");
            return false;
        }
        return true;
    };
    const auto getU32 = [&] {
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(data_[at + static_cast<
                     std::size_t>(i)]) << (8 * i);
        at += 4;
        return v;
    };
    if (!need(kHeaderBytes, "header"))
        return false;
    if (std::memcmp(data_.data(), kSnapshotMagic, 8) != 0) {
        fail("snapshot: bad magic at offset 0 (not a CAMEO snapshot)");
        return false;
    }
    at = 8;
    version_ = getU32();
    if (version_ != kSnapshotVersion) {
        fail("snapshot: format version " + std::to_string(version_) +
             " at offset 8; this build reads only version " +
             std::to_string(kSnapshotVersion));
        return false;
    }
    const std::uint32_t count = getU32();
    for (std::uint32_t i = 0; i < count; ++i) {
        if (!need(4, "section name length"))
            return false;
        const std::uint32_t nameLen = getU32();
        if (!need(nameLen, "section name"))
            return false;
        std::string name(reinterpret_cast<const char *>(data_.data()) +
                             at,
                         nameLen);
        at += nameLen;
        if (!need(12, "section length + CRC"))
            return false;
        const std::uint64_t lo = getU32();
        const std::uint64_t hi = getU32();
        const std::uint64_t len = lo | (hi << 32);
        const std::uint32_t storedCrc = getU32();
        if (!need(static_cast<std::size_t>(len), "section payload"))
            return false;
        const std::uint32_t crc =
            snapshotCrc32(data_.data() + at,
                          static_cast<std::size_t>(len));
        if (crc != storedCrc) {
            fail("snapshot: section '" + name +
                 "' payload CRC mismatch at offset " +
                 std::to_string(at) + " (stored " + hex32(storedCrc) +
                 ", computed " + hex32(crc) + ")");
            return false;
        }
        sections_.push_back({std::move(name), at, at + len});
        at += static_cast<std::size_t>(len);
    }
    if (at != data_.size()) {
        fail("snapshot: " + std::to_string(data_.size() - at) +
             " trailing bytes at offset " + std::to_string(at));
        return false;
    }
    return true;
}

bool
SnapshotReader::openFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
        fail("snapshot: cannot open '" + path + "' for reading");
        return false;
    }
    std::vector<std::uint8_t> data;
    std::uint8_t buf[1 << 16];
    std::size_t got = 0;
    while ((got = std::fread(buf, 1, sizeof buf, f)) > 0)
        data.insert(data.end(), buf, buf + got);
    const bool readError = std::ferror(f) != 0;
    std::fclose(f);
    if (readError) {
        fail("snapshot: read error on '" + path + "'");
        return false;
    }
    return open(std::move(data));
}

void
SnapshotReader::fail(const std::string &what)
{
    if (error_.empty())
        error_ = what;
}

bool
SnapshotReader::enterSection(std::string_view name)
{
    if (!ok())
        return false;
    assert(!inSection_);
    if (nextSection_ >= sections_.size()) {
        fail("snapshot: no section left to enter; expected '" +
             std::string(name) + "'");
        return false;
    }
    const Section &s = sections_[nextSection_];
    if (s.name != name) {
        fail("snapshot: section order mismatch at offset " +
             std::to_string(s.begin) + ": found '" + s.name +
             "', expected '" + std::string(name) + "'");
        return false;
    }
    ++nextSection_;
    inSection_ = true;
    cursor_ = static_cast<std::size_t>(s.begin);
    sectionEnd_ = s.end;
    currentName_ = s.name;
    return true;
}

bool
SnapshotReader::leaveSection()
{
    if (!ok())
        return false;
    assert(inSection_);
    inSection_ = false;
    if (cursor_ != sectionEnd_) {
        fail("snapshot: section '" + currentName_ + "' has " +
             std::to_string(sectionEnd_ - cursor_) +
             " unread bytes at offset " + std::to_string(cursor_));
        return false;
    }
    return true;
}

bool
SnapshotReader::overrun(std::size_t n)
{
    if (!ok())
        return true;
    if (!inSection_ || sectionEnd_ - cursor_ < n) {
        fail("snapshot: section '" + currentName_ +
             "' truncated at offset " + std::to_string(cursor_) +
             " (read of " + std::to_string(n) + " bytes past end)");
        return true;
    }
    return false;
}

std::uint8_t
SnapshotReader::u8()
{
    if (overrun(1))
        return 0;
    return data_[cursor_++];
}

std::uint16_t
SnapshotReader::u16()
{
    if (overrun(2))
        return 0;
    const std::uint16_t v = static_cast<std::uint16_t>(
        data_[cursor_] | (data_[cursor_ + 1] << 8));
    cursor_ += 2;
    return v;
}

std::uint32_t
SnapshotReader::u32()
{
    if (overrun(4))
        return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(
                 data_[cursor_ + static_cast<std::size_t>(i)])
             << (8 * i);
    cursor_ += 4;
    return v;
}

std::uint64_t
SnapshotReader::u64()
{
    const std::uint64_t lo = u32();
    const std::uint64_t hi = u32();
    return lo | (hi << 32);
}

double
SnapshotReader::f64()
{
    const std::uint64_t bits = u64();
    double v = 0;
    std::memcpy(&v, &bits, sizeof v);
    return v;
}

std::string
SnapshotReader::str()
{
    const std::uint32_t n = u32();
    if (overrun(n))
        return {};
    std::string s(reinterpret_cast<const char *>(data_.data()) + cursor_,
                  n);
    cursor_ += n;
    return s;
}

void
SnapshotReader::bytesInto(void *out, std::size_t n)
{
    if (overrun(n)) {
        std::memset(out, 0, n);
        return;
    }
    std::memcpy(out, data_.data() + cursor_, n);
    cursor_ += n;
}

void
SnapshotReader::vecU8(std::vector<std::uint8_t> &out)
{
    const std::uint64_t n = u64();
    if (overrun(static_cast<std::size_t>(n))) {
        out.clear();
        return;
    }
    out.resize(static_cast<std::size_t>(n));
    bytesInto(out.data(), out.size());
}

void
SnapshotReader::vecU32(std::vector<std::uint32_t> &out)
{
    const std::uint64_t n = u64();
    if (overrun(static_cast<std::size_t>(n) * 4)) {
        out.clear();
        return;
    }
    out.resize(static_cast<std::size_t>(n));
    for (std::uint32_t &x : out)
        x = u32();
}

void
SnapshotReader::vecU64(std::vector<std::uint64_t> &out)
{
    const std::uint64_t n = u64();
    if (overrun(static_cast<std::size_t>(n) * 8)) {
        out.clear();
        return;
    }
    out.resize(static_cast<std::size_t>(n));
    for (std::uint64_t &x : out)
        x = u64();
}

} // namespace cameo
