/**
 * @file
 * Length-prefixed framing of snapshot buffers over byte streams.
 *
 * The shard fleet (src/shard) ships whole snapshot buffers — each one
 * internally versioned and CRC-guarded by SnapshotWriter — across
 * process boundaries on pipes. A pipe is just a byte stream, so the
 * sender prefixes every buffer with its little-endian u32 length
 * (appendFrame) and the receiver reassembles buffers from arbitrarily
 * chunked reads (FrameSplitter). Corruption inside a frame is caught
 * by SnapshotReader's CRC validation; corruption of the framing itself
 * surfaces as an oversized length, which latches FrameSplitter::bad().
 */

#ifndef CAMEO_SNAPSHOT_FRAME_HH
#define CAMEO_SNAPSHOT_FRAME_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cameo
{

/**
 * Upper bound on one frame's payload. Far above any real result frame
 * (a few hundred bytes); a length beyond it means the stream is not
 * frame-aligned (a crashed writer, or garbage on the pipe).
 */
inline constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

/** Append [u32 LE length][payload bytes] to @p stream. */
void appendFrame(std::vector<std::uint8_t> &stream,
                 const std::vector<std::uint8_t> &payload);

/**
 * Incremental reassembly of frames from a chunked byte stream.
 *
 * feed() arbitrary read chunks, then drain complete frames with
 * next(). Partial frames stay buffered across feeds. A frame length
 * exceeding kMaxFrameBytes latches bad(): the splitter stops producing
 * frames and the caller should treat the stream as corrupt.
 */
class FrameSplitter
{
  public:
    /** Buffer @p n more stream bytes. */
    void feed(const std::uint8_t *data, std::size_t n);

    /**
     * Pop the next complete frame's payload into @p payload. Returns
     * false when no complete frame is buffered (or the stream went
     * bad).
     */
    bool next(std::vector<std::uint8_t> *payload);

    /** True once an impossible frame length was seen. */
    bool bad() const { return bad_; }

    /** Bytes buffered but not yet returned (partial trailing frame). */
    std::size_t pendingBytes() const { return buffer_.size() - cursor_; }

  private:
    std::vector<std::uint8_t> buffer_;
    std::size_t cursor_ = 0;
    bool bad_ = false;
};

} // namespace cameo

#endif // CAMEO_SNAPSHOT_FRAME_HH
