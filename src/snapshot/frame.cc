#include "snapshot/frame.hh"

namespace cameo
{

void
appendFrame(std::vector<std::uint8_t> &stream,
            const std::vector<std::uint8_t> &payload)
{
    const std::uint32_t n = static_cast<std::uint32_t>(payload.size());
    stream.reserve(stream.size() + 4 + payload.size());
    stream.push_back(static_cast<std::uint8_t>(n));
    stream.push_back(static_cast<std::uint8_t>(n >> 8));
    stream.push_back(static_cast<std::uint8_t>(n >> 16));
    stream.push_back(static_cast<std::uint8_t>(n >> 24));
    stream.insert(stream.end(), payload.begin(), payload.end());
}

void
FrameSplitter::feed(const std::uint8_t *data, std::size_t n)
{
    if (bad_ || n == 0)
        return;
    // Compact lazily: only when the consumed prefix dominates the
    // buffer, so feeding is amortized O(n).
    if (cursor_ > 0 && cursor_ >= buffer_.size() / 2) {
        buffer_.erase(buffer_.begin(),
                      buffer_.begin() +
                          static_cast<std::ptrdiff_t>(cursor_));
        cursor_ = 0;
    }
    buffer_.insert(buffer_.end(), data, data + n);
}

bool
FrameSplitter::next(std::vector<std::uint8_t> *payload)
{
    if (bad_ || buffer_.size() - cursor_ < 4)
        return false;
    // The length travels little-endian; reassemble portably.
    const std::uint8_t *p = buffer_.data() + cursor_;
    const std::uint32_t n =
        static_cast<std::uint32_t>(p[0]) |
        (static_cast<std::uint32_t>(p[1]) << 8) |
        (static_cast<std::uint32_t>(p[2]) << 16) |
        (static_cast<std::uint32_t>(p[3]) << 24);
    if (n > kMaxFrameBytes) {
        bad_ = true;
        return false;
    }
    if (buffer_.size() - cursor_ - 4 < n)
        return false;
    payload->assign(buffer_.begin() +
                        static_cast<std::ptrdiff_t>(cursor_ + 4),
                    buffer_.begin() +
                        static_cast<std::ptrdiff_t>(cursor_ + 4 + n));
    cursor_ += 4 + n;
    return true;
}

} // namespace cameo
