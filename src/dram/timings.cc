#include "dram/timings.hh"

namespace cameo
{

DramTimings
stackedTimings()
{
    DramTimings t;
    t.cpuMhz = 3200;
    t.busMhz = 1600;
    t.channels = 16;
    t.banksPerChannel = 16;
    t.busWidthBits = 128;
    t.rowBytes = 2048;
    t.linesPerRow = 32;
    t.tCas = 9;
    t.tRcd = 9;
    t.tRp = 9;
    t.tRas = 36;
    return t;
}

DramTimings
offchipTimings()
{
    DramTimings t;
    t.cpuMhz = 3200;
    t.busMhz = 800;
    t.channels = 8;
    t.banksPerChannel = 8;
    t.busWidthBits = 64;
    t.rowBytes = 2048;
    t.linesPerRow = 32;
    t.tCas = 9;
    t.tRcd = 9;
    t.tRp = 9;
    t.tRas = 36;
    return t;
}

} // namespace cameo
