#include "dram/dram_module.hh"

#include <algorithm>
#include <cassert>

namespace cameo
{

DramModule::DramModule(std::string name, const DramTimings &timings,
                       std::uint64_t capacity_bytes)
    : name_(std::move(name)), timings_(timings), map_(timings),
      capacityLines_(capacity_bytes / kLineBytes),
#if CAMEO_AUDIT_ENABLED
      protoAudit_(name_, timings.channels, timings.banksPerChannel,
                  DramProtocolParams{timings.rcdCycles(),
                                     timings.rasCycles(),
                                     timings.rpCycles()}),
#endif
      casCyc_(timings.casCycles()), rcdCyc_(timings.rcdCycles()),
      rpCyc_(timings.rpCycles()), rasCyc_(timings.rasCycles()),
      refiCyc_(timings.refiCycles()), rfcCyc_(timings.rfcCycles()),
      bytesPerBeat_(timings.bytesPerBeat()),
      cyclesPerBeat_(timings.cpuCyclesPerBeat()),
      beatShift_(isPowerOfTwo(bytesPerBeat_)
                     ? static_cast<std::int32_t>(exactLog2(bytesPerBeat_))
                     : -1),
      reads_(name_ + ".reads", "read accesses"),
      writes_(name_ + ".writes", "write accesses"),
      readBytes_(name_ + ".readBytes", "bytes moved by reads"),
      writeBytes_(name_ + ".writeBytes", "bytes moved by writes"),
      rowHits_(name_ + ".rowHits", "row-buffer hits"),
      rowClosed_(name_ + ".rowClosed", "accesses to a closed row"),
      rowConflicts_(name_ + ".rowConflicts", "row-buffer conflicts"),
      refreshStalls_(name_ + ".refreshStalls",
                     "reads delayed by an all-bank refresh"),
      readLatency_(name_ + ".readLatency",
                   "read latency from request to data (cycles)", 100, 64),
      queueFullStalls_(name_ + ".queueFullStalls",
                       "reads stalled by a full in-service window"),
      writeDrains_(name_ + ".writeDrains",
                   "write-buffer drain bursts (forced + idle-bus)"),
      drainedWrites_(name_ + ".drainedWrites",
                     "writes drained through the bank/bus model"),
      readQueueDepth_(name_ + ".readQueueDepth",
                      "in-service reads at each read arrival", 1, 64),
      writeQueueDepth_(name_ + ".writeQueueDepth",
                       "buffered writes at each write arrival", 1, 64),
      busBytesPerWindow_(name_ + ".busBytesPerWindow",
                         "bytes transferred per 8192-cycle window", 2048,
                         80)
{
    assert(capacity_bytes % kLineBytes == 0);
    channels_.reserve(timings_.channels);
    for (std::uint32_t c = 0; c < timings_.channels; ++c)
        channels_.emplace_back(timings_.banksPerChannel);
}

Tick
DramModule::request(Tick now, std::uint64_t device_line, bool is_write,
                    std::uint32_t burst_bytes)
{
    if (mode_ == TimingMode::Blocking)
        return access(now, device_line, is_write, burst_bytes);
    return queuedRequest(now, device_line, is_write, burst_bytes);
}

Tick
DramModule::access(Tick now, std::uint64_t device_line, bool is_write,
                   std::uint32_t burst_bytes)
{
    assert(device_line < capacityLines_ && "device address out of range");

    const DramCoord coord = map_.decode(device_line);

    if (is_write) {
        // Writes sit in the controller's write queue and are drained
        // in row-batched bursts during read-idle periods (read-
        // priority scheduling): their bank occupancy is hidden from
        // reads and back-to-back batching roughly doubles their
        // effective bus efficiency versus interleaved reads. They are
        // charged half a burst of shared-bus time; byte counters (the
        // Table IV figures) are exact.
        Channel &chan = channels_[coord.channel];
        const Tick start = std::max(now, chan.busReadyTick);
        const Tick burst = burstCyclesFast(burst_bytes);
        const Tick done = start + burst;
        chan.busReadyTick = start + std::max<Tick>(1, burst / 2);
        writes_.inc();
        writeBytes_.inc(burst_bytes);
        return done;
    }

    const Tick done = serviceCommand(now, coord, burst_bytes);
    reads_.inc();
    readBytes_.inc(burst_bytes);
    readLatency_.sample(done - now);
    return done;
}

Tick
DramModule::serviceCommand(Tick earliest, const DramCoord &coord,
                           std::uint32_t burst_bytes)
{
    Channel &chan = channels_[coord.channel];
    Bank &bank = chan.banks[coord.bank];

    Tick start = std::max(earliest, bank.readyTick);
    // All-bank refresh: commands issued during a refresh window wait
    // for it to complete (tREFI period, tRFC duration).
    if (timings_.tRefi != 0) {
        const Tick phase = start % refiCyc_;
        if (phase < rfcCyc_) {
            start += rfcCyc_ - phase;
            refreshStalls_.inc();
        }
    }
    Tick issue_done; // when column command data can start moving
    switch (bank.outcomeFor(coord.row)) {
      case RowOutcome::Hit:
        rowHits_.inc();
        issue_done = start + casCyc_;
#if CAMEO_AUDIT_ENABLED
        protoAudit_.onColumn(coord.channel, coord.bank, coord.row, start);
#endif
        break;
      case RowOutcome::Closed:
        rowClosed_.inc();
        bank.activateTick = start;
        issue_done = start + rcdCyc_ + casCyc_;
#if CAMEO_AUDIT_ENABLED
        protoAudit_.onActivate(coord.channel, coord.bank, coord.row, start);
        protoAudit_.onColumn(coord.channel, coord.bank, coord.row,
                             start + rcdCyc_);
#endif
        break;
      case RowOutcome::Conflict: {
        rowConflicts_.inc();
        // Precharge may not begin before tRAS elapses from activation.
        const Tick pre_start =
            std::max(start, bank.activateTick + rasCyc_);
        const Tick act_start = pre_start + rpCyc_;
        bank.activateTick = act_start;
        issue_done = act_start + rcdCyc_ + casCyc_;
#if CAMEO_AUDIT_ENABLED
        protoAudit_.onPrecharge(coord.channel, coord.bank, pre_start);
        protoAudit_.onActivate(coord.channel, coord.bank, coord.row,
                               act_start);
        protoAudit_.onColumn(coord.channel, coord.bank, coord.row,
                             act_start + rcdCyc_);
#endif
        break;
      }
      default:
        issue_done = start; // unreachable
    }
    bank.openRow = coord.row;

    // Data transfer occupies the channel bus.
    const Tick burst = burstCyclesFast(burst_bytes);
    const Tick data_start = std::max(issue_done, chan.busReadyTick);
    const Tick done = data_start + burst;
    chan.busReadyTick = done;
    // Column commands pipeline: the bank can accept the next command
    // once this access's data transfer begins; data serialization is
    // the channel bus's job, and activate-to-activate spacing is still
    // enforced through activateTick + tRAS (+ tRP), i.e. tRC.
    bank.readyTick = data_start;

    if (mode_ == TimingMode::Queued)
        recordBandwidth(done, burst_bytes);
    return done;
}

void
DramModule::setTimingMode(TimingMode mode, const DramQueueConfig &queues)
{
    assert(queues.readWindow > 0 && queues.writeQueueDepth > 0);
    assert(queues.drainLowWatermark < queues.drainHighWatermark);
    assert(queues.drainHighWatermark <= queues.writeQueueDepth);
    mode_ = mode;
    queueCfg_ = queues;
    queued_.clear();
    if (mode_ == TimingMode::Queued)
        queued_.resize(channels_.size());
}

Tick
DramModule::queuedRequest(Tick now, std::uint64_t device_line,
                          bool is_write, std::uint32_t burst_bytes)
{
    assert(device_line < capacityLines_ && "device address out of range");

    const DramCoord coord = map_.decode(device_line);
    QueuedChannel &qc = queued_[coord.channel];

    if (is_write) {
        // Posted write: buffered immediately, byte counters exact at
        // enqueue. The buffer only touches banks/buses when drained.
        writes_.inc();
        writeBytes_.inc(burst_bytes);
        writeQueueDepth_.sample(qc.writeQueue.size());
        qc.writeQueue.push_back(QueuedWrite{device_line, burst_bytes});
        CAMEO_AUDIT(qc.writeQueue.size() <= queueCfg_.drainHighWatermark,
                    "write queue grew past the drain high watermark");
        if (qc.writeQueue.size() >= queueCfg_.drainHighWatermark) {
            // High watermark: the drain burst blocks the channel, and
            // the triggering write is accepted once space is free.
            return drainWrites(now, coord.channel,
                               queueCfg_.drainLowWatermark);
        }
        return now + 1;
    }

    // Retire in-service reads that completed before this arrival.
    while (!qc.inServiceReads.empty() && qc.inServiceReads.front() <= now)
        qc.inServiceReads.pop_front();
    CAMEO_AUDIT(qc.inServiceReads.empty() ||
                    qc.inServiceReads.front() > now,
                "completed in-service reads were not fully retired");
    readQueueDepth_.sample(qc.inServiceReads.size());

    Tick earliest = now;
    if (qc.inServiceReads.size() >= queueCfg_.readWindow) {
        // Window full: the arrival waits for the oldest in-service
        // read to complete before it can occupy a queue slot.
        queueFullStalls_.inc();
        earliest = qc.inServiceReads.front();
        qc.inServiceReads.pop_front();
        CAMEO_AUDIT(qc.inServiceReads.size() < queueCfg_.readWindow,
                    "in-service window still full after evicting the "
                    "oldest read");
    }

    // Opportunistic drain: an idle bus ahead of this read lets the
    // controller slip one buffered write in (read-priority policy
    // drains writes only when no read is waiting).
    if (!qc.writeQueue.empty() &&
        channels_[coord.channel].busReadyTick < earliest) {
        drainWrites(earliest, coord.channel, qc.writeQueue.size() - 1);
    }

    const Tick done = serviceCommand(earliest, coord, burst_bytes);
    reads_.inc();
    readBytes_.inc(burst_bytes);
    readLatency_.sample(done - now);
    CAMEO_AUDIT(qc.inServiceReads.empty() ||
                    done >= qc.inServiceReads.back(),
                "in-service read completions are out of order");
    qc.inServiceReads.push_back(done);
    return done;
}

Tick
DramModule::drainWrites(Tick now, std::uint32_t chan_idx,
                        std::size_t target)
{
    QueuedChannel &qc = queued_[chan_idx];
    Channel &chan = channels_[chan_idx];
    Tick last_done = now;
    writeDrains_.inc();
    while (qc.writeQueue.size() > target) {
        // FR-FCFS: the oldest write whose row is already open goes
        // first; with no open-row match, strict arrival order.
        std::size_t pick = 0;
        for (std::size_t i = 0; i < qc.writeQueue.size(); ++i) {
            const DramCoord c = map_.decode(qc.writeQueue[i].line);
            if (chan.banks[c.bank].openRow == c.row) {
                pick = i;
                break;
            }
        }
        const QueuedWrite write = qc.writeQueue[pick];
        CAMEO_AUDIT(pick < qc.writeQueue.size(),
                    "FR-FCFS picked a write outside the queue");
        qc.writeQueue.erase(qc.writeQueue.begin() +
                            static_cast<std::ptrdiff_t>(pick));
        const DramCoord coord = map_.decode(write.line);
        last_done = serviceCommand(now, coord, write.burstBytes);
        drainedWrites_.inc();
    }
    return last_done;
}

void
DramModule::recordBandwidth(Tick done, std::uint32_t bytes)
{
    if (done >= bandwidthWindowStart_ + kBandwidthWindow) {
        busBytesPerWindow_.sample(bandwidthWindowBytes_);
        bandwidthWindowStart_ = done - done % kBandwidthWindow;
        bandwidthWindowBytes_ = 0;
    }
    bandwidthWindowBytes_ += bytes;
}

Tick
DramModule::earliestServiceStart(std::uint64_t device_line) const
{
    assert(device_line < capacityLines_);
    const DramCoord coord = map_.decode(device_line);
    const Channel &chan = channels_[coord.channel];
    const Bank &bank = chan.banks[coord.bank];
    return std::max(bank.readyTick, chan.busReadyTick);
}

void
DramModule::registerStats(StatRegistry &registry)
{
    registry.add(reads_);
    registry.add(writes_);
    registry.add(readBytes_);
    registry.add(writeBytes_);
    registry.add(rowHits_);
    registry.add(rowClosed_);
    registry.add(rowConflicts_);
    registry.add(refreshStalls_);
    registry.add(readLatency_);
    // Queued-only stats register conditionally so blocking-mode dumps
    // (and with them the golden references) are unchanged.
    if (mode_ == TimingMode::Queued) {
        registry.add(queueFullStalls_);
        registry.add(writeDrains_);
        registry.add(drainedWrites_);
        registry.add(readQueueDepth_);
        registry.add(writeQueueDepth_);
        registry.add(busBytesPerWindow_);
    }
}

void
DramModule::reset()
{
    for (Channel &chan : channels_) {
        chan.busReadyTick = 0;
        for (Bank &bank : chan.banks)
            bank = Bank{};
    }
#if CAMEO_AUDIT_ENABLED
    protoAudit_.reset();
#endif
    reads_.reset();
    writes_.reset();
    readBytes_.reset();
    writeBytes_.reset();
    rowHits_.reset();
    rowClosed_.reset();
    rowConflicts_.reset();
    refreshStalls_.reset();
    readLatency_.reset();
    for (QueuedChannel &qc : queued_) {
        // An emptied queue has no protocol invariant left to check.
        // cameo-analyze: allow(audit-coverage): reset() drops reads
        qc.inServiceReads.clear();
        // cameo-analyze: allow(audit-coverage): reset() drops writes
        qc.writeQueue.clear();
    }
    bandwidthWindowStart_ = 0;
    bandwidthWindowBytes_ = 0;
    queueFullStalls_.reset();
    writeDrains_.reset();
    drainedWrites_.reset();
    readQueueDepth_.reset();
    writeQueueDepth_.reset();
    busBytesPerWindow_.reset();
}

void
DramModule::save(SnapshotWriter &w) const
{
    w.u32(static_cast<std::uint32_t>(channels_.size()));
    w.u32(channels_.empty()
              ? 0
              : static_cast<std::uint32_t>(channels_[0].banks.size()));
    w.u8(mode_ == TimingMode::Queued ? 1 : 0);
    for (const Channel &chan : channels_) {
        w.u64(chan.busReadyTick);
        for (const Bank &bank : chan.banks) {
            w.u64(bank.openRow);
            w.u64(bank.activateTick);
            w.u64(bank.readyTick);
        }
    }
    if (mode_ == TimingMode::Queued) {
        for (const QueuedChannel &qc : queued_) {
            w.u64(qc.inServiceReads.size());
            for (Tick t : qc.inServiceReads)
                w.u64(t);
            w.u64(qc.writeQueue.size());
            for (const QueuedWrite &qw : qc.writeQueue) {
                w.u64(qw.line);
                w.u32(qw.burstBytes);
            }
        }
        w.u64(bandwidthWindowStart_);
        w.u64(bandwidthWindowBytes_);
    }
}

void
DramModule::restore(SnapshotReader &r)
{
    const std::uint32_t nChannels = r.u32();
    const std::uint32_t nBanks = r.u32();
    const bool queued = r.u8() != 0;
    if (!r.ok())
        return;
    if (nChannels != channels_.size() ||
        (nChannels != 0 && nBanks != channels_[0].banks.size())) {
        r.fail("dram: '" + name_ + "' geometry mismatch: snapshot has " +
               std::to_string(nChannels) + "x" + std::to_string(nBanks) +
               " (channels x banks), this device has " +
               std::to_string(channels_.size()) + "x" +
               std::to_string(channels_.empty()
                                  ? 0
                                  : channels_[0].banks.size()));
        return;
    }
    if (queued != (mode_ == TimingMode::Queued)) {
        r.fail("dram: '" + name_ + "' timing-mode mismatch: snapshot " +
               (queued ? "Queued" : "Blocking") + ", this device " +
               (mode_ == TimingMode::Queued ? "Queued" : "Blocking"));
        return;
    }
    for (std::uint32_t c = 0; c < nChannels; ++c) {
        Channel &chan = channels_[c];
        chan.busReadyTick = r.u64();
        for (std::uint32_t b = 0; b < nBanks; ++b) {
            Bank &bank = chan.banks[b];
            bank.openRow = r.u64();
            bank.activateTick = r.u64();
            bank.readyTick = r.u64();
#if CAMEO_AUDIT_ENABLED
            protoAudit_.resyncBank(c, b, bank.openRow,
                                   bank.activateTick);
#endif
        }
    }
    if (queued) {
        for (QueuedChannel &qc : queued_) {
            const std::uint64_t nReads = r.u64();
            qc.inServiceReads.clear();
            Tick prev = 0;
            for (std::uint64_t i = 0; i < nReads && r.ok(); ++i) {
                const Tick t = r.u64();
                // Restored windows must honor the invariant the live
                // controller maintains: bus-serialized reads complete
                // in nondecreasing order.
                CAMEO_AUDIT(t >= prev, "dram: restored in-service read "
                                       "window not nondecreasing");
                prev = t;
                qc.inServiceReads.push_back(t);
            }
            const std::uint64_t nWrites = r.u64();
            qc.writeQueue.clear();
            for (std::uint64_t i = 0; i < nWrites && r.ok(); ++i) {
                QueuedWrite qw;
                qw.line = r.u64();
                qw.burstBytes = r.u32();
                qc.writeQueue.push_back(qw);
            }
            // Restored queues must honor the same bound the live
            // controller enforces on every enqueue.
            CAMEO_AUDIT(qc.writeQueue.size() <=
                            queueCfg_.drainHighWatermark,
                        "dram: restored write queue exceeds the drain "
                        "high watermark");
        }
        bandwidthWindowStart_ = r.u64();
        bandwidthWindowBytes_ = r.u64();
    }
}

} // namespace cameo
