#include "dram/dram_module.hh"

#include <algorithm>
#include <cassert>

namespace cameo
{

DramModule::DramModule(std::string name, const DramTimings &timings,
                       std::uint64_t capacity_bytes)
    : name_(std::move(name)), timings_(timings), map_(timings),
      capacityLines_(capacity_bytes / kLineBytes),
#if CAMEO_AUDIT_ENABLED
      protoAudit_(name_, timings.channels, timings.banksPerChannel,
                  DramProtocolParams{timings.rcdCycles(),
                                     timings.rasCycles(),
                                     timings.rpCycles()}),
#endif
      casCyc_(timings.casCycles()), rcdCyc_(timings.rcdCycles()),
      rpCyc_(timings.rpCycles()), rasCyc_(timings.rasCycles()),
      refiCyc_(timings.refiCycles()), rfcCyc_(timings.rfcCycles()),
      bytesPerBeat_(timings.bytesPerBeat()),
      cyclesPerBeat_(timings.cpuCyclesPerBeat()),
      beatShift_(isPowerOfTwo(bytesPerBeat_)
                     ? static_cast<std::int32_t>(exactLog2(bytesPerBeat_))
                     : -1),
      reads_(name_ + ".reads", "read accesses"),
      writes_(name_ + ".writes", "write accesses"),
      readBytes_(name_ + ".readBytes", "bytes moved by reads"),
      writeBytes_(name_ + ".writeBytes", "bytes moved by writes"),
      rowHits_(name_ + ".rowHits", "row-buffer hits"),
      rowClosed_(name_ + ".rowClosed", "accesses to a closed row"),
      rowConflicts_(name_ + ".rowConflicts", "row-buffer conflicts"),
      refreshStalls_(name_ + ".refreshStalls",
                     "reads delayed by an all-bank refresh"),
      readLatency_(name_ + ".readLatency",
                   "read latency from request to data (cycles)", 100, 64)
{
    assert(capacity_bytes % kLineBytes == 0);
    channels_.reserve(timings_.channels);
    for (std::uint32_t c = 0; c < timings_.channels; ++c)
        channels_.emplace_back(timings_.banksPerChannel);
}

Tick
DramModule::access(Tick now, std::uint64_t device_line, bool is_write,
                   std::uint32_t burst_bytes)
{
    assert(device_line < capacityLines_ && "device address out of range");

    const DramCoord coord = map_.decode(device_line);
    Channel &chan = channels_[coord.channel];
    Bank &bank = chan.banks[coord.bank];

    if (is_write) {
        // Writes sit in the controller's write queue and are drained
        // in row-batched bursts during read-idle periods (read-
        // priority scheduling): their bank occupancy is hidden from
        // reads and back-to-back batching roughly doubles their
        // effective bus efficiency versus interleaved reads. They are
        // charged half a burst of shared-bus time; byte counters (the
        // Table IV figures) are exact.
        const Tick start = std::max(now, chan.busReadyTick);
        const Tick burst = burstCyclesFast(burst_bytes);
        const Tick done = start + burst;
        chan.busReadyTick = start + std::max<Tick>(1, burst / 2);
        writes_.inc();
        writeBytes_.inc(burst_bytes);
        return done;
    }

    Tick start = std::max(now, bank.readyTick);
    // All-bank refresh: commands issued during a refresh window wait
    // for it to complete (tREFI period, tRFC duration).
    if (timings_.tRefi != 0) {
        const Tick phase = start % refiCyc_;
        if (phase < rfcCyc_) {
            start += rfcCyc_ - phase;
            refreshStalls_.inc();
        }
    }
    Tick issue_done; // when column command data can start moving
    switch (bank.outcomeFor(coord.row)) {
      case RowOutcome::Hit:
        rowHits_.inc();
        issue_done = start + casCyc_;
#if CAMEO_AUDIT_ENABLED
        protoAudit_.onColumn(coord.channel, coord.bank, coord.row, start);
#endif
        break;
      case RowOutcome::Closed:
        rowClosed_.inc();
        bank.activateTick = start;
        issue_done = start + rcdCyc_ + casCyc_;
#if CAMEO_AUDIT_ENABLED
        protoAudit_.onActivate(coord.channel, coord.bank, coord.row, start);
        protoAudit_.onColumn(coord.channel, coord.bank, coord.row,
                             start + rcdCyc_);
#endif
        break;
      case RowOutcome::Conflict: {
        rowConflicts_.inc();
        // Precharge may not begin before tRAS elapses from activation.
        const Tick pre_start =
            std::max(start, bank.activateTick + rasCyc_);
        const Tick act_start = pre_start + rpCyc_;
        bank.activateTick = act_start;
        issue_done = act_start + rcdCyc_ + casCyc_;
#if CAMEO_AUDIT_ENABLED
        protoAudit_.onPrecharge(coord.channel, coord.bank, pre_start);
        protoAudit_.onActivate(coord.channel, coord.bank, coord.row,
                               act_start);
        protoAudit_.onColumn(coord.channel, coord.bank, coord.row,
                             act_start + rcdCyc_);
#endif
        break;
      }
      default:
        issue_done = start; // unreachable
    }
    bank.openRow = coord.row;

    // Data transfer occupies the channel bus.
    const Tick burst = burstCyclesFast(burst_bytes);
    const Tick data_start = std::max(issue_done, chan.busReadyTick);
    const Tick done = data_start + burst;
    chan.busReadyTick = done;
    // Column commands pipeline: the bank can accept the next command
    // once this access's data transfer begins; data serialization is
    // the channel bus's job, and activate-to-activate spacing is still
    // enforced through activateTick + tRAS (+ tRP), i.e. tRC.
    bank.readyTick = data_start;

    reads_.inc();
    readBytes_.inc(burst_bytes);
    readLatency_.sample(done - now);
    return done;
}

Tick
DramModule::earliestServiceStart(std::uint64_t device_line) const
{
    assert(device_line < capacityLines_);
    const DramCoord coord = map_.decode(device_line);
    const Channel &chan = channels_[coord.channel];
    const Bank &bank = chan.banks[coord.bank];
    return std::max(bank.readyTick, chan.busReadyTick);
}

void
DramModule::registerStats(StatRegistry &registry)
{
    registry.add(reads_);
    registry.add(writes_);
    registry.add(readBytes_);
    registry.add(writeBytes_);
    registry.add(rowHits_);
    registry.add(rowClosed_);
    registry.add(rowConflicts_);
    registry.add(refreshStalls_);
    registry.add(readLatency_);
}

void
DramModule::reset()
{
    for (Channel &chan : channels_) {
        chan.busReadyTick = 0;
        for (Bank &bank : chan.banks)
            bank = Bank{};
    }
#if CAMEO_AUDIT_ENABLED
    protoAudit_.reset();
#endif
    reads_.reset();
    writes_.reset();
    readBytes_.reset();
    writeBytes_.reset();
    rowHits_.reset();
    rowClosed_.reset();
    rowConflicts_.reset();
    refreshStalls_.reset();
    readLatency_.reset();
}

} // namespace cameo
