#include "dram/bank.hh"

// Bank is a plain state holder; see DramModule for the timing logic.
