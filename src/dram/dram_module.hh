/**
 * @file
 * DramModule: the timing and bandwidth model of one DRAM device
 * (stacked or off-chip).
 *
 * The model is resource-reservation based: each access computes its
 * completion time from the target bank's row-buffer state and the
 * channel bus occupancy, then reserves those resources. This captures
 * the two effects the paper's evaluation depends on — access latency
 * under row-buffer locality, and bandwidth saturation when a design
 * moves too much data (TLM-Dynamic's page swaps, LLP's wasted parallel
 * fetches) — without a full command-level controller.
 *
 * Requests whose arrival times are slightly out of order (cores advance
 * local clocks independently) are tolerated: reservation times are
 * monotone per resource, so a late-arriving earlier request simply
 * queues behind the reservation.
 *
 * Two timing modes (DESIGN.md §9): Blocking reproduces the original
 * semantics (posted half-burst writes, immediate read reservation);
 * Queued adds per-channel controller queues — a bounded in-service
 * read window that stalls arrivals when full, and a write buffer
 * drained in FR-FCFS row-batched bursts that occupy real bank and bus
 * time, so write pressure steals read bandwidth.
 */

#ifndef CAMEO_DRAM_DRAM_MODULE_HH
#define CAMEO_DRAM_DRAM_MODULE_HH

#include <deque>
#include <string>
#include <vector>

#include "check/audit.hh"
#include "dram/address_map.hh"
#include "snapshot/snapshot.hh"
#include "dram/bank.hh"
#include "dram/channel.hh"
#include "dram/queue_config.hh"
#include "dram/timings.hh"
#if CAMEO_AUDIT_ENABLED
#include "check/dram_protocol_auditor.hh"
#endif
#include "stats/counter.hh"
#include "stats/distribution.hh"
#include "stats/registry.hh"
#include "util/types.hh"

namespace cameo
{

/** Timing and bandwidth model of a single DRAM device. */
class DramModule
{
  public:
    /**
     * @param name           Stat prefix, e.g. "dram.stacked".
     * @param timings        Geometry and timing parameters.
     * @param capacity_bytes Device capacity; accesses beyond it assert.
     */
    DramModule(std::string name, const DramTimings &timings,
               std::uint64_t capacity_bytes);

    DramModule(const DramModule &) = delete;
    DramModule &operator=(const DramModule &) = delete;

    /**
     * Service one device command through the active timing mode — the
     * only entry point the memory pipeline (organizations, CAMEO
     * controller) may use; `tools/lint.py` enforces that discipline.
     *
     * Blocking mode forwards to the legacy access() shim. Queued mode
     * routes the command through the per-channel controller queues:
     * writes post into the write buffer (FR-FCFS forced drains at the
     * high watermark), reads stall behind a full in-service window and
     * then reserve bank/bus resources exactly as access() does.
     *
     * @param now         Earliest time the command may issue.
     * @param device_line Line index within this device.
     * @param is_write    Write (writeback/fill) or read.
     * @param burst_bytes Data moved: 64 for a plain line, 80 for a
     *                    CAMEO LEAD or Alloy TAD burst.
     * @return Completion time: data arrival for reads, buffer
     *         acceptance (or forced-drain completion) for writes.
     */
    Tick request(Tick now, std::uint64_t device_line, bool is_write,
                 std::uint32_t burst_bytes = kLineBytes);

    /**
     * Blocking timing shim: writes are posted at half-burst bus cost,
     * reads reserve bank/bus resources immediately. Kept as the
     * reference semantics (golden-stats bit-identity) and for direct
     * device-level tests; pipeline callers go through request().
     *
     * @param now         Earliest time the command may issue.
     * @param device_line Line index within this device.
     * @param is_write    Write (writeback/fill) or read.
     * @param burst_bytes Data moved: 64 for a plain line, 80 for a
     *                    CAMEO LEAD or Alloy TAD burst.
     * @return Completion time (data fully transferred).
     */
    Tick access(Tick now, std::uint64_t device_line, bool is_write,
                std::uint32_t burst_bytes = kLineBytes);

    /**
     * Select the timing mode. Queued mode allocates the per-channel
     * controller queues sized by @p queues. Must be called before
     * registerStats (queued-only statistics register conditionally so
     * blocking-mode dumps stay unchanged).
     */
    void setTimingMode(TimingMode mode, const DramQueueConfig &queues);

    TimingMode timingMode() const { return mode_; }
    const DramQueueConfig &queueConfig() const { return queueCfg_; }

    /**
     * Earliest time a read of @p device_line could begin service
     * (resource availability only; no state change). Used to decide
     * whether a speculative fetch can be squashed: if its verification
     * arrives before the request would leave the controller queue, it
     * never occupies the bus.
     */
    Tick earliestServiceStart(std::uint64_t device_line) const;

    /** Device capacity in 64-byte lines. */
    std::uint64_t capacityLines() const { return capacityLines_; }

    /** Device capacity in bytes. */
    std::uint64_t capacityBytes() const
    {
        return capacityLines_ * kLineBytes;
    }

    /** Total bytes moved on the buses so far (reads + writes). */
    std::uint64_t bytesTransferred() const
    {
        return readBytes_.value() + writeBytes_.value();
    }

    const DramTimings &timings() const { return timings_; }
    const DramAddressMap &addressMap() const { return map_; }
    const std::string &name() const { return name_; }

    /**
     * Unloaded read latency for @p burst_bytes with a closed row — the
     * analytic "latency unit" used by the Figure 8 bench.
     */
    Tick idleLatency(std::uint32_t burst_bytes = kLineBytes) const
    {
        return timings_.idleLatency(burst_bytes);
    }

    /** Register this module's counters with @p registry. */
    void registerStats(StatRegistry &registry);

    // Raw counters (also reachable via the registry).
    const Counter &reads() const { return reads_; }
    const Counter &writes() const { return writes_; }
    const Counter &readBytes() const { return readBytes_; }
    const Counter &writeBytes() const { return writeBytes_; }
    const Counter &rowHits() const { return rowHits_; }
    const Counter &rowClosed() const { return rowClosed_; }
    const Counter &rowConflicts() const { return rowConflicts_; }
    const Counter &refreshStalls() const { return refreshStalls_; }

    /** Distribution of read-access latencies (request to data). */
    const Distribution &readLatency() const { return readLatency_; }

    // Queued-mode statistics (zero / unregistered in blocking mode).
    const Counter &queueFullStalls() const { return queueFullStalls_; }
    const Counter &writeDrains() const { return writeDrains_; }
    const Counter &drainedWrites() const { return drainedWrites_; }
    const Distribution &readQueueDepth() const { return readQueueDepth_; }
    const Distribution &writeQueueDepth() const
    {
        return writeQueueDepth_;
    }
    const Distribution &busBytesPerWindow() const
    {
        return busBytesPerWindow_;
    }

    /** Bandwidth-sample window for busBytesPerWindow (CPU cycles). */
    static constexpr Tick kBandwidthWindow = 8192;

    /** Reset dynamic state (row buffers, reservations) and counters. */
    void reset();

    /**
     * Checkpoint the device's dynamic timing state: per-bank row
     * buffers and reservations, per-channel bus reservations, the
     * queued-mode controller queues, and the bandwidth-window
     * accumulator. Counters and distributions are NOT written here —
     * they are registered statistics and travel in the System's stats
     * section. Geometry and mode are structural (construction-time):
     * restore() verifies them and flags @p r on mismatch. The protocol
     * auditor's shadow state is resynchronized from the restored row
     * buffers.
     */
    void save(SnapshotWriter &w) const;
    void restore(SnapshotReader &r);

  private:
    /** One buffered (posted) write awaiting drain. */
    struct QueuedWrite
    {
        std::uint64_t line;
        std::uint32_t burstBytes;
    };

    /** Queued-mode controller state of one channel. */
    struct QueuedChannel
    {
        /** Completion ticks of in-service reads (bus-serialized, so
         *  nondecreasing; the front is the oldest). */
        std::deque<Tick> inServiceReads;

        /** Posted writes awaiting an FR-FCFS drain. */
        std::vector<QueuedWrite> writeQueue;
    };

    /**
     * Reserve bank + bus for one data-moving command starting no
     * earlier than @p earliest: refresh window, row-buffer outcome
     * (hit / closed / conflict), then the channel-bus burst. This is
     * the timing kernel shared by the blocking read path and every
     * queued-mode command; it updates the row-outcome and refresh
     * counters and feeds the protocol auditor.
     *
     * @return Completion time (data fully transferred).
     */
    Tick serviceCommand(Tick earliest, const DramCoord &coord,
                        std::uint32_t burst_bytes);

    /** Queued-mode service of one read or posted write. */
    Tick queuedRequest(Tick now, std::uint64_t device_line, bool is_write,
                       std::uint32_t burst_bytes);

    /**
     * FR-FCFS drain of @p chan_idx's write buffer down to @p target
     * entries, starting at @p now. Row hits to currently open rows
     * drain first; ties fall back to arrival order.
     *
     * @return Completion time of the last drained write.
     */
    Tick drainWrites(Tick now, std::uint32_t chan_idx, std::size_t target);

    /** Accumulate @p bytes finishing at @p done into the bandwidth
     *  window distribution (queued mode only). */
    void recordBandwidth(Tick done, std::uint32_t bytes);
    /** Data-transfer time for @p bytes using the constants cached at
     *  construction (equal to timings_.burstCycles, division-free). */
    Tick burstCyclesFast(std::uint32_t bytes) const
    {
        const std::uint32_t beats =
            beatShift_ >= 0
                ? (bytes + bytesPerBeat_ - 1) >> beatShift_
                : (bytes + bytesPerBeat_ - 1) / bytesPerBeat_;
        return static_cast<Tick>(beats) * cyclesPerBeat_;
    }

    std::string name_;
    DramTimings timings_;
    DramAddressMap map_;
    std::uint64_t capacityLines_;
    std::vector<Channel> channels_;

    TimingMode mode_ = TimingMode::Blocking;
    DramQueueConfig queueCfg_;
    std::vector<QueuedChannel> queued_;

    /** Bandwidth-window accumulator (queued mode). */
    Tick bandwidthWindowStart_ = 0;
    std::uint64_t bandwidthWindowBytes_ = 0;

    // Per-access timing constants, derived from timings_ once so the
    // hot path never re-divides clock ratios.
    Tick casCyc_;
    Tick rcdCyc_;
    Tick rpCyc_;
    Tick rasCyc_;
    Tick refiCyc_;
    Tick rfcCyc_;
    std::uint32_t bytesPerBeat_;
    std::uint32_t cyclesPerBeat_;
    std::int32_t beatShift_;

#if CAMEO_AUDIT_ENABLED
    /** Shadow protocol checker fed with every read's implied commands. */
    DramProtocolAuditor protoAudit_;
#endif

    Counter reads_;
    Counter writes_;
    Counter readBytes_;
    Counter writeBytes_;
    Counter rowHits_;
    Counter rowClosed_;
    Counter rowConflicts_;
    Counter refreshStalls_;
    Distribution readLatency_;

    // Queued-mode statistics (registered only when mode_ == Queued).
    Counter queueFullStalls_;
    Counter writeDrains_;
    Counter drainedWrites_;
    Distribution readQueueDepth_;
    Distribution writeQueueDepth_;
    Distribution busBytesPerWindow_;
};

} // namespace cameo

#endif // CAMEO_DRAM_DRAM_MODULE_HH
