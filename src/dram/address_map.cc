#include "dram/address_map.hh"

// DramAddressMap is header-only; translation unit kept for symmetry and
// future out-of-line growth.
