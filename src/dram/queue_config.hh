/**
 * @file
 * DramQueueConfig: the controller-queue knobs of the queued timing
 * mode (TimingMode::Queued).
 *
 * Each channel owns a bounded window of in-service reads and a write
 * buffer drained in FR-FCFS row-batched bursts. The defaults follow
 * the usual DDR3-era controller proportions: a 16-entry read window
 * (two requests per bank at Table I's 8-bank granularity of the scaled
 * system), a 32-entry write buffer with a high-water drain at 24 that
 * empties down to 8 so writes amortize their bus turnarounds.
 */

#ifndef CAMEO_DRAM_QUEUE_CONFIG_HH
#define CAMEO_DRAM_QUEUE_CONFIG_HH

#include <cstdint>

namespace cameo
{

/** Per-channel controller-queue parameters for queued timing. */
struct DramQueueConfig
{
    /** In-service reads a channel sustains before arrivals stall. */
    std::uint32_t readWindow = 16;

    /** Write-buffer capacity (writes are posted until drained). */
    std::uint32_t writeQueueDepth = 32;

    /** Buffered writes that trigger a forced drain. */
    std::uint32_t drainHighWatermark = 24;

    /** Drain target: a forced drain empties down to this depth. */
    std::uint32_t drainLowWatermark = 8;
};

} // namespace cameo

#endif // CAMEO_DRAM_QUEUE_CONFIG_HH
