/**
 * @file
 * Device-line to (channel, bank, row) decomposition.
 *
 * Consecutive lines interleave across channels (maximizing channel-level
 * parallelism for streams, as in the stacked-DRAM cache literature);
 * within a channel, linesPerRow consecutive channel-local lines share a
 * row, and rows interleave across banks.
 *
 * Channel and bank selection XOR-fold higher address bits (permutation-
 * based interleaving, as real memory controllers do) so that strided
 * patterns — e.g. a workload touching every 6th line of each page —
 * cannot degenerate onto a subset of channels or banks.
 */

#ifndef CAMEO_DRAM_ADDRESS_MAP_HH
#define CAMEO_DRAM_ADDRESS_MAP_HH

#include <cstdint>

#include "dram/timings.hh"
#include "util/bitops.hh"
#include "util/types.hh"

namespace cameo
{

/** Decoded location of a line inside a DRAM module. */
struct DramCoord
{
    std::uint32_t channel;
    std::uint32_t bank;
    std::uint64_t row;

    bool operator==(const DramCoord &) const = default;
};

/** Pure-function address decomposition for one module's geometry. */
class DramAddressMap
{
  public:
    explicit DramAddressMap(const DramTimings &timings)
        : channels_(timings.channels), banks_(timings.banksPerChannel),
          linesPerRow_(timings.linesPerRow),
          chanShift_(shiftFor(channels_)), bankShift_(shiftFor(banks_)),
          rowShift_(shiftFor(linesPerRow_))
    {}

    /**
     * Decode a device line address. decode() runs once or more per
     * simulated access, so power-of-two channel/bank/row geometries
     * (every configuration except the 31-LEAD / 28-TAD reduced rows)
     * take a shift/mask path instead of 64-bit division; both paths
     * compute the identical coordinate.
     */
    DramCoord decode(std::uint64_t device_line) const
    {
        // XOR-fold page/row bits into the channel index so strided
        // accesses still spread (permutation interleaving).
        const std::uint64_t chan_key =
            device_line ^ (device_line >> 7) ^ (device_line >> 13);
        const std::uint64_t chan = chanShift_ >= 0
                                       ? chan_key & (channels_ - 1)
                                       : chan_key % channels_;
        const std::uint64_t within = chanShift_ >= 0
                                         ? device_line >> chanShift_
                                         : device_line / channels_;
        const std::uint64_t row_seq = rowShift_ >= 0
                                          ? within >> rowShift_
                                          : within / linesPerRow_;
        const std::uint64_t bank_key = row_seq ^ (row_seq >> 5);
        if (bankShift_ >= 0) {
            return DramCoord{
                static_cast<std::uint32_t>(chan),
                static_cast<std::uint32_t>(bank_key & (banks_ - 1)),
                row_seq >> bankShift_,
            };
        }
        return DramCoord{
            static_cast<std::uint32_t>(chan),
            static_cast<std::uint32_t>(bank_key % banks_),
            row_seq / banks_,
        };
    }

    std::uint32_t channels() const { return channels_; }
    std::uint32_t banksPerChannel() const { return banks_; }
    std::uint32_t linesPerRow() const { return linesPerRow_; }

  private:
    /** log2 of @p v when a power of two, -1 (divide path) otherwise. */
    static std::int32_t shiftFor(std::uint32_t v)
    {
        return isPowerOfTwo(v)
                   ? static_cast<std::int32_t>(exactLog2(v))
                   : -1;
    }

    std::uint32_t channels_;
    std::uint32_t banks_;
    std::uint32_t linesPerRow_;
    std::int32_t chanShift_;
    std::int32_t bankShift_;
    std::int32_t rowShift_;
};

} // namespace cameo

#endif // CAMEO_DRAM_ADDRESS_MAP_HH
