/**
 * @file
 * Per-bank row-buffer and busy state.
 *
 * A bank tracks which row is open, when it was activated (to honor
 * tRAS before precharge), and when it next becomes available. The
 * timing arithmetic itself lives in DramModule so the three row-buffer
 * outcomes (hit / closed / conflict) are decided in one place.
 */

#ifndef CAMEO_DRAM_BANK_HH
#define CAMEO_DRAM_BANK_HH

#include <cstdint>

#include "util/types.hh"

namespace cameo
{

/** Row-buffer outcome of one access, for statistics. */
enum class RowOutcome
{
    Hit,      ///< Open row matched the request.
    Closed,   ///< No row was open (first access or after precharge).
    Conflict, ///< A different row was open and had to be closed.
};

/** Mutable state of one DRAM bank. */
struct Bank
{
    /** Sentinel for "no open row". */
    static constexpr std::uint64_t kNoRow = ~std::uint64_t{0};

    /** Currently open row, or kNoRow. */
    std::uint64_t openRow = kNoRow;

    /** Time the open row was activated (for the tRAS constraint). */
    Tick activateTick = 0;

    /** Time at which the bank can accept the next command. */
    Tick readyTick = 0;

    /** Classify what an access to @p row would experience right now. */
    RowOutcome
    outcomeFor(std::uint64_t row) const
    {
        if (openRow == row)
            return RowOutcome::Hit;
        if (openRow == kNoRow)
            return RowOutcome::Closed;
        return RowOutcome::Conflict;
    }
};

} // namespace cameo

#endif // CAMEO_DRAM_BANK_HH
