/**
 * @file
 * Per-channel state: the shared data bus and the channel's banks.
 */

#ifndef CAMEO_DRAM_CHANNEL_HH
#define CAMEO_DRAM_CHANNEL_HH

#include <vector>

#include "dram/bank.hh"
#include "util/types.hh"

namespace cameo
{

/** One DRAM channel: a data bus shared by several banks. */
struct Channel
{
    explicit Channel(std::uint32_t num_banks) : banks(num_banks) {}

    /** Time at which the data bus frees up. */
    Tick busReadyTick = 0;

    std::vector<Bank> banks;
};

} // namespace cameo

#endif // CAMEO_DRAM_CHANNEL_HH
