/**
 * @file
 * DRAM timing parameters, directly mirroring Table I of the paper.
 *
 * All raw parameters are expressed in *bus* cycles (as Table I does);
 * the module converts them to CPU cycles at the core clock (3.2 GHz).
 * Data-transfer granularity is one DDR "beat" — half a bus cycle moving
 * busWidthBits of data — so odd burst lengths (the 80-byte LEAD burst
 * of CAMEO's Co-Located LLT is 5 beats on the 16-byte stacked bus) are
 * represented exactly.
 */

#ifndef CAMEO_DRAM_TIMINGS_HH
#define CAMEO_DRAM_TIMINGS_HH

#include <cstdint>

#include "util/types.hh"

namespace cameo
{

/** Static timing/geometry description of one DRAM module. */
struct DramTimings
{
    /** Core (CPU) clock in MHz; Table I: 3200. */
    std::uint32_t cpuMhz = 3200;

    /** Bus clock in MHz (DDR transfers at 2x this rate). */
    std::uint32_t busMhz = 1600;

    /** Number of independent channels. */
    std::uint32_t channels = 16;

    /** Banks per channel (single rank modeled). */
    std::uint32_t banksPerChannel = 16;

    /** Bus width per channel in bits. */
    std::uint32_t busWidthBits = 128;

    /** Row-buffer size in bytes. */
    std::uint32_t rowBytes = 2048;

    /**
     * Data lines per row used by the address map. Normally
     * rowBytes / 64; CAMEO's Co-Located LLT stores 31 LEADs per 2KB row
     * and the Alloy Cache stores 28 TADs, so those configurations
     * override this to model the reduced row occupancy.
     */
    std::uint32_t linesPerRow = 32;

    /** Timing constraints in bus cycles (Table I: 9-9-9-36). */
    std::uint32_t tCas = 9;
    std::uint32_t tRcd = 9;
    std::uint32_t tRp = 9;
    std::uint32_t tRas = 36;

    /**
     * Refresh interval and all-bank refresh duration in bus cycles
     * (DDR3: tREFI 7.8us, tRFC 260-350ns). tRefi = 0 disables refresh
     * modelling, which is the default — Table I does not specify
     * refresh parameters, so the reproduction keeps it off and the
     * ablation bench quantifies its effect.
     */
    std::uint32_t tRefi = 0;
    std::uint32_t tRfc = 0;

    /** Refresh parameters converted to CPU cycles. */
    Tick refiCycles() const { return Tick{tRefi} * cpuCyclesPerBusCycle(); }
    Tick rfcCycles() const { return Tick{tRfc} * cpuCyclesPerBusCycle(); }

    /** CPU cycles per bus cycle (must divide evenly). */
    std::uint32_t cpuCyclesPerBusCycle() const { return cpuMhz / busMhz; }

    /** CPU cycles per DDR beat (half bus cycle). May round up to 1. */
    std::uint32_t cpuCyclesPerBeat() const
    {
        const std::uint32_t c = cpuCyclesPerBusCycle() / 2;
        return c == 0 ? 1 : c;
    }

    /** Bytes moved per DDR beat on one channel. */
    std::uint32_t bytesPerBeat() const { return busWidthBits / 8; }

    /** Beats needed to move @p bytes (ceiling). */
    std::uint32_t beatsFor(std::uint32_t bytes) const
    {
        return (bytes + bytesPerBeat() - 1) / bytesPerBeat();
    }

    /** Data-transfer time for @p bytes, in CPU cycles. */
    Tick burstCycles(std::uint32_t bytes) const
    {
        return static_cast<Tick>(beatsFor(bytes)) * cpuCyclesPerBeat();
    }

    /** Timing constraints converted to CPU cycles. */
    Tick casCycles() const { return Tick{tCas} * cpuCyclesPerBusCycle(); }
    Tick rcdCycles() const { return Tick{tRcd} * cpuCyclesPerBusCycle(); }
    Tick rpCycles() const { return Tick{tRp} * cpuCyclesPerBusCycle(); }
    Tick rasCycles() const { return Tick{tRas} * cpuCyclesPerBusCycle(); }

    /**
     * Unloaded (no-contention) access latency for a closed-row access
     * moving @p bytes: activate + CAS + burst. This is the "1 unit"
     * (stacked) vs "2 units" (off-chip) of the paper's Figure 8.
     */
    Tick idleLatency(std::uint32_t bytes) const
    {
        return rcdCycles() + casCycles() + burstCycles(bytes);
    }

    /** Peak bandwidth in bytes per CPU cycle, across all channels. */
    double peakBytesPerCycle() const
    {
        return static_cast<double>(bytesPerBeat()) * channels /
               cpuCyclesPerBeat();
    }
};

/** Stacked-DRAM timings from Table I (1.6GHz bus, 16ch x 128b). */
DramTimings stackedTimings();

/** Off-chip DRAM timings from Table I (800MHz bus, 8ch x 64b). */
DramTimings offchipTimings();

} // namespace cameo

#endif // CAMEO_DRAM_TIMINGS_HH
