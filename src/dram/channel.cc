#include "dram/channel.hh"

// Channel is a plain state holder; see DramModule for the timing logic.
