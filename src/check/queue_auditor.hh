/**
 * @file
 * QueueInvariantAuditor: end-to-end accounting for the transaction
 * pipeline (MemoryOrganization::submit -> MemClient::onMemComplete).
 *
 * The queued timing mode detaches request completion from request
 * submission: completions travel through the kernel's event queue and
 * arrive many steps later. That indirection creates failure modes the
 * blocking mode cannot have — a completion that never fires (lost
 * request), one that fires twice (duplicated event), one that fires
 * before its request was submitted in simulated time, or deliveries
 * that run backwards in global time. The auditor shadows every
 * transaction by id and reports violations to the AuditSink:
 *
 *  - submit ids are unique among outstanding requests;
 *  - every completion matches an outstanding submit;
 *  - completion time >= submit time;
 *  - (queued mode) deliveries are monotonic in global time, because
 *    the event queue fires in tick order;
 *  - (optional) outstanding occupancy never exceeds a configured
 *    bound — the per-core miss windows are supposed to cap it;
 *  - at drain points (end of run) nothing is still outstanding.
 */

#ifndef CAMEO_CHECK_QUEUE_AUDITOR_HH
#define CAMEO_CHECK_QUEUE_AUDITOR_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>

#include "check/audit.hh"
#include "util/types.hh"

namespace cameo
{

/** Lost/duplicate/ordering auditor for pipeline transactions. */
class QueueInvariantAuditor
{
  public:
    QueueInvariantAuditor() = default;

    /**
     * Expect deliveries in nondecreasing completion-tick order (true
     * for queued timing, where the event queue fires in tick order;
     * false for blocking timing, where completions fire synchronously
     * in submission order and their ticks may interleave).
     */
    void setMonotonicDelivery(bool monotonic)
    {
        monotonicDelivery_ = monotonic;
    }

    /**
     * Cap on simultaneously outstanding requests; 0 disables the
     * check. The per-core miss windows bound occupancy at
     * cores * window in a correctly plumbed pipeline.
     */
    void setOccupancyBound(std::size_t bound) { occupancyBound_ = bound; }

    /** Request @p id entered the pipeline at @p tick. */
    void onSubmit(std::uint64_t id, Tick tick);

    /**
     * Request @p id completed (delivered) at @p tick. @p ordered marks
     * deliveries that took the event-queue path and therefore must be
     * monotone in global time; synchronous completions (blocking mode,
     * fire-and-forget writes) pass false and are exempt from — and do
     * not advance — the monotonicity watermark.
     */
    void onComplete(std::uint64_t id, Tick tick, bool ordered = true);

    /**
     * A drain point was reached (end of run): every submitted request
     * must have completed. Reports each lost request.
     */
    void checkDrained();

    /** Requests submitted but not yet completed. */
    std::size_t outstanding() const { return outstanding_.size(); }

    /** Submissions observed since construction or reset. */
    std::uint64_t submits() const { return submits_; }

    /** Completions observed since construction or reset. */
    std::uint64_t completions() const { return completions_; }

    /** Violations reported since construction or reset. */
    std::uint64_t violations() const { return violations_; }

    /** Forget all history (start of a new run). */
    void reset();

  private:
    /** Report one violation to the sink. */
    void report(const std::string &what);

    std::unordered_map<std::uint64_t, Tick> outstanding_;
    bool monotonicDelivery_ = false;
    std::size_t occupancyBound_ = 0;
    Tick lastDeliveryTick_ = 0;
    bool delivered_ = false;

    std::uint64_t submits_ = 0;
    std::uint64_t completions_ = 0;
    std::uint64_t violations_ = 0;
};

} // namespace cameo

#endif // CAMEO_CHECK_QUEUE_AUDITOR_HH
