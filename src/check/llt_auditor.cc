#include "check/llt_auditor.hh"

namespace cameo
{

void
LltAuditor::reportGroup(std::uint64_t group, std::uint32_t slot,
                        std::uint32_t loc)
{
    ++violations_;
    AuditSink::global().fail(
        __FILE__, __LINE__,
        "LLT group " + std::to_string(group) +
            " is not a permutation: slot " + std::to_string(slot) +
            " maps to location " + std::to_string(loc) +
            " (out of range or duplicated)");
}

} // namespace cameo
