#include "check/dram_protocol_auditor.hh"

#include <cassert>

namespace cameo
{

DramProtocolAuditor::DramProtocolAuditor(std::string name,
                                         std::uint32_t channels,
                                         std::uint32_t banks,
                                         const DramProtocolParams &params)
    : name_(std::move(name)), channels_(channels), banksPerChannel_(banks),
      params_(params)
{
    assert(channels_ != 0 && banksPerChannel_ != 0);
    banks_.resize(std::size_t{channels_} * banksPerChannel_);
}

DramProtocolAuditor::BankState &
DramProtocolAuditor::bankAt(std::uint32_t channel, std::uint32_t bank)
{
    assert(channel < channels_ && bank < banksPerChannel_);
    return banks_[std::size_t{channel} * banksPerChannel_ + bank];
}

void
DramProtocolAuditor::report(std::uint32_t channel, std::uint32_t bank,
                            const std::string &what)
{
    ++violations_;
    AuditSink::global().fail(__FILE__, __LINE__,
                             name_ + " ch" + std::to_string(channel) +
                                 " bank" + std::to_string(bank) + ": " +
                                 what);
}

void
DramProtocolAuditor::onActivate(std::uint32_t channel, std::uint32_t bank,
                                std::uint64_t row, Tick tick)
{
    BankState &b = bankAt(channel, bank);
    ++commandsChecked_;
    if (b.openRow != BankState::kNoRow) {
        report(channel, bank,
               "ACT while row " + std::to_string(b.openRow) +
                   " is still open");
    }
    if (b.everPrecharged && tick < b.lastPrecharge + params_.rpCycles) {
        report(channel, bank,
               "ACT at " + std::to_string(tick) + " violates tRP (PRE at " +
                   std::to_string(b.lastPrecharge) + ")");
    }
    if (b.everActivated && tick < b.lastActivate + params_.rcCycles()) {
        report(channel, bank,
               "ACT at " + std::to_string(tick) +
                   " violates tRC (previous ACT at " +
                   std::to_string(b.lastActivate) + ")");
    }
    b.openRow = row;
    b.lastActivate = tick;
    b.everActivated = true;
}

void
DramProtocolAuditor::onPrecharge(std::uint32_t channel, std::uint32_t bank,
                                 Tick tick)
{
    BankState &b = bankAt(channel, bank);
    ++commandsChecked_;
    if (b.openRow == BankState::kNoRow)
        report(channel, bank, "PRE on an already-precharged bank");
    if (b.everActivated && tick < b.lastActivate + params_.rasCycles) {
        report(channel, bank,
               "PRE at " + std::to_string(tick) +
                   " violates tRAS (ACT at " +
                   std::to_string(b.lastActivate) + ")");
    }
    b.openRow = BankState::kNoRow;
    b.lastPrecharge = tick;
    b.everPrecharged = true;
}

void
DramProtocolAuditor::onColumn(std::uint32_t channel, std::uint32_t bank,
                              std::uint64_t row, Tick tick)
{
    BankState &b = bankAt(channel, bank);
    ++commandsChecked_;
    if (b.openRow != row) {
        report(channel, bank,
               "CAS to row " + std::to_string(row) + " but open row is " +
                   (b.openRow == BankState::kNoRow
                        ? std::string("none")
                        : std::to_string(b.openRow)));
    }
    if (b.everActivated && tick < b.lastActivate + params_.rcdCycles) {
        report(channel, bank,
               "CAS at " + std::to_string(tick) +
                   " violates tRCD (ACT at " +
                   std::to_string(b.lastActivate) + ")");
    }
}

void
DramProtocolAuditor::reset()
{
    for (BankState &b : banks_)
        b = BankState{};
    commandsChecked_ = 0;
    violations_ = 0;
}

void
DramProtocolAuditor::resyncBank(std::uint32_t channel, std::uint32_t bank,
                                std::uint64_t open_row, Tick activate_tick)
{
    BankState &b = bankAt(channel, bank);
    b = BankState{};
    b.openRow = open_row;
    if (open_row != BankState::kNoRow) {
        // An open row implies an ACT at the device's recorded tick, so
        // tRAS and tRC resume with full strictness.
        b.lastActivate = activate_tick;
        b.everActivated = true;
    }
}

} // namespace cameo
