/**
 * @file
 * StatAuditor: statistic-name uniqueness for one StatRegistry.
 *
 * A duplicated stat name is a quiet data bug: the registry's linear
 * lookups return the first match, the JSON dump emits duplicate keys,
 * and downstream tooling picks an arbitrary one. The registry's own
 * assert vanishes in NDEBUG builds (the default RelWithDebInfo), so the
 * auditor gives the check a release-build home: every registration is
 * recorded, and a name seen twice — whether by two counters, two
 * distributions, or one of each — is reported to the AuditSink.
 */

#ifndef CAMEO_CHECK_STAT_AUDITOR_HH
#define CAMEO_CHECK_STAT_AUDITOR_HH

#include <cstdint>
#include <set>
#include <string>

#include "check/audit.hh"

namespace cameo
{

/** Duplicate-name auditor for one statistics registry. */
class StatAuditor
{
  public:
    StatAuditor() = default;

    /**
     * Record the registration of @p name. Reports to the sink and
     * returns false when the name was already registered.
     */
    bool onRegister(const std::string &name);

    /** Distinct names registered so far. */
    std::uint64_t namesRegistered() const { return names_.size(); }

    /** Violations reported since construction or reset. */
    std::uint64_t violations() const { return violations_; }

    /** Forget all names (mirrors a registry being torn down). */
    void reset();

  private:
    std::set<std::string> names_;
    std::uint64_t violations_ = 0;
};

} // namespace cameo

#endif // CAMEO_CHECK_STAT_AUDITOR_HH
