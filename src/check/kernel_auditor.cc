#include "check/kernel_auditor.hh"

#include <string>

namespace cameo
{

void
KernelAuditor::report(const std::string &what)
{
    ++violations_;
    AuditSink::global().fail(__FILE__, __LINE__, what);
}

void
KernelAuditor::onDispatch(std::size_t agent_idx, Tick tick)
{
    ++dispatches_;
    if (dispatched_ && tick < lastDispatchTick_) {
        report("SimKernel dispatched agent " + std::to_string(agent_idx) +
               " at " + std::to_string(tick) +
               ", regressing global time from " +
               std::to_string(lastDispatchTick_));
    }
    lastDispatchTick_ = tick;
    dispatched_ = true;
    if (agent_idx >= lastAgentTick_.size())
        lastAgentTick_.resize(agent_idx + 1, 0);
    if (tick < lastAgentTick_[agent_idx]) {
        report("agent " + std::to_string(agent_idx) +
               " dispatched at " + std::to_string(tick) +
               ", before its last known local time " +
               std::to_string(lastAgentTick_[agent_idx]));
    }
}

void
KernelAuditor::onStepped(std::size_t agent_idx, Tick before, Tick after)
{
    if (after < before) {
        report("agent " + std::to_string(agent_idx) +
               " stepped its local clock backwards: " +
               std::to_string(before) + " -> " + std::to_string(after));
    }
    if (agent_idx >= lastAgentTick_.size())
        lastAgentTick_.resize(agent_idx + 1, 0);
    lastAgentTick_[agent_idx] = after;
}

void
KernelAuditor::reset()
{
    lastDispatchTick_ = 0;
    dispatched_ = false;
    lastAgentTick_.clear();
    dispatches_ = 0;
    violations_ = 0;
}

} // namespace cameo
