#include "check/audit.hh"

#include <cstdlib>
#include <iostream>

namespace cameo
{

AuditSink::AuditSink()
{
    const char *abort_env = std::getenv("CAMEO_AUDIT_ABORT");
    abortOnFailure_.store(abort_env != nullptr && abort_env[0] != '\0',
                          std::memory_order_relaxed);
}

AuditSink &
AuditSink::global()
{
    static AuditSink sink;
    return sink;
}

void
AuditSink::fail(const char *file, int line, const std::string &msg)
{
    failures_.fetch_add(1, std::memory_order_relaxed);
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        if (firstFailure_.empty()) {
            firstFailure_ =
                std::string(file) + ":" + std::to_string(line) + ": " + msg;
        }
    }
    if (abortOnFailure()) {
        std::cerr << "CAMEO_AUDIT failure: " << file << ":" << line << ": "
                  << msg << "\n";
        std::abort();
    }
}

std::string
AuditSink::firstFailure() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return firstFailure_;
}

void
AuditSink::reset()
{
    failures_.store(0, std::memory_order_relaxed);
    const std::lock_guard<std::mutex> lock(mutex_);
    firstFailure_.clear();
}

} // namespace cameo
