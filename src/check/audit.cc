#include "check/audit.hh"

#include <cstdlib>
#include <iostream>

namespace cameo
{

AuditSink::AuditSink()
{
    const char *abort_env = std::getenv("CAMEO_AUDIT_ABORT");
    abortOnFailure_ = abort_env != nullptr && abort_env[0] != '\0';
}

AuditSink &
AuditSink::global()
{
    static AuditSink sink;
    return sink;
}

void
AuditSink::fail(const char *file, int line, const std::string &msg)
{
    ++failures_;
    if (firstFailure_.empty()) {
        firstFailure_ =
            std::string(file) + ":" + std::to_string(line) + ": " + msg;
    }
    if (abortOnFailure_) {
        std::cerr << "CAMEO_AUDIT failure: " << file << ":" << line << ": "
                  << msg << "\n";
        std::abort();
    }
}

void
AuditSink::reset()
{
    failures_ = 0;
    firstFailure_.clear();
}

} // namespace cameo
