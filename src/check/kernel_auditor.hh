/**
 * @file
 * KernelAuditor: simulated-time sanity for the SimKernel event loop.
 *
 * The kernel's correctness contract is temporal: the lazy-update heap
 * must dispatch agents in nondecreasing global-time order, and an agent
 * that steps must never move its local clock backwards (a regressing
 * clock makes the same agent the heap minimum forever and silently
 * reorders memory traffic). Neither property is checked anywhere —
 * a buggy Agent implementation would just produce subtly wrong
 * interleavings. The auditor tracks the last dispatched global tick and
 * each agent's last observed local tick and reports regressions to the
 * AuditSink.
 */

#ifndef CAMEO_CHECK_KERNEL_AUDITOR_HH
#define CAMEO_CHECK_KERNEL_AUDITOR_HH

#include <cstdint>
#include <vector>

#include "check/audit.hh"
#include "util/types.hh"

namespace cameo
{

/** Monotonicity auditor for one SimKernel run. */
class KernelAuditor
{
  public:
    KernelAuditor() = default;

    /**
     * The kernel is about to step @p agent_idx at global time @p tick.
     * Reports when @p tick regresses below the previous dispatch.
     */
    void onDispatch(std::size_t agent_idx, Tick tick);

    /**
     * Agent @p agent_idx finished a step: its clock moved from
     * @p before to @p after. Reports when the clock went backwards.
     */
    void onStepped(std::size_t agent_idx, Tick before, Tick after);

    /** Dispatches observed since construction or reset. */
    std::uint64_t dispatches() const { return dispatches_; }

    /** Violations reported since construction or reset. */
    std::uint64_t violations() const { return violations_; }

    /** Forget all history (start of a new run). */
    void reset();

  private:
    /** Report one violation to the sink. */
    void report(const std::string &what);

    Tick lastDispatchTick_ = 0;
    bool dispatched_ = false;
    std::vector<Tick> lastAgentTick_;

    std::uint64_t dispatches_ = 0;
    std::uint64_t violations_ = 0;
};

} // namespace cameo

#endif // CAMEO_CHECK_KERNEL_AUDITOR_HH
