/**
 * @file
 * DramProtocolAuditor: per-bank command-legality checking.
 *
 * DramModule is a reservation model, not a command-level controller, so
 * a timing bug (a precharge issued before tRAS, a column read to a row
 * that is not open) would not crash anything — it would just quietly
 * produce latencies a real device cannot achieve. The auditor shadows
 * every bank with the row-buffer state machine of a real DRAM device
 * and validates the command stream the model implies:
 *
 *  - ACT only on a precharged bank, no earlier than tRP after the last
 *    precharge and tRC (= tRAS + tRP) after the last activate;
 *  - PRE only on an open bank, no earlier than tRAS after its activate;
 *  - CAS (column access) only to the currently open row, no earlier
 *    than tRCD after the activate that opened it.
 *
 * All times are CPU cycles (the unit DramModule computes in). The
 * auditor is deliberately independent of the dram library: it is
 * configured with plain integers so a shared arithmetic bug cannot hide
 * a violation, and so tests can drive it with hand-written sequences.
 */

#ifndef CAMEO_CHECK_DRAM_PROTOCOL_AUDITOR_HH
#define CAMEO_CHECK_DRAM_PROTOCOL_AUDITOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "check/audit.hh"
#include "util/types.hh"

namespace cameo
{

/** Timing windows the auditor enforces, in CPU cycles. */
struct DramProtocolParams
{
    Tick rcdCycles = 0; ///< ACT-to-CAS minimum.
    Tick rasCycles = 0; ///< ACT-to-PRE minimum.
    Tick rpCycles = 0;  ///< PRE-to-ACT minimum.

    /** ACT-to-ACT minimum on one bank (tRC). */
    Tick rcCycles() const { return rasCycles + rpCycles; }
};

/** Shadow row-buffer state machine for every bank of one device. */
class DramProtocolAuditor
{
  public:
    /**
     * @param name     Device name used in failure messages.
     * @param channels Channel count.
     * @param banks    Banks per channel.
     * @param params   Timing windows in CPU cycles.
     */
    DramProtocolAuditor(std::string name, std::uint32_t channels,
                        std::uint32_t banks,
                        const DramProtocolParams &params);

    /** Validate and apply an activate of @p row at @p tick. */
    void onActivate(std::uint32_t channel, std::uint32_t bank,
                    std::uint64_t row, Tick tick);

    /** Validate and apply a precharge at @p tick. */
    void onPrecharge(std::uint32_t channel, std::uint32_t bank, Tick tick);

    /** Validate a column access (read/write CAS) to @p row at @p tick. */
    void onColumn(std::uint32_t channel, std::uint32_t bank,
                  std::uint64_t row, Tick tick);

    /** Commands validated since construction or reset. */
    std::uint64_t commandsChecked() const { return commandsChecked_; }

    /** Violations reported since construction or reset. */
    std::uint64_t violations() const { return violations_; }

    /** Forget all bank state (mirrors DramModule::reset). */
    void reset();

    /**
     * Re-seed one bank's shadow state from a restored checkpoint:
     * @p open_row / @p activate_tick come from the device's restored
     * row buffer, so tRAS and open-row checks resume exactly. The
     * precharge history is not serialized, so the first post-restore
     * ACT on a bank whose row was closed is checked leniently (no tRP
     * window) — once, after which normal shadowing resumes.
     */
    void resyncBank(std::uint32_t channel, std::uint32_t bank,
                    std::uint64_t open_row, Tick activate_tick);

  private:
    /** Shadow state of one bank. */
    struct BankState
    {
        static constexpr std::uint64_t kNoRow = ~std::uint64_t{0};

        std::uint64_t openRow = kNoRow;
        Tick lastActivate = 0;
        Tick lastPrecharge = 0;
        bool everActivated = false;
        bool everPrecharged = false;
    };

    BankState &bankAt(std::uint32_t channel, std::uint32_t bank);

    /** Report one violation for (channel, bank) to the sink. */
    void report(std::uint32_t channel, std::uint32_t bank,
                const std::string &what);

    std::string name_;
    std::uint32_t channels_;
    std::uint32_t banksPerChannel_;
    DramProtocolParams params_;
    std::vector<BankState> banks_;

    std::uint64_t commandsChecked_ = 0;
    std::uint64_t violations_ = 0;
};

} // namespace cameo

#endif // CAMEO_CHECK_DRAM_PROTOCOL_AUDITOR_HH
