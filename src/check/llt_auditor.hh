/**
 * @file
 * LltAuditor: checks the Line Location Table permutation invariant.
 *
 * Section IV of the paper defines an LLT entry as "the line location of
 * all K lines in the congruence group" — i.e. a permutation of the K
 * locations. Every swap must preserve that; a duplicated or
 * out-of-range location silently corrupts placement (two lines claim
 * one device line, another device line leaks) and the simulator would
 * keep producing plausible-looking numbers. The auditor re-derives the
 * invariant from the table's public accessors so it cannot share a bug
 * with the table's own bookkeeping.
 *
 * Two granularities, matching how the controller uses it:
 *  - checkGroup(): O(K) incremental check after a single swap;
 *  - auditAll(): exhaustive sweep over every group, for end-of-run or
 *    on-demand verification.
 *
 * The table is accessed through a template so this library depends on
 * nothing but the audit sink; any type with groupSize(), numGroups()
 * and locationOf(group, slot) works (LineLocationTable in production,
 * hand-built fakes in tests).
 */

#ifndef CAMEO_CHECK_LLT_AUDITOR_HH
#define CAMEO_CHECK_LLT_AUDITOR_HH

#include <cstdint>
#include <string>

#include "check/audit.hh"

namespace cameo
{

/** Permutation-invariant auditor for LLT-shaped tables. */
class LltAuditor
{
  public:
    LltAuditor() = default;

    /**
     * Check that @p group's entry is a permutation of 0..K-1. Reports
     * to the global AuditSink on violation (regardless of the
     * CAMEO_AUDIT build option; callers asked for this check).
     *
     * @return True when the invariant holds.
     */
    template <typename Table>
    bool
    checkGroup(const Table &table, std::uint64_t group)
    {
        const std::uint32_t k = table.groupSize();
        std::uint32_t seen = 0;
        for (std::uint32_t slot = 0; slot < k; ++slot) {
            const std::uint32_t loc = table.locationOf(group, slot);
            if (loc >= k || (seen & (1u << loc)) != 0) {
                reportGroup(group, slot, loc);
                return false;
            }
            seen |= 1u << loc;
        }
        ++groupsChecked_;
        return true;
    }

    /**
     * Exhaustively audit every group. @return the number of groups
     * violating the invariant (0 means the table is globally sound).
     */
    template <typename Table>
    std::uint64_t
    auditAll(const Table &table)
    {
        std::uint64_t bad = 0;
        for (std::uint64_t g = 0; g < table.numGroups(); ++g) {
            if (!checkGroup(table, g))
                ++bad;
        }
        return bad;
    }

    /** Groups that passed checkGroup since construction. */
    std::uint64_t groupsChecked() const { return groupsChecked_; }

    /** Violations this auditor reported since construction. */
    std::uint64_t violations() const { return violations_; }

  private:
    /** Format and report one violation to the sink. */
    void reportGroup(std::uint64_t group, std::uint32_t slot,
                     std::uint32_t loc);

    std::uint64_t groupsChecked_ = 0;
    std::uint64_t violations_ = 0;
};

} // namespace cameo

#endif // CAMEO_CHECK_LLT_AUDITOR_HH
