#include "check/queue_auditor.hh"

#include <string>

namespace cameo
{

void
QueueInvariantAuditor::report(const std::string &what)
{
    ++violations_;
    AuditSink::global().fail(__FILE__, __LINE__, what);
}

void
QueueInvariantAuditor::onSubmit(std::uint64_t id, Tick tick)
{
    ++submits_;
    const auto [it, inserted] = outstanding_.emplace(id, tick);
    static_cast<void>(it);
    if (!inserted) {
        report("pipeline: request id " + std::to_string(id) +
               " submitted twice (still outstanding)");
        return;
    }
    if (occupancyBound_ != 0 && outstanding_.size() > occupancyBound_) {
        report("pipeline: " + std::to_string(outstanding_.size()) +
               " requests outstanding, exceeding the bound of " +
               std::to_string(occupancyBound_));
    }
}

void
QueueInvariantAuditor::onComplete(std::uint64_t id, Tick tick, bool ordered)
{
    ++completions_;
    const auto it = outstanding_.find(id);
    if (it == outstanding_.end()) {
        report("pipeline: completion for unknown request id " +
               std::to_string(id) + " at " + std::to_string(tick) +
               " (never submitted, or completed twice)");
        return;
    }
    if (tick < it->second) {
        report("pipeline: request id " + std::to_string(id) +
               " completed at " + std::to_string(tick) +
               ", before its submit time " + std::to_string(it->second));
    }
    if (ordered) {
        if (monotonicDelivery_ && delivered_ && tick < lastDeliveryTick_) {
            report("pipeline: completion for request id " +
                   std::to_string(id) + " delivered at " +
                   std::to_string(tick) +
                   ", regressing global time from " +
                   std::to_string(lastDeliveryTick_));
        }
        lastDeliveryTick_ = tick;
        delivered_ = true;
    }
    outstanding_.erase(it);
}

void
QueueInvariantAuditor::checkDrained()
{
    for (const auto &[id, tick] : outstanding_) {
        report("pipeline: request id " + std::to_string(id) +
               " submitted at " + std::to_string(tick) +
               " never completed (lost)");
    }
}

void
QueueInvariantAuditor::reset()
{
    outstanding_.clear();
    lastDeliveryTick_ = 0;
    delivered_ = false;
    submits_ = 0;
    completions_ = 0;
    violations_ = 0;
}

} // namespace cameo
