/**
 * @file
 * Runtime invariant auditing: the CAMEO_AUDIT macro and its sink.
 *
 * The simulator's correctness rests on invariants the paper states but
 * a release build never re-checks (NDEBUG strips the asserts): LLT
 * entries stay permutations, DRAM commands respect the bank protocol,
 * simulated time never runs backwards. The audit layer makes those
 * machine-checked at full simulation speed when wanted and free when
 * not:
 *
 *  - `CAMEO_AUDIT(cond, msg)` evaluates @p cond and reports a failure
 *    to the global AuditSink. It compiles to nothing unless the build
 *    sets the `CAMEO_AUDIT` CMake option (which defines
 *    CAMEO_AUDIT_ENABLED=1 for every target), so hot paths can be
 *    instrumented without a release-speed tax.
 *
 *  - AuditSink collects failures: a total count, the first failure's
 *    location and message (the later ones are usually cascade noise),
 *    and an optional abort-on-failure mode for runs that should die
 *    loudly (the sanitizer CI job). The concrete auditors in this
 *    directory (LltAuditor, DramProtocolAuditor, KernelAuditor,
 *    StatAuditor) report through the sink unconditionally, so explicit
 *    on-demand audits work in every build; only the inline hot-path
 *    instrumentation is compiled out.
 *
 * The sink is a process-wide singleton on purpose: audits fire from
 * deep inside subsystems that have no registry to hand. Each simulated
 * System is single-threaded, but the sweep engine (src/exp) runs many
 * Systems on concurrent worker threads, so the sink is thread-safe:
 * the failure count is atomic and the captured first failure is
 * mutex-guarded ("first" under concurrency means the first to reach
 * the sink). Tests reset it between cases.
 */

#ifndef CAMEO_CHECK_AUDIT_HH
#define CAMEO_CHECK_AUDIT_HH

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

#ifndef CAMEO_AUDIT_ENABLED
#define CAMEO_AUDIT_ENABLED 0
#endif

namespace cameo
{

/** True when hot-path CAMEO_AUDIT checks are compiled in. */
inline constexpr bool kAuditEnabled = CAMEO_AUDIT_ENABLED != 0;

/** Collects audit failures for one process. */
class AuditSink
{
  public:
    /** The process-wide sink. */
    static AuditSink &global();

    /**
     * Record one failed audit. Aborts the process instead when
     * abort-on-failure is set (after printing the failure to stderr).
     */
    void fail(const char *file, int line, const std::string &msg);

    /** Total failures recorded since the last reset. */
    std::uint64_t failures() const
    {
        return failures_.load(std::memory_order_relaxed);
    }

    /** "file:line: msg" of the first failure; empty if none. */
    std::string firstFailure() const;

    /**
     * Die (std::abort) on the next failure. Useful under sanitizers,
     * where an immediate abort pins the failing stack. Also enabled by
     * the CAMEO_AUDIT_ABORT environment variable (any non-empty value).
     */
    void setAbortOnFailure(bool abort_on_failure)
    {
        abortOnFailure_.store(abort_on_failure, std::memory_order_relaxed);
    }

    bool abortOnFailure() const
    {
        return abortOnFailure_.load(std::memory_order_relaxed);
    }

    /** Clear counts and the captured first failure. */
    void reset();

  private:
    AuditSink();

    std::atomic<std::uint64_t> failures_{0};
    std::atomic<bool> abortOnFailure_{false};

    mutable std::mutex mutex_; ///< Guards firstFailure_.
    std::string firstFailure_;
};

} // namespace cameo

/**
 * Check an invariant on a hot path. Compiled out (condition not even
 * evaluated) unless the CAMEO_AUDIT build option is ON.
 */
#if CAMEO_AUDIT_ENABLED
#define CAMEO_AUDIT(cond, msg)                                               \
    do {                                                                     \
        if (!(cond))                                                         \
            ::cameo::AuditSink::global().fail(__FILE__, __LINE__, (msg));    \
    } while (false)
#else
#define CAMEO_AUDIT(cond, msg) static_cast<void>(0)
#endif

#endif // CAMEO_CHECK_AUDIT_HH
