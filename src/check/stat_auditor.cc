#include "check/stat_auditor.hh"

namespace cameo
{

bool
StatAuditor::onRegister(const std::string &name)
{
    if (!names_.insert(name).second) {
        ++violations_;
        AuditSink::global().fail(__FILE__, __LINE__,
                                 "duplicate stat name registered: " + name);
        return false;
    }
    return true;
}

void
StatAuditor::reset()
{
    names_.clear();
    violations_ = 0;
}

} // namespace cameo
