/**
 * @file
 * LLT line-swap mapping implementation.
 */

#include "orgs/policy/llt_line_swap_mapping.hh"

#include <cassert>

namespace cameo
{

LltLineSwapMapping::LltLineSwapMapping(std::uint64_t stacked_lines,
                                       std::uint64_t total_lines)
    : llt_(stacked_lines,
           static_cast<std::uint32_t>(total_lines / stacked_lines))
{
    assert(stacked_lines != 0 && total_lines % stacked_lines == 0);
    assert(total_lines / stacked_lines >= 2);
}

std::uint64_t
LltLineSwapMapping::deviceLineOf(LineAddr line) const
{
    const std::uint64_t group = line % llt_.numGroups();
    const auto slot = static_cast<std::uint32_t>(line / llt_.numGroups());
    assert(slot < llt_.groupSize());
    const std::uint32_t loc = llt_.locationOf(group, slot);
    if (loc == 0)
        return group; // stacked slot of this congruence group
    return llt_.numGroups() +
           (static_cast<std::uint64_t>(loc) - 1) * llt_.numGroups() + group;
}

bool
LltLineSwapMapping::inStacked(LineAddr line) const
{
    const std::uint64_t group = line % llt_.numGroups();
    const auto slot = static_cast<std::uint32_t>(line / llt_.numGroups());
    return llt_.locationOf(group, slot) == 0;
}

void
LltLineSwapMapping::swapWithStacked(LineAddr line)
{
    const std::uint64_t group = line % llt_.numGroups();
    const auto slot = static_cast<std::uint32_t>(line / llt_.numGroups());
    const std::uint32_t resident = llt_.slotAt(group, 0);
    if (resident == slot)
        return; // already the stacked resident
    llt_.swapSlots(group, slot, resident);
}

void
LltLineSwapMapping::save(SnapshotWriter &w) const
{
    llt_.save(w);
}

void
LltLineSwapMapping::restore(SnapshotReader &r)
{
    llt_.restore(r);
}

} // namespace cameo
