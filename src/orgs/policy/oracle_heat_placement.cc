/**
 * @file
 * Oracle-heat placement implementation.
 */

#include "orgs/policy/oracle_heat_placement.hh"

#include <cassert>

#include "snapshot/flat_map_io.hh"

namespace cameo
{

namespace
{

/**
 * Expose a priority_queue's protected underlying container. The heap
 * must round-trip with its exact array layout — reconstructing via the
 * (comparator, container) constructor re-heapifies, which can reorder
 * tied entries and change future pop order — so save reads and restore
 * writes the container directly.
 */
template <typename T, typename C, typename Cmp>
const C &
heapContainer(const std::priority_queue<T, C, Cmp> &q)
{
    struct Opener : std::priority_queue<T, C, Cmp>
    {
        static const C &get(const std::priority_queue<T, C, Cmp> &pq)
        {
            return pq.*&Opener::c;
        }
    };
    return Opener::get(q);
}

template <typename T, typename C, typename Cmp>
C &
heapContainer(std::priority_queue<T, C, Cmp> &q)
{
    struct Opener : std::priority_queue<T, C, Cmp>
    {
        static C &get(std::priority_queue<T, C, Cmp> &pq)
        {
            return pq.*&Opener::c;
        }
    };
    return Opener::get(q);
}

} // namespace

OracleHeatPlacement::OracleHeatPlacement(std::uint64_t stacked_pages,
                                         std::uint64_t total_pages)
    : stackedPages_(stacked_pages), totalPages_(total_pages),
      physHeat_(total_pages, 0)
{
    // Initially every identity-mapped stacked device page holds a
    // zero-heat physical page.
    for (std::uint64_t p = 0; p < stackedPages_; ++p)
        coldest_.emplace(0, p);
}

void
OracleHeatPlacement::onAccess(PlacementContext &ctx, Tick when,
                              PageAddr phys_page, std::uint64_t device_page,
                              bool is_write, Fidelity fidelity)
{
    (void)ctx;
    (void)when;
    (void)phys_page;
    (void)device_page;
    (void)is_write;
    (void)fidelity;
}

bool
OracleHeatPlacement::setPageHeat(PageHeatMap heat)
{
    heat_ = std::move(heat);
    return true;
}

void
OracleHeatPlacement::onPageMapped(PlacementContext &ctx, std::uint32_t frame,
                                  std::uint32_t core, PageAddr vpage)
{
    const PageAddr phys_page = frame;
    assert(phys_page < totalPages_);
    const auto it = heat_.find(pageHeatKey(core, vpage));
    const std::uint64_t h = it == heat_.end() ? 0 : it->second;
    physHeat_[phys_page] = h;

    if (ctx.devicePageOf(phys_page) < stackedPages_) {
        // Already placed well; record its (new) heat.
        coldest_.emplace(h, phys_page);
        return;
    }

    // Pop stale entries (heat changed since insertion or the page
    // moved out of stacked memory).
    while (!coldest_.empty()) {
        const auto [heat, page] = coldest_.top();
        if (heat == physHeat_[page] &&
            ctx.devicePageOf(page) < stackedPages_)
            break;
        coldest_.pop();
    }
    if (coldest_.empty())
        return;

    const auto [cold_heat, cold_page] = coldest_.top();
    if (h > cold_heat) {
        // Oracular placement: exchange mappings at no cost.
        coldest_.pop();
        ctx.swapMapping(phys_page, cold_page);
        coldest_.emplace(h, phys_page);
        // cold_page is now off-chip; its stale entries are skipped.
    }
}

void
OracleHeatPlacement::save(SnapshotWriter &w) const
{
    w.vecU64(physHeat_);
    const auto &heap = heapContainer(coldest_);
    w.u64(heap.size());
    for (const auto &[heat, page] : heap) {
        w.u64(heat);
        w.u64(page);
    }
    saveFlatMap(w, heat_);
}

void
OracleHeatPlacement::restore(SnapshotReader &r)
{
    std::vector<std::uint64_t> heat;
    r.vecU64(heat);
    if (!r.ok())
        return;
    if (heat.size() != physHeat_.size()) {
        r.fail("tlm-oracle: heat table size mismatch");
        return;
    }
    physHeat_ = std::move(heat);
    const std::uint64_t heapSize = r.u64();
    // Lazy invalidation bounds the heap by total insertions, not live
    // pages; cap it at something a sane run cannot exceed so corrupted
    // sizes fail instead of allocating.
    if (r.ok() && heapSize > (std::uint64_t{1} << 32)) {
        r.fail("tlm-oracle: implausible coldest-heap size");
        return;
    }
    std::vector<HeapEntry> heap;
    heap.reserve(heapSize);
    for (std::uint64_t i = 0; i < heapSize && r.ok(); ++i) {
        const std::uint64_t h = r.u64();
        const PageAddr page = r.u64();
        heap.emplace_back(h, page);
    }
    if (!r.ok())
        return;
    heapContainer(coldest_) = std::move(heap);
    restoreFlatMap(r, heat_, "oracle heat map");
}

} // namespace cameo
