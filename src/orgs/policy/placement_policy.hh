/**
 * @file
 * PlacementPolicy: the composable answer to "should this access
 * trigger a migration/swap, and of what victim" (DESIGN.md §14).
 *
 * A page placement policy observes every routed access through
 * onAccess() and drives migrations through the PlacementContext its
 * host ComposedOrg passes in: the context exposes the geometry, the
 * mapping's translation, and billPageSwap() so the policy never
 * touches DRAM modules directly. Policies are independently
 * Checkpointable and honour the functional-fidelity contract
 * (DESIGN.md §13): identical state updates and RNG draws at both
 * fidelities, traffic billed only when Detailed.
 */

#ifndef CAMEO_ORGS_POLICY_PLACEMENT_POLICY_HH
#define CAMEO_ORGS_POLICY_PLACEMENT_POLICY_HH

#include <cstdint>

#include "orgs/policy/page_heat.hh"
#include "sim/fidelity.hh"
#include "snapshot/snapshot.hh"
#include "stats/registry.hh"
#include "util/types.hh"

namespace cameo
{

/**
 * What a page placement policy may do to its host organization.
 * Implemented by ComposedOrg; handed to every placement hook so the
 * policy stays constructible (and unit-testable) without an org.
 */
class PlacementContext
{
  public:
    /** Device pages resident in stacked DRAM: [0, stackedPages). */
    virtual std::uint64_t stackedPages() const = 0;

    /** Total device pages across both levels. */
    virtual std::uint64_t totalPages() const = 0;

    /** The mapping policy's current translation. */
    virtual std::uint64_t devicePageOf(PageAddr phys_page) const = 0;
    virtual PageAddr physPageAt(std::uint64_t device_page) const = 0;

    /** Update the mapping after a swap decision. */
    virtual void swapMapping(PageAddr phys_a, PageAddr phys_b) = 0;

    /**
     * Bill the 16KB of DRAM activity of one 4KB page swap (Detailed
     * fidelity only) and count the migration.
     */
    virtual void billPageSwap(Tick when, std::uint64_t offchip_dev_page,
                              std::uint64_t stacked_dev_page,
                              Fidelity fidelity) = 0;

  protected:
    ~PlacementContext() = default;
};

/** Base of every composable placement policy. */
class PlacementPolicy : public Checkpointable
{
  public:
    ~PlacementPolicy() override;

    PlacementPolicy() = default;
    PlacementPolicy(const PlacementPolicy &) = delete;
    PlacementPolicy &operator=(const PlacementPolicy &) = delete;

    /** Stable policy name (the composition table in DESIGN.md §14). */
    virtual const char *policyName() const = 0;

    /** Register policy-owned statistics (default: none). */
    virtual void registerStats(StatRegistry &registry);
};

/** Page-granular placement driven by the ComposedOrg access path. */
class PagePlacementPolicy : public PlacementPolicy
{
  public:
    /**
     * One demand access was routed to @p device_page. The policy may
     * update recency/frequency state and perform swaps through @p ctx.
     */
    virtual void onAccess(PlacementContext &ctx, Tick when,
                          PageAddr phys_page, std::uint64_t device_page,
                          bool is_write, Fidelity fidelity) = 0;

    /** A virtual page became resident in @p frame (default: ignore). */
    virtual void onPageMapped(PlacementContext &ctx, std::uint32_t frame,
                              std::uint32_t core, PageAddr vpage);

    /**
     * Inject oracular page heat. Returns false when this policy takes
     * no oracle (the reportable-error path replacing the old
     * assert-only MemoryOrganization::setPageHeat contract).
     */
    virtual bool setPageHeat(PageHeatMap heat);
};

/**
 * Static placement: pages stay where allocation put them (TLM-Static).
 */
class StaticPlacement final : public PagePlacementPolicy
{
  public:
    const char *policyName() const override { return "static"; }

    void onAccess(PlacementContext &ctx, Tick when, PageAddr phys_page,
                  std::uint64_t device_page, bool is_write,
                  Fidelity fidelity) override;

    /** Stateless: nothing to checkpoint. */
    void save(SnapshotWriter &w) const override;
    void restore(SnapshotReader &r) override;
};

/**
 * MRU-swap placement: stock CAMEO's policy — every off-chip access
 * swaps the fetched line with the current stacked resident of its
 * congruence group. The swap machinery itself lives in
 * CameoController's hot path (line granularity, LLT-coupled); this
 * class is the stateless, checkpointable identity of that policy in
 * the composition table.
 */
class MruSwapPlacement final : public PlacementPolicy
{
  public:
    const char *policyName() const override { return "mru-swap"; }

    /** Stateless: nothing to checkpoint. */
    void save(SnapshotWriter &w) const override;
    void restore(SnapshotReader &r) override;
};

} // namespace cameo

#endif // CAMEO_ORGS_POLICY_PLACEMENT_POLICY_HH
