/**
 * @file
 * TAD tag-array mapping implementation.
 */

#include "orgs/policy/tad_tag_mapping.hh"

#include <cassert>
#include <string>

namespace cameo
{

TadTagMapping::TadTagMapping(std::uint64_t num_sets)
    : numSets_(num_sets), sets_(num_sets)
{
    assert(numSets_ != 0);
}

void
TadTagMapping::save(SnapshotWriter &w) const
{
    w.u64(numSets_);
    for (const Entry &s : sets_) {
        w.u64(s.tag);
        w.b(s.valid);
        w.b(s.dirty);
    }
}

void
TadTagMapping::restore(SnapshotReader &r)
{
    const std::uint64_t sets = r.u64();
    if (!r.ok())
        return;
    if (sets != numSets_) {
        r.fail("cache org: set count mismatch: snapshot has " +
               std::to_string(sets) + ", this cache has " +
               std::to_string(numSets_));
        return;
    }
    for (Entry &s : sets_) {
        s.tag = r.u64();
        s.valid = r.b();
        s.dirty = r.b();
    }
}

} // namespace cameo
