/**
 * @file
 * MappingPolicy base defaults and the stateless IdentityMapping.
 */

#include "orgs/policy/mapping_policy.hh"

#include <cassert>

namespace cameo
{

MappingPolicy::~MappingPolicy() = default;

void
MappingPolicy::registerStats(StatRegistry &registry)
{
    (void)registry;
}

Tick
PageMappingPolicy::beginAccess(Tick now, PageAddr phys_page,
                               std::uint32_t core, DramModule &offchip,
                               Fidelity fidelity)
{
    (void)phys_page;
    (void)core;
    (void)offchip;
    (void)fidelity;
    return now;
}

void
IdentityMapping::swapMapping(PageAddr phys_a, PageAddr phys_b)
{
    (void)phys_a;
    (void)phys_b;
    assert(false && "identity mapping cannot remap pages");
}

void
IdentityMapping::save(SnapshotWriter &w) const
{
    (void)w;
}

void
IdentityMapping::restore(SnapshotReader &r)
{
    (void)r;
}

} // namespace cameo
