/**
 * @file
 * Epoch-frequency placement, extracted from the old TlmFreqOrg (the
 * paper's TLM-Freq, Section VI-D): hardware tracks page access
 * frequency; the OS periodically migrates the hottest pages into
 * stacked memory.
 *
 * Per the paper we ignore TLB-shootdown and software sorting overheads
 * but fully model the page-transfer bandwidth. Counters decay by half
 * each epoch so the placement tracks phase changes.
 */

#ifndef CAMEO_ORGS_POLICY_EPOCH_FREQ_PLACEMENT_HH
#define CAMEO_ORGS_POLICY_EPOCH_FREQ_PLACEMENT_HH

#include <cstdint>
#include <vector>

#include "orgs/policy/placement_policy.hh"

namespace cameo
{

/** Epoch-based frequency-directed page placement. */
class EpochFrequencyPlacement final : public PagePlacementPolicy
{
  public:
    EpochFrequencyPlacement(std::uint64_t stacked_pages,
                            std::uint64_t total_pages,
                            std::uint64_t epoch_accesses);

    const char *policyName() const override { return "epoch-frequency"; }

    const Counter &epochs() const { return epochs_; }

    void onAccess(PlacementContext &ctx, Tick when, PageAddr phys_page,
                  std::uint64_t device_page, bool is_write,
                  Fidelity fidelity) override;

    /**
     * Checkpointable: epoch progress and per-page access counters. The
     * epoch counter is intentionally unregistered (bench-local
     * telemetry), so its value travels here rather than in the
     * snapshot's stats section.
     */
    void save(SnapshotWriter &w) const override;
    void restore(SnapshotReader &r) override;

  private:
    /** Re-place pages at an epoch boundary; bill migration traffic. */
    void rebalance(PlacementContext &ctx, Tick when, Fidelity fidelity);

    std::uint64_t stackedPages_;
    std::uint64_t totalPages_;
    std::uint64_t epochLength_;
    std::uint64_t accessesThisEpoch_ = 0;
    std::vector<std::uint32_t> pageCount_; ///< Per OS-physical page.

    Counter epochs_;
};

} // namespace cameo

#endif // CAMEO_ORGS_POLICY_EPOCH_FREQ_PLACEMENT_HH
