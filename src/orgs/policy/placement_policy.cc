/**
 * @file
 * PlacementPolicy base defaults and the stateless StaticPlacement.
 */

#include "orgs/policy/placement_policy.hh"

namespace cameo
{

PlacementPolicy::~PlacementPolicy() = default;

void
PlacementPolicy::registerStats(StatRegistry &registry)
{
    (void)registry;
}

void
PagePlacementPolicy::onPageMapped(PlacementContext &ctx, std::uint32_t frame,
                                  std::uint32_t core, PageAddr vpage)
{
    (void)ctx;
    (void)frame;
    (void)core;
    (void)vpage;
}

bool
PagePlacementPolicy::setPageHeat(PageHeatMap heat)
{
    (void)heat;
    return false;
}

void
StaticPlacement::onAccess(PlacementContext &ctx, Tick when,
                          PageAddr phys_page, std::uint64_t device_page,
                          bool is_write, Fidelity fidelity)
{
    (void)ctx;
    (void)when;
    (void)phys_page;
    (void)device_page;
    (void)is_write;
    (void)fidelity;
}

void
StaticPlacement::save(SnapshotWriter &w) const
{
    (void)w;
}

void
StaticPlacement::restore(SnapshotReader &r)
{
    (void)r;
}

void
MruSwapPlacement::save(SnapshotWriter &w) const
{
    (void)w;
}

void
MruSwapPlacement::restore(SnapshotReader &r)
{
    (void)r;
}

} // namespace cameo
