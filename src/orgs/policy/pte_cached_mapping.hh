/**
 * @file
 * PTE-cached page mapping for Banshee (Yu et al., MICRO 2017).
 *
 * Banshee tracks stacked-DRAM residency in the page tables instead of
 * hardware remap tables: translation is free when the (per-core,
 * direct-mapped) cached PTE covers the page and costs one off-chip
 * metadata read — a modelled page-walk line — when it does not. Page
 * moves invalidate the cached copies on every core (the TLB-shootdown
 * analogue), which is exactly why Banshee's placement migrates rarely.
 *
 * The functional-fidelity contract holds: cache contents, hit/miss
 * counters, and shootdowns update identically at both fidelities; only
 * the walk's DRAM request is Detailed-gated.
 */

#ifndef CAMEO_ORGS_POLICY_PTE_CACHED_MAPPING_HH
#define CAMEO_ORGS_POLICY_PTE_CACHED_MAPPING_HH

#include <cstdint>
#include <vector>

#include "orgs/policy/page_remap_mapping.hh"
#include "orgs/policy/policy_config.hh"

namespace cameo
{

/** Page-remap mapping fronted by per-core cached PTEs. */
class PteCachedPageMapping final : public PageMappingPolicy
{
  public:
    PteCachedPageMapping(std::uint64_t total_pages, std::uint32_t num_cores,
                         const BansheePolicyConfig &config);

    const char *policyName() const override { return "pte-cached-remap"; }

    std::uint64_t devicePageOf(PageAddr phys_page) const override
    {
        return table_.devicePageOf(phys_page);
    }

    PageAddr physPageAt(std::uint64_t device_page) const override
    {
        return table_.physPageAt(device_page);
    }

    /** Remap + shoot down every core's cached PTE for both pages. */
    void swapMapping(PageAddr phys_a, PageAddr phys_b) override;

    /**
     * PTE-cache lookup for @p phys_page on @p core. A hit costs
     * nothing; a miss installs the entry and (Detailed only) bills one
     * off-chip page-walk line read, returning the walk's completion
     * tick as the earliest start for the data access.
     */
    Tick beginAccess(Tick now, PageAddr phys_page, std::uint32_t core,
                     DramModule &offchip, Fidelity fidelity) override;

    void registerStats(StatRegistry &registry) override;

    const Counter &pteHits() const { return pteHits_; }
    const Counter &pteMisses() const { return pteMisses_; }
    const Counter &pteShootdowns() const { return pteShootdowns_; }

    /** Checkpointable: the remap table + every core's cached PTEs. */
    void save(SnapshotWriter &w) const override;
    void restore(SnapshotReader &r) override;

  private:
    std::uint64_t slotOf(std::uint32_t core, PageAddr phys_page) const
    {
        return std::uint64_t{core} * entries_ +
               (phys_page & (entries_ - 1));
    }

    /** Drop every core's cached PTE for @p phys_page. */
    void invalidate(PageAddr phys_page);

    PageRemapMapping table_;
    std::uint32_t numCores_;
    std::uint32_t entries_; ///< Per-core slots (power of two).

    /** Direct-mapped cached PTEs: phys_page + 1, 0 = invalid. */
    std::vector<std::uint64_t> slots_;

    Counter pteHits_;
    Counter pteMisses_;
    Counter pteShootdowns_;
};

} // namespace cameo

#endif // CAMEO_ORGS_POLICY_PTE_CACHED_MAPPING_HH
