/**
 * @file
 * Nth-touch migrate placement implementation.
 */

#include "orgs/policy/nth_touch_placement.hh"

#include <algorithm>
#include <utility>

namespace cameo
{

NthTouchMigratePlacement::NthTouchMigratePlacement(
    std::uint64_t stacked_pages, std::uint64_t total_pages,
    const MigratePolicyConfig &config, std::uint64_t seed)
    : stackedLastUse_(stacked_pages, 0), touchCount_(total_pages, 0),
      stackedPages_(stacked_pages), victimProbes_(config.victimProbes),
      migrateThreshold_(std::max(1u, config.migrateThreshold)),
      rng_(seed ^ 0xD15C)
{
}

std::uint64_t
NthTouchMigratePlacement::selectVictim()
{
    // Oldest of victimProbes_ random stacked device pages (approximate
    // LRU, standing in for the OS's page-age bookkeeping).
    std::uint64_t victim = rng_.next(stackedPages_);
    for (std::uint32_t p = 1; p < victimProbes_; ++p) {
        const std::uint64_t cand = rng_.next(stackedPages_);
        if (stackedLastUse_[cand] < stackedLastUse_[victim])
            victim = cand;
    }
    return victim;
}

void
NthTouchMigratePlacement::onAccess(PlacementContext &ctx, Tick when,
                                   PageAddr phys_page,
                                   std::uint64_t device_page, bool is_write,
                                   Fidelity fidelity)
{
    (void)is_write;
    const std::uint64_t stamp = ++accessSeq_;
    if (device_page < stackedPages_) {
        stackedLastUse_[device_page] = stamp;
        touchCount_[phys_page] = 0;
        return;
    }
    // Off-chip access: migrate the page into stacked memory once it
    // has shown it is live (migrateThreshold_ touches), swapping with
    // a not-recently-used victim.
    if (++touchCount_[phys_page] < migrateThreshold_)
        return;
    touchCount_[phys_page] = 0;
    const std::uint64_t victim_dev = selectVictim();
    ctx.billPageSwap(when, device_page, victim_dev, fidelity);
    ctx.swapMapping(phys_page, ctx.physPageAt(victim_dev));
    stackedLastUse_[victim_dev] = stamp;
}

void
NthTouchMigratePlacement::save(SnapshotWriter &w) const
{
    w.vecU64(stackedLastUse_);
    w.vecU8(touchCount_);
    for (const std::uint64_t s : rng_.state())
        w.u64(s);
    w.u64(accessSeq_);
}

void
NthTouchMigratePlacement::restore(SnapshotReader &r)
{
    std::vector<Tick> lastUse;
    std::vector<std::uint8_t> touches;
    r.vecU64(lastUse);
    r.vecU8(touches);
    if (!r.ok())
        return;
    if (lastUse.size() != stackedLastUse_.size() ||
        touches.size() != touchCount_.size()) {
        r.fail("tlm-dynamic: LRU/touch table size mismatch");
        return;
    }
    stackedLastUse_ = std::move(lastUse);
    touchCount_ = std::move(touches);
    Rng::State rngState;
    for (std::uint64_t &s : rngState)
        s = r.u64();
    rng_.setState(rngState);
    accessSeq_ = r.u64();
}

} // namespace cameo
