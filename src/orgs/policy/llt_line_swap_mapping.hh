/**
 * @file
 * LLT line-swap mapping: CAMEO's line-granular congruence-group
 * mapping expressed as a MappingPolicy over a LineLocationTable.
 *
 * Lines are grouped by `group = line % numGroups` with
 * `slot = line / numGroups`; location 0 of each group is the stacked
 * slot, locations 1..K-1 are off-chip. CameoController keeps its own
 * LLT fused into its hot path (the translation's *storage* cost —
 * SRAM/embedded/co-located LEAD — is the controller's business); this
 * adapter is the standalone, unit-testable form of the same mapping
 * used by the policy test suite and the composition table.
 */

#ifndef CAMEO_ORGS_POLICY_LLT_LINE_SWAP_MAPPING_HH
#define CAMEO_ORGS_POLICY_LLT_LINE_SWAP_MAPPING_HH

#include <cstdint>

#include "core/line_location_table.hh"
#include "orgs/policy/mapping_policy.hh"

namespace cameo
{

/** Line-granular swap mapping backed by a LineLocationTable. */
class LltLineSwapMapping final : public MappingPolicy
{
  public:
    /**
     * @param stacked_lines Congruence groups (stacked capacity in lines).
     * @param total_lines   Lines across both levels; must be a multiple
     *                      of @p stacked_lines (K = total/stacked).
     */
    LltLineSwapMapping(std::uint64_t stacked_lines,
                       std::uint64_t total_lines);

    const char *policyName() const override { return "llt-line-swap"; }

    /**
     * Device line currently holding OS-physical @p line: the stacked
     * line `group` when its location is 0, else off-chip line
     * `(loc - 1) * numGroups + group`, offset past the stacked range.
     */
    std::uint64_t deviceLineOf(LineAddr line) const;

    /** True if @p line currently resides in stacked DRAM. */
    bool inStacked(LineAddr line) const;

    /** Swap @p line with the current stacked resident of its group. */
    void swapWithStacked(LineAddr line);

    std::uint64_t numGroups() const { return llt_.numGroups(); }
    std::uint32_t groupSize() const { return llt_.groupSize(); }
    const LineLocationTable &llt() const { return llt_; }

    /** Checkpointable: the full location table. */
    void save(SnapshotWriter &w) const override;
    void restore(SnapshotReader &r) override;

  private:
    LineLocationTable llt_;
};

} // namespace cameo

#endif // CAMEO_ORGS_POLICY_LLT_LINE_SWAP_MAPPING_HH
