/**
 * @file
 * Banshee PTE-cached page mapping implementation.
 */

#include "orgs/policy/pte_cached_mapping.hh"

#include <cassert>

namespace cameo
{

PteCachedPageMapping::PteCachedPageMapping(std::uint64_t total_pages,
                                           std::uint32_t num_cores,
                                           const BansheePolicyConfig &config)
    : table_(total_pages), numCores_(num_cores),
      entries_(config.pteCacheEntries),
      slots_(std::uint64_t{num_cores} * config.pteCacheEntries, 0),
      pteHits_("banshee.pteHits", "accesses translated by a cached PTE"),
      pteMisses_("banshee.pteMisses",
                 "accesses that walked the page table for a mapping"),
      pteShootdowns_("banshee.pteShootdowns",
                     "page moves that invalidated cached PTEs")
{
    assert(entries_ != 0 && (entries_ & (entries_ - 1)) == 0);
    assert(numCores_ != 0);
}

Tick
PteCachedPageMapping::beginAccess(Tick now, PageAddr phys_page,
                                  std::uint32_t core, DramModule &offchip,
                                  Fidelity fidelity)
{
    std::uint64_t &slot = slots_[slotOf(core, phys_page)];
    if (slot == phys_page + 1) {
        pteHits_.inc();
        return now;
    }
    pteMisses_.inc();
    slot = phys_page + 1;
    if (fidelity == Fidelity::Detailed) {
        // The mapping lives in the off-chip page tables: bill the walk
        // as one metadata line read and serialize the data access
        // behind it.
        const std::uint64_t walk_line = phys_page % offchip.capacityLines();
        return offchip.request(now, walk_line, false, kLineBytes);
    }
    return now;
}

void
PteCachedPageMapping::swapMapping(PageAddr phys_a, PageAddr phys_b)
{
    table_.swapMapping(phys_a, phys_b);
    invalidate(phys_a);
    invalidate(phys_b);
    pteShootdowns_.inc();
}

void
PteCachedPageMapping::invalidate(PageAddr phys_page)
{
    for (std::uint32_t c = 0; c < numCores_; ++c) {
        std::uint64_t &slot = slots_[slotOf(c, phys_page)];
        if (slot == phys_page + 1)
            slot = 0;
    }
}

void
PteCachedPageMapping::registerStats(StatRegistry &registry)
{
    registry.add(pteHits_);
    registry.add(pteMisses_);
    registry.add(pteShootdowns_);
}

void
PteCachedPageMapping::save(SnapshotWriter &w) const
{
    table_.save(w);
    w.vecU64(slots_);
}

void
PteCachedPageMapping::restore(SnapshotReader &r)
{
    table_.restore(r);
    std::vector<std::uint64_t> slots;
    r.vecU64(slots);
    if (!r.ok())
        return;
    if (slots.size() != slots_.size()) {
        r.fail("banshee: PTE cache size mismatch");
        return;
    }
    slots_ = std::move(slots);
}

} // namespace cameo
