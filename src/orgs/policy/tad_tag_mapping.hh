/**
 * @file
 * Direct-mapped TAD tag mapping, extracted from AlloyCacheOrg.
 *
 * The Alloy cache's translation state is its tag array: one TAD (Tag
 * And Data) entry per direct-mapped set, tag co-located with the data
 * in the stacked row. This policy owns that array — lookup, install,
 * and victim bookkeeping — while the org keeps the access-path timing
 * (TAD bursts, MAP-I predictor, parallel fetch) that gives Alloy its
 * latency character.
 */

#ifndef CAMEO_ORGS_POLICY_TAD_TAG_MAPPING_HH
#define CAMEO_ORGS_POLICY_TAD_TAG_MAPPING_HH

#include <cstdint>
#include <vector>

#include "orgs/policy/mapping_policy.hh"

namespace cameo
{

/** Direct-mapped tag array with per-set valid/dirty state. */
class TadTagMapping final : public MappingPolicy
{
  public:
    /** One direct-mapped set: the resident line's tag and state. */
    struct Entry
    {
        LineAddr tag = 0;
        bool valid = false;
        bool dirty = false;
    };

    explicit TadTagMapping(std::uint64_t num_sets);

    const char *policyName() const override { return "tad-tags"; }

    std::uint64_t numSets() const { return numSets_; }

    std::uint64_t setIndexOf(LineAddr line) const
    {
        return line % numSets_;
    }

    Entry &setFor(LineAddr line) { return sets_[line % numSets_]; }
    const Entry &setFor(LineAddr line) const
    {
        return sets_[line % numSets_];
    }

    /** True if @p line is the valid resident of its set. */
    bool hit(LineAddr line) const
    {
        const Entry &set = setFor(line);
        return set.valid && set.tag == line;
    }

    /** Checkpointable: the structural set count + every entry. */
    void save(SnapshotWriter &w) const override;
    void restore(SnapshotReader &r) override;

  private:
    std::uint64_t numSets_;
    std::vector<Entry> sets_;
};

} // namespace cameo

#endif // CAMEO_ORGS_POLICY_TAD_TAG_MAPPING_HH
