/**
 * @file
 * Page-table page-remap mapping, extracted from the old TlmRemapBase.
 *
 * Maintains the OS-physical page -> device page bijection (and its
 * inverse) that every migrating TLM variant shares. Pure bookkeeping:
 * traffic for an actual page move is billed by the placement policy
 * through PlacementContext::billPageSwap.
 */

#ifndef CAMEO_ORGS_POLICY_PAGE_REMAP_MAPPING_HH
#define CAMEO_ORGS_POLICY_PAGE_REMAP_MAPPING_HH

#include <cstdint>
#include <vector>

#include "orgs/policy/mapping_policy.hh"

namespace cameo
{

/** Mutable page remap table: starts as the identity mapping. */
class PageRemapMapping : public PageMappingPolicy
{
  public:
    explicit PageRemapMapping(std::uint64_t total_pages);

    const char *policyName() const override { return "page-remap"; }

    std::uint64_t devicePageOf(PageAddr phys_page) const override;
    PageAddr physPageAt(std::uint64_t device_page) const override;
    void swapMapping(PageAddr phys_a, PageAddr phys_b) override;

    std::uint64_t totalPages() const { return physToDev_.size(); }

    /** Checkpointable: both remap directions. */
    void save(SnapshotWriter &w) const override;
    void restore(SnapshotReader &r) override;

  private:
    /** Full O(n) bijection check, for CAMEO_AUDIT on bulk updates. */
    bool bijectionHolds() const;

    std::vector<std::uint32_t> physToDev_;
    std::vector<std::uint32_t> devToPhys_;
};

} // namespace cameo

#endif // CAMEO_ORGS_POLICY_PAGE_REMAP_MAPPING_HH
