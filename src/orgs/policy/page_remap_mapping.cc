/**
 * @file
 * Page-remap mapping implementation (the old TlmRemapBase tables).
 */

#include "orgs/policy/page_remap_mapping.hh"

#include <cassert>
#include <numeric>
#include <utility>

#include "check/audit.hh"

namespace cameo
{

PageRemapMapping::PageRemapMapping(std::uint64_t total_pages)
{
    physToDev_.resize(total_pages);
    devToPhys_.resize(total_pages);
    std::iota(physToDev_.begin(), physToDev_.end(), 0u);
    std::iota(devToPhys_.begin(), devToPhys_.end(), 0u);
}

std::uint64_t
PageRemapMapping::devicePageOf(PageAddr phys_page) const
{
    assert(phys_page < physToDev_.size());
    return physToDev_[phys_page];
}

PageAddr
PageRemapMapping::physPageAt(std::uint64_t device_page) const
{
    assert(device_page < devToPhys_.size());
    return devToPhys_[device_page];
}

void
PageRemapMapping::swapMapping(PageAddr phys_a, PageAddr phys_b)
{
    assert(phys_a < physToDev_.size() && phys_b < physToDev_.size());
    const std::uint32_t dev_a = physToDev_[phys_a];
    const std::uint32_t dev_b = physToDev_[phys_b];
    std::swap(physToDev_[phys_a], physToDev_[phys_b]);
    devToPhys_[dev_a] = static_cast<std::uint32_t>(phys_b);
    devToPhys_[dev_b] = static_cast<std::uint32_t>(phys_a);
    CAMEO_AUDIT(devToPhys_[physToDev_[phys_a]] == phys_a &&
                    devToPhys_[physToDev_[phys_b]] == phys_b,
                "page-remap: swap broke the phys<->device bijection");
}

void
PageRemapMapping::save(SnapshotWriter &w) const
{
    w.vecU32(physToDev_);
    w.vecU32(devToPhys_);
}

void
PageRemapMapping::restore(SnapshotReader &r)
{
    std::vector<std::uint32_t> p2d;
    std::vector<std::uint32_t> d2p;
    r.vecU32(p2d);
    r.vecU32(d2p);
    if (!r.ok())
        return;
    if (p2d.size() != physToDev_.size() || d2p.size() != devToPhys_.size()) {
        r.fail("tlm: remap table size mismatch");
        return;
    }
    physToDev_ = std::move(p2d);
    devToPhys_ = std::move(d2p);
    CAMEO_AUDIT(bijectionHolds(),
                "page-remap: restored tables are not a bijection");
}

bool
PageRemapMapping::bijectionHolds() const
{
    for (std::size_t i = 0; i < physToDev_.size(); ++i) {
        if (physToDev_[i] >= devToPhys_.size() ||
            devToPhys_[physToDev_[i]] != i)
            return false;
    }
    return true;
}

} // namespace cameo
