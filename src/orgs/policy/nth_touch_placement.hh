/**
 * @file
 * Nth-touch migrate placement, extracted from the old TlmDynamicOrg
 * (the paper's TLM-Dynamic, Section II-C).
 *
 * On the Nth access to a page resident off-chip, swap that 4KB page
 * with a not-recently-used victim in stacked memory. Each swap costs
 * 16KB of memory activity — the bandwidth bloat that makes TLM-Dynamic
 * lose to CAMEO on workloads with poor within-page locality.
 */

#ifndef CAMEO_ORGS_POLICY_NTH_TOUCH_PLACEMENT_HH
#define CAMEO_ORGS_POLICY_NTH_TOUCH_PLACEMENT_HH

#include <cstdint>
#include <vector>

#include "orgs/policy/placement_policy.hh"
#include "orgs/policy/policy_config.hh"
#include "util/rng.hh"

namespace cameo
{

/** Swap-on-Nth-touch page migration with approximate-LRU victims. */
class NthTouchMigratePlacement final : public PagePlacementPolicy
{
  public:
    NthTouchMigratePlacement(std::uint64_t stacked_pages,
                             std::uint64_t total_pages,
                             const MigratePolicyConfig &config,
                             std::uint64_t seed);

    const char *policyName() const override { return "nth-touch-migrate"; }

    void onAccess(PlacementContext &ctx, Tick when, PageAddr phys_page,
                  std::uint64_t device_page, bool is_write,
                  Fidelity fidelity) override;

    /** Checkpointable: LRU stamps, touch counters, RNG, sequence. */
    void save(SnapshotWriter &w) const override;
    void restore(SnapshotReader &r) override;

  private:
    /** Approximate-LRU victim: oldest of N random stacked pages. */
    std::uint64_t selectVictim();

    /**
     * Recency is tracked in access-sequence numbers, not ticks: the
     * OS's notion of "not recently used" is about reference order, and
     * sequence stamps make victim selection identical across timing
     * modes and fidelities (DESIGN.md §13) — tick stamps would tie
     * within a batch and diverge between Blocking and Queued runs.
     */
    std::vector<std::uint64_t> stackedLastUse_; ///< Per stacked dev page.
    std::vector<std::uint8_t> touchCount_; ///< Per OS page, saturating.
    std::uint64_t stackedPages_;
    std::uint32_t victimProbes_;
    std::uint32_t migrateThreshold_;
    Rng rng_;
    std::uint64_t accessSeq_ = 0; ///< Demand accesses observed so far.
};

} // namespace cameo

#endif // CAMEO_ORGS_POLICY_NTH_TOUCH_PLACEMENT_HH
