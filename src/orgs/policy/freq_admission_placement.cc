/**
 * @file
 * Frequency-admission filter implementation.
 */

#include "orgs/policy/freq_admission_placement.hh"

#include <utility>

namespace cameo
{

FreqAdmissionPlacement::FreqAdmissionPlacement(std::uint64_t total_pages,
                                               std::uint64_t epoch_accesses)
    : pageCount_(total_pages, 0), epochLength_(epoch_accesses),
      hotPages_("cameofreq.hotAdmissions",
                "swap admissions from the hot-page filter")
{
}

void
FreqAdmissionPlacement::noteAccess(LineAddr line)
{
    const PageAddr page = lineToPage(line);
    if (page < pageCount_.size() && pageCount_[page] < 255)
        ++pageCount_[page];
    if (++accessesThisEpoch_ >= epochLength_) {
        accessesThisEpoch_ = 0;
        decay();
    }
}

bool
FreqAdmissionPlacement::shouldAdmit(LineAddr line)
{
    const PageAddr page = lineToPage(line);
    if (page >= pageCount_.size())
        return true; // defensive: unknown pages swap as stock CAMEO
    if (pageCount_[page] >= kHotThreshold) {
        hotPages_.inc();
        return true;
    }
    return false;
}

void
FreqAdmissionPlacement::decay()
{
    for (auto &c : pageCount_)
        c = static_cast<std::uint8_t>(c >> 1);
}

void
FreqAdmissionPlacement::registerStats(StatRegistry &registry)
{
    registry.add(hotPages_);
}

void
FreqAdmissionPlacement::save(SnapshotWriter &w) const
{
    w.vecU8(pageCount_);
    w.u64(accessesThisEpoch_);
}

void
FreqAdmissionPlacement::restore(SnapshotReader &r)
{
    std::vector<std::uint8_t> counts;
    r.vecU8(counts);
    if (!r.ok())
        return;
    if (counts.size() != pageCount_.size()) {
        r.fail("cameo-freq: page counter table size mismatch");
        return;
    }
    pageCount_ = std::move(counts);
    accessesThisEpoch_ = r.u64();
}

} // namespace cameo
