/**
 * @file
 * Frequency-directed swap admission, extracted from CameoFreqOrg (the
 * Section VI-D extension): an epoch-decayed page-access counter table
 * whose verdict gates CAMEO's line swaps.
 *
 * Lines of pages that have not yet proven hot are serviced from
 * off-chip memory in place — no swap, no victim write — so streaming
 * or single-touch pages stop churning the stacked slots. This policy
 * is a line-level admission filter, not a page mover, so it plugs into
 * CameoController::setSwapFilter rather than the ComposedOrg page
 * path.
 */

#ifndef CAMEO_ORGS_POLICY_FREQ_ADMISSION_PLACEMENT_HH
#define CAMEO_ORGS_POLICY_FREQ_ADMISSION_PLACEMENT_HH

#include <cstdint>
#include <vector>

#include "orgs/policy/placement_policy.hh"

namespace cameo
{

/** Epoch-decayed hot-page filter for CAMEO swap admission. */
class FreqAdmissionPlacement final : public PlacementPolicy
{
  public:
    /** Page touches within the decay window required to admit swaps. */
    static constexpr std::uint32_t kHotThreshold = 4;

    FreqAdmissionPlacement(std::uint64_t total_pages,
                           std::uint64_t epoch_accesses);

    const char *policyName() const override { return "freq-admission"; }

    void registerStats(StatRegistry &registry) override;

    const Counter &hotPages() const { return hotPages_; }

    /** Heat bookkeeping shared by both fidelities: bump the page's
     *  saturating counter and decay at epoch boundaries. */
    void noteAccess(LineAddr line);

    /** Swap-admission verdict for @p line (counts hot admissions). */
    bool shouldAdmit(LineAddr line);

    /** Checkpointable: page counters and epoch progress. */
    void save(SnapshotWriter &w) const override;
    void restore(SnapshotReader &r) override;

  private:
    /** Halve all counters (called every epoch of demand accesses). */
    void decay();

    std::vector<std::uint8_t> pageCount_; ///< Saturating, per OS page.
    std::uint64_t epochLength_;
    std::uint64_t accessesThisEpoch_ = 0;

    Counter hotPages_;
};

} // namespace cameo

#endif // CAMEO_ORGS_POLICY_FREQ_ADMISSION_PLACEMENT_HH
