/**
 * @file
 * Per-policy configuration sub-structs for OrgConfig.
 *
 * Each composable policy family gets its own config struct with a
 * validate() method returning nullptr on success or a static message
 * describing the first violated constraint. OrgConfig aggregates them;
 * makeOrganization() and the CLI validate before construction so a bad
 * design point is a reportable error, not an assert deep in a ctor.
 */

#ifndef CAMEO_ORGS_POLICY_POLICY_CONFIG_HH
#define CAMEO_ORGS_POLICY_POLICY_CONFIG_HH

#include <cstdint>

#include "core/cameo_controller.hh"
#include "core/line_location_predictor.hh"

namespace cameo
{

/** CAMEO design point (Figures 9 and 12). */
struct LltPolicyConfig
{
    LltKind kind = LltKind::CoLocated;
    PredictorKind predictor = PredictorKind::Llp;
    std::uint32_t llpTableEntries = 256;

    /** nullptr if valid, else a static description of the violation. */
    const char *validate() const
    {
        if (llpTableEntries == 0)
            return "llt.llpTableEntries must be nonzero";
        return nullptr;
    }
};

/** Epoch-based frequency policies (TLM-Freq, CAMEO-Freq, Banshee). */
struct FreqPolicyConfig
{
    /** Epoch length in demand accesses. */
    std::uint64_t epochAccesses = 64 * 1024;

    const char *validate() const
    {
        if (epochAccesses == 0)
            return "freq.epochAccesses must be nonzero";
        return nullptr;
    }
};

/** Touch-count page-migration policy (TLM-Dynamic). */
struct MigratePolicyConfig
{
    /** Victim probes per migration (approximate-LRU width). */
    std::uint32_t victimProbes = 8;

    /**
     * Migration hysteresis: an off-chip page migrates into stacked
     * memory on its Nth access while off-chip. 1 = migrate on first
     * touch (maximally aggressive); 2 filters one-touch pages, the
     * standard OS guard against migration thrash.
     */
    std::uint32_t migrateThreshold = 2;

    const char *validate() const
    {
        if (victimProbes == 0)
            return "migrate.victimProbes must be nonzero";
        if (migrateThreshold == 0)
            return "migrate.migrateThreshold must be nonzero";
        return nullptr;
    }
};

/** Banshee-style PTE-cached mapping + sampling-counter placement. */
struct BansheePolicyConfig
{
    /**
     * Frequency counters increment on one in @p sampleRate accesses
     * (Banshee's sampling counters): replacement decisions are made in
     * the sampled-count domain, cutting counter-update traffic.
     */
    std::uint32_t sampleRate = 32;

    /**
     * A page migrates into stacked memory when its sampled count
     * exceeds the probed victim's by more than this margin.
     */
    std::uint32_t hotThreshold = 2;

    /** Victim probes per admission check. */
    std::uint32_t victimProbes = 8;

    /** Per-core direct-mapped PTE-cache slots (power of two). */
    std::uint32_t pteCacheEntries = 128;

    const char *validate() const
    {
        if (sampleRate == 0)
            return "banshee.sampleRate must be nonzero";
        if (victimProbes == 0)
            return "banshee.victimProbes must be nonzero";
        if (pteCacheEntries == 0 ||
            (pteCacheEntries & (pteCacheEntries - 1)) != 0)
            return "banshee.pteCacheEntries must be a nonzero power of two";
        return nullptr;
    }
};

} // namespace cameo

#endif // CAMEO_ORGS_POLICY_POLICY_CONFIG_HH
