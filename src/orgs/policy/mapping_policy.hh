/**
 * @file
 * MappingPolicy: the composable answer to "which device page/row holds
 * OS-physical line X" (DESIGN.md §14).
 *
 * A ComposedOrg pairs one mapping policy with one placement policy.
 * The mapping owns the translation state (page tables, tag arrays, LLT
 * permutations) and is independently Checkpointable; the functional-
 * fidelity contract (DESIGN.md §13) holds per-policy: beginAccess()
 * updates mapping state identically at both fidelities and only bills
 * DRAM traffic (metadata walks) when the fidelity is Detailed.
 */

#ifndef CAMEO_ORGS_POLICY_MAPPING_POLICY_HH
#define CAMEO_ORGS_POLICY_MAPPING_POLICY_HH

#include <cstdint>

#include "dram/dram_module.hh"
#include "sim/fidelity.hh"
#include "snapshot/snapshot.hh"
#include "stats/registry.hh"
#include "util/types.hh"

namespace cameo
{

/** Base of every composable mapping policy. */
class MappingPolicy : public Checkpointable
{
  public:
    ~MappingPolicy() override;

    MappingPolicy() = default;
    MappingPolicy(const MappingPolicy &) = delete;
    MappingPolicy &operator=(const MappingPolicy &) = delete;

    /** Stable policy name (the composition table in DESIGN.md §14). */
    virtual const char *policyName() const = 0;

    /** Register policy-owned statistics (default: none). */
    virtual void registerStats(StatRegistry &registry);
};

/**
 * Page-granular mapping: a bijection between OS-physical pages and
 * device pages (device pages < stackedPages live in stacked DRAM).
 */
class PageMappingPolicy : public MappingPolicy
{
  public:
    /** Device page currently holding OS-physical @p phys_page. */
    virtual std::uint64_t devicePageOf(PageAddr phys_page) const = 0;

    /** OS-physical page currently held by @p device_page. */
    virtual PageAddr physPageAt(std::uint64_t device_page) const = 0;

    /** Swap the device pages of two OS-physical pages. */
    virtual void swapMapping(PageAddr phys_a, PageAddr phys_b) = 0;

    /**
     * Translation cost hook, called once per access before routing.
     * Policies whose translation metadata itself lives in memory (the
     * Banshee PTE cache) update that state here — identically at both
     * fidelities — and bill the metadata walk against @p offchip only
     * when @p fidelity is Detailed. Returns the tick at which the data
     * access may start (== @p now for zero-cost mappings).
     */
    virtual Tick beginAccess(Tick now, PageAddr phys_page,
                             std::uint32_t core, DramModule &offchip,
                             Fidelity fidelity);
};

/**
 * Identity mapping: OS-physical page == device page (TLM-Static's
 * random-at-allocation placement needs no org-side translation state).
 */
class IdentityMapping final : public PageMappingPolicy
{
  public:
    const char *policyName() const override { return "identity"; }

    std::uint64_t devicePageOf(PageAddr phys_page) const override
    {
        return phys_page;
    }

    PageAddr physPageAt(std::uint64_t device_page) const override
    {
        return device_page;
    }

    void swapMapping(PageAddr phys_a, PageAddr phys_b) override;

    /** Stateless: nothing to checkpoint. */
    void save(SnapshotWriter &w) const override;
    void restore(SnapshotReader &r) override;
};

} // namespace cameo

#endif // CAMEO_ORGS_POLICY_MAPPING_POLICY_HH
