/**
 * @file
 * Sampling-counter frequency placement for Banshee (Yu et al., MICRO
 * 2017).
 *
 * Banshee's bandwidth efficiency comes from making replacement *rare*
 * and *cheap to decide*: page access counters are updated on a sampled
 * subset of accesses (one in sampleRate), and an off-chip page is
 * admitted into stacked DRAM only when its sampled count exceeds a
 * probed victim's by a margin — so streaming pages never earn a
 * migration and the 16KB-per-swap replacement traffic that bloats
 * TLM-Dynamic and CAMEO's per-access swaps largely disappears.
 *
 * The functional-fidelity contract holds: the RNG is drawn identically
 * at both fidelities (one draw per access for the sampling decision,
 * probe draws only on sampled off-chip accesses), so counters,
 * migrations, and mapping state evolve bit-identically.
 */

#ifndef CAMEO_ORGS_POLICY_SAMPLING_FREQ_PLACEMENT_HH
#define CAMEO_ORGS_POLICY_SAMPLING_FREQ_PLACEMENT_HH

#include <cstdint>
#include <vector>

#include "orgs/policy/placement_policy.hh"
#include "orgs/policy/policy_config.hh"
#include "util/rng.hh"

namespace cameo
{

/** Frequency-based admission with sampled counters (Banshee). */
class SamplingFrequencyPlacement final : public PagePlacementPolicy
{
  public:
    SamplingFrequencyPlacement(std::uint64_t stacked_pages,
                               std::uint64_t total_pages,
                               const BansheePolicyConfig &config,
                               std::uint64_t epoch_accesses,
                               std::uint64_t seed);

    const char *policyName() const override { return "sampling-frequency"; }

    void onAccess(PlacementContext &ctx, Tick when, PageAddr phys_page,
                  std::uint64_t device_page, bool is_write,
                  Fidelity fidelity) override;

    void registerStats(StatRegistry &registry) override;

    const Counter &counterUpdates() const { return counterUpdates_; }

    /** Checkpointable: sampled counters, RNG, epoch progress. */
    void save(SnapshotWriter &w) const override;
    void restore(SnapshotReader &r) override;

  private:
    /** Coldest of victimProbes_ random stacked device pages. */
    std::uint64_t selectVictim(PlacementContext &ctx);

    /** Sampled access counts, per OS-physical page (epoch-decayed). */
    std::vector<std::uint32_t> count_;

    std::uint64_t stackedPages_;
    std::uint32_t sampleRate_;
    std::uint32_t hotThreshold_;
    std::uint32_t victimProbes_;
    std::uint64_t epochLength_;
    std::uint64_t accessesThisEpoch_ = 0;
    Rng rng_;

    Counter counterUpdates_;
};

} // namespace cameo

#endif // CAMEO_ORGS_POLICY_SAMPLING_FREQ_PLACEMENT_HH
