/**
 * @file
 * Epoch-frequency placement implementation.
 */

#include "orgs/policy/epoch_freq_placement.hh"

#include <algorithm>
#include <cassert>
#include <utility>

namespace cameo
{

EpochFrequencyPlacement::EpochFrequencyPlacement(std::uint64_t stacked_pages,
                                                std::uint64_t total_pages,
                                                std::uint64_t epoch_accesses)
    : stackedPages_(stacked_pages), totalPages_(total_pages),
      epochLength_(epoch_accesses), pageCount_(total_pages, 0),
      epochs_("tlmfreq.epochs", "migration epochs completed")
{
    assert(epochLength_ != 0);
}

void
EpochFrequencyPlacement::onAccess(PlacementContext &ctx, Tick when,
                                  PageAddr phys_page,
                                  std::uint64_t device_page, bool is_write,
                                  Fidelity fidelity)
{
    (void)device_page;
    (void)is_write;
    ++pageCount_[phys_page];
    if (++accessesThisEpoch_ >= epochLength_) {
        accessesThisEpoch_ = 0;
        rebalance(ctx, when, fidelity);
    }
}

void
EpochFrequencyPlacement::rebalance(PlacementContext &ctx, Tick when,
                                   Fidelity fidelity)
{
    epochs_.inc();

    // Rank OS-physical pages by access count; the top stackedPages_
    // should occupy stacked memory.
    std::vector<std::uint32_t> pages(totalPages_);
    for (std::uint32_t p = 0; p < totalPages_; ++p)
        pages[p] = p;
    const auto hotter = [&](std::uint32_t a, std::uint32_t b) {
        return pageCount_[a] > pageCount_[b];
    };
    const std::size_t k =
        std::min<std::size_t>(stackedPages_, pages.size());
    std::nth_element(pages.begin(), pages.begin() + k - 1, pages.end(),
                     hotter);

    // Desired-in-stacked marker for the top-k pages with nonzero heat
    // (cold pages are not worth migrating).
    std::vector<bool> wantStacked(totalPages_, false);
    for (std::size_t i = 0; i < k; ++i) {
        if (pageCount_[pages[i]] > 0)
            wantStacked[pages[i]] = true;
    }

    // Collect misplaced pages on both sides and pair them up.
    std::vector<PageAddr> moveIn;  // hot pages currently off-chip
    std::vector<PageAddr> moveOut; // cold pages currently stacked
    for (std::uint32_t p = 0; p < totalPages_; ++p) {
        const bool stacked_now = ctx.devicePageOf(p) < stackedPages_;
        if (wantStacked[p] && !stacked_now)
            moveIn.push_back(p);
        else if (!wantStacked[p] && stacked_now)
            moveOut.push_back(p);
    }
    const std::size_t swaps = std::min(moveIn.size(), moveOut.size());
    for (std::size_t i = 0; i < swaps; ++i) {
        const std::uint64_t off_dev = ctx.devicePageOf(moveIn[i]);
        const std::uint64_t stk_dev = ctx.devicePageOf(moveOut[i]);
        ctx.billPageSwap(when, off_dev, stk_dev, fidelity);
        ctx.swapMapping(moveIn[i], moveOut[i]);
    }

    // Decay history so placement adapts to phase changes.
    for (auto &c : pageCount_)
        c >>= 1;
}

void
EpochFrequencyPlacement::save(SnapshotWriter &w) const
{
    w.u64(accessesThisEpoch_);
    w.vecU32(pageCount_);
    // epochs_ is unregistered telemetry; carry its value inline.
    w.u64(epochs_.value());
}

void
EpochFrequencyPlacement::restore(SnapshotReader &r)
{
    accessesThisEpoch_ = r.u64();
    std::vector<std::uint32_t> counts;
    r.vecU32(counts);
    if (!r.ok())
        return;
    if (counts.size() != pageCount_.size()) {
        r.fail("tlm-freq: page counter table size mismatch");
        return;
    }
    pageCount_ = std::move(counts);
    epochs_.restoreValue(r.u64());
}

} // namespace cameo
