/**
 * @file
 * Banshee sampling-counter placement implementation.
 */

#include "orgs/policy/sampling_freq_placement.hh"

#include <cassert>

namespace cameo
{

SamplingFrequencyPlacement::SamplingFrequencyPlacement(
    std::uint64_t stacked_pages, std::uint64_t total_pages,
    const BansheePolicyConfig &config, std::uint64_t epoch_accesses,
    std::uint64_t seed)
    : count_(total_pages, 0), stackedPages_(stacked_pages),
      sampleRate_(config.sampleRate), hotThreshold_(config.hotThreshold),
      victimProbes_(config.victimProbes), epochLength_(epoch_accesses),
      rng_(seed ^ 0xBA45),
      counterUpdates_("banshee.counterUpdates",
                      "sampled frequency-counter updates")
{
    assert(sampleRate_ != 0 && victimProbes_ != 0 && epochLength_ != 0);
}

std::uint64_t
SamplingFrequencyPlacement::selectVictim(PlacementContext &ctx)
{
    // Coldest of victimProbes_ random stacked device pages: Banshee
    // approximates frequency-LRU with the same sampled counters it
    // uses for admission.
    std::uint64_t victim = rng_.next(stackedPages_);
    for (std::uint32_t p = 1; p < victimProbes_; ++p) {
        const std::uint64_t cand = rng_.next(stackedPages_);
        if (count_[ctx.physPageAt(cand)] < count_[ctx.physPageAt(victim)])
            victim = cand;
    }
    return victim;
}

void
SamplingFrequencyPlacement::onAccess(PlacementContext &ctx, Tick when,
                                     PageAddr phys_page,
                                     std::uint64_t device_page,
                                     bool is_write, Fidelity fidelity)
{
    (void)is_write;
    // Epoch decay runs on every access so the window is a fixed number
    // of demand accesses regardless of the sampling draw below.
    if (++accessesThisEpoch_ >= epochLength_) {
        accessesThisEpoch_ = 0;
        for (auto &c : count_)
            c >>= 1;
    }
    // One RNG draw per access at BOTH fidelities (DESIGN.md §13):
    // counter state and every later draw stay bit-identical between
    // functional and detailed runs.
    if (rng_.next(sampleRate_) != 0)
        return;
    counterUpdates_.inc();
    ++count_[phys_page];
    if (device_page < stackedPages_)
        return;
    // Sampled off-chip access: admit the page only when its sampled
    // frequency beats a probed victim's by the hysteresis margin.
    const std::uint64_t victim_dev = selectVictim(ctx);
    const PageAddr victim_phys = ctx.physPageAt(victim_dev);
    if (count_[phys_page] <= count_[victim_phys] + hotThreshold_)
        return;
    ctx.billPageSwap(when, device_page, victim_dev, fidelity);
    ctx.swapMapping(phys_page, victim_phys);
}

void
SamplingFrequencyPlacement::registerStats(StatRegistry &registry)
{
    registry.add(counterUpdates_);
}

void
SamplingFrequencyPlacement::save(SnapshotWriter &w) const
{
    w.vecU32(count_);
    for (const std::uint64_t s : rng_.state())
        w.u64(s);
    w.u64(accessesThisEpoch_);
}

void
SamplingFrequencyPlacement::restore(SnapshotReader &r)
{
    std::vector<std::uint32_t> counts;
    r.vecU32(counts);
    if (!r.ok())
        return;
    if (counts.size() != count_.size()) {
        r.fail("banshee: sampled counter table size mismatch");
        return;
    }
    count_ = std::move(counts);
    Rng::State rngState;
    for (std::uint64_t &s : rngState)
        s = r.u64();
    rng_.setState(rngState);
    accessesThisEpoch_ = r.u64();
}

} // namespace cameo
