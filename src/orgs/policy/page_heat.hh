/**
 * @file
 * Oracular page-heat map shared by the placement policies and the
 * System profiling pass.
 *
 * Heat is keyed by (core, vpage) packed into one 64-bit word: the core
 * id occupies the top 16 bits, the virtual page number the low 48. The
 * packing is audited — a vpage at or above 2^48 would silently alias
 * into another core's keyspace and corrupt the oracle.
 */

#ifndef CAMEO_ORGS_POLICY_PAGE_HEAT_HH
#define CAMEO_ORGS_POLICY_PAGE_HEAT_HH

#include <cstdint>

#include "check/audit.hh"
#include "util/flat_map.hh"
#include "util/types.hh"

namespace cameo
{

/** Oracular page heat keyed by (core, vpage); see OracleHeatPlacement.
 *  Open addressing (util/flat_map.hh): probed on every page-map event. */
using PageHeatMap = FlatMap<std::uint64_t, std::uint64_t>;

/** Key for PageHeatMap entries. Audited: vpage must fit in 48 bits or
 *  the key would collide with another core's keyspace. */
constexpr std::uint64_t
pageHeatKey(std::uint32_t core, PageAddr vpage)
{
    CAMEO_AUDIT(vpage < (std::uint64_t{1} << 48),
                "pageHeatKey: vpage >= 2^48 aliases into another core's "
                "keyspace");
    return (static_cast<std::uint64_t>(core) << 48) | vpage;
}

} // namespace cameo

#endif // CAMEO_ORGS_POLICY_PAGE_HEAT_HH
