/**
 * @file
 * Oracle-heat placement, extracted from the old TlmOracleOrg (Section
 * VI-D): the OS has oracular knowledge of page access frequencies and
 * places frequently used pages in stacked memory up front, avoiding
 * dynamic-migration overheads entirely.
 *
 * The oracle's knowledge comes from a profiling pass: the deterministic
 * workload generators are re-run standalone (profilePageHeat) and the
 * resulting per-(core, vpage) heat map is injected with setPageHeat
 * before simulation. When a virtual page becomes resident, its heat
 * decides whether it displaces the coldest currently-stacked page; the
 * remap change costs nothing, modelling ideal placement.
 */

#ifndef CAMEO_ORGS_POLICY_ORACLE_HEAT_PLACEMENT_HH
#define CAMEO_ORGS_POLICY_ORACLE_HEAT_PLACEMENT_HH

#include <cstdint>
#include <queue>
#include <utility>
#include <vector>

#include "orgs/policy/placement_policy.hh"

namespace cameo
{

/** Oracular frequency-directed page placement. */
class OracleHeatPlacement final : public PagePlacementPolicy
{
  public:
    OracleHeatPlacement(std::uint64_t stacked_pages,
                        std::uint64_t total_pages);

    const char *policyName() const override { return "oracle-heat"; }

    /** Demand accesses carry no information the oracle needs. */
    void onAccess(PlacementContext &ctx, Tick when, PageAddr phys_page,
                  std::uint64_t device_page, bool is_write,
                  Fidelity fidelity) override;

    bool setPageHeat(PageHeatMap heat) override;

    void onPageMapped(PlacementContext &ctx, std::uint32_t frame,
                      std::uint32_t core, PageAddr vpage) override;

    /**
     * Checkpointable: per-frame heat, the coldest-heap's exact array
     * layout (ties pop in layout order, so the heap must be restored
     * verbatim, not re-heapified), and the injected heat map.
     */
    void save(SnapshotWriter &w) const override;
    void restore(SnapshotReader &r) override;

  private:
    std::uint64_t stackedPages_;
    std::uint64_t totalPages_;

    /** Heat of the OS-physical page currently at each frame. */
    std::vector<std::uint64_t> physHeat_;

    /** Min-heap of (heat, phys page) for stacked residents, with lazy
     *  invalidation (entries whose heat no longer matches are stale). */
    using HeapEntry = std::pair<std::uint64_t, PageAddr>;
    std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                        std::greater<>> coldest_;

    PageHeatMap heat_;
};

} // namespace cameo

#endif // CAMEO_ORGS_POLICY_ORACLE_HEAT_PLACEMENT_HH
