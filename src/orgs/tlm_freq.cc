#include "orgs/tlm_freq.hh"

#include <memory>

#include "orgs/policy/page_remap_mapping.hh"

namespace cameo
{

namespace
{

std::uint64_t
totalPagesOf(const OrgConfig &config)
{
    return (config.stackedBytes + config.offchipBytes) / kPageBytes;
}

} // namespace

TlmFreqOrg::TlmFreqOrg(const OrgConfig &config)
    : ComposedOrg(config, "TLM-Freq",
                  std::make_unique<PageRemapMapping>(totalPagesOf(config)),
                  std::make_unique<EpochFrequencyPlacement>(
                      config.stackedBytes / kPageBytes, totalPagesOf(config),
                      config.freq.epochAccesses))
{
    freq_ = static_cast<EpochFrequencyPlacement *>(&placementPolicy());
}

} // namespace cameo
