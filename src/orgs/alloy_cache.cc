#include "orgs/alloy_cache.hh"

#include <algorithm>
#include <cassert>

#include "util/bitops.hh"

namespace cameo
{

namespace
{

/** Stacked timings adjusted for the 28-TADs-per-row layout. */
DramTimings
tadTimings(DramTimings t)
{
    t.linesPerRow = AlloyCacheOrg::kTadsPerRow;
    return t;
}

} // namespace

AlloyCacheOrg::AlloyCacheOrg(const OrgConfig &config,
                             std::uint64_t backing_bytes, std::string name)
    : MemoryOrganization(std::move(name)),
      stacked_("dram.stacked", tadTimings(config.stacked),
               config.stackedBytes),
      offchip_("dram.offchip", config.offchip, backing_bytes),
      tags_(config.stackedBytes / kLineBytes / 32 * kTadsPerRow),
      map_(std::size_t{config.numCores} * kMapEntries, 0),
      hits_("alloy.hits", "DRAM cache hits"),
      misses_("alloy.misses", "DRAM cache misses"),
      mapCorrect_("alloy.mapCorrect", "MAP predictions correct"),
      mapWrong_("alloy.mapWrong", "MAP predictions wrong"),
      wastedFetches_("alloy.wastedFetches",
                     "parallel off-chip fetches that were not needed")
{
    applyTimingConfig(config);
}

std::size_t
AlloyCacheOrg::mapIndex(std::uint32_t core, InstAddr pc) const
{
    return std::size_t{core} * kMapEntries + (mix64(pc) % kMapEntries);
}

bool
AlloyCacheOrg::predictHit(std::uint32_t core, InstAddr pc) const
{
    return map_[mapIndex(core, pc)] >= kMapThreshold;
}

void
AlloyCacheOrg::trainPredictor(std::uint32_t core, InstAddr pc, bool hit)
{
    std::uint8_t &counter = map_[mapIndex(core, pc)];
    if (hit) {
        if (counter < kMapMax)
            ++counter;
    } else {
        if (counter > 0)
            --counter;
    }
}

Tick
AlloyCacheOrg::access(Tick now, LineAddr line, bool is_write, InstAddr pc,
                      std::uint32_t core)
{
    assert(line < offchip_.capacityLines());
    const std::uint64_t set_idx = tags_.setIndexOf(line);
    TadTagMapping::Entry &set = tags_.setFor(line);
    const bool hit = set.valid && set.tag == line;

    if (is_write) {
        // L3 writeback: update in place on hit; on miss, install the
        // line (evicted L3 lines are recently used and likely to be
        // re-referenced — stacked caches allocate on writeback).
        if (!hit && set.valid && set.dirty)
            offchip_.request(now, set.tag, true, kLineBytes);
        const Tick done = stacked_.request(now, set_idx, true,
                                          kTadBurstBytes);
        set.tag = line;
        set.valid = true;
        set.dirty = true;
        return done;
    }

    const bool pred_hit = predictHit(core, pc);
    // The TAD read doubles as tag check and (on hit) data delivery.
    const Tick t_tad = stacked_.request(now, set_idx, false, kTadBurstBytes);

    Tick done;
    if (hit) {
        hits_.inc();
        done = t_tad;
        if (!pred_hit) {
            // Predicted miss but hit: the speculative off-chip fetch
            // is squashed once the TAD verifies the hit, unless the
            // memory would already have serviced it by then.
            if (offchip_.earliestServiceStart(line) <= t_tad) {
                offchip_.request(now, line, false, kLineBytes);
                wastedFetches_.inc();
            }
        }
    } else {
        misses_.inc();
        // Off-chip fetch: parallel with the TAD read when predicted
        // miss, serialized behind the tag check otherwise.
        const Tick issue = pred_hit ? t_tad : now;
        const Tick t_off = offchip_.request(issue, line, false, kLineBytes);
        done = std::max(t_tad, t_off);

        // Fill: install the TAD; evict dirty victim to off-chip. The
        // fill/writeback queues drain opportunistically, so their
        // traffic is billed at request time (they contend for the
        // buses but are not on the demand critical path).
        if (set.valid && set.dirty)
            offchip_.request(now, set.tag, true, kLineBytes);
        stacked_.request(now, set_idx, true, kTadBurstBytes);
        set.tag = line;
        set.valid = true;
        set.dirty = false;
    }

    (pred_hit == hit ? mapCorrect_ : mapWrong_).inc();
    trainPredictor(core, pc, hit);
    return done;
}

void
AlloyCacheOrg::accessFunctional(LineAddr line, bool is_write, InstAddr pc,
                                std::uint32_t core)
{
    assert(line < offchip_.capacityLines());
    TadTagMapping::Entry &set = tags_.setFor(line);
    const bool hit = set.valid && set.tag == line;

    if (is_write) {
        // Same install-on-writeback policy as the detailed path; the
        // victim writeback and TAD write are timing-only.
        set.tag = line;
        set.valid = true;
        set.dirty = true;
        return;
    }

    const bool pred_hit = predictHit(core, pc);
    if (hit) {
        hits_.inc();
        // wastedFetches_ depends on off-chip queue occupancy
        // (earliestServiceStart) — timing-only, skipped here.
    } else {
        misses_.inc();
        set.tag = line;
        set.valid = true;
        set.dirty = false;
    }
    (pred_hit == hit ? mapCorrect_ : mapWrong_).inc();
    trainPredictor(core, pc, hit);
}

double
AlloyCacheOrg::hitRate() const
{
    const std::uint64_t total = hits_.value() + misses_.value();
    if (total == 0)
        return 0.0;
    return static_cast<double>(hits_.value()) / static_cast<double>(total);
}

void
AlloyCacheOrg::registerStats(StatRegistry &registry)
{
    stacked_.registerStats(registry);
    offchip_.registerStats(registry);
    registry.add(hits_);
    registry.add(misses_);
    registry.add(mapCorrect_);
    registry.add(mapWrong_);
    registry.add(wastedFetches_);
}

void
AlloyCacheOrg::save(SnapshotWriter &w) const
{
    MemoryOrganization::save(w);
    tags_.save(w);
    w.vecU8(map_);
}

void
AlloyCacheOrg::restore(SnapshotReader &r)
{
    MemoryOrganization::restore(r);
    tags_.restore(r);
    if (!r.ok())
        return;
    std::vector<std::uint8_t> map;
    r.vecU8(map);
    if (!r.ok())
        return;
    if (map.size() != map_.size()) {
        r.fail("cache org: MAP-I table size mismatch");
        return;
    }
    map_ = std::move(map);
}

} // namespace cameo
