/**
 * @file
 * CameoOrg: wires the CameoController into the organization interface.
 *
 * Capacity accounting per LLT design (charged against OS-visible
 * bytes, rounded down to whole pages):
 *  - Ideal:     none (theoretical design point);
 *  - Embedded:  the LLT region — one location-table entry per
 *               congruence group, stored in a reserved slice of the
 *               stacked DRAM (64MB for the paper's 16GB system);
 *  - CoLocated: 1/32 of the stacked capacity (one line per 2KB row
 *               funds the 31 location entries, Figure 7), and the
 *               stacked timing map uses 31 lines per row.
 */

#ifndef CAMEO_ORGS_CAMEO_ORG_HH
#define CAMEO_ORGS_CAMEO_ORG_HH

#include "core/cameo_controller.hh"
#include "orgs/memory_organization.hh"

namespace cameo
{

/** The paper's proposal as a memory organization. */
class CameoOrg : public MemoryOrganization
{
  public:
    /**
     * @param config Organization configuration.
     * @param name   Display-name override for derived variants; empty
     *               selects the standard variant name.
     */
    explicit CameoOrg(const OrgConfig &config, std::string name = "");

    Tick access(Tick now, LineAddr line, bool is_write, InstAddr pc,
                std::uint32_t core) override;

    void accessFunctional(LineAddr line, bool is_write, InstAddr pc,
                          std::uint32_t core) override;

    std::uint64_t visibleBytes() const override { return visibleBytes_; }

    void registerStats(StatRegistry &registry) override;

    DramModule *stackedModule() override { return &stacked_; }
    const DramModule *stackedModule() const override { return &stacked_; }
    DramModule &offchipModule() override { return offchip_; }
    const DramModule &offchipModule() const override { return offchip_; }

    const CameoController *cameo() const override { return &controller_; }
    CameoController &controller() { return controller_; }

    /** Display name for a CAMEO design point, e.g. "CAMEO(CoLocated+LLP)". */
    static std::string variantName(LltKind llt, PredictorKind pred);

    /** Checkpointable: base state + the controller's LLT/LLP tables. */
    void save(SnapshotWriter &w) const override;
    void restore(SnapshotReader &r) override;

  private:
    static DramTimings stackedTimingsFor(const OrgConfig &config);
    static std::uint64_t stackedModuleBytes(const OrgConfig &config);
    static std::uint64_t computeVisibleBytes(const OrgConfig &config);

    DramModule stacked_;
    DramModule offchip_;
    CameoController controller_;
    std::uint64_t visibleBytes_;
};

} // namespace cameo

#endif // CAMEO_ORGS_CAMEO_ORG_HH
