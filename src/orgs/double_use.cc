#include "orgs/double_use.hh"

// DoubleUseOrg is a configuration of AlloyCacheOrg; see the header.
