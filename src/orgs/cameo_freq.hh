/**
 * @file
 * CAMEO + frequency hints — the extension the paper sketches in the
 * last paragraph of Section VI-D: "if page frequency information is
 * available, CAMEO can retain lines from only heavily used pages in
 * stacked DRAM."
 *
 * A hardware page-access counter table (epoch-decayed, as TLM-Freq
 * would maintain) feeds CAMEO's swap admission: lines of pages that
 * have not yet proven hot are serviced from off-chip memory *in place*
 * — no swap, no victim write — so streaming or single-touch pages stop
 * churning the stacked slots and the victim-writeback bandwidth is
 * saved. Everything else is stock CAMEO.
 */

#ifndef CAMEO_ORGS_CAMEO_FREQ_HH
#define CAMEO_ORGS_CAMEO_FREQ_HH

#include <vector>

#include "orgs/cameo_org.hh"

namespace cameo
{

/** CAMEO with frequency-directed swap admission. */
class CameoFreqOrg : public CameoOrg
{
  public:
    /** Page touches within the decay window required to admit swaps. */
    static constexpr std::uint32_t kHotThreshold = 4;

    explicit CameoFreqOrg(const OrgConfig &config);

    Tick access(Tick now, LineAddr line, bool is_write, InstAddr pc,
                std::uint32_t core) override;

    void accessFunctional(LineAddr line, bool is_write, InstAddr pc,
                          std::uint32_t core) override;

    void registerStats(StatRegistry &registry) override;

    const Counter &hotPages() const { return hotPages_; }

    /** Checkpointable: CAMEO state + page counters, epoch progress. */
    void save(SnapshotWriter &w) const override;
    void restore(SnapshotReader &r) override;

  private:
    /** Heat bookkeeping shared by both fidelities: bump the page's
     *  saturating counter and decay at epoch boundaries. */
    void noteAccess(LineAddr line);

    /** Halve all counters (called every epoch of demand accesses). */
    void decay();

    std::vector<std::uint8_t> pageCount_; ///< Saturating, per OS page.
    std::uint64_t epochLength_;
    std::uint64_t accessesThisEpoch_ = 0;

    Counter hotPages_;
};

} // namespace cameo

#endif // CAMEO_ORGS_CAMEO_FREQ_HH
