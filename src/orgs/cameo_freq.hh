/**
 * @file
 * CAMEO + frequency hints — the extension the paper sketches in the
 * last paragraph of Section VI-D: "if page frequency information is
 * available, CAMEO can retain lines from only heavily used pages in
 * stacked DRAM."
 *
 * Composition: llt-line-swap mapping (CameoController's fused hot
 * path) x freq-admission placement. The extracted
 * FreqAdmissionPlacement maintains the epoch-decayed page-access
 * counters and feeds CAMEO's swap admission: lines of pages that have
 * not yet proven hot are serviced from off-chip memory *in place* — no
 * swap, no victim write. Everything else is stock CAMEO.
 */

#ifndef CAMEO_ORGS_CAMEO_FREQ_HH
#define CAMEO_ORGS_CAMEO_FREQ_HH

#include "orgs/cameo_org.hh"
#include "orgs/policy/freq_admission_placement.hh"

namespace cameo
{

/** CAMEO with frequency-directed swap admission. */
class CameoFreqOrg : public CameoOrg
{
  public:
    /** Page touches within the decay window required to admit swaps. */
    static constexpr std::uint32_t kHotThreshold =
        FreqAdmissionPlacement::kHotThreshold;

    explicit CameoFreqOrg(const OrgConfig &config);

    Tick access(Tick now, LineAddr line, bool is_write, InstAddr pc,
                std::uint32_t core) override;

    void accessFunctional(LineAddr line, bool is_write, InstAddr pc,
                          std::uint32_t core) override;

    void registerStats(StatRegistry &registry) override;

    const Counter &hotPages() const { return filter_.hotPages(); }

    /** Checkpointable: CAMEO state + the admission filter's counters. */
    void save(SnapshotWriter &w) const override;
    void restore(SnapshotReader &r) override;

  private:
    /** The admission policy (owns counters, epoch decay, stats). */
    FreqAdmissionPlacement filter_;
};

} // namespace cameo

#endif // CAMEO_ORGS_CAMEO_FREQ_HH
