/**
 * @file
 * TLM-Oracle (Section VI-D): the OS has oracular knowledge of page
 * access frequencies and places frequently used pages in stacked memory
 * up front, avoiding dynamic-migration overheads entirely.
 *
 * Composition: page-remap mapping x oracle-heat placement. The heat
 * map comes from a profiling pass (profilePageHeat) injected with
 * setPageHeat before simulation; placement happens on page-map events
 * at no modelled cost.
 */

#ifndef CAMEO_ORGS_TLM_ORACLE_HH
#define CAMEO_ORGS_TLM_ORACLE_HH

#include "orgs/composed_org.hh"

namespace cameo
{

/** Oracular frequency-directed page placement. */
class TlmOracleOrg : public ComposedOrg
{
  public:
    explicit TlmOracleOrg(const OrgConfig &config);
};

} // namespace cameo

#endif // CAMEO_ORGS_TLM_ORACLE_HH
