/**
 * @file
 * TLM-Oracle (Section VI-D): the OS has oracular knowledge of page
 * access frequencies and places frequently used pages in stacked memory
 * up front, avoiding dynamic-migration overheads entirely.
 *
 * The oracle's knowledge comes from a profiling pass: the deterministic
 * workload generators are re-run standalone (profilePageHeat) and the
 * resulting per-(core, vpage) heat map is injected with setPageHeat
 * before simulation. When a virtual page becomes resident, its heat
 * decides whether it displaces the coldest currently-stacked page; the
 * remap change costs nothing, modelling ideal placement.
 */

#ifndef CAMEO_ORGS_TLM_ORACLE_HH
#define CAMEO_ORGS_TLM_ORACLE_HH

#include <queue>
#include <vector>

#include "orgs/tlm_dynamic.hh"

namespace cameo
{

/** Oracular frequency-directed page placement. */
class TlmOracleOrg : public TlmRemapBase
{
  public:
    explicit TlmOracleOrg(const OrgConfig &config);

    void setPageHeat(PageHeatMap heat) override;

    void onPageMapped(std::uint32_t frame, std::uint32_t core,
                      PageAddr vpage) override;

    /**
     * Checkpointable: remap state + per-frame heat, the coldest-heap's
     * exact array layout (ties pop in layout order, so the heap must be
     * restored verbatim, not re-heapified), and the injected heat map.
     */
    void save(SnapshotWriter &w) const override;
    void restore(SnapshotReader &r) override;

  private:
    /** Heat of the OS-physical page currently at each frame. */
    std::vector<std::uint64_t> physHeat_;

    /** Min-heap of (heat, phys page) for stacked residents, with lazy
     *  invalidation (entries whose heat no longer matches are stale). */
    using HeapEntry = std::pair<std::uint64_t, PageAddr>;
    std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                        std::greater<>> coldest_;

    PageHeatMap heat_;
};

} // namespace cameo

#endif // CAMEO_ORGS_TLM_ORACLE_HH
