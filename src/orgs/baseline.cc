#include "orgs/baseline.hh"

#include <cassert>

namespace cameo
{

BaselineOrg::BaselineOrg(const OrgConfig &config)
    : MemoryOrganization("Baseline"),
      offchip_("dram.offchip", config.offchip, config.offchipBytes)
{
    applyTimingConfig(config);
}

Tick
BaselineOrg::access(Tick now, LineAddr line, bool is_write, InstAddr pc,
                    std::uint32_t core)
{
    (void)pc;
    (void)core;
    assert(line < offchip_.capacityLines());
    return offchip_.request(now, line, is_write, kLineBytes);
}

void
BaselineOrg::accessFunctional(LineAddr line, bool is_write, InstAddr pc,
                              std::uint32_t core)
{
    (void)is_write;
    (void)pc;
    (void)core;
    // Off-chip DRAM holds every line and keeps no architectural state;
    // the detailed path only advances timing.
    (void)line;
    assert(line < offchip_.capacityLines());
}

void
BaselineOrg::registerStats(StatRegistry &registry)
{
    offchip_.registerStats(registry);
}

} // namespace cameo
