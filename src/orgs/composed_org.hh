/**
 * @file
 * ComposedOrg: a two-level organization assembled from one page-granular
 * MappingPolicy and one PagePlacementPolicy (DESIGN.md §14).
 *
 * The driver owns the DRAM modules and the demand-routing path that the
 * old TlmStaticOrg hierarchy hard-wired: translate the OS-physical page
 * through the mapping, service the line from the right module, then let
 * the placement react (possibly swapping pages through the
 * PlacementContext interface this class implements). The TLM family and
 * Banshee are all instances of this driver with different policy pairs;
 * their stats, routing arithmetic, and snapshot byte layouts are
 * identical to the pre-refactor monoliths.
 */

#ifndef CAMEO_ORGS_COMPOSED_ORG_HH
#define CAMEO_ORGS_COMPOSED_ORG_HH

#include <memory>

#include "orgs/memory_organization.hh"
#include "orgs/policy/mapping_policy.hh"
#include "orgs/policy/placement_policy.hh"
#include "sim/fidelity.hh"

namespace cameo
{

/** Mapping x placement composition over the two-level routing driver. */
class ComposedOrg : public MemoryOrganization, public PlacementContext
{
  public:
    ComposedOrg(const OrgConfig &config, std::string name,
                std::unique_ptr<PageMappingPolicy> mapping,
                std::unique_ptr<PagePlacementPolicy> placement);

    ~ComposedOrg() override;

    Tick access(Tick now, LineAddr line, bool is_write, InstAddr pc,
                std::uint32_t core) override;

    void accessFunctional(LineAddr line, bool is_write, InstAddr pc,
                          std::uint32_t core) override;

    std::uint64_t visibleBytes() const override
    {
        return stacked_.capacityBytes() + offchip_.capacityBytes();
    }

    void registerStats(StatRegistry &registry) override;

    DramModule *stackedModule() override { return &stacked_; }
    const DramModule *stackedModule() const override { return &stacked_; }
    DramModule &offchipModule() override { return offchip_; }
    const DramModule &offchipModule() const override { return offchip_; }

    /** PlacementContext: geometry and mapping access for the policies. */
    std::uint64_t stackedPages() const override { return stackedPages_; }
    std::uint64_t totalPages() const override { return totalPages_; }

    std::uint64_t devicePageOf(PageAddr phys_page) const override
    {
        return mapping_->devicePageOf(phys_page);
    }

    PageAddr physPageAt(std::uint64_t device_page) const override
    {
        return mapping_->physPageAt(device_page);
    }

    void swapMapping(PageAddr phys_a, PageAddr phys_b) override
    {
        mapping_->swapMapping(phys_a, phys_b);
    }

    void billPageSwap(Tick when, std::uint64_t offchip_dev_page,
                      std::uint64_t stacked_dev_page,
                      Fidelity fidelity) override;

    /** Page-map events are the placement policy's business. */
    void onPageMapped(std::uint32_t frame, std::uint32_t core,
                      PageAddr vpage) override;

    /** Forwarded to the placement; false when it takes no oracle. */
    bool setPageHeat(PageHeatMap heat) override;

    const Counter &servicedStacked() const { return servicedStacked_; }
    const Counter &pageMigrations() const { return pageMigrations_; }

    /** Current device page of an OS-physical page (for tests). */
    std::uint64_t devicePageOfPublic(PageAddr phys_page) const
    {
        return mapping_->devicePageOf(phys_page);
    }

    PageMappingPolicy &mappingPolicy() { return *mapping_; }
    const PageMappingPolicy &mappingPolicy() const { return *mapping_; }
    PagePlacementPolicy &placementPolicy() { return *placement_; }
    const PagePlacementPolicy &placementPolicy() const
    {
        return *placement_;
    }

    /**
     * Checkpointable: base state (transactions + DRAM modules), then
     * the mapping, then the placement — each policy serializes exactly
     * the bytes its pre-refactor org wrote, keeping golden snapshots
     * byte-identical.
     */
    void save(SnapshotWriter &w) const override;
    void restore(SnapshotReader &r) override;

  protected:
    /** True if @p device_page resides in stacked DRAM. */
    bool inStacked(std::uint64_t device_page) const
    {
        return device_page < stackedPages_;
    }

    /** Service a line of @p device_page from the right module. */
    Tick routeLine(Tick now, std::uint64_t device_page,
                   std::uint32_t line_in_page, bool is_write);

    DramModule stacked_;
    DramModule offchip_;
    std::uint64_t stackedPages_;
    std::uint64_t totalPages_;

    Counter servicedStacked_;
    Counter servicedOffchip_;
    Counter pageMigrations_;

    std::unique_ptr<PageMappingPolicy> mapping_;
    std::unique_ptr<PagePlacementPolicy> placement_;
};

} // namespace cameo

#endif // CAMEO_ORGS_COMPOSED_ORG_HH
