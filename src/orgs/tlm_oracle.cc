#include "orgs/tlm_oracle.hh"

#include <cassert>

namespace cameo
{

TlmOracleOrg::TlmOracleOrg(const OrgConfig &config)
    : TlmRemapBase(config, "TLM-Oracle"), physHeat_(totalPages_, 0)
{
    // Initially every identity-mapped stacked device page holds a
    // zero-heat physical page.
    for (std::uint64_t p = 0; p < stackedPages_; ++p)
        coldest_.emplace(0, p);
}

void
TlmOracleOrg::setPageHeat(PageHeatMap heat)
{
    heat_ = std::move(heat);
}

void
TlmOracleOrg::onPageMapped(std::uint32_t frame, std::uint32_t core,
                           PageAddr vpage)
{
    const PageAddr phys_page = frame;
    assert(phys_page < totalPages_);
    const auto it = heat_.find(pageHeatKey(core, vpage));
    const std::uint64_t h = it == heat_.end() ? 0 : it->second;
    physHeat_[phys_page] = h;

    if (inStacked(devicePageOf(phys_page))) {
        // Already placed well; record its (new) heat.
        coldest_.emplace(h, phys_page);
        return;
    }

    // Pop stale entries (heat changed since insertion or the page
    // moved out of stacked memory).
    while (!coldest_.empty()) {
        const auto [heat, page] = coldest_.top();
        if (heat == physHeat_[page] && inStacked(devicePageOf(page)))
            break;
        coldest_.pop();
    }
    if (coldest_.empty())
        return;

    const auto [cold_heat, cold_page] = coldest_.top();
    if (h > cold_heat) {
        // Oracular placement: exchange mappings at no cost.
        coldest_.pop();
        swapMapping(phys_page, cold_page);
        coldest_.emplace(h, phys_page);
        // cold_page is now off-chip; its stale entries are skipped.
    }
}

} // namespace cameo
