#include "orgs/tlm_oracle.hh"

#include <memory>

#include "orgs/policy/oracle_heat_placement.hh"
#include "orgs/policy/page_remap_mapping.hh"

namespace cameo
{

namespace
{

std::uint64_t
totalPagesOf(const OrgConfig &config)
{
    return (config.stackedBytes + config.offchipBytes) / kPageBytes;
}

} // namespace

TlmOracleOrg::TlmOracleOrg(const OrgConfig &config)
    : ComposedOrg(config, "TLM-Oracle",
                  std::make_unique<PageRemapMapping>(totalPagesOf(config)),
                  std::make_unique<OracleHeatPlacement>(
                      config.stackedBytes / kPageBytes,
                      totalPagesOf(config)))
{
}

} // namespace cameo
