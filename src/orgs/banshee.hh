/**
 * @file
 * Banshee (Yu et al., MICRO 2017): stacked DRAM as OS-visible memory
 * with page-table-tracked residency and frequency-based replacement.
 *
 * Composition: pte-cached-remap mapping x sampling-frequency placement.
 * Where CAMEO swaps a line (or TLM-Dynamic a page) on nearly every
 * off-chip access, Banshee updates sampled frequency counters and
 * migrates a page only when its count beats a probed victim's by a
 * margin — trading a little placement agility for a large reduction in
 * replacement traffic, which the Queued-mode bus-byte statistics make
 * directly visible (EXPERIMENTS.md).
 */

#ifndef CAMEO_ORGS_BANSHEE_HH
#define CAMEO_ORGS_BANSHEE_HH

#include "orgs/composed_org.hh"

namespace cameo
{

/** PTE-cached mapping + sampled frequency-admission placement. */
class BansheeOrg : public ComposedOrg
{
  public:
    explicit BansheeOrg(const OrgConfig &config);
};

} // namespace cameo

#endif // CAMEO_ORGS_BANSHEE_HH
