#include "orgs/banshee.hh"

#include <memory>

#include "orgs/policy/pte_cached_mapping.hh"
#include "orgs/policy/sampling_freq_placement.hh"

namespace cameo
{

namespace
{

std::uint64_t
totalPagesOf(const OrgConfig &config)
{
    return (config.stackedBytes + config.offchipBytes) / kPageBytes;
}

} // namespace

BansheeOrg::BansheeOrg(const OrgConfig &config)
    : ComposedOrg(config, "Banshee",
                  std::make_unique<PteCachedPageMapping>(
                      totalPagesOf(config), config.numCores, config.banshee),
                  std::make_unique<SamplingFrequencyPlacement>(
                      config.stackedBytes / kPageBytes, totalPagesOf(config),
                      config.banshee, config.freq.epochAccesses, config.seed))
{
}

} // namespace cameo
