/**
 * @file
 * DoubleUse: the paper's idealistic upper bound (Section II-D).
 *
 * The stacked DRAM acts as an Alloy cache *and* the system magically
 * gains main-memory capacity equal to the stacked size — i.e. the
 * backing memory is (off-chip + stacked) bytes while the cache still
 * exists. Physically unrealizable; it bounds what CAMEO can achieve.
 */

#ifndef CAMEO_ORGS_DOUBLE_USE_HH
#define CAMEO_ORGS_DOUBLE_USE_HH

#include "orgs/alloy_cache.hh"

namespace cameo
{

/** Alloy cache over a memory enlarged by the stacked capacity. */
class DoubleUseOrg : public AlloyCacheOrg
{
  public:
    explicit DoubleUseOrg(const OrgConfig &config)
        : AlloyCacheOrg(config, config.offchipBytes + config.stackedBytes,
                        "DoubleUse")
    {
    }
};

} // namespace cameo

#endif // CAMEO_ORGS_DOUBLE_USE_HH
