#include "orgs/memory_organization.hh"

#include <cassert>

#include "orgs/alloy_cache.hh"
#include "orgs/baseline.hh"
#include "orgs/cameo_freq.hh"
#include "orgs/cameo_org.hh"
#include "orgs/double_use.hh"
#include "orgs/tlm_dynamic.hh"
#include "orgs/tlm_freq.hh"
#include "orgs/tlm_oracle.hh"
#include "orgs/tlm_static.hh"

namespace cameo
{

MemoryOrganization::~MemoryOrganization() = default;

void
MemoryOrganization::onPageMapped(std::uint32_t frame, std::uint32_t core,
                                 PageAddr vpage)
{
    (void)frame;
    (void)core;
    (void)vpage;
}

void
MemoryOrganization::setPageHeat(PageHeatMap heat)
{
    (void)heat;
    assert(false && "this organization does not take page-heat oracles");
}

const char *
orgKindName(OrgKind kind)
{
    switch (kind) {
      case OrgKind::Baseline:
        return "Baseline";
      case OrgKind::AlloyCache:
        return "Cache";
      case OrgKind::TlmStatic:
        return "TLM-Static";
      case OrgKind::TlmDynamic:
        return "TLM-Dynamic";
      case OrgKind::TlmFreq:
        return "TLM-Freq";
      case OrgKind::TlmOracle:
        return "TLM-Oracle";
      case OrgKind::DoubleUse:
        return "DoubleUse";
      case OrgKind::Cameo:
        return "CAMEO";
      case OrgKind::CameoFreq:
        return "CAMEO-Freq";
    }
    return "Unknown";
}

std::unique_ptr<MemoryOrganization>
makeOrganization(OrgKind kind, const OrgConfig &config)
{
    switch (kind) {
      case OrgKind::Baseline:
        return std::make_unique<BaselineOrg>(config);
      case OrgKind::AlloyCache:
        return std::make_unique<AlloyCacheOrg>(config,
                                               config.offchipBytes);
      case OrgKind::TlmStatic:
        return std::make_unique<TlmStaticOrg>(config);
      case OrgKind::TlmDynamic:
        return std::make_unique<TlmDynamicOrg>(config);
      case OrgKind::TlmFreq:
        return std::make_unique<TlmFreqOrg>(config);
      case OrgKind::TlmOracle:
        return std::make_unique<TlmOracleOrg>(config);
      case OrgKind::DoubleUse:
        return std::make_unique<DoubleUseOrg>(config);
      case OrgKind::Cameo:
        return std::make_unique<CameoOrg>(config);
      case OrgKind::CameoFreq:
        return std::make_unique<CameoFreqOrg>(config);
    }
    return nullptr;
}

} // namespace cameo
