#include "orgs/memory_organization.hh"

#include <cassert>
#include <cctype>

#include "orgs/alloy_cache.hh"
#include "orgs/banshee.hh"
#include "orgs/baseline.hh"
#include "orgs/cameo_freq.hh"
#include "orgs/cameo_org.hh"
#include "orgs/double_use.hh"
#include "orgs/tlm_dynamic.hh"
#include "orgs/tlm_freq.hh"
#include "orgs/tlm_oracle.hh"
#include "orgs/tlm_static.hh"

namespace cameo
{

MemoryOrganization::~MemoryOrganization() = default;

Tick
MemoryOrganization::submit(Tick now, LineAddr line, bool is_write,
                           InstAddr pc, std::uint32_t core,
                           std::uint64_t tag, MemClient *client)
{
    MemRequest req;
    req.id = ++lastRequestId_;
    req.tag = tag;
    req.line = line;
    req.isWrite = is_write;
    req.pc = pc;
    req.core = core;
    req.issueTick = now;

    const Tick done = access(now, line, is_write, pc, core);
#if CAMEO_AUDIT_ENABLED
    queueAudit_.onSubmit(req.id, now);
#endif
    if (timingMode_ == TimingMode::Queued && events_ != nullptr &&
        client != nullptr) {
        inflight_.push_back({req, done, client});
        scheduleCompletion(req, done, client);
        return done;
    }
#if CAMEO_AUDIT_ENABLED
    queueAudit_.onComplete(req.id, done, /*ordered=*/false);
#endif
    if (client != nullptr)
        client->onMemComplete(req, done);
    return done;
}

void
MemoryOrganization::scheduleCompletion(const MemRequest &req, Tick done,
                                       MemClient *client)
{
    events_->schedule(done, [this, req, client](Tick when) {
        // Retire from the in-flight registry before delivery so a
        // snapshot taken from inside the callback (not a supported
        // call site, but cheap to get right) never replays this
        // completion.
        for (std::size_t i = 0; i < inflight_.size(); ++i) {
            if (inflight_[i].req.id == req.id) {
                inflight_.erase(inflight_.begin() +
                                static_cast<std::ptrdiff_t>(i));
                break;
            }
        }
#if CAMEO_AUDIT_ENABLED
        queueAudit_.onComplete(req.id, when);
#endif
        client->onMemComplete(req, when);
    });
}

void
MemoryOrganization::save(SnapshotWriter &w) const
{
    w.u64(lastRequestId_);
    w.u64(inflight_.size());
    for (const InflightRequest &f : inflight_) {
        w.u64(f.req.id);
        w.u64(f.req.tag);
        w.u64(f.req.line);
        w.b(f.req.isWrite);
        w.u64(f.req.pc);
        w.u32(f.req.core);
        w.u64(f.req.issueTick);
        w.u64(f.done);
    }
    if (const DramModule *stacked = stackedModule())
        stacked->save(w);
    offchipModule().save(w);
}

void
MemoryOrganization::restore(SnapshotReader &r)
{
    lastRequestId_ = r.u64();
    const std::uint64_t n = r.u64();
    inflight_.clear();
    for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
        InflightRequest f;
        f.req.id = r.u64();
        f.req.tag = r.u64();
        f.req.line = r.u64();
        f.req.isWrite = r.b();
        f.req.pc = r.u64();
        f.req.core = r.u32();
        f.req.issueTick = r.u64();
        f.done = r.u64();
        inflight_.push_back(f);
    }
    if (r.ok() && !inflight_.empty() &&
        timingMode_ != TimingMode::Queued) {
        r.fail("org: snapshot carries in-flight requests but this "
               "organization uses Blocking timing");
        return;
    }
#if CAMEO_AUDIT_ENABLED
    // Re-shadow the restored transactions so their (re-scheduled)
    // deliveries balance the books.
    for (const InflightRequest &f : inflight_)
        queueAudit_.onSubmit(f.req.id, f.req.issueTick);
#endif
    if (DramModule *stacked = stackedModule())
        stacked->restore(r);
    offchipModule().restore(r);
}

void
MemoryOrganization::rescheduleInflight(
    const std::function<MemClient *(std::uint32_t)> &client_of)
{
    if (inflight_.empty())
        return;
    assert(events_ != nullptr &&
           "bind the event queue before rescheduling");
    // Submission order reproduces the original scheduling order, so
    // same-tick completions keep their FIFO sequence numbers.
    for (InflightRequest &f : inflight_) {
        f.client = client_of(f.req.core);
        assert(f.client != nullptr);
        scheduleCompletion(f.req, f.done, f.client);
    }
}

void
MemoryOrganization::applyTimingConfig(const OrgConfig &config)
{
    timingMode_ = config.timingMode;
    if (DramModule *stacked = stackedModule())
        stacked->setTimingMode(config.timingMode, config.queues);
    offchipModule().setTimingMode(config.timingMode, config.queues);
#if CAMEO_AUDIT_ENABLED
    // The event queue fires in tick order, so queued-mode deliveries
    // are monotone; blocking completions fire in submission order with
    // freely interleaved ticks.
    queueAudit_.setMonotonicDelivery(config.timingMode ==
                                     TimingMode::Queued);
#endif
}

void
MemoryOrganization::resetTiming()
{
    assert(inflight_.empty() &&
           "drain in-flight transactions before a timing reset");
    lastRequestId_ = 0;
    if (DramModule *stacked = stackedModule())
        stacked->reset();
    offchipModule().reset();
}

void
MemoryOrganization::onPageMapped(std::uint32_t frame, std::uint32_t core,
                                 PageAddr vpage)
{
    (void)frame;
    (void)core;
    (void)vpage;
}

bool
MemoryOrganization::setPageHeat(PageHeatMap heat)
{
    (void)heat;
    return false;
}

const char *
OrgConfig::validate() const
{
    if (stackedBytes == 0)
        return "stackedBytes must be nonzero";
    if (stackedBytes % kPageBytes != 0)
        return "stackedBytes must be a whole number of pages";
    if (offchipBytes % kPageBytes != 0)
        return "offchipBytes must be a whole number of pages";
    if (numCores == 0)
        return "numCores must be nonzero";
    if (const char *err = llt.validate())
        return err;
    if (const char *err = freq.validate())
        return err;
    if (const char *err = migrate.validate())
        return err;
    if (const char *err = banshee.validate())
        return err;
    return nullptr;
}

const char *
orgKindName(OrgKind kind)
{
    switch (kind) {
      case OrgKind::Baseline:
        return "Baseline";
      case OrgKind::AlloyCache:
        return "Cache";
      case OrgKind::TlmStatic:
        return "TLM-Static";
      case OrgKind::TlmDynamic:
        return "TLM-Dynamic";
      case OrgKind::TlmFreq:
        return "TLM-Freq";
      case OrgKind::TlmOracle:
        return "TLM-Oracle";
      case OrgKind::DoubleUse:
        return "DoubleUse";
      case OrgKind::Cameo:
        return "CAMEO";
      case OrgKind::CameoFreq:
        return "CAMEO-Freq";
      case OrgKind::Banshee:
        return "Banshee";
    }
    return "Unknown";
}

namespace
{

/** ASCII case-insensitive string equality (CLI org spellings). */
bool
iequals(std::string_view a, std::string_view b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const auto la = std::tolower(static_cast<unsigned char>(a[i]));
        const auto lb = std::tolower(static_cast<unsigned char>(b[i]));
        if (la != lb)
            return false;
    }
    return true;
}

} // namespace

std::optional<OrgKind>
orgKindFromName(std::string_view name)
{
    for (const OrgKind kind : allOrgKinds()) {
        if (iequals(name, orgKindName(kind)))
            return kind;
    }
    return std::nullopt;
}

const std::vector<OrgKind> &
allOrgKinds()
{
    static const std::vector<OrgKind> kinds = {
        OrgKind::Baseline,  OrgKind::AlloyCache, OrgKind::TlmStatic,
        OrgKind::TlmDynamic, OrgKind::TlmFreq,   OrgKind::TlmOracle,
        OrgKind::DoubleUse, OrgKind::Cameo,      OrgKind::CameoFreq,
        OrgKind::Banshee,
    };
    return kinds;
}

OrgComposition
orgComposition(OrgKind kind)
{
    switch (kind) {
      case OrgKind::Baseline:
        return {"identity", "none"};
      case OrgKind::AlloyCache:
        return {"tad-tags", "install-on-miss"};
      case OrgKind::TlmStatic:
        return {"identity", "static"};
      case OrgKind::TlmDynamic:
        return {"page-remap", "nth-touch-migrate"};
      case OrgKind::TlmFreq:
        return {"page-remap", "epoch-frequency"};
      case OrgKind::TlmOracle:
        return {"page-remap", "oracle-heat"};
      case OrgKind::DoubleUse:
        return {"tad-tags", "install-on-miss"};
      case OrgKind::Cameo:
        return {"llt-line-swap", "mru-swap"};
      case OrgKind::CameoFreq:
        return {"llt-line-swap", "freq-admission"};
      case OrgKind::Banshee:
        return {"pte-cached-remap", "sampling-frequency"};
    }
    return {"unknown", "unknown"};
}

std::unique_ptr<MemoryOrganization>
makeOrganization(OrgKind kind, const OrgConfig &config)
{
    switch (kind) {
      case OrgKind::Baseline:
        return std::make_unique<BaselineOrg>(config);
      case OrgKind::AlloyCache:
        return std::make_unique<AlloyCacheOrg>(config,
                                               config.offchipBytes);
      case OrgKind::TlmStatic:
        return std::make_unique<TlmStaticOrg>(config);
      case OrgKind::TlmDynamic:
        return std::make_unique<TlmDynamicOrg>(config);
      case OrgKind::TlmFreq:
        return std::make_unique<TlmFreqOrg>(config);
      case OrgKind::TlmOracle:
        return std::make_unique<TlmOracleOrg>(config);
      case OrgKind::DoubleUse:
        return std::make_unique<DoubleUseOrg>(config);
      case OrgKind::Cameo:
        return std::make_unique<CameoOrg>(config);
      case OrgKind::CameoFreq:
        return std::make_unique<CameoFreqOrg>(config);
      case OrgKind::Banshee:
        return std::make_unique<BansheeOrg>(config);
    }
    return nullptr;
}

} // namespace cameo
