#include "orgs/tlm_dynamic.hh"

#include <memory>

#include "orgs/policy/nth_touch_placement.hh"
#include "orgs/policy/page_remap_mapping.hh"

namespace cameo
{

namespace
{

std::uint64_t
totalPagesOf(const OrgConfig &config)
{
    return (config.stackedBytes + config.offchipBytes) / kPageBytes;
}

} // namespace

TlmDynamicOrg::TlmDynamicOrg(const OrgConfig &config)
    : ComposedOrg(config, "TLM-Dynamic",
                  std::make_unique<PageRemapMapping>(totalPagesOf(config)),
                  std::make_unique<NthTouchMigratePlacement>(
                      config.stackedBytes / kPageBytes, totalPagesOf(config),
                      config.migrate, config.seed))
{
}

} // namespace cameo
