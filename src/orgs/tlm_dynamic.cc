#include "orgs/tlm_dynamic.hh"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace cameo
{

TlmRemapBase::TlmRemapBase(const OrgConfig &config, std::string name)
    : TlmStaticOrg(config, std::move(name))
{
    physToDev_.resize(totalPages_);
    devToPhys_.resize(totalPages_);
    std::iota(physToDev_.begin(), physToDev_.end(), 0u);
    std::iota(devToPhys_.begin(), devToPhys_.end(), 0u);
}

std::uint64_t
TlmRemapBase::devicePageOf(PageAddr phys_page) const
{
    assert(phys_page < physToDev_.size());
    return physToDev_[phys_page];
}

void
TlmRemapBase::swapMapping(PageAddr phys_a, PageAddr phys_b)
{
    assert(phys_a < physToDev_.size() && phys_b < physToDev_.size());
    const std::uint32_t dev_a = physToDev_[phys_a];
    const std::uint32_t dev_b = physToDev_[phys_b];
    std::swap(physToDev_[phys_a], physToDev_[phys_b]);
    devToPhys_[dev_a] = static_cast<std::uint32_t>(phys_b);
    devToPhys_[dev_b] = static_cast<std::uint32_t>(phys_a);
}

TlmDynamicOrg::TlmDynamicOrg(const OrgConfig &config)
    : TlmRemapBase(config, "TLM-Dynamic"),
      stackedLastUse_(stackedPages_, 0), touchCount_(totalPages_, 0),
      victimProbes_(config.tlmVictimProbes),
      migrateThreshold_(std::max(1u, config.tlmMigrateThreshold)),
      rng_(config.seed ^ 0xD15C)
{
}

std::uint64_t
TlmDynamicOrg::selectVictim()
{
    // Oldest of victimProbes_ random stacked device pages (approximate
    // LRU, standing in for the OS's page-age bookkeeping).
    std::uint64_t victim = rng_.next(stackedPages_);
    for (std::uint32_t p = 1; p < victimProbes_; ++p) {
        const std::uint64_t cand = rng_.next(stackedPages_);
        if (stackedLastUse_[cand] < stackedLastUse_[victim])
            victim = cand;
    }
    return victim;
}

void
TlmDynamicOrg::postAccess(Tick when, PageAddr phys_page,
                          std::uint64_t device_page, bool is_write,
                          Fidelity fidelity)
{
    (void)is_write;
    const std::uint64_t stamp = ++accessSeq_;
    if (inStacked(device_page)) {
        stackedLastUse_[device_page] = stamp;
        touchCount_[phys_page] = 0;
        return;
    }
    // Off-chip access: migrate the page into stacked memory once it
    // has shown it is live (migrateThreshold_ touches), swapping with
    // a not-recently-used victim.
    if (++touchCount_[phys_page] < migrateThreshold_)
        return;
    touchCount_[phys_page] = 0;
    const std::uint64_t victim_dev = selectVictim();
    billPageSwap(when, device_page, victim_dev, fidelity);
    swapMapping(phys_page, physPageAt(victim_dev));
    stackedLastUse_[victim_dev] = stamp;
}

void
TlmRemapBase::save(SnapshotWriter &w) const
{
    MemoryOrganization::save(w);
    w.vecU32(physToDev_);
    w.vecU32(devToPhys_);
}

void
TlmRemapBase::restore(SnapshotReader &r)
{
    MemoryOrganization::restore(r);
    std::vector<std::uint32_t> p2d;
    std::vector<std::uint32_t> d2p;
    r.vecU32(p2d);
    r.vecU32(d2p);
    if (!r.ok())
        return;
    if (p2d.size() != physToDev_.size() || d2p.size() != devToPhys_.size()) {
        r.fail("tlm: remap table size mismatch");
        return;
    }
    physToDev_ = std::move(p2d);
    devToPhys_ = std::move(d2p);
}

void
TlmDynamicOrg::save(SnapshotWriter &w) const
{
    TlmRemapBase::save(w);
    w.vecU64(stackedLastUse_);
    w.vecU8(touchCount_);
    for (const std::uint64_t s : rng_.state())
        w.u64(s);
    w.u64(accessSeq_);
}

void
TlmDynamicOrg::restore(SnapshotReader &r)
{
    TlmRemapBase::restore(r);
    std::vector<Tick> lastUse;
    std::vector<std::uint8_t> touches;
    r.vecU64(lastUse);
    r.vecU8(touches);
    if (!r.ok())
        return;
    if (lastUse.size() != stackedLastUse_.size() ||
        touches.size() != touchCount_.size()) {
        r.fail("tlm-dynamic: LRU/touch table size mismatch");
        return;
    }
    stackedLastUse_ = std::move(lastUse);
    touchCount_ = std::move(touches);
    Rng::State rngState;
    for (std::uint64_t &s : rngState)
        s = r.u64();
    rng_.setState(rngState);
    accessSeq_ = r.u64();
}

} // namespace cameo
