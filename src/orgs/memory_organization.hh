/**
 * @file
 * MemoryOrganization: the interface every stacked-DRAM usage model
 * implements, plus the factory used by System and the benches.
 *
 * An organization owns its DRAM module(s), decides how OS-physical line
 * addresses map onto devices, and models the timing of each access. It
 * also reports the OS-visible capacity it exposes — the property that
 * separates a cache (stacked DRAM invisible) from TLM/CAMEO (visible),
 * and therefore drives the page-fault behaviour of Capacity-Limited
 * workloads.
 *
 * Requesters enter through submit(), the transaction front door
 * (DESIGN.md §9): it wraps the virtual access() timing model in a
 * MemRequest and delivers the completion to the issuing MemClient —
 * synchronously in Blocking timing (the legacy control flow,
 * bit-identical stats), or through the bound SimKernel event queue at
 * the completion tick in Queued timing.
 */

#ifndef CAMEO_ORGS_MEMORY_ORGANIZATION_HH
#define CAMEO_ORGS_MEMORY_ORGANIZATION_HH

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "check/audit.hh"
#include "snapshot/snapshot.hh"
#include "core/cameo_controller.hh"
#include "dram/dram_module.hh"
#include "dram/queue_config.hh"
#include "dram/timings.hh"
#include "orgs/policy/page_heat.hh"
#include "orgs/policy/policy_config.hh"
#include "sim/event_queue.hh"
#include "sim/mem_request.hh"
#include "stats/registry.hh"
#include "util/types.hh"
#if CAMEO_AUDIT_ENABLED
#include "check/queue_auditor.hh"
#endif

namespace cameo
{

/** The designs compared throughout the paper's evaluation. */
enum class OrgKind
{
    Baseline,   ///< No stacked DRAM; off-chip only.
    AlloyCache, ///< Stacked DRAM as an Alloy (direct-mapped TAD) cache.
    TlmStatic,  ///< Two-Level Memory, random static page placement.
    TlmDynamic, ///< TLM + page swap on off-chip access (Section II-C).
    TlmFreq,    ///< TLM + epoch-based frequency placement (Sec VI-D).
    TlmOracle,  ///< TLM + oracular page placement (Section VI-D).
    DoubleUse,  ///< Idealistic: cache AND extra capacity (Sec II-D).
    Cameo,      ///< The paper's proposal.
    CameoFreq,  ///< CAMEO + frequency-directed swap admission (the
                ///< Section VI-D extension; see orgs/cameo_freq.hh).
    Banshee,    ///< PTE-cached page mapping + sampling-counter
                ///< frequency placement (Yu et al., MICRO 2017; see
                ///< orgs/banshee.hh).
};

/** Printable name of an organization kind. */
const char *orgKindName(OrgKind kind);

/**
 * Inverse of orgKindName: parse @p name (case-insensitively, so CLI
 * spellings like "tlm-static" and "cameo-freq" work) into a kind.
 * Empty optional for unknown names.
 */
std::optional<OrgKind> orgKindFromName(std::string_view name);

/** Every OrgKind, in enum order (CLI listings, test matrices). */
const std::vector<OrgKind> &allOrgKinds();

/**
 * The mapping x placement pair an organization kind composes
 * (DESIGN.md §14). For ComposedOrg-based kinds these are live
 * PolicyName strings; for the monolith-hosted kinds (Baseline, the
 * Alloy family, the CAMEO family) they name the policy the org's
 * fused hot path implements.
 */
struct OrgComposition
{
    const char *mapping;
    const char *placement;
};

/** Composition table entry for @p kind. */
OrgComposition orgComposition(OrgKind kind);

/** Everything needed to construct any organization. */
struct OrgConfig
{
    std::uint64_t stackedBytes = 8ull << 20;
    std::uint64_t offchipBytes = 24ull << 20;
    DramTimings stacked = stackedTimings();
    DramTimings offchip = offchipTimings();
    std::uint32_t numCores = 8;
    std::uint64_t seed = 42;

    /** Per-policy design points (orgs/policy/policy_config.hh). */
    LltPolicyConfig llt;
    FreqPolicyConfig freq;
    MigratePolicyConfig migrate;
    BansheePolicyConfig banshee;

    /**
     * Memory-pipeline timing mode. Blocking reproduces the original
     * synchronous semantics bit-for-bit; Queued enables the DRAM
     * controller queues and event-delivered completions.
     */
    TimingMode timingMode = TimingMode::Blocking;

    /** DRAM controller queue geometry (Queued timing only). */
    DramQueueConfig queues;

    /**
     * First violated constraint across the shared fields and every
     * policy sub-config; nullptr when the whole config is valid.
     */
    const char *validate() const;
};

/** Base class for all stacked-DRAM usage models. */
class MemoryOrganization : public Checkpointable
{
  public:
    ~MemoryOrganization() override;

    MemoryOrganization(const MemoryOrganization &) = delete;
    MemoryOrganization &operator=(const MemoryOrganization &) = delete;

    /**
     * Service one OS-physical line access.
     *
     * @param now      Request time.
     * @param line     OS-physical line address.
     * @param is_write L3 writeback (true) or demand fill (false).
     * @param pc       Missing instruction address (for predictors).
     * @param core     Requesting core id.
     * @return Data-arrival time for reads; acceptance time for writes.
     */
    virtual Tick access(Tick now, LineAddr line, bool is_write, InstAddr pc,
                        std::uint32_t core) = 0;

    /**
     * Functional-fidelity twin of access() (DESIGN.md §13): performs
     * exactly the architectural state updates of the detailed path —
     * tag arrays, LLT permutations, predictor training, heat counters,
     * migration decisions, RNG draws, demand-routing counters — but
     * issues no DRAM requests, models no timing, and schedules no
     * events. Timing-only side effects (bank/bus reservations, queue
     * occupancy, squash/wasted-fetch accounting) are skipped; every
     * state a later detailed run can observe is updated identically.
     *
     * @param line     OS-physical line address.
     * @param is_write L3 writeback (true) or demand fill (false).
     * @param pc       Missing instruction address (for predictors).
     * @param core     Requesting core id.
     */
    virtual void accessFunctional(LineAddr line, bool is_write, InstAddr pc,
                                  std::uint32_t core) = 0;

    /**
     * Reset all timing state while preserving architectural state: the
     * DRAM modules' bank/bus reservations, controller queues, protocol
     * auditor and counters go back to power-on. System calls this at
     * the warmup→measured switch (after the warmup phase has drained)
     * so functional- and detailed-warmup runs enter the measured
     * region with identical timing state.
     */
    virtual void resetTiming();

    /**
     * Submit one transaction to the memory pipeline. Timing comes from
     * the virtual access() model; completion delivery depends on the
     * mode: Blocking invokes @p client->onMemComplete before returning
     * (identical control flow to calling access() directly), Queued
     * schedules it on the bound event queue at the completion tick.
     *
     * @param now      Request time (requester's local clock).
     * @param line     OS-physical line address.
     * @param is_write L3 writeback (true) or demand fill (false).
     * @param pc       Missing instruction address (for predictors).
     * @param core     Requesting core id.
     * @param tag      Requester-chosen tag carried back in the
     *                 completion (kNoTag when unused).
     * @param client   Completion receiver; nullptr for fire-and-forget
     *                 requests (posted writebacks).
     * @return The completion tick (also delivered to @p client).
     */
    Tick submit(Tick now, LineAddr line, bool is_write, InstAddr pc,
                std::uint32_t core, std::uint64_t tag = kNoTag,
                MemClient *client = nullptr);

    /**
     * Bind (or with nullptr, unbind) the event queue that Queued-mode
     * completions are scheduled on. System binds its kernel's queue for
     * the duration of a run. Unbound, submit() delivers synchronously
     * even in Queued timing.
     */
    void bindEventQueue(EventQueue *events)
    {
        events_ = events;
#if CAMEO_AUDIT_ENABLED
        // Unbinding marks end-of-run: every submitted transaction must
        // have completed by now (the kernel drains leftover events).
        if (events == nullptr)
            queueAudit_.checkDrained();
#endif
    }

    /** The pipeline timing mode this organization was built with. */
    TimingMode timingMode() const { return timingMode_; }

    /** OS-visible memory capacity in bytes (whole pages). */
    virtual std::uint64_t visibleBytes() const = 0;

    /** Register the organization's statistics. */
    virtual void registerStats(StatRegistry &registry) = 0;

    /** Stacked module, if this organization has one. */
    virtual DramModule *stackedModule() { return nullptr; }
    virtual const DramModule *stackedModule() const { return nullptr; }

    /** Off-chip module (every organization has one). */
    virtual DramModule &offchipModule() = 0;
    virtual const DramModule &offchipModule() const = 0;

    /**
     * Hook: a virtual page became resident in @p frame. TLM-Oracle uses
     * this to steer placement; others ignore it.
     */
    virtual void onPageMapped(std::uint32_t frame, std::uint32_t core,
                              PageAddr vpage);

    /** CAMEO controller, if this organization is CAMEO. */
    virtual const CameoController *cameo() const { return nullptr; }

    /**
     * Inject oracular page heat. Returns true when the organization's
     * placement consumed the oracle (TLM-Oracle); false when it takes
     * none — callers that require the oracle report that as an error
     * rather than asserting.
     */
    virtual bool setPageHeat(PageHeatMap heat);

    /**
     * Checkpointable: the base serializes the transaction-id cursor,
     * the in-flight (queued, undelivered) requests, and the DRAM
     * modules. Concrete organizations override both, write their own
     * mutable state, and chain to the base first so the byte layout is
     * stable across the hierarchy.
     */
    void save(SnapshotWriter &w) const override;
    void restore(SnapshotReader &r) override;

    /**
     * Re-schedule the completions of requests that were in flight when
     * the snapshot was taken. Must be called after restore() and after
     * bindEventQueue() (Queued mode with live requests only);
     * @p client_of maps a core id to its completion receiver — restore
     * assumes every in-flight request's client is its issuing core,
     * which holds for System-driven runs.
     */
    void rescheduleInflight(
        const std::function<MemClient *(std::uint32_t)> &client_of);

    /** Number of submitted-but-undelivered requests (Queued mode). */
    std::size_t inflightCount() const { return inflight_.size(); }

    const std::string &name() const { return name_; }

  protected:
    explicit MemoryOrganization(std::string name) : name_(std::move(name)) {}

    /**
     * Adopt @p config's timing mode: stores it and pushes the mode and
     * queue geometry into this organization's DRAM modules. Concrete
     * organizations call this at the end of their constructor bodies
     * (after the modules exist and the virtual module accessors
     * resolve), and before System registers stats — queued-only DRAM
     * statistics register conditionally on the mode.
     */
    void applyTimingConfig(const OrgConfig &config);

  private:
    /** A submitted request whose completion has not been delivered. */
    struct InflightRequest
    {
        MemRequest req;
        Tick done = 0;
        MemClient *client = nullptr; ///< Not serialized; see restore().
    };

    /** Schedule @p client's completion on the bound event queue. */
    void scheduleCompletion(const MemRequest &req, Tick done,
                            MemClient *client);

    std::string name_;
    TimingMode timingMode_ = TimingMode::Blocking;
    EventQueue *events_ = nullptr;
    std::uint64_t lastRequestId_ = 0;

    /**
     * Submission-ordered registry of queued, undelivered requests —
     * the serializable image of the kernel's pending completion
     * events. Empty in Blocking mode.
     */
    std::vector<InflightRequest> inflight_;

#if CAMEO_AUDIT_ENABLED
    /** Shadow accounting of every submitted transaction. */
    QueueInvariantAuditor queueAudit_;
#endif
};

/** Construct an organization of @p kind from @p config. */
std::unique_ptr<MemoryOrganization> makeOrganization(OrgKind kind,
                                                     const OrgConfig &config);

} // namespace cameo

#endif // CAMEO_ORGS_MEMORY_ORGANIZATION_HH
