#include "orgs/cameo_org.hh"

#include <cassert>

#include "core/lead_layout.hh"
#include "util/bitops.hh"

namespace cameo
{

DramTimings
CameoOrg::stackedTimingsFor(const OrgConfig &config)
{
    DramTimings t = config.stacked;
    if (config.llt.kind == LltKind::CoLocated) {
        // 31 LEADs per 2KB row (Figure 7).
        t.linesPerRow = LeadLayout::kLeadsPerRow;
    }
    return t;
}

std::uint64_t
CameoOrg::stackedModuleBytes(const OrgConfig &config)
{
    if (config.llt.kind == LltKind::Embedded) {
        // Model the reserved LLT region as additional device lines so
        // LLT lookups contend for real banks and buses; the capacity
        // cost is charged against visible bytes instead.
        const std::uint64_t data_lines = config.stackedBytes / kLineBytes;
        const std::uint64_t k =
            (config.stackedBytes + config.offchipBytes) /
            config.stackedBytes;
        const std::uint64_t reserve = CameoController::lltReserveLines(
            data_lines, static_cast<std::uint32_t>(k));
        return config.stackedBytes + reserve * kLineBytes;
    }
    return config.stackedBytes;
}

std::uint64_t
CameoOrg::computeVisibleBytes(const OrgConfig &config)
{
    const std::uint64_t total = config.stackedBytes + config.offchipBytes;
    std::uint64_t reserve = 0;
    switch (config.llt.kind) {
      case LltKind::Ideal:
        reserve = 0;
        break;
      case LltKind::Embedded: {
        const std::uint64_t data_lines = config.stackedBytes / kLineBytes;
        const std::uint64_t k = total / config.stackedBytes;
        reserve = CameoController::lltReserveLines(
                      data_lines, static_cast<std::uint32_t>(k)) *
                  kLineBytes;
        break;
      }
      case LltKind::CoLocated:
        reserve = config.stackedBytes / 32;
        break;
    }
    return (total - reserve) / kPageBytes * kPageBytes;
}

CameoOrg::CameoOrg(const OrgConfig &config, std::string name)
    : MemoryOrganization(name.empty() ? variantName(config.llt.kind,
                                                    config.llt.predictor)
                                      : std::move(name)),
      stacked_("dram.stacked", stackedTimingsFor(config),
               stackedModuleBytes(config)),
      offchip_("dram.offchip", config.offchip, config.offchipBytes),
      controller_(
          CameoParams{config.llt.kind, config.llt.predictor,
                      config.numCores, config.llt.llpTableEntries},
          stacked_, offchip_, config.stackedBytes / kLineBytes,
          (config.stackedBytes + config.offchipBytes) / kLineBytes),
      visibleBytes_(computeVisibleBytes(config))
{
    assert(isPowerOfTwo(config.stackedBytes / kLineBytes));
    assert((config.stackedBytes + config.offchipBytes) %
               config.stackedBytes ==
           0);
    applyTimingConfig(config);
}

Tick
CameoOrg::access(Tick now, LineAddr line, bool is_write, InstAddr pc,
                 std::uint32_t core)
{
    return controller_.access(now, line, is_write, pc, core);
}

void
CameoOrg::accessFunctional(LineAddr line, bool is_write, InstAddr pc,
                           std::uint32_t core)
{
    controller_.accessFunctional(line, is_write, pc, core);
}

void
CameoOrg::registerStats(StatRegistry &registry)
{
    stacked_.registerStats(registry);
    offchip_.registerStats(registry);
    controller_.registerStats(registry);
}

std::string
CameoOrg::variantName(LltKind llt, PredictorKind pred)
{
    std::string name = "CAMEO";
    if (llt != LltKind::CoLocated || pred != PredictorKind::Llp) {
        name += std::string("(") + lltKindName(llt) + "+" +
                predictorKindName(pred) + ")";
    }
    return name;
}

void
CameoOrg::save(SnapshotWriter &w) const
{
    MemoryOrganization::save(w);
    controller_.save(w);
}

void
CameoOrg::restore(SnapshotReader &r)
{
    MemoryOrganization::restore(r);
    controller_.restore(r);
}

} // namespace cameo
