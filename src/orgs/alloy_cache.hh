/**
 * @file
 * Alloy Cache organization (Qureshi & Loh, MICRO 2012) — the paper's
 * state-of-the-art hardware DRAM-cache comparison point.
 *
 * The stacked DRAM is a direct-mapped, line-granularity cache whose tag
 * is co-located with the data ("TAD": Tag And Data). A 2KB row holds 28
 * TADs of 72 bytes; a TAD access bursts 80 bytes on the 16-byte stacked
 * bus. A per-core, instruction-indexed Memory Access Predictor (MAP-I
 * flavour) decides between serial (cache first) and parallel (cache +
 * memory) access, trading bandwidth for latency exactly as the LLP does
 * for CAMEO.
 *
 * The stacked DRAM is *not* part of the OS-visible space: visibleBytes
 * is the off-chip capacity only, which is why Capacity-Limited
 * workloads see little benefit (Figure 2).
 */

#ifndef CAMEO_ORGS_ALLOY_CACHE_HH
#define CAMEO_ORGS_ALLOY_CACHE_HH

#include <vector>

#include "orgs/memory_organization.hh"
#include "orgs/policy/tad_tag_mapping.hh"

namespace cameo
{

/** Direct-mapped DRAM cache with TAD bursts and a MAP-I predictor. */
class AlloyCacheOrg : public MemoryOrganization
{
  public:
    /** Lines of TAD that fit per 2KB row (72B each). */
    static constexpr std::uint32_t kTadsPerRow = 28;

    /** Burst bytes for one TAD (72B rounded to 5 beats x 16B). */
    static constexpr std::uint32_t kTadBurstBytes = 80;

    /**
     * @param config        Shared organization config.
     * @param backing_bytes Capacity of the backing (off-chip) memory;
     *                      normally config.offchipBytes, but DoubleUse
     *                      passes stacked+offchip.
     * @param name          Organization display name.
     */
    AlloyCacheOrg(const OrgConfig &config, std::uint64_t backing_bytes,
                  std::string name = "Cache");

    Tick access(Tick now, LineAddr line, bool is_write, InstAddr pc,
                std::uint32_t core) override;

    void accessFunctional(LineAddr line, bool is_write, InstAddr pc,
                          std::uint32_t core) override;

    std::uint64_t visibleBytes() const override
    {
        return offchip_.capacityBytes();
    }

    void registerStats(StatRegistry &registry) override;

    DramModule *stackedModule() override { return &stacked_; }
    const DramModule *stackedModule() const override { return &stacked_; }
    DramModule &offchipModule() override { return offchip_; }
    const DramModule &offchipModule() const override { return offchip_; }

    std::uint64_t numSets() const { return tags_.numSets(); }

    /** The tag-array mapping policy (composition introspection). */
    const TadTagMapping &tagMapping() const { return tags_; }

    /** Hit fraction among demand reads so far. */
    double hitRate() const;

    const Counter &hits() const { return hits_; }
    const Counter &misses() const { return misses_; }

    /**
     * Checkpointable: base state + the TAD tag array and the MAP-I
     * counter tables. The set count is structural and verified.
     */
    void save(SnapshotWriter &w) const override;
    void restore(SnapshotReader &r) override;

  private:
    /** MAP-I: predict whether @p pc's access will hit the cache. */
    bool predictHit(std::uint32_t core, InstAddr pc) const;
    void trainPredictor(std::uint32_t core, InstAddr pc, bool hit);
    std::size_t mapIndex(std::uint32_t core, InstAddr pc) const;

    DramModule stacked_;
    DramModule offchip_;

    /** Direct-mapped TAD tags (the extracted mapping policy). */
    TadTagMapping tags_;

    /** Per-core 3-bit saturating hit counters, 256 entries each. */
    static constexpr std::uint32_t kMapEntries = 256;
    static constexpr std::uint8_t kMapMax = 7;
    static constexpr std::uint8_t kMapThreshold = 4;
    std::vector<std::uint8_t> map_;

    Counter hits_;
    Counter misses_;
    Counter mapCorrect_;
    Counter mapWrong_;
    Counter wastedFetches_;
};

} // namespace cameo

#endif // CAMEO_ORGS_ALLOY_CACHE_HH
