/**
 * @file
 * TLM-Dynamic (Section II-C): on an access to a page resident
 * off-chip, the OS swaps that 4KB page with a not-recently-used victim
 * page in stacked memory. Each swap costs 16KB of memory activity —
 * the bandwidth bloat that makes TLM-Dynamic lose to CAMEO on
 * workloads with poor within-page locality (milc) and on
 * Capacity-Limited workloads.
 *
 * Composition: page-remap mapping x Nth-touch-migrate placement.
 */

#ifndef CAMEO_ORGS_TLM_DYNAMIC_HH
#define CAMEO_ORGS_TLM_DYNAMIC_HH

#include "orgs/composed_org.hh"

namespace cameo
{

/** TLM-Dynamic: swap-on-access page migration. */
class TlmDynamicOrg : public ComposedOrg
{
  public:
    explicit TlmDynamicOrg(const OrgConfig &config);
};

} // namespace cameo

#endif // CAMEO_ORGS_TLM_DYNAMIC_HH
