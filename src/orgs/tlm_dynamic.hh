/**
 * @file
 * TLM with OS page migration.
 *
 * TlmRemapBase adds the page-remap machinery (OS-physical page ->
 * device page, both directions) shared by every migrating TLM variant.
 *
 * TlmDynamicOrg is the paper's TLM-Dynamic (Section II-C): on an access
 * to a page resident off-chip, the OS swaps that 4KB page with a
 * not-recently-used victim page in stacked memory. Each swap costs 16KB
 * of memory activity — the bandwidth bloat that makes TLM-Dynamic lose
 * to CAMEO on workloads with poor within-page locality (milc) and on
 * Capacity-Limited workloads.
 */

#ifndef CAMEO_ORGS_TLM_DYNAMIC_HH
#define CAMEO_ORGS_TLM_DYNAMIC_HH

#include <vector>

#include "orgs/tlm_static.hh"
#include "util/rng.hh"

namespace cameo
{

/** Routing base with a mutable page remap table. */
class TlmRemapBase : public TlmStaticOrg
{
  public:
    TlmRemapBase(const OrgConfig &config, std::string name);

    /** Current device page of an OS-physical page (for tests). */
    std::uint64_t devicePageOfPublic(PageAddr phys_page) const
    {
        return devicePageOf(phys_page);
    }

    /** Checkpointable: base state + both remap directions. */
    void save(SnapshotWriter &w) const override;
    void restore(SnapshotReader &r) override;

  protected:
    std::uint64_t devicePageOf(PageAddr phys_page) const override;

    /**
     * Exchange the device pages of two OS-physical pages (remap update
     * only; traffic, if any, is billed separately by the caller).
     */
    void swapMapping(PageAddr phys_a, PageAddr phys_b);

    /** OS-physical page currently occupying @p device_page. */
    PageAddr physPageAt(std::uint64_t device_page) const
    {
        return devToPhys_[device_page];
    }

  private:
    std::vector<std::uint32_t> physToDev_;
    std::vector<std::uint32_t> devToPhys_;
};

/** TLM-Dynamic: swap-on-access page migration. */
class TlmDynamicOrg : public TlmRemapBase
{
  public:
    explicit TlmDynamicOrg(const OrgConfig &config);

    /** Checkpointable: remap state + LRU stamps, touch counters, RNG. */
    void save(SnapshotWriter &w) const override;
    void restore(SnapshotReader &r) override;

  protected:
    void postAccess(Tick when, PageAddr phys_page,
                    std::uint64_t device_page, bool is_write,
                    Fidelity fidelity) override;

  private:
    /** Approximate-LRU victim: oldest of N random stacked pages. */
    std::uint64_t selectVictim();

    /**
     * Recency is tracked in access-sequence numbers, not ticks: the
     * OS's notion of "not recently used" is about reference order, and
     * sequence stamps make victim selection identical across timing
     * modes and fidelities (DESIGN.md §13) — tick stamps would tie
     * within a batch and diverge between Blocking and Queued runs.
     */
    std::vector<std::uint64_t> stackedLastUse_; ///< Per stacked dev page.
    std::vector<std::uint8_t> touchCount_; ///< Per OS page, saturating.
    std::uint32_t victimProbes_;
    std::uint32_t migrateThreshold_;
    Rng rng_;
    std::uint64_t accessSeq_ = 0; ///< Demand accesses observed so far.
};

} // namespace cameo

#endif // CAMEO_ORGS_TLM_DYNAMIC_HH
