/**
 * @file
 * TLM-Freq (Section VI-D): hardware tracks page access frequency; the
 * OS periodically migrates the hottest pages into stacked memory.
 *
 * Per the paper we ignore TLB-shootdown and software sorting overheads
 * but fully model the page-transfer bandwidth. Counters decay by half
 * each epoch so the placement tracks phase changes.
 */

#ifndef CAMEO_ORGS_TLM_FREQ_HH
#define CAMEO_ORGS_TLM_FREQ_HH

#include <vector>

#include "orgs/tlm_dynamic.hh"

namespace cameo
{

/** Epoch-based frequency-directed page placement. */
class TlmFreqOrg : public TlmRemapBase
{
  public:
    explicit TlmFreqOrg(const OrgConfig &config);

    const Counter &epochs() const { return epochs_; }

    /**
     * Checkpointable: remap state + epoch progress and per-page access
     * counters. The epoch counter is intentionally unregistered
     * (bench-local telemetry), so its value travels here rather than in
     * the snapshot's stats section.
     */
    void save(SnapshotWriter &w) const override;
    void restore(SnapshotReader &r) override;

  protected:
    void postAccess(Tick when, PageAddr phys_page,
                    std::uint64_t device_page, bool is_write,
                    Fidelity fidelity) override;

  private:
    /** Re-place pages at an epoch boundary; bill migration traffic. */
    void rebalance(Tick when, Fidelity fidelity);

    std::uint64_t epochLength_;
    std::uint64_t accessesThisEpoch_ = 0;
    std::vector<std::uint32_t> pageCount_; ///< Per OS-physical page.

    Counter epochs_;
};

} // namespace cameo

#endif // CAMEO_ORGS_TLM_FREQ_HH
