/**
 * @file
 * TLM-Freq (Section VI-D): hardware tracks page access frequency; the
 * OS periodically migrates the hottest pages into stacked memory.
 *
 * Composition: page-remap mapping x epoch-frequency placement. Per the
 * paper we ignore TLB-shootdown and software sorting overheads but
 * fully model the page-transfer bandwidth.
 */

#ifndef CAMEO_ORGS_TLM_FREQ_HH
#define CAMEO_ORGS_TLM_FREQ_HH

#include "orgs/composed_org.hh"
#include "orgs/policy/epoch_freq_placement.hh"

namespace cameo
{

/** Epoch-based frequency-directed page placement. */
class TlmFreqOrg : public ComposedOrg
{
  public:
    explicit TlmFreqOrg(const OrgConfig &config);

    const Counter &epochs() const { return freq_->epochs(); }

  private:
    /** The placement, concretely typed (owned by ComposedOrg). */
    EpochFrequencyPlacement *freq_;
};

} // namespace cameo

#endif // CAMEO_ORGS_TLM_FREQ_HH
