#include "orgs/cameo_freq.hh"

#include <algorithm>

namespace cameo
{

CameoFreqOrg::CameoFreqOrg(const OrgConfig &config)
    : CameoOrg(config, "CAMEO-Freq"),
      pageCount_((config.stackedBytes + config.offchipBytes) / kPageBytes,
                 0),
      epochLength_(config.freqEpochAccesses),
      hotPages_("cameofreq.hotAdmissions",
                "swap admissions from the hot-page filter")
{
    controller().setSwapFilter([this](LineAddr line) {
        const PageAddr page = lineToPage(line);
        if (page >= pageCount_.size())
            return true; // defensive: unknown pages swap as stock CAMEO
        if (pageCount_[page] >= kHotThreshold) {
            hotPages_.inc();
            return true;
        }
        return false;
    });
}

Tick
CameoFreqOrg::access(Tick now, LineAddr line, bool is_write, InstAddr pc,
                     std::uint32_t core)
{
    noteAccess(line);
    return CameoOrg::access(now, line, is_write, pc, core);
}

void
CameoFreqOrg::accessFunctional(LineAddr line, bool is_write, InstAddr pc,
                               std::uint32_t core)
{
    noteAccess(line);
    CameoOrg::accessFunctional(line, is_write, pc, core);
}

void
CameoFreqOrg::noteAccess(LineAddr line)
{
    const PageAddr page = lineToPage(line);
    if (page < pageCount_.size() && pageCount_[page] < 255)
        ++pageCount_[page];
    if (++accessesThisEpoch_ >= epochLength_) {
        accessesThisEpoch_ = 0;
        decay();
    }
}

void
CameoFreqOrg::decay()
{
    for (auto &c : pageCount_)
        c = static_cast<std::uint8_t>(c >> 1);
}

void
CameoFreqOrg::registerStats(StatRegistry &registry)
{
    CameoOrg::registerStats(registry);
    registry.add(hotPages_);
}

void
CameoFreqOrg::save(SnapshotWriter &w) const
{
    CameoOrg::save(w);
    w.vecU8(pageCount_);
    w.u64(accessesThisEpoch_);
}

void
CameoFreqOrg::restore(SnapshotReader &r)
{
    CameoOrg::restore(r);
    std::vector<std::uint8_t> counts;
    r.vecU8(counts);
    if (!r.ok())
        return;
    if (counts.size() != pageCount_.size()) {
        r.fail("cameo-freq: page counter table size mismatch");
        return;
    }
    pageCount_ = std::move(counts);
    accessesThisEpoch_ = r.u64();
}

} // namespace cameo
