#include "orgs/cameo_freq.hh"

namespace cameo
{

CameoFreqOrg::CameoFreqOrg(const OrgConfig &config)
    : CameoOrg(config, "CAMEO-Freq"),
      filter_((config.stackedBytes + config.offchipBytes) / kPageBytes,
              config.freq.epochAccesses)
{
    controller().setSwapFilter(
        [this](LineAddr line) { return filter_.shouldAdmit(line); });
}

Tick
CameoFreqOrg::access(Tick now, LineAddr line, bool is_write, InstAddr pc,
                     std::uint32_t core)
{
    filter_.noteAccess(line);
    return CameoOrg::access(now, line, is_write, pc, core);
}

void
CameoFreqOrg::accessFunctional(LineAddr line, bool is_write, InstAddr pc,
                               std::uint32_t core)
{
    filter_.noteAccess(line);
    CameoOrg::accessFunctional(line, is_write, pc, core);
}

void
CameoFreqOrg::registerStats(StatRegistry &registry)
{
    CameoOrg::registerStats(registry);
    filter_.registerStats(registry);
}

void
CameoFreqOrg::save(SnapshotWriter &w) const
{
    CameoOrg::save(w);
    filter_.save(w);
}

void
CameoFreqOrg::restore(SnapshotReader &r)
{
    CameoOrg::restore(r);
    filter_.restore(r);
}

} // namespace cameo
