#include "orgs/tlm_static.hh"

#include <cassert>

namespace cameo
{

TlmStaticOrg::TlmStaticOrg(const OrgConfig &config, std::string name)
    : MemoryOrganization(std::move(name)),
      stacked_("dram.stacked", config.stacked, config.stackedBytes),
      offchip_("dram.offchip", config.offchip, config.offchipBytes),
      stackedPages_(config.stackedBytes / kPageBytes),
      totalPages_((config.stackedBytes + config.offchipBytes) / kPageBytes),
      servicedStacked_("tlm.servicedStacked",
                       "accesses serviced by stacked DRAM"),
      servicedOffchip_("tlm.servicedOffchip",
                       "accesses serviced by off-chip DRAM"),
      pageMigrations_("tlm.pageMigrations", "4KB page swaps performed")
{
    assert(stackedPages_ != 0 && totalPages_ > stackedPages_);
    applyTimingConfig(config);
}

std::uint64_t
TlmStaticOrg::devicePageOf(PageAddr phys_page) const
{
    return phys_page; // identity: placement fixed at allocation
}

void
TlmStaticOrg::postAccess(Tick when, PageAddr phys_page,
                         std::uint64_t device_page, bool is_write,
                         Fidelity fidelity)
{
    (void)when;
    (void)phys_page;
    (void)device_page;
    (void)is_write;
    (void)fidelity;
}

Tick
TlmStaticOrg::routeLine(Tick now, std::uint64_t device_page,
                        std::uint32_t line_in_page, bool is_write)
{
    assert(device_page < totalPages_);
    if (inStacked(device_page)) {
        servicedStacked_.inc();
        return stacked_.request(now,
                               device_page * kLinesPerPage + line_in_page,
                               is_write, kLineBytes);
    }
    servicedOffchip_.inc();
    const std::uint64_t off_line =
        (device_page - stackedPages_) * kLinesPerPage + line_in_page;
    return offchip_.request(now, off_line, is_write, kLineBytes);
}

Tick
TlmStaticOrg::access(Tick now, LineAddr line, bool is_write, InstAddr pc,
                     std::uint32_t core)
{
    (void)pc;
    (void)core;
    const PageAddr phys_page = lineToPage(line);
    const std::uint64_t dev = devicePageOf(phys_page);
    const auto line_in_page =
        static_cast<std::uint32_t>(line & (kLinesPerPage - 1));
    const Tick done = routeLine(now, dev, line_in_page, is_write);
    // Migration traffic drains through writeback/fill queues; bill it
    // at request time, off the demand critical path.
    postAccess(now, phys_page, dev, is_write, Fidelity::Detailed);
    return done;
}

void
TlmStaticOrg::accessFunctional(LineAddr line, bool is_write, InstAddr pc,
                               std::uint32_t core)
{
    (void)pc;
    (void)core;
    const PageAddr phys_page = lineToPage(line);
    const std::uint64_t dev = devicePageOf(phys_page);
    assert(dev < totalPages_);
    // Same demand-routing accounting as routeLine, minus the module
    // requests; then the same migration hook at functional fidelity.
    (inStacked(dev) ? servicedStacked_ : servicedOffchip_).inc();
    postAccess(0, phys_page, dev, is_write, Fidelity::Functional);
}

void
TlmStaticOrg::billPageSwap(Tick when, std::uint64_t offchip_dev_page,
                           std::uint64_t stacked_dev_page, Fidelity fidelity)
{
    assert(!inStacked(offchip_dev_page) && inStacked(stacked_dev_page));
    if (fidelity == Fidelity::Detailed) {
        const std::uint64_t off_base =
            (offchip_dev_page - stackedPages_) * kLinesPerPage;
        const std::uint64_t stk_base = stacked_dev_page * kLinesPerPage;
        for (std::uint32_t i = 0; i < kLinesPerPage; ++i) {
            // Page coming in: read off-chip, write stacked.
            offchip_.request(when, off_base + i, false, kLineBytes);
            stacked_.request(when, stk_base + i, true, kLineBytes);
            // Victim going out: read stacked, write off-chip.
            stacked_.request(when, stk_base + i, false, kLineBytes);
            offchip_.request(when, off_base + i, true, kLineBytes);
        }
    }
    pageMigrations_.inc();
}

void
TlmStaticOrg::registerStats(StatRegistry &registry)
{
    stacked_.registerStats(registry);
    offchip_.registerStats(registry);
    registry.add(servicedStacked_);
    registry.add(servicedOffchip_);
    registry.add(pageMigrations_);
}

} // namespace cameo
