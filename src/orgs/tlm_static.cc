#include "orgs/tlm_static.hh"

#include <memory>

#include "orgs/policy/placement_policy.hh"

namespace cameo
{

TlmStaticOrg::TlmStaticOrg(const OrgConfig &config)
    : ComposedOrg(config, "TLM-Static", std::make_unique<IdentityMapping>(),
                  std::make_unique<StaticPlacement>())
{
}

} // namespace cameo
