/**
 * @file
 * TLM-Static: stacked DRAM as part of a flat OS-visible address space
 * with random, never-migrated page placement (Section II-B).
 *
 * Device routing: OS-physical pages map to "device pages"; device pages
 * below the stacked capacity live in stacked DRAM, the rest off-chip.
 * For TLM-Static the mapping is the identity — the randomization comes
 * from the frame allocator's shuffled free list, which scatters
 * first-touch allocations uniformly (so about a quarter of pages land
 * in stacked memory, matching the paper's "randomly maps the pages").
 *
 * This class is also the routing base for the migrating TLM variants.
 */

#ifndef CAMEO_ORGS_TLM_STATIC_HH
#define CAMEO_ORGS_TLM_STATIC_HH

#include "orgs/memory_organization.hh"
#include "sim/fidelity.hh"

namespace cameo
{

/** Two-Level Memory with static random placement. */
class TlmStaticOrg : public MemoryOrganization
{
  public:
    explicit TlmStaticOrg(const OrgConfig &config,
                          std::string name = "TLM-Static");

    Tick access(Tick now, LineAddr line, bool is_write, InstAddr pc,
                std::uint32_t core) override;

    void accessFunctional(LineAddr line, bool is_write, InstAddr pc,
                          std::uint32_t core) override;

    std::uint64_t visibleBytes() const override
    {
        return stacked_.capacityBytes() + offchip_.capacityBytes();
    }

    void registerStats(StatRegistry &registry) override;

    DramModule *stackedModule() override { return &stacked_; }
    const DramModule *stackedModule() const override { return &stacked_; }
    DramModule &offchipModule() override { return offchip_; }
    const DramModule &offchipModule() const override { return offchip_; }

    std::uint64_t stackedPages() const { return stackedPages_; }
    std::uint64_t totalPages() const { return totalPages_; }

    const Counter &servicedStacked() const { return servicedStacked_; }
    const Counter &pageMigrations() const { return pageMigrations_; }

  protected:
    /** Device page an OS-physical page currently occupies. */
    virtual std::uint64_t devicePageOf(PageAddr phys_page) const;

    /**
     * Hook after the demand access is serviced; migrating variants
     * trigger their page movement here.
     *
     * @param when Demand request time (migration traffic is billed
     *             from here — it uses the write/fill queues and stays
     *             off the demand critical path).
     * @param fidelity Functional runs make identical migration
     *             decisions but bill no DRAM traffic; when is 0.
     */
    virtual void postAccess(Tick when, PageAddr phys_page,
                            std::uint64_t device_page, bool is_write,
                            Fidelity fidelity);

    /** True if @p device_page resides in stacked DRAM. */
    bool inStacked(std::uint64_t device_page) const
    {
        return device_page < stackedPages_;
    }

    /** Service a line of @p device_page from the right module. */
    Tick routeLine(Tick now, std::uint64_t device_page,
                   std::uint32_t line_in_page, bool is_write);

    /**
     * Bill the full 4KB page-swap traffic between an off-chip device
     * page and a stacked device page (16KB of total memory activity:
     * both modules read and write 4KB, Section II-C). Functional
     * fidelity counts the migration without touching the modules.
     */
    void billPageSwap(Tick when, std::uint64_t offchip_dev_page,
                      std::uint64_t stacked_dev_page, Fidelity fidelity);

    DramModule stacked_;
    DramModule offchip_;
    std::uint64_t stackedPages_;
    std::uint64_t totalPages_;

    Counter servicedStacked_;
    Counter servicedOffchip_;
    Counter pageMigrations_;
};

} // namespace cameo

#endif // CAMEO_ORGS_TLM_STATIC_HH
