/**
 * @file
 * TLM-Static: stacked DRAM as part of a flat OS-visible address space
 * with random, never-migrated page placement (Section II-B).
 *
 * Composition: identity mapping x static placement. The randomization
 * comes from the frame allocator's shuffled free list, which scatters
 * first-touch allocations uniformly (so about a quarter of pages land
 * in stacked memory, matching the paper's "randomly maps the pages");
 * the org itself never translates or moves anything.
 */

#ifndef CAMEO_ORGS_TLM_STATIC_HH
#define CAMEO_ORGS_TLM_STATIC_HH

#include "orgs/composed_org.hh"

namespace cameo
{

/** Two-Level Memory with static random placement. */
class TlmStaticOrg : public ComposedOrg
{
  public:
    explicit TlmStaticOrg(const OrgConfig &config);
};

} // namespace cameo

#endif // CAMEO_ORGS_TLM_STATIC_HH
