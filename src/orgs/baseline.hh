/**
 * @file
 * Baseline organization: commodity off-chip DRAM only, no stacked
 * memory. All speedups in the paper are reported relative to this
 * system's execution time.
 */

#ifndef CAMEO_ORGS_BASELINE_HH
#define CAMEO_ORGS_BASELINE_HH

#include "orgs/memory_organization.hh"

namespace cameo
{

/** Off-chip-only memory system. */
class BaselineOrg : public MemoryOrganization
{
  public:
    explicit BaselineOrg(const OrgConfig &config);

    Tick access(Tick now, LineAddr line, bool is_write, InstAddr pc,
                std::uint32_t core) override;

    void accessFunctional(LineAddr line, bool is_write, InstAddr pc,
                          std::uint32_t core) override;

    std::uint64_t visibleBytes() const override
    {
        return offchip_.capacityBytes();
    }

    void registerStats(StatRegistry &registry) override;

    DramModule &offchipModule() override { return offchip_; }
    const DramModule &offchipModule() const override { return offchip_; }

  private:
    DramModule offchip_;
};

} // namespace cameo

#endif // CAMEO_ORGS_BASELINE_HH
