/**
 * @file
 * ComposedOrg driver implementation — the routing path the old
 * TlmStaticOrg hierarchy hard-wired, now shared by every composition.
 */

#include "orgs/composed_org.hh"

#include <cassert>
#include <utility>

namespace cameo
{

ComposedOrg::ComposedOrg(const OrgConfig &config, std::string name,
                         std::unique_ptr<PageMappingPolicy> mapping,
                         std::unique_ptr<PagePlacementPolicy> placement)
    : MemoryOrganization(std::move(name)),
      stacked_("dram.stacked", config.stacked, config.stackedBytes),
      offchip_("dram.offchip", config.offchip, config.offchipBytes),
      stackedPages_(config.stackedBytes / kPageBytes),
      totalPages_((config.stackedBytes + config.offchipBytes) / kPageBytes),
      servicedStacked_("tlm.servicedStacked",
                       "accesses serviced by stacked DRAM"),
      servicedOffchip_("tlm.servicedOffchip",
                       "accesses serviced by off-chip DRAM"),
      pageMigrations_("tlm.pageMigrations", "4KB page swaps performed"),
      mapping_(std::move(mapping)), placement_(std::move(placement))
{
    assert(stackedPages_ != 0 && totalPages_ > stackedPages_);
    assert(mapping_ != nullptr && placement_ != nullptr);
    applyTimingConfig(config);
}

ComposedOrg::~ComposedOrg() = default;

Tick
ComposedOrg::routeLine(Tick now, std::uint64_t device_page,
                       std::uint32_t line_in_page, bool is_write)
{
    assert(device_page < totalPages_);
    if (inStacked(device_page)) {
        servicedStacked_.inc();
        return stacked_.request(now,
                               device_page * kLinesPerPage + line_in_page,
                               is_write, kLineBytes);
    }
    servicedOffchip_.inc();
    const std::uint64_t off_line =
        (device_page - stackedPages_) * kLinesPerPage + line_in_page;
    return offchip_.request(now, off_line, is_write, kLineBytes);
}

Tick
ComposedOrg::access(Tick now, LineAddr line, bool is_write, InstAddr pc,
                    std::uint32_t core)
{
    (void)pc;
    const PageAddr phys_page = lineToPage(line);
    // Translation first: mappings whose metadata lives in memory (the
    // Banshee PTE cache) may bill a walk and delay the data access.
    const Tick start = mapping_->beginAccess(now, phys_page, core, offchip_,
                                             Fidelity::Detailed);
    const std::uint64_t dev = mapping_->devicePageOf(phys_page);
    const auto line_in_page =
        static_cast<std::uint32_t>(line & (kLinesPerPage - 1));
    const Tick done = routeLine(start, dev, line_in_page, is_write);
    // Migration traffic drains through writeback/fill queues; bill it
    // at request time, off the demand critical path.
    placement_->onAccess(*this, start, phys_page, dev, is_write,
                         Fidelity::Detailed);
    return done;
}

void
ComposedOrg::accessFunctional(LineAddr line, bool is_write, InstAddr pc,
                              std::uint32_t core)
{
    (void)pc;
    const PageAddr phys_page = lineToPage(line);
    mapping_->beginAccess(0, phys_page, core, offchip_,
                          Fidelity::Functional);
    const std::uint64_t dev = mapping_->devicePageOf(phys_page);
    assert(dev < totalPages_);
    // Same demand-routing accounting as routeLine, minus the module
    // requests; then the same placement hook at functional fidelity.
    (inStacked(dev) ? servicedStacked_ : servicedOffchip_).inc();
    placement_->onAccess(*this, 0, phys_page, dev, is_write,
                         Fidelity::Functional);
}

void
ComposedOrg::billPageSwap(Tick when, std::uint64_t offchip_dev_page,
                          std::uint64_t stacked_dev_page, Fidelity fidelity)
{
    assert(!inStacked(offchip_dev_page) && inStacked(stacked_dev_page));
    if (fidelity == Fidelity::Detailed) {
        const std::uint64_t off_base =
            (offchip_dev_page - stackedPages_) * kLinesPerPage;
        const std::uint64_t stk_base = stacked_dev_page * kLinesPerPage;
        for (std::uint32_t i = 0; i < kLinesPerPage; ++i) {
            // Page coming in: read off-chip, write stacked.
            offchip_.request(when, off_base + i, false, kLineBytes);
            stacked_.request(when, stk_base + i, true, kLineBytes);
            // Victim going out: read stacked, write off-chip.
            stacked_.request(when, stk_base + i, false, kLineBytes);
            offchip_.request(when, off_base + i, true, kLineBytes);
        }
    }
    pageMigrations_.inc();
}

void
ComposedOrg::onPageMapped(std::uint32_t frame, std::uint32_t core,
                          PageAddr vpage)
{
    placement_->onPageMapped(*this, frame, core, vpage);
}

bool
ComposedOrg::setPageHeat(PageHeatMap heat)
{
    return placement_->setPageHeat(std::move(heat));
}

void
ComposedOrg::registerStats(StatRegistry &registry)
{
    stacked_.registerStats(registry);
    offchip_.registerStats(registry);
    registry.add(servicedStacked_);
    registry.add(servicedOffchip_);
    registry.add(pageMigrations_);
    // Legacy compositions register nothing here, keeping the snapshot
    // stats section byte-identical to the pre-refactor orgs.
    mapping_->registerStats(registry);
    placement_->registerStats(registry);
}

void
ComposedOrg::save(SnapshotWriter &w) const
{
    MemoryOrganization::save(w);
    mapping_->save(w);
    placement_->save(w);
}

void
ComposedOrg::restore(SnapshotReader &r)
{
    MemoryOrganization::restore(r);
    mapping_->restore(r);
    placement_->restore(r);
}

} // namespace cameo
