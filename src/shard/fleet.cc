#include "shard/fleet.hh"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <limits>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include <sys/select.h>
#include <sys/wait.h>
#include <unistd.h>

#include "exp/result_frame.hh"
#include "exp/shard_plan.hh"
#include "exp/stopwatch.hh"
#include "snapshot/frame.hh"
#include "util/env.hh"

extern "C" char **environ;

namespace cameo
{

namespace
{

/** write() the whole buffer, retrying short writes and EINTR. */
bool
writeAll(int fd, const std::uint8_t *data, std::size_t n)
{
    while (n > 0) {
        const ssize_t written = ::write(fd, data, n);
        if (written < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        data += written;
        n -= static_cast<std::size_t>(written);
    }
    return true;
}

/**
 * Strictly-parsed env knob with a default; malformed values warn on
 * stderr (bench_common idiom) and fall back.
 */
std::uint64_t
envUintOr(const char *name, std::uint64_t fallback)
{
    std::string error;
    const std::optional<std::uint64_t> value = envUint(name, &error);
    if (!error.empty()) {
        std::fprintf(stderr, "warning: %s (using default %llu)\n",
                     error.c_str(),
                     static_cast<unsigned long long>(fallback));
    }
    return value.value_or(fallback);
}

/** One spawned worker, as the orchestrator tracks it. */
struct ChildProc
{
    pid_t pid = -1;

    /** Read end of the worker's result pipe; -1 once closed. */
    int fd = -1;

    FrameSplitter splitter;
    Stopwatch watch;

    /** First stream-level defect seen on this worker ("" = none). */
    std::string error;
};

/** Record a stream defect, keeping only the first one per worker. */
void
noteStreamError(ChildProc &child, std::string detail)
{
    if (child.error.empty())
        child.error = std::move(detail);
}

} // namespace

int
resolveShardResultFd()
{
    std::string error;
    const std::optional<std::uint64_t> value =
        envUint(kShardResultFdEnv, &error);
    if (!error.empty()) {
        std::fprintf(stderr, "warning: %s (streaming to stdout)\n",
                     error.c_str());
        return STDOUT_FILENO;
    }
    if (!value.has_value())
        return STDOUT_FILENO;
    if (*value >
        static_cast<std::uint64_t>(std::numeric_limits<int>::max())) {
        std::fprintf(stderr,
                     "warning: %s: fd %llu out of range (streaming to "
                     "stdout)\n",
                     kShardResultFdEnv,
                     static_cast<unsigned long long>(*value));
        return STDOUT_FILENO;
    }
    return static_cast<int>(*value);
}

int
runShardWorker(const std::vector<SweepJob> &jobs, unsigned shard_index,
               unsigned shards)
{
    if (shards == 0)
        shards = 1;
    if (shard_index >= shards) {
        std::fprintf(stderr,
                     "shard worker: index %u out of range for %u "
                     "shards\n",
                     shard_index, shards);
        return 2;
    }
    const int fd = resolveShardResultFd();

    std::vector<std::string> labels;
    labels.reserve(jobs.size());
    for (const SweepJob &job : jobs)
        labels.push_back(job.label);
    const ShardPlan plan = planShards(labels, shards);
    const std::vector<std::size_t> &mine = plan.jobsOf[shard_index];

    // Test hooks (strictly parsed): stagger delays each worker's start
    // so completion order inverts shard order, and the exit hook makes
    // one worker die mid-stream; the identity and failure tests use
    // them to pin order-independence and failure propagation.
    const std::uint64_t stagger_ms =
        envUintOr("CAMEO_SHARD_STAGGER_MS", 0);
    if (stagger_ms > 0) {
        const std::uint64_t slots = shards - 1u - shard_index;
        for (std::uint64_t i = 0; i < slots * stagger_ms; ++i)
            ::usleep(1000);
    }
    const bool test_exit =
        envUintOr("CAMEO_SHARD_TEST_EXIT_SHARD",
                  std::numeric_limits<std::uint64_t>::max()) ==
        shard_index;
    const std::uint64_t exit_after =
        test_exit ? envUintOr("CAMEO_SHARD_TEST_EXIT_AFTER", 0) : 0;
    if (test_exit && exit_after == 0)
        ::_exit(3);

    std::uint64_t streamed = 0;
    for (const std::size_t index : mine) {
        ShardResultFrame frame;
        frame.shard = shard_index;
        frame.jobIndex = index;
        frame.label = jobs[index].label;
        Stopwatch watch;
        try {
            frame.result = jobs[index].run();
        } catch (const std::exception &e) {
            std::fprintf(stderr, "shard %u: job %s failed: %s\n",
                         shard_index, frame.label.c_str(), e.what());
            return 1;
        }
        frame.hostSeconds = watch.seconds();
        std::vector<std::uint8_t> stream;
        appendFrame(stream, encodeShardResult(frame));
        if (!writeAll(fd, stream.data(), stream.size())) {
            std::fprintf(stderr,
                         "shard %u: result stream write failed: %s\n",
                         shard_index, std::strerror(errno));
            return 1;
        }
        ++streamed;
        if (test_exit && streamed >= exit_after)
            ::_exit(3);
    }

    ShardDoneFrame done;
    done.shard = shard_index;
    done.jobsRun = streamed;
    std::vector<std::uint8_t> stream;
    appendFrame(stream, encodeShardDone(done));
    if (!writeAll(fd, stream.data(), stream.size())) {
        std::fprintf(stderr,
                     "shard %u: result stream write failed: %s\n",
                     shard_index, std::strerror(errno));
        return 1;
    }
    return 0;
}

FleetOutcome
runShardFleet(std::size_t num_jobs, const FleetOptions &options)
{
    FleetOutcome outcome;
    const unsigned shards = options.shards == 0 ? 1 : options.shards;
    outcome.results.resize(num_jobs);
    outcome.present.assign(num_jobs, false);
    outcome.shards.resize(shards);
    for (unsigned i = 0; i < shards; ++i)
        outcome.shards[i].shard = i;

    const Stopwatch fleet_watch;
    if (options.progress != nullptr)
        options.progress->setTotal(num_jobs);

    std::vector<ChildProc> children(shards);
    const std::size_t env_len = std::strlen(kShardResultFdEnv);
    for (unsigned i = 0; i < shards; ++i) {
        int fds[2];
        if (::pipe(fds) != 0) {
            ShardFailure failure;
            failure.shard = i;
            failure.detail =
                std::string("pipe: ") + std::strerror(errno);
            outcome.failures.push_back(std::move(failure));
            break;
        }
        const pid_t pid = ::fork();
        if (pid < 0) {
            ::close(fds[0]);
            ::close(fds[1]);
            ShardFailure failure;
            failure.shard = i;
            failure.detail =
                std::string("fork: ") + std::strerror(errno);
            outcome.failures.push_back(std::move(failure));
            break;
        }
        if (pid == 0) {
            // Worker side: keep only this pipe's write end, tell the
            // worker its number, and become the worker command.
            ::close(fds[0]);
            for (unsigned j = 0; j < i; ++j) {
                if (children[j].fd >= 0)
                    ::close(children[j].fd);
            }
            std::vector<std::string> arg_strings =
                options.workerCommand;
            arg_strings.push_back("--shard-index=" +
                                  std::to_string(i));
            std::vector<char *> argv;
            argv.reserve(arg_strings.size() + 1);
            for (std::string &arg : arg_strings)
                argv.push_back(arg.data());
            argv.push_back(nullptr);
            std::string fd_var = std::string(kShardResultFdEnv) + "=" +
                                 std::to_string(fds[1]);
            std::vector<char *> envp;
            for (char **e = environ; *e != nullptr; ++e) {
                if (std::strncmp(*e, kShardResultFdEnv, env_len) == 0 &&
                    (*e)[env_len] == '=')
                    continue;
                envp.push_back(*e);
            }
            envp.push_back(fd_var.data());
            envp.push_back(nullptr);
            ::execve(argv[0], argv.data(), envp.data());
            std::fprintf(stderr, "shard fleet: exec %s: %s\n", argv[0],
                         std::strerror(errno));
            ::_exit(127);
        }
        ::close(fds[1]);
        children[i].pid = pid;
        children[i].fd = fds[0];
        children[i].watch.restart();
    }

    // Single-threaded merge loop: drain whichever pipes have bytes,
    // reassemble frames, and store each result by its global
    // submission index — identical merged output for any completion
    // interleaving.
    while (true) {
        fd_set read_set;
        FD_ZERO(&read_set);
        int max_fd = -1;
        for (const ChildProc &child : children) {
            if (child.fd >= 0) {
                FD_SET(child.fd, &read_set);
                max_fd = std::max(max_fd, child.fd);
            }
        }
        if (max_fd < 0)
            break;
        const int ready =
            ::select(max_fd + 1, &read_set, nullptr, nullptr, nullptr);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            for (ChildProc &child : children) {
                if (child.fd >= 0) {
                    noteStreamError(child,
                                    std::string("select: ") +
                                        std::strerror(errno));
                    ::close(child.fd);
                    child.fd = -1;
                }
            }
            break;
        }
        for (unsigned i = 0; i < shards; ++i) {
            ChildProc &child = children[i];
            if (child.fd < 0 || !FD_ISSET(child.fd, &read_set))
                continue;
            std::uint8_t buffer[65536];
            const ssize_t n = ::read(child.fd, buffer, sizeof(buffer));
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                noteStreamError(child, std::string("read: ") +
                                           std::strerror(errno));
                ::close(child.fd);
                child.fd = -1;
                continue;
            }
            if (n == 0) {
                outcome.shards[i].wallSeconds = child.watch.seconds();
                if (child.splitter.pendingBytes() != 0) {
                    noteStreamError(
                        child,
                        "stream ended mid-frame (" +
                            std::to_string(
                                child.splitter.pendingBytes()) +
                            " leftover bytes)");
                }
                ::close(child.fd);
                child.fd = -1;
                continue;
            }
            child.splitter.feed(buffer, static_cast<std::size_t>(n));
            std::vector<std::uint8_t> payload;
            while (child.splitter.next(&payload)) {
                ShardFrameKind kind = ShardFrameKind::Done;
                ShardResultFrame result_frame;
                ShardDoneFrame done_frame;
                std::string error;
                if (!decodeShardFrame(std::move(payload), &kind,
                                      &result_frame, &done_frame,
                                      &error)) {
                    noteStreamError(child,
                                    "undecodable frame: " + error);
                    continue;
                }
                if (kind == ShardFrameKind::Result) {
                    const std::uint64_t index = result_frame.jobIndex;
                    if (index >= num_jobs) {
                        noteStreamError(
                            child, "job index " +
                                       std::to_string(index) +
                                       " out of range");
                    } else if (outcome.present[index]) {
                        noteStreamError(
                            child, "duplicate result for job " +
                                       std::to_string(index));
                    } else {
                        outcome.results[index] =
                            std::move(result_frame.result);
                        outcome.present[index] = true;
                        ++outcome.shards[i].jobsStreamed;
                        if (options.progress != nullptr) {
                            options.progress->jobFinished(
                                result_frame.label,
                                result_frame.hostSeconds);
                        }
                    }
                } else {
                    outcome.shards[i].doneSeen = true;
                    if (done_frame.jobsRun !=
                        outcome.shards[i].jobsStreamed) {
                        noteStreamError(
                            child,
                            "done marker claims " +
                                std::to_string(done_frame.jobsRun) +
                                " jobs, saw " +
                                std::to_string(
                                    outcome.shards[i].jobsStreamed));
                    }
                }
            }
            if (child.splitter.bad()) {
                noteStreamError(child,
                                "corrupt frame stream (impossible "
                                "frame length)");
                ::close(child.fd);
                child.fd = -1;
            }
        }
    }

    // Reap every worker and build the failure roster: nonzero exit,
    // death by signal, a defective stream, or a missing Done marker
    // each condemn the shard.
    for (unsigned i = 0; i < shards; ++i) {
        ChildProc &child = children[i];
        if (child.pid < 0)
            continue;
        int status = 0;
        pid_t reaped;
        do {
            reaped = ::waitpid(child.pid, &status, 0);
        } while (reaped < 0 && errno == EINTR);

        ShardFailure failure;
        failure.shard = i;
        bool failed = false;
        if (reaped < 0) {
            failed = true;
            failure.detail =
                std::string("waitpid: ") + std::strerror(errno);
        } else if (WIFSIGNALED(status)) {
            failed = true;
            failure.termSignal = WTERMSIG(status);
            failure.detail = "killed by signal " +
                             std::to_string(failure.termSignal);
        } else if (WIFEXITED(status)) {
            failure.exitCode = WEXITSTATUS(status);
            if (failure.exitCode != 0) {
                failed = true;
                failure.detail = "exited with code " +
                                 std::to_string(failure.exitCode);
            }
        }
        if (!failed && !outcome.shards[i].doneSeen) {
            failed = true;
            failure.detail = "stream ended without Done marker";
        }
        if (!child.error.empty()) {
            if (failed)
                failure.detail += "; " + child.error;
            else
                failure.detail = child.error;
            failed = true;
        }
        if (failed)
            outcome.failures.push_back(std::move(failure));
    }

    for (std::size_t j = 0; j < num_jobs; ++j) {
        if (!outcome.present[j])
            outcome.missing.push_back(j);
    }
    outcome.wallSeconds = fleet_watch.seconds();
    return outcome;
}

void
writeShardResultsCsv(std::ostream &os,
                     const std::vector<RunResult> &results)
{
    os << "org,workload,category,exec_time,kernel_steps,truncated,"
          "instructions,accesses,warmup_accesses,l3_hits,l3_misses,"
          "stacked_bytes,offchip_bytes,storage_bytes,major_faults,"
          "minor_faults,serviced_stacked,serviced_offchip,swaps,"
          "llp_case0,llp_case1,llp_case2,llp_case3,llp_case4,"
          "llp_accuracy,page_migrations\n";
    for (const RunResult &r : results) {
        char accuracy[40];
        std::snprintf(accuracy, sizeof(accuracy), "%.17g",
                      r.llpAccuracy);
        os << r.orgName << ',' << r.workload << ','
           << static_cast<unsigned>(r.category) << ',' << r.execTime
           << ',' << r.kernelSteps << ','
           << static_cast<unsigned>(r.truncated) << ','
           << r.instructions << ',' << r.accesses << ','
           << r.warmupAccesses << ',' << r.l3Hits << ',' << r.l3Misses
           << ',' << r.stackedBytes << ',' << r.offchipBytes << ','
           << r.storageBytes << ',' << r.majorFaults << ','
           << r.minorFaults << ',' << r.servicedStacked << ','
           << r.servicedOffchip << ',' << r.swaps;
        for (const std::uint64_t c : r.llpCases)
            os << ',' << c;
        os << ',' << accuracy << ',' << r.pageMigrations << '\n';
    }
}

} // namespace cameo
