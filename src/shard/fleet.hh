/**
 * @file
 * Cross-process shard fleet: spawn N worker processes, stream framed
 * results back over pipes, and merge them deterministically.
 *
 * The fleet extends the sweep engine's submission-order determinism
 * (exp/sweep.hh) across process boundaries. The orchestrator spawns
 * one worker per shard — the worker command is the caller's own
 * binary in worker mode, told its slot with an appended
 * --shard-index=i — and each worker independently computes the same
 * ShardPlan (exp/shard_plan.hh), runs its assigned jobs in global
 * submission order, and streams one versioned result frame
 * (exp/result_frame.hh) per finished job over its pipe, followed by a
 * Done marker. The orchestrator's single-threaded select() loop
 * reassembles frames (snapshot/frame.hh) from arbitrarily interleaved
 * chunks and stores each result by its *global submission index*, so
 * the merged result vector — and any output derived from it — is
 * byte-identical to the single-process sweep at any shard count and
 * any completion interleaving (DESIGN.md §15).
 *
 * Failure semantics: a worker that exits nonzero, dies on a signal, or
 * closes its pipe before its Done marker yields ShardFailure entries
 * and missing job indices in the FleetOutcome; callers must treat
 * !ok() as fatal (nonzero exit) and never publish partial merges.
 *
 * Wall-clock telemetry (per-shard and fleet-wide) comes from
 * exp/stopwatch — the one sanctioned host clock — and never enters
 * deterministic output.
 */

#ifndef CAMEO_SHARD_FLEET_HH
#define CAMEO_SHARD_FLEET_HH

#include <cstddef>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "exp/progress.hh"
#include "exp/sweep.hh"

namespace cameo
{

/** Env var naming the fd a worker writes result frames to. */
inline constexpr const char *kShardResultFdEnv =
    "CAMEO_SHARD_RESULT_FD";

/** One worker process's failure, for the roster. */
struct ShardFailure
{
    unsigned shard = 0;

    /** Exit code when the worker exited; -1 when killed by signal. */
    int exitCode = -1;

    /** Terminating signal; 0 when the worker exited. */
    int termSignal = 0;

    std::string detail;
};

/** Per-worker stream accounting. */
struct ShardProcTelemetry
{
    unsigned shard = 0;
    std::uint64_t jobsStreamed = 0;
    bool doneSeen = false;

    /** Spawn-to-EOF wall time of this worker (host telemetry). */
    double wallSeconds = 0.0;
};

/** Knobs for one fleet launch. */
struct FleetOptions
{
    /** Worker process count (>= 1). */
    unsigned shards = 1;

    /**
     * Worker argv (argv[0] = executable path). The fleet appends
     * --shard-index=<i> for slot i; the command must already carry
     * everything else the worker needs to rebuild the job list
     * (typically the orchestrator's own argv plus --worker and
     * --shards=<n>).
     */
    std::vector<std::string> workerCommand;

    /** Optional cross-process progress sink (not owned). */
    ProgressReporter *progress = nullptr;
};

/** Everything a fleet launch produces. */
struct FleetOutcome
{
    /** Merged results in global submission order; results[i] is only
     *  meaningful when present[i]. */
    std::vector<RunResult> results;
    std::vector<bool> present;

    /** Submission indices no worker streamed a result for. */
    std::vector<std::size_t> missing;

    /** Failure roster (empty on success). */
    std::vector<ShardFailure> failures;

    std::vector<ShardProcTelemetry> shards;

    /** Fleet wall time, spawn to last EOF (host telemetry). */
    double wallSeconds = 0.0;

    /** Every job present and every worker exited cleanly. */
    bool ok() const { return failures.empty() && missing.empty(); }
};

/**
 * Spawn options.shards workers and merge their result streams for a
 * sweep of @p num_jobs total jobs. Blocks until every worker exited.
 */
FleetOutcome runShardFleet(std::size_t num_jobs,
                           const FleetOptions &options);

/**
 * Worker side: run this process's share of @p jobs (shard
 * @p shard_index of @p shards, per ShardPlan over the job labels) in
 * global submission order, streaming one result frame per job plus a
 * final Done marker to the fd named by CAMEO_SHARD_RESULT_FD (default:
 * stdout). Returns the process exit code (0 on success).
 */
int runShardWorker(const std::vector<SweepJob> &jobs,
                   unsigned shard_index, unsigned shards);

/**
 * The fd a worker streams frames to: CAMEO_SHARD_RESULT_FD, strictly
 * parsed; malformed values warn on stderr and fall back to stdout.
 */
int resolveShardResultFd();

/**
 * Write @p results as deterministic CSV in submission order. Shared by
 * cameo-shard and bench/perf_shard so their byte-equality checks
 * compare identical serializations. Contains no host-side values.
 */
void writeShardResultsCsv(std::ostream &os,
                          const std::vector<RunResult> &results);

} // namespace cameo

#endif // CAMEO_SHARD_FLEET_HH
