#include "stats/counter.hh"

// Counter is header-only; this translation unit exists so the stats
// library always has at least one object file per public header and to
// hold future out-of-line additions.
