#include "stats/registry.hh"

#include <cassert>
#include <iomanip>

namespace cameo
{

void
StatRegistry::add(Counter &counter)
{
    assert(findCounter(counter.name()) == nullptr &&
           "duplicate counter name");
#if CAMEO_AUDIT_ENABLED
    auditor_.onRegister(counter.name());
#endif
    counters_.push_back(&counter);
}

void
StatRegistry::add(Distribution &dist)
{
    assert(findDistribution(dist.name()) == nullptr &&
           "duplicate distribution name");
#if CAMEO_AUDIT_ENABLED
    auditor_.onRegister(dist.name());
#endif
    dists_.push_back(&dist);
}

Counter &
StatRegistry::makeCounter(std::string name, std::string desc)
{
    owned_.push_back(
        std::make_unique<Counter>(std::move(name), std::move(desc)));
    Counter &c = *owned_.back();
    add(c);
    return c;
}

const Counter *
StatRegistry::findCounter(const std::string &name) const
{
    for (const Counter *c : counters_) {
        if (c->name() == name)
            return c;
    }
    return nullptr;
}

const Distribution *
StatRegistry::findDistribution(const std::string &name) const
{
    for (const Distribution *d : dists_) {
        if (d->name() == name)
            return d;
    }
    return nullptr;
}

void
StatRegistry::resetAll()
{
    for (Counter *c : counters_)
        c->reset();
    for (Distribution *d : dists_)
        d->reset();
}

void
StatRegistry::save(SnapshotWriter &w) const
{
    w.u64(counters_.size());
    for (const Counter *c : counters_) {
        w.str(c->name());
        w.u64(c->value());
    }
    w.u64(dists_.size());
    for (const Distribution *d : dists_) {
        w.str(d->name());
        w.vecU64(d->buckets());
        w.u64(d->overflow());
        w.u64(d->count());
        w.u64(d->sum());
        w.u64(d->minValue());
        w.u64(d->maxValue());
    }
}

void
StatRegistry::restore(SnapshotReader &r)
{
    const std::uint64_t nCounters = r.u64();
    if (nCounters != counters_.size()) {
        r.fail("stats: snapshot has " + std::to_string(nCounters) +
               " counters, this system registers " +
               std::to_string(counters_.size()));
        return;
    }
    for (Counter *c : counters_) {
        const std::string name = r.str();
        const std::uint64_t value = r.u64();
        if (!r.ok())
            return;
        if (name != c->name()) {
            r.fail("stats: counter order mismatch: snapshot has '" +
                   name + "', this system registers '" + c->name() +
                   "'");
            return;
        }
        c->restoreValue(value);
    }
    const std::uint64_t nDists = r.u64();
    if (nDists != dists_.size()) {
        r.fail("stats: snapshot has " + std::to_string(nDists) +
               " distributions, this system registers " +
               std::to_string(dists_.size()));
        return;
    }
    for (Distribution *d : dists_) {
        const std::string name = r.str();
        std::vector<std::uint64_t> buckets;
        r.vecU64(buckets);
        const std::uint64_t overflow = r.u64();
        const std::uint64_t count = r.u64();
        const std::uint64_t sum = r.u64();
        const std::uint64_t min = r.u64();
        const std::uint64_t max = r.u64();
        if (!r.ok())
            return;
        if (name != d->name()) {
            r.fail("stats: distribution order mismatch: snapshot has '" +
                   name + "', this system registers '" + d->name() +
                   "'");
            return;
        }
        if (!d->restoreState(buckets, overflow, count, sum, min, max)) {
            r.fail("stats: distribution '" + name + "' has " +
                   std::to_string(buckets.size()) +
                   " buckets in the snapshot, " +
                   std::to_string(d->buckets().size()) +
                   " in this system");
            return;
        }
    }
}

void
StatRegistry::dump(std::ostream &os) const
{
    for (const Counter *c : counters_) {
        os << std::left << std::setw(44) << c->name() << " "
           << std::right << std::setw(16) << c->value() << "  # "
           << c->desc() << "\n";
    }
    for (const Distribution *d : dists_) {
        os << std::left << std::setw(44) << d->name() << " count="
           << d->count() << " mean=" << d->mean() << " min="
           << (d->count() ? d->minValue() : 0) << " max=" << d->maxValue();
        if (d->hasHistogram()) {
            os << " p50=" << d->percentile(0.50)
               << " p95=" << d->percentile(0.95)
               << " p99=" << d->percentile(0.99);
        }
        os << "  # " << d->desc() << "\n";
    }
}

void
StatRegistry::dumpJson(std::ostream &os) const
{
    os << "{\n";
    bool first = true;
    const auto sep = [&] {
        if (!first)
            os << ",\n";
        first = false;
    };
    for (const Counter *c : counters_) {
        sep();
        os << "  \"" << c->name() << "\": " << c->value();
    }
    for (const Distribution *d : dists_) {
        sep();
        os << "  \"" << d->name() << "\": {\"count\": " << d->count()
           << ", \"sum\": " << d->sum()
           << ", \"min\": " << (d->count() ? d->minValue() : 0)
           << ", \"max\": " << d->maxValue()
           << ", \"mean\": " << d->mean();
        if (d->hasHistogram()) {
            os << ", \"p50\": " << d->percentile(0.50)
               << ", \"p95\": " << d->percentile(0.95)
               << ", \"p99\": " << d->percentile(0.99);
        }
        os << "}";
    }
    os << "\n}\n";
}

void
StatRegistry::dumpCsv(std::ostream &os) const
{
    os << "name,value,count,sum,min,max,mean,p50,p95,p99\n";
    for (const Counter *c : counters_)
        os << c->name() << "," << c->value() << ",,,,,,,,\n";
    for (const Distribution *d : dists_) {
        os << d->name() << ",," << d->count() << "," << d->sum() << ","
           << (d->count() ? d->minValue() : 0) << "," << d->maxValue()
           << "," << d->mean() << ",";
        if (d->hasHistogram()) {
            os << d->percentile(0.50) << "," << d->percentile(0.95) << ","
               << d->percentile(0.99);
        } else {
            os << ",,";
        }
        os << "\n";
    }
}

} // namespace cameo
