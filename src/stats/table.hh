/**
 * @file
 * Plain-text table formatting for bench output.
 *
 * Every bench binary regenerates one of the paper's figures or tables as
 * a text table (rows = workloads or categories, columns = designs). This
 * helper right-aligns numeric cells, left-aligns the first column, and
 * prints a ruled header, so all benches share one look.
 */

#ifndef CAMEO_STATS_TABLE_HH
#define CAMEO_STATS_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace cameo
{

/** A simple column-aligned text table. */
class TextTable
{
  public:
    /** @param title Printed above the table. */
    explicit TextTable(std::string title);

    /** Set the header row. Must be called before addRow. */
    void setHeader(std::vector<std::string> header);

    /** Append a row; cell count must match the header. */
    void addRow(std::vector<std::string> row);

    /** Convenience: format a double with @p precision digits. */
    static std::string cell(double value, int precision = 2);

    /** Convenience: format an integer cell. */
    static std::string cell(std::uint64_t value);

    /** Render to a stream. */
    void print(std::ostream &os) const;

    std::size_t numRows() const { return rows_.size(); }

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace cameo

#endif // CAMEO_STATS_TABLE_HH
