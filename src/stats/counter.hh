/**
 * @file
 * Named statistic counters.
 *
 * A Counter is a cheap uint64 accumulator with a name and description;
 * components own their counters and optionally register them with a
 * StatRegistry for uniform dumping. The design follows the gem5 stats
 * package in spirit but is deliberately tiny: this simulator's figures
 * of merit are execution time and byte counts, not exotic statistics.
 */

#ifndef CAMEO_STATS_COUNTER_HH
#define CAMEO_STATS_COUNTER_HH

#include <cstdint>
#include <string>

namespace cameo
{

/** A named monotonically increasing counter. */
class Counter
{
  public:
    Counter() = default;

    /**
     * @param name Dotted hierarchical name, e.g. "dram.stacked.readBytes".
     * @param desc One-line human description.
     */
    Counter(std::string name, std::string desc)
        : name_(std::move(name)), desc_(std::move(desc))
    {}

    void inc(std::uint64_t amount = 1) { value_ += amount; }
    void reset() { value_ = 0; }

    /** Overwrite the value from a snapshot (checkpoint restore only). */
    void restoreValue(std::uint64_t v) { value_ = v; }

    /**
     * Fold another counter's tally into this one (sharded-sweep stat
     * merge): values add, name and description stay ours. Merging the
     * per-shard tallies of a partitioned run reproduces the unsplit
     * counter exactly.
     */
    void merge(const Counter &other) { value_ += other.value_; }

    std::uint64_t value() const { return value_; }
    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

    Counter &operator+=(std::uint64_t amount)
    {
        value_ += amount;
        return *this;
    }

  private:
    std::string name_;
    std::string desc_;
    std::uint64_t value_ = 0;
};

} // namespace cameo

#endif // CAMEO_STATS_COUNTER_HH
