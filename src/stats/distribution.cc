#include "stats/distribution.hh"

#include <algorithm>
#include <cmath>

namespace cameo
{

Distribution::Distribution(std::string name, std::string desc,
                           std::uint64_t bucket_width,
                           std::size_t num_buckets)
    : name_(std::move(name)), desc_(std::move(desc)),
      bucketWidth_(bucket_width)
{
    if (bucket_width != 0 && num_buckets != 0)
        buckets_.assign(num_buckets, 0);
}

void
Distribution::sample(std::uint64_t value)
{
    ++count_;
    sum_ += value;
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
    if (!buckets_.empty()) {
        const std::uint64_t idx = value / bucketWidth_;
        if (idx < buckets_.size())
            ++buckets_[idx];
        else
            ++overflow_;
    }
}

void
Distribution::reset()
{
    count_ = 0;
    sum_ = 0;
    min_ = ~std::uint64_t{0};
    max_ = 0;
    overflow_ = 0;
    std::fill(buckets_.begin(), buckets_.end(), 0);
}

bool
Distribution::merge(const Distribution &other)
{
    if (bucketWidth_ != other.bucketWidth_ ||
        buckets_.size() != other.buckets_.size()) {
        return false;
    }
    for (std::size_t i = 0; i < buckets_.size(); ++i)
        buckets_[i] += other.buckets_[i];
    overflow_ += other.overflow_;
    count_ += other.count_;
    sum_ += other.sum_;
    // An empty operand carries the identity extremes (~0, 0), so the
    // min/max folds below are no-ops for it on either side.
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    return true;
}

bool
Distribution::restoreState(const std::vector<std::uint64_t> &buckets,
                           std::uint64_t overflow, std::uint64_t count,
                           std::uint64_t sum, std::uint64_t min,
                           std::uint64_t max)
{
    if (buckets.size() != buckets_.size())
        return false;
    buckets_ = buckets;
    overflow_ = overflow;
    count_ = count;
    sum_ = sum;
    min_ = min;
    max_ = max;
    return true;
}

double
Distribution::mean() const
{
    if (count_ == 0)
        return 0.0;
    return static_cast<double>(sum_) / static_cast<double>(count_);
}

double
Distribution::percentile(double p) const
{
    if (count_ == 0 || buckets_.empty())
        return 0.0;
    if (std::isnan(p))
        return 0.0;
    // Out-of-range p clamps to the exact observed extremes, which also
    // answers p == 0 and p == 1 without interpolation error (and keeps
    // all-overflow histograms honest for small p).
    if (p <= 0.0)
        return static_cast<double>(min_);
    if (p >= 1.0)
        return static_cast<double>(max_);
    if (min_ == max_)
        return static_cast<double>(min_);
    const double target = p * static_cast<double>(count_);
    const auto clamped = [this](double v) {
        return std::clamp(v, static_cast<double>(min_),
                          static_cast<double>(max_));
    };
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        const std::uint64_t in_bucket = buckets_[i];
        if (in_bucket != 0 &&
            static_cast<double>(cum + in_bucket) >= target) {
            const double within =
                (target - static_cast<double>(cum)) /
                static_cast<double>(in_bucket);
            const double lo =
                static_cast<double>(i) * static_cast<double>(bucketWidth_);
            return clamped(lo +
                           within * static_cast<double>(bucketWidth_));
        }
        cum += in_bucket;
    }
    // Target rank lies in the overflow bucket.
    return static_cast<double>(max_);
}

} // namespace cameo
