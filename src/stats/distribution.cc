#include "stats/distribution.hh"

#include <algorithm>

namespace cameo
{

Distribution::Distribution(std::string name, std::string desc,
                           std::uint64_t bucket_width,
                           std::size_t num_buckets)
    : name_(std::move(name)), desc_(std::move(desc)),
      bucketWidth_(bucket_width)
{
    if (bucket_width != 0 && num_buckets != 0)
        buckets_.assign(num_buckets, 0);
}

void
Distribution::sample(std::uint64_t value)
{
    ++count_;
    sum_ += value;
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
    if (!buckets_.empty()) {
        const std::uint64_t idx = value / bucketWidth_;
        if (idx < buckets_.size())
            ++buckets_[idx];
        else
            ++overflow_;
    }
}

void
Distribution::reset()
{
    count_ = 0;
    sum_ = 0;
    min_ = ~std::uint64_t{0};
    max_ = 0;
    overflow_ = 0;
    std::fill(buckets_.begin(), buckets_.end(), 0);
}

double
Distribution::mean() const
{
    if (count_ == 0)
        return 0.0;
    return static_cast<double>(sum_) / static_cast<double>(count_);
}

} // namespace cameo
