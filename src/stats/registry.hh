/**
 * @file
 * StatRegistry: a per-simulation collection of counters and
 * distributions for uniform dumping and programmatic lookup.
 *
 * Components keep raw pointers into the registry; the registry owns
 * nothing by default (components own their stats and register them) but
 * can also create owned counters for ad-hoc use. There is deliberately
 * no global registry: each System instance builds its own so that
 * side-by-side configurations (the common case in benches) never share
 * state.
 */

#ifndef CAMEO_STATS_REGISTRY_HH
#define CAMEO_STATS_REGISTRY_HH

#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "check/audit.hh"
#include "snapshot/snapshot.hh"
#include "stats/counter.hh"
#include "stats/distribution.hh"
#if CAMEO_AUDIT_ENABLED
#include "check/stat_auditor.hh"
#endif

namespace cameo
{

/** Collection of statistics for one simulated system. */
class StatRegistry
{
  public:
    StatRegistry() = default;

    StatRegistry(const StatRegistry &) = delete;
    StatRegistry &operator=(const StatRegistry &) = delete;

    /** Register an externally owned counter. Name must be unique. */
    void add(Counter &counter);

    /** Register an externally owned distribution. Name must be unique. */
    void add(Distribution &dist);

    /** Create and own a counter; returned reference lives as long as
     *  the registry. */
    Counter &makeCounter(std::string name, std::string desc);

    /** Look up a counter by exact name; nullptr if absent. */
    const Counter *findCounter(const std::string &name) const;

    /** Look up a distribution by exact name; nullptr if absent. */
    const Distribution *findDistribution(const std::string &name) const;

    /** Reset every registered statistic to zero. */
    void resetAll();

    /** Dump all statistics, one per line, in registration order. */
    void dump(std::ostream &os) const;

    /**
     * Dump all statistics as a JSON object: counters as integers,
     * distributions as {count, sum, min, max, mean} objects. Stable
     * key order (registration order) for diffability.
     */
    void dumpJson(std::ostream &os) const;

    /**
     * Dump all statistics as CSV with a fixed header row
     * (name,value,count,sum,min,max,mean,p50,p95,p99): counters fill
     * only the value column; distributions fill the rest, with the
     * percentile columns present only when a histogram was configured.
     */
    void dumpCsv(std::ostream &os) const;

    const std::vector<Counter *> &counters() const { return counters_; }
    const std::vector<Distribution *> &distributions() const
    {
        return dists_;
    }

    /**
     * Serialize every registered statistic (names + values, in
     * registration order) into one snapshot section payload.
     */
    void save(SnapshotWriter &w) const;

    /**
     * Restore values into the already-registered statistics. The
     * registered set is structural (it comes from System construction):
     * any count, name, or histogram-shape mismatch flags @p r.
     */
    void restore(SnapshotReader &r);

  private:
    std::vector<Counter *> counters_;
    std::vector<Distribution *> dists_;
    std::vector<std::unique_ptr<Counter>> owned_;

#if CAMEO_AUDIT_ENABLED
    /** Flags duplicate names across counters and distributions. */
    StatAuditor auditor_;
#endif
};

} // namespace cameo

#endif // CAMEO_STATS_REGISTRY_HH
