/**
 * @file
 * Streaming distribution statistic: count / sum / min / max / mean plus
 * a fixed-width histogram. Used for memory-latency and queueing-delay
 * profiles in tests and benches.
 */

#ifndef CAMEO_STATS_DISTRIBUTION_HH
#define CAMEO_STATS_DISTRIBUTION_HH

#include <cstdint>
#include <string>
#include <vector>

namespace cameo
{

/** Streaming samples with an optional bucketed histogram. */
class Distribution
{
  public:
    Distribution() = default;

    /**
     * @param name         Dotted hierarchical name.
     * @param desc         One-line description.
     * @param bucket_width Histogram bucket width; 0 disables histogram.
     * @param num_buckets  Number of buckets; samples beyond the last
     *                     bucket are accumulated in an overflow bucket.
     */
    Distribution(std::string name, std::string desc,
                 std::uint64_t bucket_width = 0, std::size_t num_buckets = 0);

    /** Record one sample. */
    void sample(std::uint64_t value);

    void reset();

    std::uint64_t count() const { return count_; }
    std::uint64_t sum() const { return sum_; }
    std::uint64_t minValue() const { return min_; }
    std::uint64_t maxValue() const { return max_; }
    double mean() const;

    /**
     * Estimate the @p p quantile from the histogram by linear
     * interpolation inside the bucket holding the target rank, clamped
     * to the exact observed [min, max]. Samples in the overflow bucket
     * resolve to max. Edge cases: p <= 0 returns the observed min,
     * p >= 1 the observed max (out-of-range p clamps to those); NaN p,
     * an empty distribution, or one built without a histogram return 0.
     */
    double percentile(double p) const;

    /** True when percentile() has a histogram to work from. */
    bool hasHistogram() const { return !buckets_.empty(); }

    /** Histogram access (empty if histogram disabled). */
    const std::vector<std::uint64_t> &buckets() const { return buckets_; }
    std::uint64_t overflow() const { return overflow_; }
    std::uint64_t bucketWidth() const { return bucketWidth_; }

    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

    /**
     * Fold another distribution's samples into this one (sharded-sweep
     * stat merge). Requires an identical histogram shape (bucket width
     * and bucket count); returns false and leaves this distribution
     * untouched on a mismatch. Counts, sums, per-bucket tallies and the
     * overflow bucket add; min/max take the extremes. Because
     * percentile() is a pure function of exactly that state, any
     * percentile of the merged distribution equals the percentile of
     * the unsplit sample stream — merge-then-query and
     * query-after-sampling-everything are the same computation
     * (tests/test_shard.cc pins this across random partitions).
     */
    bool merge(const Distribution &other);

    /**
     * Overwrite sample state from a snapshot (checkpoint restore only).
     * @p buckets must match the configured bucket count — the histogram
     * shape is structural (it comes from the constructor), only the
     * tallies are data. Returns false on a shape mismatch.
     */
    bool restoreState(const std::vector<std::uint64_t> &buckets,
                      std::uint64_t overflow, std::uint64_t count,
                      std::uint64_t sum, std::uint64_t min,
                      std::uint64_t max);

  private:
    std::string name_;
    std::string desc_;
    std::uint64_t bucketWidth_ = 0;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t overflow_ = 0;
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = ~std::uint64_t{0};
    std::uint64_t max_ = 0;
};

} // namespace cameo

#endif // CAMEO_STATS_DISTRIBUTION_HH
