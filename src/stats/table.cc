#include "stats/table.hh"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <iomanip>
#include <sstream>

namespace cameo
{

TextTable::TextTable(std::string title) : title_(std::move(title)) {}

void
TextTable::setHeader(std::vector<std::string> header)
{
    assert(rows_.empty() && "header must be set before rows");
    header_ = std::move(header);
}

void
TextTable::addRow(std::vector<std::string> row)
{
    assert(row.size() == header_.size() && "row width mismatch");
    rows_.push_back(std::move(row));
}

std::string
TextTable::cell(double value, int precision)
{
    std::ostringstream ss;
    ss << std::fixed << std::setprecision(precision) << value;
    return ss.str();
}

std::string
TextTable::cell(std::uint64_t value)
{
    return std::to_string(value);
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t i = 0; i < header_.size(); ++i)
        widths[i] = header_[i].size();
    for (const auto &row : rows_) {
        for (std::size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    }

    os << "== " << title_ << " ==\n";
    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            if (i == 0)
                os << std::left << std::setw(static_cast<int>(widths[i]))
                   << row[i];
            else
                os << "  " << std::right
                   << std::setw(static_cast<int>(widths[i])) << row[i];
        }
        os << "\n";
    };
    print_row(header_);
    std::size_t total = 0;
    for (std::size_t w : widths)
        total += w + 2;
    os << std::string(total, '-') << "\n";
    for (const auto &row : rows_)
        print_row(row);
    os.flush();
}

} // namespace cameo
