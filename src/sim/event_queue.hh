/**
 * @file
 * A minimal discrete-event queue.
 *
 * The main simulation loop (SimKernel) advances core agents by local
 * clock, but a few components want to schedule deferred callbacks (e.g.
 * epoch-based page migration in TLM-Freq, delayed stat snapshots in
 * tests). EventQueue provides that: (tick, sequence)-ordered callbacks
 * with deterministic FIFO tie-breaking.
 */

#ifndef CAMEO_SIM_EVENT_QUEUE_HH
#define CAMEO_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/types.hh"

namespace cameo
{

/** Ordered callback queue; ties broken by insertion order. */
class EventQueue
{
  public:
    using Callback = std::function<void(Tick)>;

    EventQueue() = default;

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /**
     * Schedule @p cb to run at @p when. Scheduling in the past (before
     * the last executed tick) is a caller bug and asserts.
     */
    void schedule(Tick when, Callback cb);

    /** True when no events remain. */
    bool empty() const { return heap_.empty(); }

    /** Tick of the earliest pending event. Precondition: !empty(). */
    Tick nextTick() const;

    /** Tick of the most recently executed event (0 before any). */
    Tick curTick() const { return curTick_; }

    /** Execute exactly the earliest event. Precondition: !empty(). */
    void runOne();

    /** Execute all events with tick <= @p limit. */
    void runUntil(Tick limit);

    /** Execute everything. Returns the tick of the last event run. */
    Tick runAll();

    std::size_t size() const { return heap_.size(); }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    std::uint64_t nextSeq_ = 0;
    Tick curTick_ = 0;
};

} // namespace cameo

#endif // CAMEO_SIM_EVENT_QUEUE_HH
