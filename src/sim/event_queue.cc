#include "sim/event_queue.hh"

#include <cassert>
#include <utility>

namespace cameo
{

void
EventQueue::schedule(Tick when, Callback cb)
{
    assert(when >= curTick_ && "scheduling into the past");
    heap_.push(Entry{when, nextSeq_++, std::move(cb)});
}

Tick
EventQueue::nextTick() const
{
    assert(!heap_.empty());
    return heap_.top().when;
}

void
EventQueue::runOne()
{
    assert(!heap_.empty());
    // priority_queue::top() is const; move out via const_cast is UB-free
    // here because we pop immediately, but copy instead for clarity.
    Entry e = heap_.top();
    heap_.pop();
    curTick_ = e.when;
    e.cb(e.when);
}

void
EventQueue::runUntil(Tick limit)
{
    while (!heap_.empty() && heap_.top().when <= limit)
        runOne();
}

Tick
EventQueue::runAll()
{
    while (!heap_.empty())
        runOne();
    return curTick_;
}

} // namespace cameo
