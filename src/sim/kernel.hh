/**
 * @file
 * SimKernel: interleaves per-core agents in global-time order.
 *
 * Each CPU core in the trace-driven model is an Agent with a local
 * clock. The kernel repeatedly steps the agent with the smallest local
 * clock, so requests arrive at the shared memory system in (approximate)
 * global order — the standard event-merged approach for multi-core
 * trace simulation. Agents report when they are finished; the kernel
 * returns the time at which the *last* agent finished, which is the
 * paper's figure of merit for rate-mode workloads.
 */

#ifndef CAMEO_SIM_KERNEL_HH
#define CAMEO_SIM_KERNEL_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "check/audit.hh"
#include "sim/event_queue.hh"
#include "util/types.hh"
#if CAMEO_AUDIT_ENABLED
#include "check/kernel_auditor.hh"
#endif

namespace cameo
{

/**
 * An entity with a local clock that makes forward progress in steps.
 * Typically a CPU core consuming a synthetic trace.
 */
class Agent
{
  public:
    virtual ~Agent() = default;

    /** Local time before which this agent cannot do more work. */
    virtual Tick nextReadyTick() const = 0;

    /** True once the agent has retired all of its work. */
    virtual bool done() const = 0;

    /**
     * True while the agent cannot make progress until an event-queue
     * completion arrives (e.g. a core whose miss window is full of
     * unresolved requests in queued timing). A blocked agent is parked
     * — removed from the dispatch heap — and re-enters it after an
     * event clears the condition. Blocking-timing agents never block.
     */
    virtual bool blocked() const { return false; }

    /**
     * Perform one unit of work (typically: process one trace record),
     * advancing the local clock.
     */
    virtual void step() = 0;
};

/** Steps a set of agents in global-time order until all are done. */
class SimKernel
{
  public:
    SimKernel() = default;

    SimKernel(const SimKernel &) = delete;
    SimKernel &operator=(const SimKernel &) = delete;

    /** Register an agent; the kernel does not take ownership. */
    void addAgent(Agent *agent);

    /**
     * Run until every agent reports done (or @p max_steps is hit, as a
     * runaway guard). Returns the maximum nextReadyTick across agents,
     * i.e. the completion time of the slowest agent.
     *
     * A truncated run (agents still unfinished when @p max_steps was
     * reached) is flagged via hitStepLimit(); callers that pass a limit
     * should check it, because the returned "completion" time of a
     * truncated run understates the real one.
     *
     * When @p stop is non-empty it is evaluated after every agent step;
     * once it returns true the kernel breaks immediately — without
     * draining pending events and without computing hitStepLimit() —
     * leaving the system mid-flight for a checkpoint. Such a run is
     * flagged via stoppedEarly() and can be continued by calling run()
     * again: the dispatch heap is rebuilt from the agents' live state
     * (blocked agents are parked, not lost).
     */
    Tick run(std::uint64_t max_steps = ~std::uint64_t{0},
             const std::function<bool()> &stop = {});

    /** Agent steps executed by the most recent run(). */
    std::uint64_t stepsExecuted() const { return stepsExecuted_; }

    /**
     * True when the most recent run() stopped at its step limit with
     * at least one agent not done — i.e. the result was truncated.
     */
    bool hitStepLimit() const { return hitStepLimit_; }

    /** True when the most recent run() broke on its stop predicate. */
    bool stoppedEarly() const { return stoppedEarly_; }

    std::size_t numAgents() const { return agents_.size(); }

    /**
     * The kernel's deferred-completion queue. Queued-timing pipelines
     * (MemoryOrganization::bindEventQueue) schedule completions here;
     * run() fires every event whose tick is at or before the next
     * dispatch, so deliveries interleave with agent steps in global
     * time order with deterministic FIFO tie-breaking. Events left
     * over when the agents finish are drained before run() returns.
     */
    EventQueue &events() { return events_; }

  private:
    std::vector<Agent *> agents_;
    EventQueue events_;
    std::uint64_t stepsExecuted_ = 0;
    bool hitStepLimit_ = false;
    bool stoppedEarly_ = false;

#if CAMEO_AUDIT_ENABLED
    /** Checks dispatch-order and local-clock monotonicity per run. */
    KernelAuditor auditor_;
#endif
};

} // namespace cameo

#endif // CAMEO_SIM_KERNEL_HH
