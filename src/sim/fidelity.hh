/**
 * @file
 * Simulation fidelity axis (DESIGN.md §13).
 *
 * The simulator runs in one of two fidelities, after gem5's
 * simple_switchable_processor pattern:
 *
 *  - Fidelity::Detailed — the full timing model: DRAM bank/bus
 *    reservations, queue occupancy, SimKernel event scheduling, core
 *    clocks and miss windows. This is the only mode in which timing
 *    statistics (execTime, latencies, queue depths) are defined.
 *  - Fidelity::Functional — architectural state only: LLT swaps and
 *    permutations, LLP training, page-table/frame allocation, cache
 *    tag arrays and replacement state, TLM heat counters and RNG
 *    draws all advance exactly as in detailed mode, but no DRAM
 *    timing, no queues, and no kernel events. Roughly an order of
 *    magnitude faster per access; used to fast-forward warmup.
 *
 * WarmupPolicy selects how System spends warmupAccessesPerCore before
 * the measured region: Skip discards the records without touching any
 * state (the pre-PR-8 behaviour), Functional replays them through the
 * functional path, and Detailed runs them through the full timing
 * model (the reference the differential tests compare against).
 */

#ifndef CAMEO_SIM_FIDELITY_HH
#define CAMEO_SIM_FIDELITY_HH

namespace cameo
{

/** Simulation fidelity for one memory access. */
enum class Fidelity
{
    Functional, ///< Architectural state only; no timing, no events.
    Detailed,   ///< Full timing model.
};

/** How System treats the warmup prefix of each core's stream. */
enum class WarmupPolicy
{
    Skip,       ///< Fast-forward the trace cursor; state stays cold.
    Functional, ///< Warm state through the functional path.
    Detailed,   ///< Warm state through the full timing model.
};

/** Stable lower-case name, e.g. for CLI parsing and bench JSON. */
inline const char *
warmupPolicyName(WarmupPolicy policy)
{
    switch (policy) {
    case WarmupPolicy::Skip:
        return "skip";
    case WarmupPolicy::Functional:
        return "functional";
    case WarmupPolicy::Detailed:
        return "detailed";
    }
    return "?";
}

} // namespace cameo

#endif // CAMEO_SIM_FIDELITY_HH
