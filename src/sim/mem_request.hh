/**
 * @file
 * MemRequest: the transaction that travels the memory pipeline, and
 * MemClient, the completion-callback interface of its issuer.
 *
 * A requester (CpuCore, a test harness) hands a request to
 * MemoryOrganization::submit() instead of synchronously awaiting a
 * Tick. In Blocking timing the completion callback fires inside
 * submit() — the legacy control flow, bit-identical stats. In Queued
 * timing the completion is scheduled on the SimKernel's event queue at
 * the device completion tick and delivered when simulated time reaches
 * it, which is what lets a core park on a full miss window instead of
 * spinning its local clock forward.
 */

#ifndef CAMEO_SIM_MEM_REQUEST_HH
#define CAMEO_SIM_MEM_REQUEST_HH

#include <cstdint>

#include "util/types.hh"

namespace cameo
{

/** One in-flight memory transaction. */
struct MemRequest
{
    /** Pipeline-assigned id, unique per organization instance. */
    std::uint64_t id = 0;

    /**
     * Requester-chosen tag (kNoTag when unused). CpuCore tags load
     * misses with a monotonically increasing sequence number so the
     * completion handler can tell whether an arriving completion
     * belongs to the most recently issued load (the one dependence
     * stalls wait for).
     */
    std::uint64_t tag = 0;

    /** OS-physical line address. */
    LineAddr line = 0;

    /** L3 writeback (true) or demand fill (false). */
    bool isWrite = false;

    /** Missing instruction address (for predictors). */
    InstAddr pc = 0;

    /** Requesting core id. */
    std::uint32_t core = 0;

    /** Local time at which the request entered the pipeline. */
    Tick issueTick = 0;
};

/** MemRequest::tag value meaning "no tag". */
inline constexpr std::uint64_t kNoTag = 0;

/** Receiver of memory-request completions. */
class MemClient
{
  public:
    /**
     * @p req completed at @p done. In Blocking timing this runs inside
     * submit(); in Queued timing it runs from the event queue when
     * simulated time reaches @p done.
     */
    virtual void onMemComplete(const MemRequest &req, Tick done) = 0;

  protected:
    ~MemClient() = default;
};

} // namespace cameo

#endif // CAMEO_SIM_MEM_REQUEST_HH
