#include "sim/kernel.hh"

#include <algorithm>
#include <cassert>
#include <queue>

namespace cameo
{

void
SimKernel::addAgent(Agent *agent)
{
    assert(agent != nullptr);
    agents_.push_back(agent);
}

Tick
SimKernel::run(std::uint64_t max_steps)
{
    // Lazy-update binary heap keyed by (tick, agent index): after an
    // agent steps, push a fresh entry; stale entries are skipped when
    // their stored tick no longer matches the agent's current tick.
    using HeapEntry = std::pair<Tick, std::size_t>;
    std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                        std::greater<>> heap;

    for (std::size_t i = 0; i < agents_.size(); ++i) {
        if (!agents_[i]->done())
            heap.emplace(agents_[i]->nextReadyTick(), i);
    }

    std::uint64_t steps = 0;
    while (!heap.empty() && steps < max_steps) {
        auto [tick, idx] = heap.top();
        heap.pop();
        Agent *agent = agents_[idx];
        if (agent->done())
            continue;
        if (agent->nextReadyTick() != tick) {
            // Stale entry; reinsert with the current key.
            heap.emplace(agent->nextReadyTick(), idx);
            continue;
        }
        agent->step();
        ++steps;
        if (!agent->done())
            heap.emplace(agent->nextReadyTick(), idx);
    }

    Tick finish = 0;
    for (const Agent *agent : agents_)
        finish = std::max(finish, agent->nextReadyTick());
    return finish;
}

} // namespace cameo
