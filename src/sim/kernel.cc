#include "sim/kernel.hh"

#include <algorithm>
#include <cassert>
#include <queue>

namespace cameo
{

void
SimKernel::addAgent(Agent *agent)
{
    assert(agent != nullptr);
    agents_.push_back(agent);
}

Tick
SimKernel::run(std::uint64_t max_steps)
{
    // Lazy-update binary heap keyed by (tick, agent index): after an
    // agent steps, push a fresh entry; stale entries are skipped when
    // their stored tick no longer matches the agent's current tick.
    using HeapEntry = std::pair<Tick, std::size_t>;
    std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                        std::greater<>> heap;

    for (std::size_t i = 0; i < agents_.size(); ++i) {
        if (!agents_[i]->done())
            heap.emplace(agents_[i]->nextReadyTick(), i);
    }

    stepsExecuted_ = 0;
    hitStepLimit_ = false;
#if CAMEO_AUDIT_ENABLED
    auditor_.reset();
#endif

    while (!heap.empty() && stepsExecuted_ < max_steps) {
        auto [tick, idx] = heap.top();
        heap.pop();
        Agent *agent = agents_[idx];
        if (agent->done())
            continue;
        if (agent->nextReadyTick() != tick) {
            // Stale entry; reinsert with the current key.
            heap.emplace(agent->nextReadyTick(), idx);
            continue;
        }
#if CAMEO_AUDIT_ENABLED
        auditor_.onDispatch(idx, tick);
#endif
        agent->step();
        ++stepsExecuted_;
#if CAMEO_AUDIT_ENABLED
        auditor_.onStepped(idx, tick, agent->nextReadyTick());
#endif
        if (!agent->done())
            heap.emplace(agent->nextReadyTick(), idx);
    }

    Tick finish = 0;
    for (const Agent *agent : agents_) {
        if (!agent->done())
            hitStepLimit_ = true;
        finish = std::max(finish, agent->nextReadyTick());
    }
    return finish;
}

} // namespace cameo
