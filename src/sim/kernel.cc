#include "sim/kernel.hh"

#include <algorithm>
#include <cassert>
#include <queue>

namespace cameo
{

void
SimKernel::addAgent(Agent *agent)
{
    assert(agent != nullptr);
    agents_.push_back(agent);
}

Tick
SimKernel::run(std::uint64_t max_steps, const std::function<bool()> &stop)
{
    // Lazy-update binary heap keyed by (tick, agent index): after an
    // agent steps, push a fresh entry; stale entries are skipped when
    // their stored tick no longer matches the agent's current tick.
    using HeapEntry = std::pair<Tick, std::size_t>;
    std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                        std::greater<>> heap;

    // Agents parked on a deferred completion (blocked() == true). An
    // agent can already be blocked here when this run() continues a
    // checkpointed one — route it to `parked`, not the heap, or the
    // pop path would drop it without tracking it.
    std::vector<std::size_t> parked;

    for (std::size_t i = 0; i < agents_.size(); ++i) {
        if (agents_[i]->done())
            continue;
        if (agents_[i]->blocked())
            parked.push_back(i);
        else
            heap.emplace(agents_[i]->nextReadyTick(), i);
    }

    stepsExecuted_ = 0;
    hitStepLimit_ = false;
    stoppedEarly_ = false;
#if CAMEO_AUDIT_ENABLED
    auditor_.reset();
#endif

    const auto unpark = [&] {
        for (std::size_t i = parked.size(); i-- > 0;) {
            const std::size_t idx = parked[i];
            if (!agents_[idx]->blocked()) {
                heap.emplace(agents_[idx]->nextReadyTick(), idx);
                parked[i] = parked.back();
                parked.pop_back();
            }
        }
    };

    while (stepsExecuted_ < max_steps) {
        // Deliver completions due at or before the next dispatch so
        // deliveries and steps interleave in global-time order. With
        // no pending events (Blocking timing) this whole block is a
        // no-op and the loop reduces to the legacy dispatch loop.
        if (!events_.empty() &&
            (heap.empty() || events_.nextTick() <= heap.top().first)) {
            events_.runOne();
            unpark();
            continue;
        }
        if (heap.empty()) {
            // No runnable agent and no pending event: parked agents
            // here mean a completion was lost — break (never spin).
            CAMEO_AUDIT(parked.empty(),
                        "kernel: agents parked with no pending event");
            break;
        }
        auto [tick, idx] = heap.top();
        heap.pop();
        Agent *agent = agents_[idx];
        if (agent->done())
            continue;
        if (agent->blocked())
            continue; // stale entry; the agent is tracked in `parked`
        if (agent->nextReadyTick() != tick) {
            // Stale entry; reinsert with the current key.
            heap.emplace(agent->nextReadyTick(), idx);
            continue;
        }
#if CAMEO_AUDIT_ENABLED
        auditor_.onDispatch(idx, tick);
#endif
        agent->step();
        ++stepsExecuted_;
#if CAMEO_AUDIT_ENABLED
        auditor_.onStepped(idx, tick, agent->nextReadyTick());
#endif
        if (!agent->done()) {
            if (agent->blocked())
                parked.push_back(idx);
            else
                heap.emplace(agent->nextReadyTick(), idx);
        }
        if (stop && stop()) {
            // Checkpoint stop: leave pending events and agent state
            // exactly mid-flight; a snapshot (or a later run()) picks
            // up from here.
            stoppedEarly_ = true;
            break;
        }
    }

    if (!stoppedEarly_) {
        // Deliver completions still in flight (agents issue their last
        // misses and finish before the data returns) so finishTick()
        // and the in-flight bookkeeping settle.
        events_.runAll();
        for (const Agent *agent : agents_) {
            if (!agent->done())
                hitStepLimit_ = true;
        }
    }

    Tick finish = 0;
    for (const Agent *agent : agents_)
        finish = std::max(finish, agent->nextReadyTick());
    return finish;
}

} // namespace cameo
