/**
 * @file
 * Functional + latency model of a set-associative writeback cache.
 *
 * Used for the shared L3 (32MB, 16-way, 24 cycles in Table I; scaled
 * proportionally in the default configuration). The model is
 * trace-driven: an access returns hit/miss plus any victim that must be
 * written back; the caller (CpuCore/System) is responsible for timing
 * the resulting memory traffic.
 */

#ifndef CAMEO_CACHE_SET_ASSOC_CACHE_HH
#define CAMEO_CACHE_SET_ASSOC_CACHE_HH

#include <optional>
#include <string>
#include <vector>

#include "cache/replacement.hh"
#include "snapshot/snapshot.hh"
#include "stats/counter.hh"
#include "stats/registry.hh"
#include "util/rng.hh"
#include "util/types.hh"

namespace cameo
{

/** Result of one cache access. */
struct CacheAccessResult
{
    /** True if the line was present. */
    bool hit = false;

    /** Dirty victim line that must be written back (miss path only). */
    std::optional<LineAddr> writeback;
};

/** A set-associative, write-allocate, writeback cache. */
class SetAssocCache
{
  public:
    /** Maximum supported associativity. */
    static constexpr std::uint32_t kMaxWays = 32;

    /**
     * @param name           Stat prefix, e.g. "l3".
     * @param capacity_bytes Total data capacity (power-of-two sets).
     * @param ways           Associativity.
     * @param hit_latency    Load-to-use latency in CPU cycles.
     * @param policy         Replacement policy (default LRU).
     * @param seed           RNG seed for the Random policy.
     */
    SetAssocCache(std::string name, std::uint64_t capacity_bytes,
                  std::uint32_t ways, Tick hit_latency,
                  ReplPolicy policy = ReplPolicy::Lru,
                  std::uint64_t seed = 1);

    SetAssocCache(const SetAssocCache &) = delete;
    SetAssocCache &operator=(const SetAssocCache &) = delete;

    /**
     * Access @p line; allocates on miss (write-allocate).
     *
     * @param line     Line address (OS-physical).
     * @param is_write Marks the line dirty on hit or after allocation.
     * @return Hit/miss and any dirty victim to write back.
     */
    CacheAccessResult access(LineAddr line, bool is_write);

    /** Non-allocating presence check (no LRU update). */
    bool probe(LineAddr line) const;

    /** Drop @p line if present; returns true if it was dirty. */
    bool invalidate(LineAddr line);

    Tick hitLatency() const { return hitLatency_; }
    std::uint64_t numSets() const { return numSets_; }
    std::uint32_t numWays() const { return ways_; }
    std::uint64_t capacityBytes() const
    {
        return numSets_ * ways_ * kLineBytes;
    }

    void registerStats(StatRegistry &registry);

    /**
     * Checkpoint the tag/dirty/LRU arrays, the LRU use clock, and the
     * Random-policy RNG cursor. Geometry is structural; restore()
     * verifies it and flags @p r on mismatch. Counters travel in the
     * stats section, not here.
     */
    void save(SnapshotWriter &w) const;
    void restore(SnapshotReader &r);

    const Counter &hits() const { return hits_; }
    const Counter &misses() const { return misses_; }
    const Counter &writebacks() const { return writebacks_; }

  private:
    struct Way
    {
        LineAddr tag = 0;
        bool dirty = false;
        WayMeta meta;
    };

    std::uint64_t setOf(LineAddr line) const { return line & setMask_; }
    LineAddr tagOf(LineAddr line) const { return line >> setShift_; }

    std::string name_;
    std::uint64_t numSets_;
    std::uint64_t setMask_;
    unsigned setShift_;
    std::uint32_t ways_;
    Tick hitLatency_;
    ReplPolicy policy_;
    Rng rng_;
    std::uint64_t useClock_ = 0;
    std::vector<Way> store_; ///< numSets_ * ways_, set-major.

    Counter hits_;
    Counter misses_;
    Counter writebacks_;
};

} // namespace cameo

#endif // CAMEO_CACHE_SET_ASSOC_CACHE_HH
