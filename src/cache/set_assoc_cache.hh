/**
 * @file
 * Functional + latency model of a set-associative writeback cache.
 *
 * Used for the shared L3 (32MB, 16-way, 24 cycles in Table I; scaled
 * proportionally in the default configuration). The model is
 * trace-driven: an access returns hit/miss plus any victim that must be
 * written back; the caller (CpuCore/System) is responsible for timing
 * the resulting memory traffic.
 */

#ifndef CAMEO_CACHE_SET_ASSOC_CACHE_HH
#define CAMEO_CACHE_SET_ASSOC_CACHE_HH

#include <algorithm>
#include <bit>
#include <string>
#include <vector>

#include "cache/replacement.hh"
#include "snapshot/snapshot.hh"
#include "stats/counter.hh"
#include "stats/registry.hh"
#include "util/rng.hh"
#include "util/types.hh"

namespace cameo
{

/**
 * Result of one cache access. Deliberately a 16-byte POD — this is
 * returned once per simulated access from the hottest function in the
 * simulator, and two registers beat a hidden sret buffer.
 */
struct CacheAccessResult
{
    /** Dirty victim line to write back; meaningful when hasWriteback. */
    LineAddr writebackLine = 0;

    /** True if the line was present. */
    bool hit = false;

    /** True when a dirty victim was evicted (miss path only). */
    bool hasWriteback = false;
};

/** A set-associative, write-allocate, writeback cache. */
class SetAssocCache
{
  public:
    /** Maximum supported associativity. */
    static constexpr std::uint32_t kMaxWays = 32;

    /**
     * @param name           Stat prefix, e.g. "l3".
     * @param capacity_bytes Total data capacity (power-of-two sets).
     * @param ways           Associativity.
     * @param hit_latency    Load-to-use latency in CPU cycles.
     * @param policy         Replacement policy (default LRU).
     * @param seed           RNG seed for the Random policy.
     */
    SetAssocCache(std::string name, std::uint64_t capacity_bytes,
                  std::uint32_t ways, Tick hit_latency,
                  ReplPolicy policy = ReplPolicy::Lru,
                  std::uint64_t seed = 1);

    SetAssocCache(const SetAssocCache &) = delete;
    SetAssocCache &operator=(const SetAssocCache &) = delete;

    /**
     * Access @p line; allocates on miss (write-allocate).
     *
     * Defined inline below — one call per simulated access in both
     * fidelity modes makes this the hottest function in the simulator.
     *
     * @param line     Line address (OS-physical).
     * @param is_write Marks the line dirty on hit or after allocation.
     * @return Hit/miss and any dirty victim to write back.
     */
    CacheAccessResult access(LineAddr line, bool is_write);

    /** One-hot way mask of @p tag in a set's tag row (validity is the
     *  caller's mask). Pure data-flow; no branch depends on the tags. */
    static std::uint32_t matchMask(const LineAddr *tags,
                                   std::uint32_t ways, LineAddr tag)
    {
        std::uint32_t match = 0;
        for (std::uint32_t w = 0; w < ways; ++w)
            match |= static_cast<std::uint32_t>(tags[w] == tag) << w;
        return match;
    }

    /** Non-allocating presence check (no LRU update). */
    bool probe(LineAddr line) const;

    /** Drop @p line if present; returns true if it was dirty. */
    bool invalidate(LineAddr line);

    Tick hitLatency() const { return hitLatency_; }
    std::uint64_t numSets() const { return numSets_; }
    std::uint32_t numWays() const { return ways_; }
    std::uint64_t capacityBytes() const
    {
        return numSets_ * ways_ * kLineBytes;
    }

    void registerStats(StatRegistry &registry);

    /**
     * Checkpoint the tag/dirty/LRU arrays, the LRU use clock, and the
     * Random-policy RNG cursor. Geometry is structural; restore()
     * verifies it and flags @p r on mismatch. Counters travel in the
     * stats section, not here.
     */
    void save(SnapshotWriter &w) const;
    void restore(SnapshotReader &r);

    const Counter &hits() const { return hits_; }
    const Counter &misses() const { return misses_; }
    const Counter &writebacks() const { return writebacks_; }

  private:
    std::uint64_t setOf(LineAddr line) const { return line & setMask_; }
    LineAddr tagOf(LineAddr line) const { return line >> setShift_; }

    /** Bit @p w set for every way index of this cache. */
    std::uint32_t waysMask() const
    {
        return ways_ == 32 ? ~std::uint32_t{0} : (1u << ways_) - 1;
    }

    std::string name_;
    std::uint64_t numSets_;
    std::uint64_t setMask_;
    unsigned setShift_;
    std::uint32_t ways_;
    Tick hitLatency_;
    ReplPolicy policy_;
    Rng rng_;
    std::uint64_t useClock_ = 0;

    // Tag/LRU state in structure-of-arrays form: the access path scans
    // one set's tags (contiguous, two cache lines at 16 ways) with a
    // branchless compare loop, consults the per-set valid bitmap, and
    // touches a single LRU timestamp on a hit. An array-of-structs Way
    // record spreads the same scan over three times the memory.
    std::vector<LineAddr> tags_;         ///< numSets_ * ways_, set-major.
    std::vector<std::uint64_t> lastUse_; ///< numSets_ * ways_, set-major.
    std::vector<std::uint32_t> validMask_; ///< Per set; bit w = way valid.
    std::vector<std::uint32_t> dirtyMask_; ///< Per set; bit w = way dirty.

    Counter hits_;
    Counter misses_;
    Counter writebacks_;
};

inline CacheAccessResult
SetAssocCache::access(LineAddr line, bool is_write)
{
    const std::uint64_t set = setOf(line);
    const LineAddr tag = tagOf(line);
    LineAddr *tags = &tags_[set * ways_];
    std::uint64_t *last_use = &lastUse_[set * ways_];
    const std::uint32_t valid = validMask_[set];
    ++useClock_;

    // Branchless whole-set compare: at most one valid way can hold the
    // tag, so the masked match is either empty or a single bit whose
    // index is the hit way.
    const std::uint32_t match = matchMask(tags, ways_, tag) & valid;
    if (match) {
        const auto w =
            static_cast<std::uint32_t>(std::countr_zero(match));
        last_use[w] = useClock_;
        dirtyMask_[set] |= static_cast<std::uint32_t>(is_write) << w;
        hits_.inc();
        return CacheAccessResult{0, true, false};
    }

    misses_.inc();

    // Victim selection — the same decision procedure as chooseVictim:
    // the lowest-index invalid way when one exists, else the policy
    // (LRU keeps the first-lowest timestamp on ties).
    std::uint32_t victim;
    if (const std::uint32_t invalid = ~valid & waysMask()) {
        victim = static_cast<std::uint32_t>(std::countr_zero(invalid));
    } else if (policy_ == ReplPolicy::Random) {
        victim = static_cast<std::uint32_t>(rng_.next(ways_));
    } else {
        // Branchless min-of-timestamps: LRU ages are close to random,
        // so a compare-and-branch scan mispredicts on roughly half the
        // ways; conditional moves cost the same on every miss. Packing
        // the way index into the low bits makes one cmov per way do
        // both jobs, and min-of-keys breaks timestamp ties toward the
        // lowest way exactly as the sequential first-lowest scan does.
        // (Timestamps stay below 2^59: one tick per access.)
        std::uint64_t best = last_use[0] << 5;
        for (std::uint32_t w = 1; w < ways_; ++w) {
            const std::uint64_t key = (last_use[w] << 5) | w;
            best = key < best ? key : best;
        }
        victim = static_cast<std::uint32_t>(best & 31);
    }

    const std::uint32_t bit = 1u << victim;
    CacheAccessResult result{0, false, false};
    if ((valid & bit) != 0 && (dirtyMask_[set] & bit) != 0) {
        result.writebackLine = (tags[victim] << setShift_) | set;
        result.hasWriteback = true;
        writebacks_.inc();
    }
    tags[victim] = tag;
    validMask_[set] = valid | bit;
    dirtyMask_[set] = (dirtyMask_[set] & ~bit) |
                      (static_cast<std::uint32_t>(is_write) << victim);
    last_use[victim] = useClock_;
    return result;
}

} // namespace cameo

#endif // CAMEO_CACHE_SET_ASSOC_CACHE_HH
