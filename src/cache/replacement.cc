#include "cache/replacement.hh"

#include <cassert>

namespace cameo
{

std::uint32_t
chooseVictim(std::span<const WayMeta> ways, ReplPolicy policy, Rng &rng)
{
    assert(!ways.empty());
    for (std::uint32_t w = 0; w < ways.size(); ++w) {
        if (!ways[w].valid)
            return w;
    }
    switch (policy) {
      case ReplPolicy::Random:
        return static_cast<std::uint32_t>(rng.next(ways.size()));
      case ReplPolicy::Lru:
      default: {
        std::uint32_t victim = 0;
        for (std::uint32_t w = 1; w < ways.size(); ++w) {
            if (ways[w].lastUse < ways[victim].lastUse)
                victim = w;
        }
        return victim;
      }
    }
}

} // namespace cameo
