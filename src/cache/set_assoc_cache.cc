#include "cache/set_assoc_cache.hh"

#include <algorithm>
#include <bit>
#include <cassert>

#include "util/bitops.hh"

namespace cameo
{

SetAssocCache::SetAssocCache(std::string name, std::uint64_t capacity_bytes,
                             std::uint32_t ways, Tick hit_latency,
                             ReplPolicy policy, std::uint64_t seed)
    : name_(std::move(name)),
      numSets_(capacity_bytes / kLineBytes / ways),
      ways_(ways), hitLatency_(hit_latency), policy_(policy), rng_(seed),
      hits_(name_ + ".hits", "cache hits"),
      misses_(name_ + ".misses", "cache misses"),
      writebacks_(name_ + ".writebacks", "dirty evictions")
{
    assert(ways != 0 && ways <= kMaxWays);
    assert(numSets_ != 0 && isPowerOfTwo(numSets_) &&
           "cache capacity must give a power-of-two set count");
    setMask_ = numSets_ - 1;
    setShift_ = exactLog2(numSets_);
    tags_.resize(numSets_ * ways_);
    lastUse_.resize(numSets_ * ways_);
    validMask_.resize(numSets_);
    dirtyMask_.resize(numSets_);
}

bool
SetAssocCache::probe(LineAddr line) const
{
    const std::uint64_t set = setOf(line);
    const LineAddr tag = tagOf(line);
    const LineAddr *tags = &tags_[set * ways_];
    return (matchMask(tags, ways_, tag) & validMask_[set]) != 0;
}

bool
SetAssocCache::invalidate(LineAddr line)
{
    const std::uint64_t set = setOf(line);
    const LineAddr tag = tagOf(line);
    const LineAddr *tags = &tags_[set * ways_];
    const std::uint32_t match =
        matchMask(tags, ways_, tag) & validMask_[set];
    if (match == 0)
        return false;
    // The stale tag and timestamp stay behind, exactly as the old
    // Way record kept them: only validity and dirtiness are dropped.
    const bool was_dirty = (dirtyMask_[set] & match) != 0;
    validMask_[set] &= ~match;
    dirtyMask_[set] &= ~match;
    return was_dirty;
}

void
SetAssocCache::registerStats(StatRegistry &registry)
{
    registry.add(hits_);
    registry.add(misses_);
    registry.add(writebacks_);
}

void
SetAssocCache::save(SnapshotWriter &w) const
{
    w.u64(numSets_);
    w.u32(ways_);
    w.u64(useClock_);
    for (const std::uint64_t s : rng_.state())
        w.u64(s);
    // Same record stream as the historical array-of-structs layout:
    // set-major way order, tag / dirty / valid / lastUse per way.
    for (std::uint64_t i = 0; i < numSets_ * ways_; ++i) {
        const std::uint64_t set = i / ways_;
        const std::uint32_t bit = 1u << (i % ways_);
        w.u64(tags_[i]);
        w.b((dirtyMask_[set] & bit) != 0);
        w.b((validMask_[set] & bit) != 0);
        w.u64(lastUse_[i]);
    }
}

void
SetAssocCache::restore(SnapshotReader &r)
{
    const std::uint64_t nSets = r.u64();
    const std::uint32_t nWays = r.u32();
    if (!r.ok())
        return;
    if (nSets != numSets_ || nWays != ways_) {
        r.fail("cache: '" + name_ + "' geometry mismatch: snapshot has " +
               std::to_string(nSets) + " sets x " +
               std::to_string(nWays) + " ways, this cache has " +
               std::to_string(numSets_) + " x " + std::to_string(ways_));
        return;
    }
    useClock_ = r.u64();
    Rng::State rngState;
    for (std::uint64_t &s : rngState)
        s = r.u64();
    rng_.setState(rngState);
    std::fill(validMask_.begin(), validMask_.end(), 0u);
    std::fill(dirtyMask_.begin(), dirtyMask_.end(), 0u);
    for (std::uint64_t i = 0; i < numSets_ * ways_; ++i) {
        const std::uint64_t set = i / ways_;
        const std::uint32_t bit = 1u << (i % ways_);
        tags_[i] = r.u64();
        if (r.b())
            dirtyMask_[set] |= bit;
        if (r.b())
            validMask_[set] |= bit;
        lastUse_[i] = r.u64();
    }
}

} // namespace cameo
