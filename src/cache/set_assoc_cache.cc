#include "cache/set_assoc_cache.hh"

#include <cassert>

#include "util/bitops.hh"

namespace cameo
{

SetAssocCache::SetAssocCache(std::string name, std::uint64_t capacity_bytes,
                             std::uint32_t ways, Tick hit_latency,
                             ReplPolicy policy, std::uint64_t seed)
    : name_(std::move(name)),
      numSets_(capacity_bytes / kLineBytes / ways),
      ways_(ways), hitLatency_(hit_latency), policy_(policy), rng_(seed),
      hits_(name_ + ".hits", "cache hits"),
      misses_(name_ + ".misses", "cache misses"),
      writebacks_(name_ + ".writebacks", "dirty evictions")
{
    assert(ways != 0);
    assert(numSets_ != 0 && isPowerOfTwo(numSets_) &&
           "cache capacity must give a power-of-two set count");
    setMask_ = numSets_ - 1;
    setShift_ = exactLog2(numSets_);
    store_.resize(numSets_ * ways_);
}

CacheAccessResult
SetAssocCache::access(LineAddr line, bool is_write)
{
    const std::uint64_t set = setOf(line);
    const LineAddr tag = tagOf(line);
    Way *base = &store_[set * ways_];
    ++useClock_;

    for (std::uint32_t w = 0; w < ways_; ++w) {
        Way &way = base[w];
        if (way.meta.valid && way.tag == tag) {
            way.meta.lastUse = useClock_;
            way.dirty |= is_write;
            hits_.inc();
            return CacheAccessResult{true, std::nullopt};
        }
    }

    misses_.inc();

    // Victim selection directly over this set's ways — the same
    // decision procedure as chooseVictim (first invalid way, else the
    // policy), scanned in place because the miss path runs per access
    // and must neither allocate nor copy metadata.
    std::uint32_t victim = ways_;
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (!base[w].meta.valid) {
            victim = w;
            break;
        }
    }
    if (victim == ways_) {
        if (policy_ == ReplPolicy::Random) {
            victim = static_cast<std::uint32_t>(rng_.next(ways_));
        } else {
            victim = 0;
            for (std::uint32_t w = 1; w < ways_; ++w) {
                if (base[w].meta.lastUse < base[victim].meta.lastUse)
                    victim = w;
            }
        }
    }

    CacheAccessResult result{false, std::nullopt};
    Way &way = base[victim];
    if (way.meta.valid && way.dirty) {
        result.writeback = (way.tag << setShift_) | set;
        writebacks_.inc();
    }
    way.tag = tag;
    way.dirty = is_write;
    way.meta.valid = true;
    way.meta.lastUse = useClock_;
    return result;
}

bool
SetAssocCache::probe(LineAddr line) const
{
    const std::uint64_t set = setOf(line);
    const LineAddr tag = tagOf(line);
    const Way *base = &store_[set * ways_];
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (base[w].meta.valid && base[w].tag == tag)
            return true;
    }
    return false;
}

bool
SetAssocCache::invalidate(LineAddr line)
{
    const std::uint64_t set = setOf(line);
    const LineAddr tag = tagOf(line);
    Way *base = &store_[set * ways_];
    for (std::uint32_t w = 0; w < ways_; ++w) {
        Way &way = base[w];
        if (way.meta.valid && way.tag == tag) {
            const bool was_dirty = way.dirty;
            way.meta.valid = false;
            way.dirty = false;
            return was_dirty;
        }
    }
    return false;
}

void
SetAssocCache::registerStats(StatRegistry &registry)
{
    registry.add(hits_);
    registry.add(misses_);
    registry.add(writebacks_);
}

void
SetAssocCache::save(SnapshotWriter &w) const
{
    w.u64(numSets_);
    w.u32(ways_);
    w.u64(useClock_);
    for (const std::uint64_t s : rng_.state())
        w.u64(s);
    for (const Way &way : store_) {
        w.u64(way.tag);
        w.b(way.dirty);
        w.b(way.meta.valid);
        w.u64(way.meta.lastUse);
    }
}

void
SetAssocCache::restore(SnapshotReader &r)
{
    const std::uint64_t nSets = r.u64();
    const std::uint32_t nWays = r.u32();
    if (!r.ok())
        return;
    if (nSets != numSets_ || nWays != ways_) {
        r.fail("cache: '" + name_ + "' geometry mismatch: snapshot has " +
               std::to_string(nSets) + " sets x " +
               std::to_string(nWays) + " ways, this cache has " +
               std::to_string(numSets_) + " x " + std::to_string(ways_));
        return;
    }
    useClock_ = r.u64();
    Rng::State rngState;
    for (std::uint64_t &s : rngState)
        s = r.u64();
    rng_.setState(rngState);
    for (Way &way : store_) {
        way.tag = r.u64();
        way.dirty = r.b();
        way.meta.valid = r.b();
        way.meta.lastUse = r.u64();
    }
}

} // namespace cameo
