/**
 * @file
 * Replacement policies for the set-associative cache model.
 *
 * The paper's L3 is plain LRU; Random is provided for sensitivity tests
 * and as a second implementation to exercise the policy interface.
 * Policies operate on way indices within one set and are stateless
 * across sets except for the per-way metadata the cache hands them.
 */

#ifndef CAMEO_CACHE_REPLACEMENT_HH
#define CAMEO_CACHE_REPLACEMENT_HH

#include <cstdint>
#include <span>

#include "util/rng.hh"

namespace cameo
{

/** Per-way replacement metadata kept by the cache. */
struct WayMeta
{
    bool valid = false;
    std::uint64_t lastUse = 0; ///< LRU timestamp (monotone counter).
};

/** Which policy a cache instance uses. */
enum class ReplPolicy
{
    Lru,
    Random,
};

/**
 * Choose a victim way for a set.
 *
 * Invalid ways are always preferred (lowest index first). Otherwise LRU
 * picks the smallest lastUse; Random picks uniformly.
 *
 * @param ways  Metadata for every way in the set.
 * @param policy Replacement policy.
 * @param rng   Randomness source (used by Random only).
 * @return Victim way index.
 */
std::uint32_t chooseVictim(std::span<const WayMeta> ways, ReplPolicy policy,
                           Rng &rng);

} // namespace cameo

#endif // CAMEO_CACHE_REPLACEMENT_HH
