/**
 * @file
 * Minimal command-line flag parser for the tools and examples.
 *
 * Accepts --key=value, --key value, and bare --flag (boolean true);
 * everything else is a positional argument. Typed getters apply
 * defaults and record unknown-flag / bad-value errors for the caller
 * to report.
 */

#ifndef CAMEO_UTIL_CLI_HH
#define CAMEO_UTIL_CLI_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace cameo
{

/** Parsed command line with typed accessors. */
class CliParser
{
  public:
    /** Parse argv; argv[0] is skipped. */
    CliParser(int argc, const char *const *argv);

    /** True if --name was present (with or without a value). */
    bool has(const std::string &name) const;

    /** String flag; @p def when absent. */
    std::string getString(const std::string &name,
                          const std::string &def = "") const;

    /** Unsigned integer flag; @p def when absent. The whole value must
     *  be decimal digits: partial parses ("8x"), signs, and
     *  out-of-range values record an error and return @p def. */
    std::uint64_t getUint(const std::string &name,
                          std::uint64_t def = 0) const;

    /** Double flag; @p def when absent. The whole value must parse to
     *  a finite double; anything else records an error and returns
     *  @p def. */
    double getDouble(const std::string &name, double def = 0.0) const;

    /** Boolean flag: present without value (or =true/=1) is true. */
    bool getBool(const std::string &name, bool def = false) const;

    /** Positional (non-flag) arguments, in order. */
    const std::vector<std::string> &positional() const
    {
        return positional_;
    }

    /** Flags seen on the command line but never queried. Call after
     *  all getters to reject typos. */
    std::vector<std::string> unknownFlags() const;

    /** Parse/value errors accumulated by the getters. */
    const std::vector<std::string> &errors() const { return errors_; }

  private:
    std::map<std::string, std::string> flags_;
    std::vector<std::string> positional_;
    mutable std::vector<std::string> queried_;
    mutable std::vector<std::string> errors_;
};

} // namespace cameo

#endif // CAMEO_UTIL_CLI_HH
