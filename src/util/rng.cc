#include "util/rng.hh"

#include <algorithm>
#include <cmath>

namespace cameo
{

namespace
{

/** SplitMix64 step used to expand a single seed into xoshiro state. */
std::uint64_t
splitMix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto &word : state_)
        word = splitMix64(s);
    // A theoretically-possible all-zero state would make the generator
    // emit zeros forever; SplitMix64 cannot produce it from any seed,
    // but guard anyway.
    if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0)
        state_[0] = 1;
}

Rng::result_type
Rng::operator()()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

std::uint64_t
Rng::next(std::uint64_t bound)
{
    assert(bound != 0);
    // Lemire's multiply-shift bounded draw; slight modulo bias is
    // irrelevant at 64-bit width for the bounds we use.
    const unsigned __int128 m =
        static_cast<unsigned __int128>((*this)()) * bound;
    return static_cast<std::uint64_t>(m >> 64);
}

std::uint64_t
Rng::range(std::uint64_t lo, std::uint64_t hi)
{
    assert(lo <= hi);
    return lo + next(hi - lo + 1);
}

double
Rng::nextDouble()
{
    // 53 top bits into [0,1).
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return nextDouble() < p;
}

std::uint64_t
Rng::geometric(double mean)
{
    if (mean <= 1.0)
        return 1;
    // Inverse-CDF sampling of a geometric with success prob 1/mean.
    const double p = 1.0 / mean;
    const double u = nextDouble();
    const double v = std::log1p(-u) / std::log1p(-p);
    const auto draw = static_cast<std::uint64_t>(v) + 1;
    return draw == 0 ? 1 : draw;
}

ZipfSampler::ZipfSampler(std::uint64_t n, double s) : n_(n)
{
    assert(n != 0);
    cdf_.resize(n);
    double sum = 0.0;
    for (std::uint64_t i = 0; i < n; ++i) {
        sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
        cdf_[i] = sum;
    }
    for (auto &v : cdf_)
        v /= sum;
}

std::uint64_t
ZipfSampler::operator()(Rng &rng) const
{
    const double u = rng.nextDouble();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    const auto idx = static_cast<std::uint64_t>(it - cdf_.begin());
    return idx < n_ ? idx : n_ - 1;
}

} // namespace cameo
