#include "util/mmap_file.hh"

#if defined(__unix__) || defined(__APPLE__)
#define CAMEO_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#include <cerrno>
#include <cstring>
#else
#define CAMEO_HAVE_MMAP 0
#endif

namespace cameo
{

MmapFile::MmapFile(const std::string &path)
{
#if CAMEO_HAVE_MMAP
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
        error_ = "cannot open " + path + ": " + std::strerror(errno);
        return;
    }
    struct stat st = {};
    if (::fstat(fd, &st) != 0) {
        error_ = "cannot stat " + path + ": " + std::strerror(errno);
        ::close(fd);
        return;
    }
    if (st.st_size == 0) {
        error_ = path + " is empty";
        ::close(fd);
        return;
    }
    const auto length = static_cast<std::size_t>(st.st_size);
    void *map = ::mmap(nullptr, length, PROT_READ, MAP_PRIVATE, fd, 0);
    // The mapping pins the file contents; the descriptor is not needed
    // past this point either way.
    ::close(fd);
    if (map == MAP_FAILED) {
        error_ = "cannot mmap " + path + ": " + std::strerror(errno);
        return;
    }
    data_ = static_cast<const std::uint8_t *>(map);
    size_ = length;
#else
    error_ = "mmap is not supported on this platform (" + path + ")";
#endif
}

MmapFile::~MmapFile()
{
#if CAMEO_HAVE_MMAP
    if (data_ != nullptr)
        ::munmap(const_cast<std::uint8_t *>(data_), size_);
#endif
}

bool
MmapFile::supported()
{
    return CAMEO_HAVE_MMAP != 0;
}

} // namespace cameo
