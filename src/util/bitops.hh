/**
 * @file
 * Small bit-manipulation helpers used by address mapping and table
 * indexing code. All functions are constexpr and branch-light; several
 * assert on preconditions in debug builds.
 */

#ifndef CAMEO_UTIL_BITOPS_HH
#define CAMEO_UTIL_BITOPS_HH

#include <bit>
#include <cassert>
#include <cstdint>
#include <string_view>

namespace cameo
{

/** True iff @p v is a power of two (zero is not). */
constexpr bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Floor of log2(v). Precondition: v != 0. */
constexpr unsigned
floorLog2(std::uint64_t v)
{
    assert(v != 0);
    return 63u - static_cast<unsigned>(std::countl_zero(v));
}

/** Exact log2(v). Precondition: v is a power of two. */
constexpr unsigned
exactLog2(std::uint64_t v)
{
    assert(isPowerOfTwo(v));
    return floorLog2(v);
}

/** Smallest power of two >= v. Precondition: v != 0. */
constexpr std::uint64_t
nextPowerOfTwo(std::uint64_t v)
{
    assert(v != 0);
    return std::bit_ceil(v);
}

/** Extract bits [lo, lo+count) of @p v. */
constexpr std::uint64_t
bits(std::uint64_t v, unsigned lo, unsigned count)
{
    assert(count <= 64 && lo < 64);
    const std::uint64_t mask =
        count >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << count) - 1);
    return (v >> lo) & mask;
}

/** Ceiling division for unsigned integers. Precondition: d != 0. */
constexpr std::uint64_t
divCeil(std::uint64_t n, std::uint64_t d)
{
    assert(d != 0);
    return (n + d - 1) / d;
}

/** Align @p v up to a multiple of @p a (a must be a power of two). */
constexpr std::uint64_t
alignUp(std::uint64_t v, std::uint64_t a)
{
    assert(isPowerOfTwo(a));
    return (v + a - 1) & ~(a - 1);
}

/**
 * Mix bits of a 64-bit value into a well-distributed hash
 * (finalizer from SplitMix64). Used for PC-index hashing.
 */
constexpr std::uint64_t
mix64(std::uint64_t x)
{
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
}

/**
 * FNV-1a over a byte string. Used wherever a stable, portable 64-bit
 * digest of a cache/shard key is needed (trace-arena file names,
 * warm-start file names, shard assignment) — stability across runs and
 * hosts is the point, so this must never change.
 */
constexpr std::uint64_t
fnv1a64(std::string_view text,
        std::uint64_t seed = 1469598103934665603ULL)
{
    std::uint64_t hash = seed;
    for (const char c : text) {
        hash ^= static_cast<std::uint8_t>(c);
        hash *= 1099511628211ULL;
    }
    return hash;
}

} // namespace cameo

#endif // CAMEO_UTIL_BITOPS_HH
