/**
 * @file
 * Fundamental scalar types shared by every CAMEO subsystem.
 *
 * The simulator measures time in CPU cycles ("ticks") at the core clock
 * (3.2 GHz in the paper's Table I). Addresses come in three flavours:
 *
 *  - virtual byte/line addresses, private to each workload copy;
 *  - OS-physical addresses, produced by the paging layer (this is the
 *    "Requested Address" of the paper); and
 *  - device addresses, the real location inside one of the two DRAM
 *    modules after the organization's remapping (the paper's "Physical
 *    Address").
 *
 * All of them are 64-bit; the aliases below exist to make interfaces
 * self-documenting, not to provide type safety.
 */

#ifndef CAMEO_UTIL_TYPES_HH
#define CAMEO_UTIL_TYPES_HH

#include <cstdint>

namespace cameo
{

/** Simulation time in CPU cycles at the core clock. */
using Tick = std::uint64_t;

/** A byte address (virtual, OS-physical, or device depending on context). */
using Addr = std::uint64_t;

/** A 64-byte line index (address >> 6). */
using LineAddr = std::uint64_t;

/** A 4-KB page index (address >> 12). */
using PageAddr = std::uint64_t;

/** An instruction address used for PC-indexed predictors. */
using InstAddr = std::uint64_t;

/** Cache-line size used throughout the paper and this reproduction. */
inline constexpr std::uint64_t kLineBytes = 64;
inline constexpr std::uint64_t kLineShift = 6;

/** OS page size (4 KB in the paper's study). */
inline constexpr std::uint64_t kPageBytes = 4096;
inline constexpr std::uint64_t kPageShift = 12;

/** Lines per OS page (64 in the paper; milc uses ~10 of them). */
inline constexpr std::uint64_t kLinesPerPage = kPageBytes / kLineBytes;

/** A tick value that no real event ever reaches. */
inline constexpr Tick kTickMax = ~Tick{0};

/**
 * Timing discipline of the memory pipeline (see DESIGN.md §9).
 *
 *  - Blocking: the legacy semantics routed through the transaction
 *    API — every request completes synchronously at submit time and
 *    DRAM writes are posted at half-burst bus cost. Bit-identical to
 *    the pre-pipeline simulator.
 *  - Queued: per-channel read/write queues with FR-FCFS write drains
 *    and a bounded in-service read window; completions are delivered
 *    through the kernel's event queue.
 */
enum class TimingMode
{
    Blocking,
    Queued,
};

/** Printable name of a timing mode. */
constexpr const char *
timingModeName(TimingMode mode)
{
    return mode == TimingMode::Queued ? "queued" : "blocking";
}

/** Convert a byte address to the line that contains it. */
constexpr LineAddr
lineOf(Addr addr)
{
    return addr >> kLineShift;
}

/** Convert a byte address to the page that contains it. */
constexpr PageAddr
pageOf(Addr addr)
{
    return addr >> kPageShift;
}

/** First byte address of a line. */
constexpr Addr
lineToAddr(LineAddr line)
{
    return line << kLineShift;
}

/** First byte address of a page. */
constexpr Addr
pageToAddr(PageAddr page)
{
    return page << kPageShift;
}

/** Line index of the first line in a page. */
constexpr LineAddr
pageToLine(PageAddr page)
{
    return page << (kPageShift - kLineShift);
}

/** Page index that contains a given line. */
constexpr PageAddr
lineToPage(LineAddr line)
{
    return line >> (kPageShift - kLineShift);
}

} // namespace cameo

#endif // CAMEO_UTIL_TYPES_HH
