/**
 * @file
 * Numeric helpers for reporting: geometric means, ratios, and the
 * speedup arithmetic the paper's figures use.
 */

#ifndef CAMEO_UTIL_MATH_HH
#define CAMEO_UTIL_MATH_HH

#include <cstddef>
#include <span>
#include <vector>

namespace cameo
{

/**
 * Geometric mean of a set of strictly positive values.
 * Returns 0.0 for an empty span (callers print "n/a").
 */
double geometricMean(std::span<const double> values);

/** Arithmetic mean; 0.0 for an empty span. */
double arithmeticMean(std::span<const double> values);

/**
 * Speedup as the paper defines it: baseline execution time divided by
 * the configuration's execution time. Returns 0.0 if @p config_time is
 * zero (degenerate run).
 */
double speedup(double baseline_time, double config_time);

/**
 * "Improvement" percentage as quoted in the paper's prose: a speedup of
 * 1.78x is a 78% improvement.
 */
double improvementPercent(double speedup_value);

} // namespace cameo

#endif // CAMEO_UTIL_MATH_HH
