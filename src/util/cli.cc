#include "util/cli.hh"

#include <algorithm>
#include <cstdlib>

namespace cameo
{

CliParser::CliParser(int argc, const char *const *argv)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            positional_.push_back(arg);
            continue;
        }
        const std::string body = arg.substr(2);
        const std::size_t eq = body.find('=');
        if (eq != std::string::npos) {
            flags_[body.substr(0, eq)] = body.substr(eq + 1);
            continue;
        }
        // --key value (if the next token is not itself a flag),
        // otherwise a bare boolean flag.
        if (i + 1 < argc &&
            std::string(argv[i + 1]).rfind("--", 0) != 0) {
            flags_[body] = argv[++i];
        } else {
            flags_[body] = "";
        }
    }
}

bool
CliParser::has(const std::string &name) const
{
    queried_.push_back(name);
    return flags_.contains(name);
}

std::string
CliParser::getString(const std::string &name, const std::string &def) const
{
    queried_.push_back(name);
    const auto it = flags_.find(name);
    return it == flags_.end() ? def : it->second;
}

std::uint64_t
CliParser::getUint(const std::string &name, std::uint64_t def) const
{
    queried_.push_back(name);
    const auto it = flags_.find(name);
    if (it == flags_.end())
        return def;
    char *end = nullptr;
    const std::uint64_t v = std::strtoull(it->second.c_str(), &end, 10);
    if (end == it->second.c_str() || *end != '\0') {
        errors_.push_back("--" + name + ": expected an integer, got '" +
                          it->second + "'");
        return def;
    }
    return v;
}

double
CliParser::getDouble(const std::string &name, double def) const
{
    queried_.push_back(name);
    const auto it = flags_.find(name);
    if (it == flags_.end())
        return def;
    char *end = nullptr;
    const double v = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0') {
        errors_.push_back("--" + name + ": expected a number, got '" +
                          it->second + "'");
        return def;
    }
    return v;
}

bool
CliParser::getBool(const std::string &name, bool def) const
{
    queried_.push_back(name);
    const auto it = flags_.find(name);
    if (it == flags_.end())
        return def;
    return it->second.empty() || it->second == "true" ||
           it->second == "1";
}

std::vector<std::string>
CliParser::unknownFlags() const
{
    std::vector<std::string> unknown;
    for (const auto &[name, value] : flags_) {
        if (std::find(queried_.begin(), queried_.end(), name) ==
            queried_.end()) {
            unknown.push_back(name);
        }
    }
    return unknown;
}

} // namespace cameo
