#include "util/cli.hh"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>

#include "util/env.hh"

namespace cameo
{

CliParser::CliParser(int argc, const char *const *argv)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            positional_.push_back(arg);
            continue;
        }
        const std::string body = arg.substr(2);
        const std::size_t eq = body.find('=');
        if (eq != std::string::npos) {
            flags_[body.substr(0, eq)] = body.substr(eq + 1);
            continue;
        }
        // --key value (if the next token is not itself a flag),
        // otherwise a bare boolean flag.
        if (i + 1 < argc &&
            std::string(argv[i + 1]).rfind("--", 0) != 0) {
            flags_[body] = argv[++i];
        } else {
            flags_[body] = "";
        }
    }
}

bool
CliParser::has(const std::string &name) const
{
    queried_.push_back(name);
    return flags_.contains(name);
}

std::string
CliParser::getString(const std::string &name, const std::string &def) const
{
    queried_.push_back(name);
    const auto it = flags_.find(name);
    return it == flags_.end() ? def : it->second;
}

std::uint64_t
CliParser::getUint(const std::string &name, std::uint64_t def) const
{
    queried_.push_back(name);
    const auto it = flags_.find(name);
    if (it == flags_.end())
        return def;
    const std::string &text = it->second;
    // Strict shared grammar (util/env.hh): one or more decimal digits
    // and nothing else. This rejects partial parses ("8x"), signs
    // ("-5" would wrap through strtoull to a huge value), whitespace,
    // empty values, and overflow.
    std::uint64_t v = 0;
    switch (parseUintStrict(text, v)) {
      case ParseUintStatus::Ok:
        return v;
      case ParseUintStatus::Invalid:
        errors_.push_back("--" + name + ": expected an integer, got '" +
                          text + "'");
        return def;
      case ParseUintStatus::Overflow:
        errors_.push_back("--" + name + ": value out of range: '" + text +
                          "'");
        return def;
    }
    return def;
}

double
CliParser::getDouble(const std::string &name, double def) const
{
    queried_.push_back(name);
    const auto it = flags_.find(name);
    if (it == flags_.end())
        return def;
    const std::string &text = it->second;
    char *end = nullptr;
    const double v =
        text.empty() ? 0.0 : std::strtod(text.c_str(), &end);
    // The whole token must parse (no "2.5x"), with no leading
    // whitespace (strtod would silently skip it), and the result must
    // be finite (rejects "inf", "nan", and overflowing exponents).
    const bool whole_token =
        !text.empty() && end == text.c_str() + text.size() &&
        std::isspace(static_cast<unsigned char>(text.front())) == 0;
    if (!whole_token || !std::isfinite(v)) {
        errors_.push_back("--" + name + ": expected a finite number, "
                          "got '" + text + "'");
        return def;
    }
    return v;
}

bool
CliParser::getBool(const std::string &name, bool def) const
{
    queried_.push_back(name);
    const auto it = flags_.find(name);
    if (it == flags_.end())
        return def;
    return it->second.empty() || it->second == "true" ||
           it->second == "1";
}

std::vector<std::string>
CliParser::unknownFlags() const
{
    std::vector<std::string> unknown;
    for (const auto &[name, value] : flags_) {
        if (std::find(queried_.begin(), queried_.end(), name) ==
            queried_.end()) {
            unknown.push_back(name);
        }
    }
    return unknown;
}

} // namespace cameo
