/**
 * @file
 * Strict parsing of numeric configuration text (environment variables
 * and command-line values).
 *
 * std::strtoull silently accepts partial input ("8x" parses as 8) and
 * wraps negative values to huge unsigneds; every knob that reads a
 * number from the environment or the command line routes through the
 * strict grammar here instead: one or more decimal digits, nothing
 * else, and no overflow. CliParser::getUint and the bench env-var
 * overrides (CAMEO_BENCH_ACCESSES, CAMEO_BENCH_JOBS) share this code
 * so they reject the same inputs with the same wording.
 */

#ifndef CAMEO_UTIL_ENV_HH
#define CAMEO_UTIL_ENV_HH

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace cameo
{

/** Outcome of a strict unsigned-integer parse. */
enum class ParseUintStatus
{
    Ok,       ///< Parsed; the out-parameter holds the value.
    Invalid,  ///< Empty, non-digit characters, sign, or whitespace.
    Overflow, ///< All digits but the value exceeds std::uint64_t.
};

/**
 * Parse @p text as an unsigned decimal integer under the strict
 * grammar (digits only, whole token, no overflow). On Ok, @p out holds
 * the value; otherwise @p out is untouched.
 */
ParseUintStatus parseUintStrict(std::string_view text, std::uint64_t &out);

/**
 * Read environment variable @p name as a strict unsigned integer.
 *
 * Returns nullopt when the variable is unset *or* malformed; the two
 * cases are distinguished via @p error, which (when non-null) receives
 * a human-readable "NAME: ..." message for malformed values and is
 * left untouched when the variable is unset or parses cleanly.
 */
std::optional<std::uint64_t> envUint(const char *name,
                                     std::string *error = nullptr);

} // namespace cameo

#endif // CAMEO_UTIL_ENV_HH
