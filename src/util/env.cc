#include "util/env.hh"

#include <cstdlib>
#include <limits>

namespace cameo
{

ParseUintStatus
parseUintStrict(std::string_view text, std::uint64_t &out)
{
    if (text.empty())
        return ParseUintStatus::Invalid;
    std::uint64_t value = 0;
    for (const char ch : text) {
        if (ch < '0' || ch > '9')
            return ParseUintStatus::Invalid;
        const std::uint64_t digit = static_cast<std::uint64_t>(ch - '0');
        if (value > (std::numeric_limits<std::uint64_t>::max() - digit) / 10)
            return ParseUintStatus::Overflow;
        value = value * 10 + digit;
    }
    out = value;
    return ParseUintStatus::Ok;
}

std::optional<std::uint64_t>
envUint(const char *name, std::string *error)
{
    const char *text = std::getenv(name);
    if (text == nullptr)
        return std::nullopt;
    std::uint64_t value = 0;
    switch (parseUintStrict(text, value)) {
      case ParseUintStatus::Ok:
        return value;
      case ParseUintStatus::Invalid:
        if (error != nullptr) {
            *error = std::string(name) +
                     ": expected an unsigned integer, got '" + text + "'";
        }
        return std::nullopt;
      case ParseUintStatus::Overflow:
        if (error != nullptr) {
            *error =
                std::string(name) + ": value out of range: '" + text + "'";
        }
        return std::nullopt;
    }
    return std::nullopt;
}

} // namespace cameo
