/**
 * @file
 * Read-only memory-mapped file wrapper for zero-copy trace replay.
 *
 * Trace files can be hundreds of megabytes; loading them into a
 * std::vector both doubles peak memory and costs a full copy before
 * the first record replays. MmapFile maps the file instead, so replay
 * reads page directly from the OS page cache and multiple concurrent
 * processes replaying the same trace share one physical copy.
 *
 * On platforms without mmap support the wrapper reports !valid() and
 * callers fall back to buffered loading, so portability costs only the
 * zero-copy property, never correctness.
 */

#ifndef CAMEO_UTIL_MMAP_FILE_HH
#define CAMEO_UTIL_MMAP_FILE_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace cameo
{

/** A read-only memory mapping of a whole file. */
class MmapFile
{
  public:
    /**
     * Map @p path read-only. On any failure (missing file, empty file,
     * unsupported platform) the object is constructed with
     * valid() == false; the failure reason is available via error().
     */
    explicit MmapFile(const std::string &path);

    ~MmapFile();

    MmapFile(const MmapFile &) = delete;
    MmapFile &operator=(const MmapFile &) = delete;

    /** True when the mapping is live and data()/size() are usable. */
    bool valid() const { return data_ != nullptr; }

    /** First mapped byte; nullptr when !valid(). */
    const std::uint8_t *data() const { return data_; }

    /** Mapped length in bytes; 0 when !valid(). */
    std::size_t size() const { return size_; }

    /** Human-readable failure reason when !valid(). */
    const std::string &error() const { return error_; }

    /** True when this build can map files at all. */
    static bool supported();

  private:
    const std::uint8_t *data_ = nullptr;
    std::size_t size_ = 0;
    std::string error_;
};

} // namespace cameo

#endif // CAMEO_UTIL_MMAP_FILE_HH
