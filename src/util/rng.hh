/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis
 * and replacement policies.
 *
 * We deliberately avoid std::mt19937 in hot paths: the generators below
 * (xoshiro256** plus a SplitMix64 seeder) are faster, have tiny state,
 * and make simulation results reproducible across standard libraries.
 * Determinism matters twice here: runs must be repeatable for tests, and
 * the TLM-Oracle organization re-generates the same trace for its
 * profiling pass.
 */

#ifndef CAMEO_UTIL_RNG_HH
#define CAMEO_UTIL_RNG_HH

#include <array>
#include <cassert>
#include <cstdint>
#include <vector>

namespace cameo
{

/**
 * xoshiro256** generator (Blackman & Vigna). Satisfies the essentials of
 * UniformRandomBitGenerator so it can also feed <random> distributions.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed, expanded via SplitMix64. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~result_type{0}; }

    /** Next raw 64-bit value. */
    result_type operator()();

    /** Uniform integer in [0, bound). Precondition: bound != 0. */
    std::uint64_t next(std::uint64_t bound);

    /** Uniform integer in [lo, hi]. Precondition: lo <= hi. */
    std::uint64_t range(std::uint64_t lo, std::uint64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw: true with probability @p p. */
    bool chance(double p);

    /**
     * Geometric gap: integer >= 1 with mean approximately @p mean.
     * Used for inter-access instruction gaps.
     */
    std::uint64_t geometric(double mean);

    /**
     * Raw generator state, exposed for checkpoint/restore. A restored
     * state resumes the exact draw sequence of the saved generator.
     */
    using State = std::array<std::uint64_t, 4>;
    const State &state() const { return state_; }
    void setState(const State &s) { state_ = s; }

  private:
    State state_;
};

/**
 * Precomputed Zipf sampler over [0, n). Builds the harmonic CDF once and
 * samples by binary search; fine for the table sizes the generators use
 * (up to a few hundred thousand pages).
 */
class ZipfSampler
{
  public:
    /**
     * @param n  Support size; draws are in [0, n).
     * @param s  Zipf exponent (s = 0 degenerates to uniform).
     */
    ZipfSampler(std::uint64_t n, double s);

    /** Draw one value in [0, n). */
    std::uint64_t operator()(Rng &rng) const;

    std::uint64_t size() const { return n_; }

  private:
    std::uint64_t n_;
    std::vector<double> cdf_;
};

} // namespace cameo

#endif // CAMEO_UTIL_RNG_HH
