/**
 * @file
 * FlatMap / FlatSet: open-addressing hash containers for POD keys on
 * the simulator's hot paths.
 *
 * std::unordered_map's node-per-element layout costs an allocation and
 * a pointer chase per probe — measurable when the page table and heat
 * maps are probed on every simulated access. FlatMap stores slots
 * contiguously, probes linearly from a mix64-hashed home slot, and
 * erases with backward shifting (no tombstones, so probe chains never
 * degrade). Capacity is a power of two and can be pre-reserved from
 * the workload footprint to eliminate mid-run rehashes.
 *
 * The interface is the std::unordered_map subset the simulator uses
 * (operator[], find/end, contains, erase, iteration, reserve), so the
 * containers are drop-in for the hot-path call sites and can be
 * property-tested against the standard containers (test_flat_map.cc).
 * Iteration order is unspecified but deterministic for a given
 * insert/erase history — a requirement of the bit-reproducible runs.
 */

#ifndef CAMEO_UTIL_FLAT_MAP_HH
#define CAMEO_UTIL_FLAT_MAP_HH

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <iterator>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/bitops.hh"

namespace cameo
{

/** Default FlatMap hash: mix64 over the key's integer value. */
template <typename Key>
struct FlatHash
{
    static_assert(std::is_integral_v<Key> || std::is_enum_v<Key>,
                  "FlatHash requires an integral key; provide a custom "
                  "hasher for other POD types");

    std::uint64_t operator()(const Key &key) const
    {
        return mix64(static_cast<std::uint64_t>(key));
    }
};

/** Open-addressing (linear probe) hash map for POD keys. */
template <typename Key, typename Value, typename Hash = FlatHash<Key>>
class FlatMap
{
    static_assert(std::is_trivially_copyable_v<Key>,
                  "FlatMap keys must be POD");

    struct Slot
    {
        std::pair<Key, Value> kv{};
        bool occupied = false;
    };

    /** Grow when size * 8 would exceed capacity * 6 (75% load). */
    static constexpr std::size_t kLoadNum = 6;
    static constexpr std::size_t kLoadDen = 8;
    static constexpr std::size_t kMinCapacity = 16;

  public:
    using value_type = std::pair<Key, Value>;

    template <bool Const>
    class Iter
    {
      public:
        using iterator_category = std::forward_iterator_tag;
        using value_type = std::pair<Key, Value>;
        using difference_type = std::ptrdiff_t;
        using pointer = std::conditional_t<Const, const value_type *,
                                           value_type *>;
        using reference = std::conditional_t<Const, const value_type &,
                                             value_type &>;

        Iter() = default;

        reference operator*() const { return cur_->kv; }
        pointer operator->() const { return &cur_->kv; }

        Iter &operator++()
        {
            ++cur_;
            skipEmpty();
            return *this;
        }

        Iter operator++(int)
        {
            Iter prev = *this;
            ++*this;
            return prev;
        }

        bool operator==(const Iter &other) const
        {
            return cur_ == other.cur_;
        }

        /** Const iterators convert from mutable ones. */
        operator Iter<true>() const
            requires(!Const)
        {
            return Iter<true>(cur_, end_);
        }

      private:
        friend class FlatMap;
        friend class Iter<!Const>;

        using SlotPtr = std::conditional_t<Const, const Slot *, Slot *>;

        Iter(SlotPtr cur, SlotPtr end) : cur_(cur), end_(end)
        {
            skipEmpty();
        }

        void skipEmpty()
        {
            while (cur_ != end_ && !cur_->occupied)
                ++cur_;
        }

        SlotPtr cur_ = nullptr;
        SlotPtr end_ = nullptr;
    };

    using iterator = Iter<false>;
    using const_iterator = Iter<true>;

    FlatMap() = default;

    /** Construct with room for @p capacity elements (no rehash up to
     *  that size). */
    explicit FlatMap(std::size_t capacity) { reserve(capacity); }

    /** Ensure capacity for @p n elements without rehashing. */
    void reserve(std::size_t n)
    {
        const std::size_t want = slotsFor(n);
        if (want > slots_.size())
            rehash(want);
    }

    /** Value for @p key, default-constructed and inserted if absent. */
    Value &operator[](const Key &key)
    {
        growIfNeeded();
        const std::size_t idx = probe(key);
        Slot &slot = slots_[idx];
        if (!slot.occupied) {
            slot.occupied = true;
            slot.kv.first = key;
            slot.kv.second = Value{};
            ++size_;
        }
        return slot.kv.second;
    }

    iterator find(const Key &key)
    {
        const std::size_t idx = findIndex(key);
        if (idx == npos())
            return end();
        return iterator(slots_.data() + idx, slotsEnd());
    }

    const_iterator find(const Key &key) const
    {
        const std::size_t idx = findIndex(key);
        if (idx == npos())
            return end();
        return const_iterator(slots_.data() + idx, slotsEnd());
    }

    bool contains(const Key &key) const { return findIndex(key) != npos(); }

    /**
     * Remove @p key. Backward-shift deletion keeps probe chains
     * tombstone-free. @return true if the key was present.
     */
    bool erase(const Key &key)
    {
        std::size_t idx = findIndex(key);
        if (idx == npos())
            return false;
        const std::size_t mask = slots_.size() - 1;
        std::size_t hole = idx;
        std::size_t next = (hole + 1) & mask;
        while (slots_[next].occupied) {
            const std::size_t home = homeOf(slots_[next].kv.first);
            // An element may fill the hole only if the hole lies on its
            // probe path, i.e. it is displaced at least as far from its
            // home slot as the hole is.
            if (((next - home) & mask) >= ((next - hole) & mask)) {
                slots_[hole].kv = std::move(slots_[next].kv);
                hole = next;
            }
            next = (next + 1) & mask;
        }
        slots_[hole].occupied = false;
        slots_[hole].kv = value_type{};
        --size_;
        return true;
    }

    void clear()
    {
        for (Slot &slot : slots_)
            slot = Slot{};
        size_ = 0;
    }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    /** Current slot count (diagnostics; 0 until the first insert). */
    std::size_t capacity() const { return slots_.size(); }

    /**
     * Exact-slot-layout access for checkpoint/restore. Serializing the
     * physical slot layout (not just the key/value set) keeps probe
     * chains — and therefore iteration order and future displacement
     * behavior — bit-identical after a restore, which the
     * save->restore->save round-trip property requires.
     */
    bool slotOccupied(std::size_t idx) const
    {
        return slots_[idx].occupied;
    }
    const value_type &slotAt(std::size_t idx) const
    {
        return slots_[idx].kv;
    }

    /** Drop contents and size the table to @p slot_count empty slots. */
    void restoreLayout(std::size_t slot_count)
    {
        assert(slot_count == 0 || isPowerOfTwo(slot_count));
        slots_.assign(slot_count, Slot{});
        size_ = 0;
    }

    /** Place an entry at an exact slot (restoreLayout'd table only). */
    void placeSlot(std::size_t idx, const Key &key, const Value &value)
    {
        Slot &slot = slots_[idx];
        assert(!slot.occupied);
        slot.occupied = true;
        slot.kv.first = key;
        slot.kv.second = value;
        ++size_;
    }

    iterator begin() { return iterator(slots_.data(), slotsEnd()); }
    iterator end() { return iterator(slotsEnd(), slotsEnd()); }
    const_iterator begin() const
    {
        return const_iterator(slots_.data(), slotsEnd());
    }
    const_iterator end() const
    {
        return const_iterator(slotsEnd(), slotsEnd());
    }

  private:
    static std::size_t npos() { return ~std::size_t{0}; }

    /** Smallest power-of-two slot count holding @p n at the load cap. */
    static std::size_t slotsFor(std::size_t n)
    {
        if (n == 0)
            return 0;
        std::size_t want = kMinCapacity;
        while (n * kLoadDen > want * kLoadNum)
            want *= 2;
        return want;
    }

    const Slot *slotsEnd() const { return slots_.data() + slots_.size(); }
    Slot *slotsEnd() { return slots_.data() + slots_.size(); }

    std::size_t homeOf(const Key &key) const
    {
        return static_cast<std::size_t>(Hash{}(key)) &
               (slots_.size() - 1);
    }

    /** Index of @p key's slot, or the first empty slot on its chain.
     *  Precondition: the table has at least one empty slot. */
    std::size_t probe(const Key &key) const
    {
        assert(size_ < slots_.size());
        const std::size_t mask = slots_.size() - 1;
        std::size_t idx = homeOf(key);
        while (slots_[idx].occupied && slots_[idx].kv.first != key)
            idx = (idx + 1) & mask;
        return idx;
    }

    /** Index of @p key's occupied slot, or npos(). */
    std::size_t findIndex(const Key &key) const
    {
        if (slots_.empty())
            return npos();
        const std::size_t idx = probe(key);
        return slots_[idx].occupied ? idx : npos();
    }

    void growIfNeeded()
    {
        if (slots_.empty()) {
            rehash(kMinCapacity);
        } else if ((size_ + 1) * kLoadDen > slots_.size() * kLoadNum) {
            rehash(slots_.size() * 2);
        }
    }

    void rehash(std::size_t new_slots)
    {
        assert(isPowerOfTwo(new_slots));
        std::vector<Slot> old = std::move(slots_);
        slots_.assign(new_slots, Slot{});
        size_ = 0;
        for (Slot &slot : old) {
            if (slot.occupied)
                (*this)[slot.kv.first] = std::move(slot.kv.second);
        }
    }

    std::vector<Slot> slots_;
    std::size_t size_ = 0;
};

/** Open-addressing hash set for POD keys (a FlatMap with no values). */
template <typename Key, typename Hash = FlatHash<Key>>
class FlatSet
{
  public:
    FlatSet() = default;

    explicit FlatSet(std::size_t capacity) : map_(capacity) {}

    void reserve(std::size_t n) { map_.reserve(n); }

    /** @return true if @p key was newly inserted. */
    bool insert(const Key &key)
    {
        const std::size_t before = map_.size();
        map_[key] = 1;
        return map_.size() != before;
    }

    bool contains(const Key &key) const { return map_.contains(key); }
    bool erase(const Key &key) { return map_.erase(key); }
    void clear() { map_.clear(); }
    std::size_t size() const { return map_.size(); }
    bool empty() const { return map_.empty(); }

    /** Underlying map, for exact-layout checkpoint/restore. */
    FlatMap<Key, std::uint8_t, Hash> &raw() { return map_; }
    const FlatMap<Key, std::uint8_t, Hash> &raw() const { return map_; }

  private:
    FlatMap<Key, std::uint8_t, Hash> map_;
};

} // namespace cameo

#endif // CAMEO_UTIL_FLAT_MAP_HH
