#include "util/fs_lock.hh"

#include <cerrno>
#include <cstddef>
#include <cstdint>
#include <string_view>
#include <utility>

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include "util/env.hh"

namespace cameo
{

namespace
{

/** Poll period while waiting on a held lock. */
constexpr unsigned kPollMs = 5;

/**
 * True when the lock file at @p path names a PID that provably no
 * longer exists. A vanished file counts as dead (the owner released
 * between our open attempts); an unreadable or malformed file does
 * not — only the wait timeout breaks those.
 */
bool
ownerDead(const std::string &path)
{
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        return errno == ENOENT;
    char buf[32];
    const ssize_t n = ::read(fd, buf, sizeof(buf) - 1);
    ::close(fd);
    if (n <= 0)
        return false;
    std::size_t len = static_cast<std::size_t>(n);
    while (len > 0 && (buf[len - 1] == '\n' || buf[len - 1] == '\r'))
        --len;
    std::uint64_t pid = 0;
    if (parseUintStrict(std::string_view(buf, len), pid) !=
            ParseUintStatus::Ok ||
        pid == 0) {
        return false;
    }
    return ::kill(static_cast<pid_t>(pid), 0) != 0 && errno == ESRCH;
}

} // namespace

FileLock::FileLock(FileLock &&other) noexcept
    : path_(std::exchange(other.path_, {}))
{
}

FileLock &
FileLock::operator=(FileLock &&other) noexcept
{
    if (this != &other) {
        release();
        path_ = std::exchange(other.path_, {});
    }
    return *this;
}

FileLock::~FileLock()
{
    release();
}

void
FileLock::release()
{
    if (!path_.empty()) {
        ::unlink(path_.c_str());
        path_.clear();
    }
}

FileLock
FileLock::acquire(const std::string &path, unsigned stale_timeout_ms)
{
    const std::string pid_text = std::to_string(::getpid()) + "\n";
    unsigned waited_ms = 0;
    for (;;) {
        const int fd = ::open(path.c_str(),
                              O_CREAT | O_EXCL | O_WRONLY, 0644);
        if (fd >= 0) {
            // Best-effort PID stamp; waiters that cannot read it fall
            // back to the timeout.
            ssize_t written = 0;
            while (written <
                   static_cast<ssize_t>(pid_text.size())) {
                const ssize_t w =
                    ::write(fd, pid_text.data() + written,
                            pid_text.size() -
                                static_cast<std::size_t>(written));
                if (w <= 0)
                    break;
                written += w;
            }
            ::close(fd);
            return FileLock(path);
        }
        if (errno != EEXIST)
            return FileLock(); // Advisory: proceed unlocked.
        if (ownerDead(path) || waited_ms >= stale_timeout_ms) {
            // Break the stale lock and race for it again; the O_EXCL
            // create above arbitrates between concurrent breakers.
            ::unlink(path.c_str());
            waited_ms = 0;
            continue;
        }
        ::usleep(kPollMs * 1000);
        waited_ms += kPollMs;
    }
}

} // namespace cameo
