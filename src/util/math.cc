#include "util/math.hh"

#include <cassert>
#include <cmath>

namespace cameo
{

double
geometricMean(std::span<const double> values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values) {
        assert(v > 0.0);
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

double
arithmeticMean(std::span<const double> values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

double
speedup(double baseline_time, double config_time)
{
    if (config_time <= 0.0)
        return 0.0;
    return baseline_time / config_time;
}

double
improvementPercent(double speedup_value)
{
    return (speedup_value - 1.0) * 100.0;
}

} // namespace cameo
