/**
 * @file
 * Advisory cross-process file lock with stale-lock recovery.
 *
 * Serializes expensive produce-or-load work on shared cache files
 * (trace arenas, warm-start snapshots) across *processes*: without it,
 * N fleet workers missing the same key all record the full artifact
 * and race on the final rename — correct (rename is atomic) but N
 * times the work. The protocol is lock -> re-check the cache file ->
 * produce or load -> unlink.
 *
 * The lock file is created with O_CREAT|O_EXCL and holds the owner's
 * PID. Waiters poll; a lock whose owner PID no longer exists (checked
 * with kill(pid, 0)) is broken immediately, and any lock is broken
 * after a bounded total wait, so a crashed or wedged owner can stall a
 * fleet only for the timeout, never forever. The lock is advisory:
 * when the lock file cannot even be created (read-only directory),
 * acquire() degrades to an unheld lock and callers proceed unlocked —
 * exactly the pre-lock behaviour, duplicated work included.
 */

#ifndef CAMEO_UTIL_FS_LOCK_HH
#define CAMEO_UTIL_FS_LOCK_HH

#include <string>

namespace cameo
{

/** Held advisory lock; releases (unlinks) on destruction. */
class FileLock
{
  public:
    /** An unheld lock. */
    FileLock() = default;

    FileLock(const FileLock &) = delete;
    FileLock &operator=(const FileLock &) = delete;
    FileLock(FileLock &&other) noexcept;
    FileLock &operator=(FileLock &&other) noexcept;
    ~FileLock();

    /**
     * Acquire the lock file at @p path, waiting for a live owner to
     * release it. A dead owner's lock is broken immediately; any
     * owner's lock is broken after @p stale_timeout_ms of waiting.
     * Returns an unheld lock only when the file cannot be created at
     * all (callers then proceed unlocked — the lock is advisory).
     */
    static FileLock acquire(const std::string &path,
                            unsigned stale_timeout_ms = 30'000);

    /** True when this object owns the lock file. */
    bool held() const { return !path_.empty(); }

    /** Unlink the lock file (idempotent). */
    void release();

  private:
    explicit FileLock(std::string path) : path_(std::move(path)) {}

    std::string path_;
};

} // namespace cameo

#endif // CAMEO_UTIL_FS_LOCK_HH
