/**
 * @file
 * Packed access-record codec shared by the trace-arena cache and the
 * version-2 on-disk trace format.
 *
 * A raw Access is ~24 bytes in memory; a sweep that materializes each
 * workload's stream once (see trace_arena.hh) wants that stream to be
 * compact enough to keep dozens of arenas resident. The packed format
 * exploits the structure synthetic and real traces share:
 *
 *  - consecutive accesses are near each other (vaddr stored as a
 *    zigzag varint delta from the previous record),
 *  - the PC usually repeats within a burst (one flag bit; a zigzag
 *    varint delta only when it changes),
 *  - instruction gaps are small (plain varint).
 *
 * Typical streams pack to 5-9 bytes/record. Decoding is a short
 * branch-light loop (flag byte + 1-3 varints), cheap enough that
 * replaying a packed arena is several times faster than re-running
 * the generator's RNG state machine.
 *
 * Checkpoints: every kTraceCheckpointInterval records the encoder
 * saves (byte offset, pc, vaddr), so skip(n) jumps O(1) to the nearest
 * checkpoint and decodes at most one interval — warmup fast-forward
 * and per-core stagger never pay a full sequential decode.
 */

#ifndef CAMEO_TRACE_PACKED_TRACE_HH
#define CAMEO_TRACE_PACKED_TRACE_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "trace/access.hh"
#include "util/types.hh"

namespace cameo
{

/** Records between skip checkpoints (must be a power of two). */
inline constexpr std::uint64_t kTraceCheckpointInterval = 1024;

/** Decoder state snapshot taken before a checkpoint's record. */
struct TraceCheckpoint
{
    std::uint64_t byteOffset = 0; ///< Payload offset of the record.
    InstAddr pc = 0;              ///< Previous-pc state at that record.
    Addr vaddr = 0;               ///< Previous-vaddr state.
};

/**
 * Borrowed view of a packed stream: payload bytes plus the checkpoint
 * table. The backing storage (a PackedTrace, an mmap'd file) must
 * outlive the view; ArenaReplaySource keeps a shared_ptr for exactly
 * this reason.
 */
struct PackedTraceView
{
    const std::uint8_t *bytes = nullptr;
    std::uint64_t byteSize = 0;
    const TraceCheckpoint *checkpoints = nullptr;
    std::uint64_t numCheckpoints = 0;
    std::uint64_t count = 0; ///< Records in the stream.
};

/** An owned packed stream (the arena cache's resident representation). */
struct PackedTrace
{
    std::vector<std::uint8_t> bytes;
    std::vector<TraceCheckpoint> checkpoints;
    std::uint64_t count = 0;

    PackedTraceView view() const
    {
        return PackedTraceView{bytes.data(), bytes.size(),
                               checkpoints.data(), checkpoints.size(),
                               count};
    }

    /** Resident footprint (payload + checkpoint table). */
    std::uint64_t memoryBytes() const
    {
        return bytes.size() +
               checkpoints.size() * sizeof(TraceCheckpoint);
    }
};

/** Streaming encoder: append records, then take() the packed trace. */
class PackedTraceEncoder
{
  public:
    PackedTraceEncoder() = default;

    /** Append one record (order defines the stream). */
    void append(const Access &access);

    /** Append a batch. */
    void append(const Access *buf, std::size_t n)
    {
        for (std::size_t i = 0; i < n; ++i)
            append(buf[i]);
    }

    std::uint64_t count() const { return trace_.count; }

    /** Finish encoding and move the packed trace out. The encoder is
     *  left empty and reusable. */
    PackedTrace take();

  private:
    PackedTrace trace_;
    InstAddr prevPc_ = 0;
    Addr prevVaddr_ = 0;
};

/**
 * Sequential decoder over a packed view. Wraps around at the end of
 * the stream (AccessSource semantics); skip() is checkpoint-
 * accelerated. The view must describe a validated stream (see
 * validatePackedTrace) with count > 0.
 */
class PackedTraceCursor
{
  public:
    explicit PackedTraceCursor(const PackedTraceView &view);

    /** Decode the next @p n records (wrapping) into @p buf. */
    void refill(Access *buf, std::size_t n);

    /** Advance @p n records without materializing them. */
    void skip(std::uint64_t n);

    /** Restart from record 0. */
    void rewind();

    /** Index of the next record to decode. */
    std::uint64_t position() const { return record_; }

  private:
    void decodeOne(Access &out);
    void skipOne();

    PackedTraceView view_;
    const std::uint8_t *cursor_ = nullptr;
    std::uint64_t record_ = 0;
    InstAddr pc_ = 0;
    Addr vaddr_ = 0;
};

/**
 * Structural validation of an untrusted packed stream (a trace file's
 * payload): walks every record checking that varints terminate inside
 * the payload, reserved flag bits are zero, the payload length is
 * fully consumed, and the checkpoint table matches the walk. Returns
 * true when valid; otherwise fills @p error with an offset-precise
 * message ("record 51 at offset 417: ...").
 */
bool validatePackedTrace(const PackedTraceView &view, std::string *error);

/** Pack a whole record array (testing/tooling convenience). */
PackedTrace packAccesses(const Access *buf, std::size_t n);

} // namespace cameo

#endif // CAMEO_TRACE_PACKED_TRACE_HH
