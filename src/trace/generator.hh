/**
 * @file
 * SyntheticGenerator: produces one core's L3-level access stream from a
 * WorkloadProfile.
 *
 * The generator is a small state machine over three access modes:
 *
 *  - STREAM: sequential page walks with a persistent cursor that wraps
 *    around the footprint; within each page it touches
 *    profile.linesPerPage evenly spaced lines. This produces the
 *    steady capacity pressure of lbm/bwaves-style codes.
 *  - POINTER: dependent accesses to Zipf-popular pages (scattered over
 *    the address space), modelling mcf/omnetpp-style chasing; each
 *    access after the first in a burst depends on its predecessor.
 *  - HOT: accesses within a small per-core hot region that fits in the
 *    L3, soaking up the benchmark's cache-friendly fraction.
 *
 * The generator is deterministic given (profile, params, seed) — the
 * TLM-Oracle organization re-runs it to obtain oracular page heat.
 */

#ifndef CAMEO_TRACE_GENERATOR_HH
#define CAMEO_TRACE_GENERATOR_HH

#include <array>
#include <cstdint>
#include <vector>

#include "trace/access.hh"
#include "trace/access_source.hh"
#include "trace/workloads.hh"
#include "util/flat_map.hh"
#include "util/rng.hh"
#include "util/types.hh"

namespace cameo
{

/** Scaled, per-core knobs derived from the system configuration. */
struct GeneratorParams
{
    /** Per-core virtual footprint in bytes. */
    std::uint64_t footprintBytes = 1 << 20;

    /** Per-core hot-region size in bytes (should fit the L3 share). */
    std::uint64_t hotSetBytes = 8 << 10;

    /** Mean non-memory instructions between accesses (sets MPKI). */
    double gapMeanInstructions = 50.0;
};

/** Per-core synthetic access stream. */
class SyntheticGenerator : public AccessSource
{
  public:
    SyntheticGenerator(const WorkloadProfile &profile,
                       const GeneratorParams &params, std::uint64_t seed);

    /** Produce the next @p n accesses. Never exhausts. */
    void refill(Access *buf, std::size_t n) override;

    /** Advance the state machine @p n records without a buffer
     *  round-trip (warmup fast-forward). */
    void skip(std::uint64_t n) override;

    const WorkloadProfile &profile() const { return profile_; }
    std::uint64_t numPages() const { return numPages_; }
    std::uint64_t hotPages() const { return hotPages_; }

  private:
    enum class Mode
    {
        Stream,
        Pointer,
        Hot,
    };

    void startBurst();
    Access generate();
    Addr streamAddr();
    Addr pointerAddr();
    Addr hotAddr();

    /** Scatter a Zipf rank over the footprint's pages. */
    PageAddr scatterPage(std::uint64_t rank) const;

    /** Byte address of line index @p within_page in @p page. */
    Addr composeAddr(PageAddr page, std::uint32_t line_in_page,
                     Addr offset) const;

    WorkloadProfile profile_;
    GeneratorParams params_;
    Rng rng_;

    std::uint64_t numPages_;  ///< Footprint pages (excludes hot region).
    std::uint64_t hotPages_;  ///< Hot-region pages, appended after.
    ZipfSampler zipf_;
    std::uint64_t scatterMult_ = 1;   ///< Coprime rank-scatter multiplier.
    std::uint64_t scatterOffset_ = 0; ///< Rank-scatter offset.

    Mode mode_ = Mode::Stream;
    std::uint32_t burstLeft_ = 0;
    bool firstInBurst_ = true;

    /** Burst-selection weights (access share / expected burst len). */
    double streamBurstProb_ = 1.0;
    double pointerBurstProb_ = 0.0;
    double hotBurstProb_ = 0.0;

    /**
     * One logical array being streamed: a drifting working-set window
     * plus a cursor and the (single) instruction address of the load
     * that walks it. The PC <-> region binding is what gives the Line
     * Location Predictor its last-time accuracy.
     */
    struct Stream
    {
        /** Ring of recently visited pages for near-past reuse. Kept
         *  short so re-touched pages are still stacked-resident. */
        static constexpr std::uint32_t kRecentPages = 24;

        std::uint64_t windowBase = 0; ///< First page of the window.
        std::uint64_t cursor = 0;     ///< Page offset within window.
        std::uint64_t lapPages = 1;   ///< Length of the current lap.
        std::uint32_t lineIdx = 0;    ///< Next line index in the page.
        InstAddr pc = 0;
        std::array<PageAddr, kRecentPages> recent{};
        std::uint32_t recentCount = 0;
        std::uint32_t recentHead = 0;
    };

    std::vector<Stream> streams_;
    std::uint64_t windowPages_ = 1; ///< Window size in pages.
    std::uint32_t activeStream_ = 0;

    /** Whether the last streamAddr() was a near-past re-touch (those
     *  come from a different static instruction than the advancing
     *  load, so they get their own PC). */
    bool lastStreamWasReuse_ = false;

    // Pointer state.
    PageAddr pointerPage_ = 0;
    InstAddr pointerPc_ = 0;
};

/** Per-page access histogram produced by the profiling pre-pass. */
using PageHeatProfile = FlatMap<PageAddr, std::uint64_t>;

/**
 * Page-access histogram of the first @p num_accesses of the stream a
 * fresh generator with identical arguments would produce. Used by
 * TLM-Oracle as its oracular frequency profile.
 */
PageHeatProfile
profilePageHeat(const WorkloadProfile &profile,
                const GeneratorParams &params, std::uint64_t seed,
                std::uint64_t num_accesses);

/**
 * Page-access histogram of the next @p num_accesses of @p source,
 * consumed through the batched refill path. @p footprint_pages_hint,
 * when nonzero, pre-reserves the histogram so profiling long traces
 * never rehashes.
 */
PageHeatProfile
profilePageHeat(AccessSource &source, std::uint64_t num_accesses,
                std::size_t footprint_pages_hint = 0);

} // namespace cameo

#endif // CAMEO_TRACE_GENERATOR_HH
