/**
 * @file
 * Binary trace file formats: record synthetic (or external) access
 * streams to disk and replay them as an AccessSource.
 *
 * Two on-disk formats share the "CAMEOTRC" magic:
 *
 * Version 1 (raw, fixed-width little-endian):
 *   header:  magic (8B), version u32, record count u64, reserved u32
 *   records: pc u64, vaddr u64, gapInstructions u32,
 *            flags u8 (bit0 = write, bit1 = dependsOnPrev), pad u8[3]
 *   Deliberately dumb — 24 bytes per record, no compression — so
 *   external tools (Pin/DynamoRIO frontends, gem5 probes) can emit it
 *   with a dozen lines of code.
 *
 * Version 2 (packed, see packed_trace.hh):
 *   header:  magic (8B), version u32, record count u64, payload bytes
 *            u64, checkpoint count u32, checkpoint interval u32, meta
 *            length u32, reserved u32
 *   body:    meta string, checkpoint table (3 x u64 each), packed
 *            payload
 *   ~5-9 bytes per record; the trace-arena cache persists arenas in
 *   this format with its cache key as the meta string.
 *
 * TraceReader replays either version and supports an mmap-backed mode:
 *   - v1 + mmap: records decode straight out of the mapping (no load
 *     pass, no resident copy);
 *   - v2 + mmap: the packed payload is replayed zero-copy through a
 *     PackedTraceCursor (only the small checkpoint table is copied,
 *     sidestepping alignment hazards).
 * Malformed files of either version fail with a message naming the
 * file, the byte offset, and what was expected versus found.
 */

#ifndef CAMEO_TRACE_TRACE_FILE_HH
#define CAMEO_TRACE_TRACE_FILE_HH

#include <cstdint>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "trace/access.hh"
#include "trace/access_source.hh"
#include "trace/packed_trace.hh"

namespace cameo
{

class MmapFile;

/** Magic bytes identifying a CAMEO trace file. */
inline constexpr char kTraceMagic[8] = {'C', 'A', 'M', 'E',
                                        'O', 'T', 'R', 'C'};

/** On-disk layout (doubles as the version number). */
enum class TraceFormat : std::uint32_t
{
    Raw = 1,    ///< Fixed 24-byte records.
    Packed = 2, ///< Delta/varint records + checkpoint table.
};

/** Newest version this build writes. */
inline constexpr std::uint32_t kTraceVersion = 2;

/** How TraceReader backs its records. */
enum class TraceMode
{
    Auto, ///< Mmap when the platform supports it, else Load.
    Load, ///< Read the whole file into memory.
    Mmap, ///< Zero-copy mapping; throws where unsupported.
};

/** Streams Access records into a trace file. */
class TraceWriter
{
  public:
    /**
     * Open @p path for writing; truncates. Raw traces stream records
     * and patch the header's count on close(); Packed traces buffer
     * in a PackedTraceEncoder and write everything on close(). Either
     * way a writer must be closed (or destroyed) for the file to be
     * valid. @p meta is stored in the file (Packed only).
     */
    explicit TraceWriter(const std::string &path,
                         TraceFormat format = TraceFormat::Raw,
                         std::string meta = "");

    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** Append one record. */
    void append(const Access &access);

    /** Finalize the header and close the file. Idempotent. */
    void close();

    /** True if the file opened (and, after close(), wrote) cleanly. */
    bool good() const { return good_; }

    std::uint64_t recordsWritten() const { return count_; }

  private:
    std::ofstream out_;
    TraceFormat format_;
    std::string meta_;
    PackedTraceEncoder encoder_;
    std::uint64_t count_ = 0;
    bool good_ = false;
    bool closed_ = false;
};

/**
 * Replays a trace file of either format as an AccessSource. Wraps
 * around when exhausted; skip() fast-forwards without materializing
 * records (O(1) for raw traces, checkpoint-bounded for packed ones).
 */
class TraceReader : public AccessSource
{
  public:
    /**
     * Open @p path. Throws std::runtime_error on malformed files with
     * a message naming the file, offset, and expected-vs-found detail.
     */
    explicit TraceReader(const std::string &path,
                         TraceMode mode = TraceMode::Auto);

    ~TraceReader();

    /** Copy the next @p n records (wrapping) into @p buf. */
    void refill(Access *buf, std::size_t n) override;

    /** Advance @p n records without delivering them. */
    void skip(std::uint64_t n) override;

    std::uint64_t size() const { return count_; }

    /** Restart from the first record. */
    void rewind();

    TraceFormat format() const { return format_; }

    /** True when records are served from an mmap'd file. */
    bool zeroCopy() const { return map_ != nullptr; }

    /** Meta string stored in the file (Packed format; else empty). */
    const std::string &meta() const { return meta_; }

  private:
    TraceFormat format_ = TraceFormat::Raw;
    std::uint64_t count_ = 0;
    std::string meta_;
    std::shared_ptr<MmapFile> map_;

    // Raw traces: either a loaded record vector or a pointer into the
    // mapping, plus a plain record cursor.
    std::vector<Access> records_;
    const std::uint8_t *rawBase_ = nullptr;
    std::uint64_t cursor_ = 0;

    // Packed traces: owned payload (Load) or mapped payload (Mmap,
    // with the checkpoint table copied out), plus a decode cursor.
    PackedTrace packed_;
    std::vector<TraceCheckpoint> checkpoints_;
    PackedTraceView view_;
    std::optional<PackedTraceCursor> packedCursor_;
};

/**
 * A version-2 packed trace pulled from disk: storage (owned or
 * mapped), a view over the payload, and the embedded meta string.
 * Used by the trace-arena cache, which wants graceful fallback on
 * corrupt files instead of TraceReader's exceptions.
 */
struct PackedTraceFile
{
    PackedTrace owned;
    std::shared_ptr<MmapFile> map;
    std::vector<TraceCheckpoint> checkpoints;
    PackedTraceView view;
    std::string meta;
};

/**
 * Write @p view (with @p meta) to @p path as a version-2 trace file.
 * Returns false and fills @p error on I/O failure.
 */
bool writePackedTraceFile(const std::string &path,
                          const PackedTraceView &view,
                          const std::string &meta, std::string *error);

/**
 * Load a version-2 trace file into @p out (mmap-backed under
 * TraceMode::Auto where supported). Returns false and fills @p error
 * on any failure, including validation of the packed payload.
 */
bool loadPackedTraceFile(const std::string &path, TraceMode mode,
                         PackedTraceFile *out, std::string *error);

/**
 * Record @p count accesses from @p source into @p path.
 * @return Records written, or 0 on I/O failure.
 */
std::uint64_t recordTrace(AccessSource &source, const std::string &path,
                          std::uint64_t count,
                          TraceFormat format = TraceFormat::Raw);

} // namespace cameo

#endif // CAMEO_TRACE_TRACE_FILE_HH
