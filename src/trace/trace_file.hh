/**
 * @file
 * Binary trace file format: record synthetic (or external) access
 * streams to disk and replay them as an AccessSource.
 *
 * Format (little-endian, fixed-width):
 *   header:  magic "CAMEOTRC" (8B), version u32, record count u64,
 *            reserved u32
 *   records: pc u64, vaddr u64, gapInstructions u32,
 *            flags u8 (bit0 = write, bit1 = dependsOnPrev),
 *            pad u8[3]
 *
 * The format is deliberately dumb — 32 bytes per record, no
 * compression — so external tools (Pin/DynamoRIO frontends, gem5
 * probes) can emit it with a dozen lines of code.
 */

#ifndef CAMEO_TRACE_TRACE_FILE_HH
#define CAMEO_TRACE_TRACE_FILE_HH

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "trace/access.hh"
#include "trace/access_source.hh"

namespace cameo
{

/** Magic bytes identifying a CAMEO trace file. */
inline constexpr char kTraceMagic[8] = {'C', 'A', 'M', 'E',
                                        'O', 'T', 'R', 'C'};

/** Current trace format version. */
inline constexpr std::uint32_t kTraceVersion = 1;

/** Streams Access records into a trace file. */
class TraceWriter
{
  public:
    /**
     * Open @p path for writing; truncates. The header's record count
     * is patched on close(), so a writer must be closed (or
     * destroyed) for the file to be valid.
     */
    explicit TraceWriter(const std::string &path);

    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** Append one record. */
    void append(const Access &access);

    /** Finalize the header and close the file. Idempotent. */
    void close();

    /** True if the file opened successfully. */
    bool good() const { return good_; }

    std::uint64_t recordsWritten() const { return count_; }

  private:
    std::ofstream out_;
    std::uint64_t count_ = 0;
    bool good_ = false;
    bool closed_ = false;
};

/**
 * Replays a trace file as an AccessSource. The whole trace is loaded
 * into memory (32B/record; a 10M-record trace is 320MB — fine for the
 * slice lengths this simulator runs) and wraps around when exhausted.
 */
class TraceReader : public AccessSource
{
  public:
    /**
     * Load @p path. Throws std::runtime_error on malformed files
     * (bad magic, wrong version, truncated records).
     */
    explicit TraceReader(const std::string &path);

    /** Copy the next @p n records (wrapping) into @p buf. */
    void refill(Access *buf, std::size_t n) override;

    std::uint64_t size() const { return records_.size(); }

    /** Restart from the first record. */
    void rewind() { cursor_ = 0; }

  private:
    std::vector<Access> records_;
    std::size_t cursor_ = 0;
};

/**
 * Record @p count accesses from @p source into @p path.
 * @return Records written, or 0 on I/O failure.
 */
std::uint64_t recordTrace(AccessSource &source, const std::string &path,
                          std::uint64_t count);

} // namespace cameo

#endif // CAMEO_TRACE_TRACE_FILE_HH
