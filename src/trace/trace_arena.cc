#include "trace/trace_arena.hh"

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <utility>
#include <vector>

#include <unistd.h>

#include "trace/trace_file.hh"
#include "util/bitops.hh"
#include "util/env.hh"
#include "util/fs_lock.hh"
#include "util/mmap_file.hh"

namespace cameo
{

namespace
{

/** Default cache cap when CAMEO_TRACE_ARENA_MB is unset. */
constexpr std::uint64_t kDefaultCapMb = 512;

std::string
formatDouble(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

} // namespace

std::shared_ptr<const TraceArena>
TraceArena::record(const WorkloadProfile &profile,
                   const GeneratorParams &params, std::uint64_t seed,
                   std::uint64_t count)
{
    SyntheticGenerator generator(profile, params, seed);
    PackedTraceEncoder encoder;
    std::array<Access, 1024> chunk;
    std::uint64_t left = count;
    while (left > 0) {
        const std::size_t n = static_cast<std::size_t>(
            std::min<std::uint64_t>(left, chunk.size()));
        generator.refill(chunk.data(), n);
        encoder.append(chunk.data(), n);
        left -= n;
    }
    return fromPacked(encoder.take());
}

std::shared_ptr<const TraceArena>
TraceArena::fromPacked(PackedTrace packed)
{
    auto arena = std::shared_ptr<TraceArena>(new TraceArena());
    arena->packed_ = std::move(packed);
    arena->view_ = arena->packed_.view();
    arena->memoryBytes_ = arena->packed_.memoryBytes();
    return arena;
}

std::shared_ptr<const TraceArena>
TraceArena::fromFile(const std::string &path,
                     const std::string &expected_key, std::string *error)
{
    PackedTraceFile file;
    if (!loadPackedTraceFile(path, TraceMode::Auto, &file, error))
        return nullptr;
    if (file.meta != expected_key) {
        if (error != nullptr) {
            *error = "trace file " + path +
                     ": embedded key does not match (stale or foreign "
                     "arena file); expected \"" +
                     expected_key + "\", found \"" + file.meta + "\"";
        }
        return nullptr;
    }
    auto arena = std::shared_ptr<TraceArena>(new TraceArena());
    arena->map_ = std::move(file.map);
    arena->packed_ = std::move(file.owned);
    arena->checkpoints_ = std::move(file.checkpoints);
    if (arena->map_ != nullptr) {
        arena->view_ = PackedTraceView{
            file.view.bytes, file.view.byteSize,
            arena->checkpoints_.data(), arena->checkpoints_.size(),
            file.view.count};
    } else {
        arena->view_ = arena->packed_.view();
    }
    arena->memoryBytes_ =
        arena->view_.byteSize +
        arena->view_.numCheckpoints * sizeof(TraceCheckpoint);
    return arena;
}

TraceArenaCache::TraceArenaCache(std::uint64_t cap_bytes)
    : capBytes_(cap_bytes)
{
}

namespace
{

std::uint64_t
envCapBytes()
{
    std::uint64_t cap_mb = kDefaultCapMb;
    std::string error;
    if (const auto parsed = envUint("CAMEO_TRACE_ARENA_MB", &error)) {
        cap_mb = *parsed;
    } else if (!error.empty()) {
        std::fprintf(stderr, "warning: %s; using default %llu MB\n",
                     error.c_str(),
                     static_cast<unsigned long long>(kDefaultCapMb));
    }
    return cap_mb << 20;
}

} // namespace

TraceArenaCache &
TraceArenaCache::instance()
{
    static TraceArenaCache cache(envCapBytes());
    static const bool dir_init = [] {
        if (const char *dir = std::getenv("CAMEO_TRACE_CACHE_DIR");
            dir != nullptr && dir[0] != '\0') {
            cache.setCacheDir(dir);
        }
        return true;
    }();
    (void)dir_init;
    return cache;
}

std::string
TraceArenaCache::keyOf(const WorkloadProfile &profile,
                       const GeneratorParams &params, std::uint64_t seed,
                       std::uint64_t count)
{
    // Every field that shapes the stream, in fixed order. Doubles use
    // %.17g so distinct values never collide after formatting.
    std::string key;
    key.reserve(256);
    key += profile.name;
    key += '|';
    key += formatDouble(profile.streamFrac) + '|';
    key += formatDouble(profile.pointerFrac) + '|';
    key += formatDouble(profile.hotFrac) + '|';
    key += std::to_string(profile.linesPerPage) + '|';
    key += formatDouble(profile.zipfExponent) + '|';
    key += formatDouble(profile.dependentFrac) + '|';
    key += formatDouble(profile.streamWindowFrac) + '|';
    key += std::to_string(profile.numStreams) + '|';
    key += formatDouble(profile.nearReuseFrac) + '|';
    key += formatDouble(profile.writeFrac) + '|';
    key += std::to_string(profile.streamPcs) + '|';
    key += std::to_string(profile.pointerPcs) + '|';
    key += std::to_string(profile.hotPcs) + '|';
    key += std::to_string(params.footprintBytes) + '|';
    key += std::to_string(params.hotSetBytes) + '|';
    key += formatDouble(params.gapMeanInstructions) + '|';
    key += std::to_string(seed) + '|';
    key += std::to_string(count);
    return key;
}

std::string
TraceArenaCache::diskPathFor(const std::string &key) const
{
    char name[40];
    std::snprintf(name, sizeof(name), "arena-%016llx.ctp",
                  static_cast<unsigned long long>(fnv1a64(key)));
    return cacheDir_ + "/" + name;
}

std::shared_ptr<const TraceArena>
TraceArenaCache::acquire(const WorkloadProfile &profile,
                         const GeneratorParams &params, std::uint64_t seed,
                         std::uint64_t count)
{
    const std::string key = keyOf(profile, params, seed, count);

    ArenaFuture future;
    std::promise<std::shared_ptr<const TraceArena>> promise;
    std::string disk_path;
    bool builder = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = entries_.find(key);
        if (it != entries_.end()) {
            ++stats_.hits;
            it->second.lastUse = ++useClock_;
            future = it->second.future;
        } else {
            ++stats_.misses;
            builder = true;
            Entry entry;
            entry.future = promise.get_future().share();
            entry.lastUse = ++useClock_;
            future = entry.future;
            entries_.emplace(key, std::move(entry));
            if (!cacheDir_.empty())
                disk_path = diskPathFor(key);
        }
    }

    if (!builder)
        return future.get();

    // Build outside the lock: concurrent acquirers of *other* keys
    // record in parallel; acquirers of this key block on the future.
    std::shared_ptr<const TraceArena> arena;
    bool from_disk = false;
    // Held (when recording to disk) from the re-check until after the
    // final rename; released by the destructor on every exit path.
    FileLock disk_lock;
    try {
        if (!disk_path.empty()) {
            std::string error;
            arena = TraceArena::fromFile(disk_path, key, &error);
            if (arena == nullptr) {
                // Concurrent-recorder guard: without the lock, N
                // processes missing this key each record the full
                // arena before the atomic rename — correct but N
                // times the work. Lock, then re-check: the previous
                // holder usually recorded the file while we waited. A
                // crashed holder's lock is broken by PID liveness or
                // the stale timeout (util/fs_lock.hh).
                disk_lock = FileLock::acquire(disk_path + ".lock");
                arena = TraceArena::fromFile(disk_path, key, &error);
            }
            if (arena != nullptr)
                from_disk = true;
        }
        if (arena == nullptr) {
            arena = TraceArena::record(profile, params, seed, count);
            if (!disk_path.empty()) {
                // Best-effort persistence: write to a PID-unique temp
                // name, then atomically rename so concurrent processes
                // never see a half-written arena (the rename also
                // resolves any race left by a broken lock).
                const std::string tmp =
                    disk_path + ".tmp." + std::to_string(::getpid());
                std::string error;
                if (writePackedTraceFile(tmp, arena->view(), key,
                                         &error)) {
                    if (std::rename(tmp.c_str(), disk_path.c_str()) !=
                        0) {
                        std::remove(tmp.c_str());
                    }
                } else {
                    std::fprintf(stderr, "warning: %s\n", error.c_str());
                }
            }
        }
    } catch (...) {
        promise.set_exception(std::current_exception());
        std::lock_guard<std::mutex> lock(mutex_);
        entries_.erase(key);
        throw;
    }

    promise.set_value(arena);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (from_disk)
            ++stats_.diskLoads;
        else
            ++stats_.recordings;
        auto it = entries_.find(key);
        if (it != entries_.end()) {
            it->second.bytes = arena->memoryBytes();
            it->second.ready = true;
            stats_.residentBytes += arena->memoryBytes();
            evictOverCap();
        }
    }
    return arena;
}

void
TraceArenaCache::evictOverCap()
{
    while (stats_.residentBytes > capBytes_) {
        auto victim = entries_.end();
        for (auto it = entries_.begin(); it != entries_.end(); ++it) {
            if (!it->second.ready)
                continue;
            if (victim == entries_.end() ||
                it->second.lastUse < victim->second.lastUse) {
                victim = it;
            }
        }
        if (victim == entries_.end())
            return; // Nothing ready to evict (builds in flight).
        stats_.residentBytes -= victim->second.bytes;
        ++stats_.evictions;
        entries_.erase(victim);
    }
}

std::unique_ptr<AccessSource>
TraceArenaCache::source(const WorkloadProfile &profile,
                        const GeneratorParams &params, std::uint64_t seed,
                        std::uint64_t count)
{
    if (!enabled())
        return std::make_unique<SyntheticGenerator>(profile, params, seed);
    return std::make_unique<ArenaReplaySource>(
        acquire(profile, params, seed, count));
}

std::shared_ptr<const PageHeatProfile>
TraceArenaCache::pageHeat(const WorkloadProfile &profile,
                          const GeneratorParams &params,
                          std::uint64_t seed, std::uint64_t count,
                          std::uint64_t warmup, std::uint64_t accesses,
                          std::size_t footprint_pages_hint)
{
    const std::string key = keyOf(profile, params, seed, count) +
                            "|heat|" + std::to_string(warmup) + '|' +
                            std::to_string(accesses) + '|' +
                            std::to_string(footprint_pages_hint);

    HeatFuture future;
    std::promise<std::shared_ptr<const PageHeatProfile>> promise;
    bool builder = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = heat_.find(key);
        if (it != heat_.end()) {
            ++stats_.heatHits;
            future = it->second;
        } else {
            ++stats_.heatMisses;
            builder = true;
            future = promise.get_future().share();
            heat_.emplace(key, future);
        }
    }

    if (!builder)
        return future.get();

    // Profile outside the lock; concurrent requesters of this key
    // block on the future instead of duplicating the pass.
    std::shared_ptr<const PageHeatProfile> profile_result;
    try {
        const auto src = source(profile, params, seed, count);
        if (warmup > 0)
            src->skip(warmup);
        profile_result = std::make_shared<const PageHeatProfile>(
            profilePageHeat(*src, accesses, footprint_pages_hint));
    } catch (...) {
        promise.set_exception(std::current_exception());
        std::lock_guard<std::mutex> lock(mutex_);
        heat_.erase(key);
        throw;
    }

    promise.set_value(profile_result);
    return profile_result;
}

void
TraceArenaCache::setCacheDir(std::string dir)
{
    if (!dir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(dir, ec);
        if (ec) {
            std::fprintf(stderr,
                         "warning: cannot create trace cache directory "
                         "%s: %s\n",
                         dir.c_str(), ec.message().c_str());
        }
    }
    std::lock_guard<std::mutex> lock(mutex_);
    cacheDir_ = std::move(dir);
}

std::string
TraceArenaCache::cacheDir() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return cacheDir_;
}

void
TraceArenaCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
    heat_.clear();
    stats_.residentBytes = 0;
}

TraceArenaStats
TraceArenaCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

} // namespace cameo
