/**
 * @file
 * AccessSource: the interface between a core and whatever produces its
 * access stream.
 *
 * The bundled SyntheticGenerator is one implementation; TraceReader
 * (trace_file.hh) replays recorded traces, which is how users with
 * real application traces (Pin, DynamoRIO, gem5) drive this simulator.
 *
 * The primary interface is batched: refill() produces a block of
 * records per virtual call, so the per-record cost on the simulation
 * hot path is a buffer read instead of a virtual dispatch (CpuCore
 * keeps a small ring it refills from; see system/cpu_core.hh). The
 * single-record next() shim remains for tests and offline tools.
 */

#ifndef CAMEO_TRACE_ACCESS_SOURCE_HH
#define CAMEO_TRACE_ACCESS_SOURCE_HH

#include <cstddef>
#include <cstdint>

#include "trace/access.hh"

namespace cameo
{

/** Produces one core's access stream. */
class AccessSource
{
  public:
    virtual ~AccessSource() = default;

    /**
     * Produce the next @p n accesses into @p buf. Sources never
     * exhaust: finite sources (trace files) wrap around, which matches
     * the paper's rate-mode methodology of running fixed-length
     * representative slices. Record i+1 of a batch is defined to be
     * the record a second refill (or next()) call would have produced,
     * so batch boundaries never change the stream.
     */
    virtual void refill(Access *buf, std::size_t n) = 0;

    /**
     * Advance the stream @p n records without delivering them, as if
     * refill() had been called and the results discarded. Used for
     * warmup fast-forward and replay stagger. The default materializes
     * records into a scratch buffer in chunks; sources with cheaper
     * ways to advance (checkpointed arenas, fixed-record trace files)
     * override it.
     */
    virtual void skip(std::uint64_t n)
    {
        Access scratch[64];
        while (n > 0) {
            const std::size_t chunk =
                n < 64 ? static_cast<std::size_t>(n) : std::size_t{64};
            refill(scratch, chunk);
            n -= chunk;
        }
    }

    /** Single-record convenience wrapper over refill(). */
    Access next()
    {
        Access access;
        refill(&access, 1);
        return access;
    }
};

} // namespace cameo

#endif // CAMEO_TRACE_ACCESS_SOURCE_HH
