/**
 * @file
 * AccessSource: the interface between a core and whatever produces its
 * access stream.
 *
 * The bundled SyntheticGenerator is one implementation; TraceReader
 * (trace_file.hh) replays recorded traces, which is how users with
 * real application traces (Pin, DynamoRIO, gem5) drive this simulator.
 */

#ifndef CAMEO_TRACE_ACCESS_SOURCE_HH
#define CAMEO_TRACE_ACCESS_SOURCE_HH

#include "trace/access.hh"

namespace cameo
{

/** Produces one core's access stream. */
class AccessSource
{
  public:
    virtual ~AccessSource() = default;

    /**
     * Produce the next access. Sources never exhaust: finite sources
     * (trace files) wrap around, which matches the paper's rate-mode
     * methodology of running fixed-length representative slices.
     */
    virtual Access next() = 0;
};

} // namespace cameo

#endif // CAMEO_TRACE_ACCESS_SOURCE_HH
