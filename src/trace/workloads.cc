#include "trace/workloads.hh"

#include <cassert>

namespace cameo
{

const char *
categoryName(WorkloadCategory category)
{
    switch (category) {
      case WorkloadCategory::CapacityLimited:
        return "Capacity";
      case WorkloadCategory::LatencyLimited:
        return "Latency";
    }
    return "Unknown";
}

namespace
{

WorkloadProfile
make(std::string name, WorkloadCategory cat, double fp_gb, double mpki,
     double stream, double pointer, double hot, std::uint32_t lpp,
     double zipf, std::uint32_t mlp, double write_frac,
     double dependent_frac, double window_frac)
{
    WorkloadProfile p;
    p.name = std::move(name);
    p.category = cat;
    p.paperFootprintGb = fp_gb;
    p.paperMpki = mpki;
    p.streamFrac = stream;
    p.pointerFrac = pointer;
    p.hotFrac = hot;
    p.linesPerPage = lpp;
    p.zipfExponent = zipf;
    p.mlp = mlp;
    p.writeFrac = write_frac;
    p.dependentFrac = dependent_frac;
    p.streamWindowFrac = window_frac;
    assert(stream + pointer + hot > 0.999 && stream + pointer + hot < 1.001);
    return p;
}

std::vector<WorkloadProfile>
buildRegistry()
{
    using WC = WorkloadCategory;
    std::vector<WorkloadProfile> v;
    // Arguments: name, category, footprint GB, MPKI, streamFrac,
    // pointerFrac, hotFrac, linesPerPage, zipf, MLP, writeFrac,
    // dependentFrac (of pointer-mode accesses), streamWindowFrac.
    //
    // --- Capacity-Limited (footprint > 12GB at paper scale) ---------
    // mcf: sparse graph/pointer code; low MLP, poor spatial locality.
    v.push_back(make("mcf", WC::CapacityLimited, 52.4, 39.1,
                     0.10, 0.70, 0.20, 16, 1.10, 2, 0.20, 0.85, 0.30));
    // lbm: lattice-Boltzmann streaming over large arrays; write-heavy.
    v.push_back(make("lbm", WC::CapacityLimited, 12.8, 28.9,
                     0.78, 0.07, 0.15, 64, 0.60, 8, 0.45, 0.0, 0.16));
    // GemsFDTD: large stencil sweeps.
    v.push_back(make("GemsFDTD", WC::CapacityLimited, 25.2, 19.1,
                     0.65, 0.10, 0.25, 48, 0.80, 6, 0.30, 0.2, 0.09));
    // bwaves: dense solver streams, moderate MPKI.
    v.push_back(make("bwaves", WC::CapacityLimited, 27.2, 6.3,
                     0.70, 0.08, 0.22, 56, 0.80, 6, 0.25, 0.2, 0.08));
    // cactusADM: stencil with reused working planes.
    v.push_back(make("cactusADM", WC::CapacityLimited, 12.8, 4.9,
                     0.50, 0.12, 0.38, 32, 0.85, 4, 0.30, 0.3, 0.16));
    // zeusmp: CFD stencil, similar shape to cactusADM.
    v.push_back(make("zeusmp", WC::CapacityLimited, 14.1, 5.0,
                     0.55, 0.12, 0.33, 36, 0.85, 4, 0.30, 0.3, 0.15));
    // --- Latency-Limited (fits in memory, MPKI > 1) ------------------
    // gcc: huge MPKI, irregular data structures, half-dependent.
    v.push_back(make("gcc", WC::LatencyLimited, 2.8, 63.1,
                     0.30, 0.50, 0.20, 24, 0.80, 4, 0.30, 0.5, 0.13));
    // milc: strided lattice sweeps — poor spatial locality (~10 of 64
    // lines per page) but independent accesses (decent MLP).
    v.push_back(make("milc", WC::LatencyLimited, 11.2, 31.9,
                     0.70, 0.10, 0.20, 10, 0.90, 6, 0.30, 0.0, 0.06));
    // soplex: sparse LP solver, mixed streaming/indirection.
    v.push_back(make("soplex", WC::LatencyLimited, 7.6, 28.9,
                     0.50, 0.30, 0.20, 40, 0.70, 4, 0.25, 0.3, 0.07));
    // libquantum: pure streaming over a small array; very regular.
    v.push_back(make("libquantum", WC::LatencyLimited, 1.0, 25.4,
                     0.95, 0.00, 0.05, 64, 0.30, 8, 0.25, 0.0, 1.00));
    // xalancbmk: XML pointer chasing.
    v.push_back(make("xalancbmk", WC::LatencyLimited, 4.4, 23.7,
                     0.15, 0.60, 0.25, 20, 0.90, 2, 0.25, 0.9, 0.10));
    // omnetpp: discrete-event pointer chasing.
    v.push_back(make("omnetpp", WC::LatencyLimited, 4.8, 20.5,
                     0.15, 0.65, 0.20, 18, 0.90, 2, 0.30, 0.9, 0.10));
    // leslie3d: streaming stencil.
    v.push_back(make("leslie3d", WC::LatencyLimited, 2.4, 15.8,
                     0.70, 0.05, 0.25, 48, 0.60, 6, 0.30, 0.2, 0.30));
    // sphinx3: acoustic scoring; mixed.
    v.push_back(make("sphinx3", WC::LatencyLimited, 0.60, 13.5,
                     0.55, 0.20, 0.25, 32, 0.70, 4, 0.20, 0.3, 0.35));
    // bzip2: block compression; moderate locality, low MPKI.
    v.push_back(make("bzip2", WC::LatencyLimited, 1.1, 3.48,
                     0.45, 0.25, 0.30, 36, 0.80, 3, 0.35, 0.3, 0.30));
    // dealII: FEM with decent cache behaviour.
    v.push_back(make("dealII", WC::LatencyLimited, 0.88, 2.33,
                     0.30, 0.40, 0.30, 28, 0.80, 3, 0.25, 0.5, 0.30));
    // astar: path-finding over a tiny graph; mostly cache-resident.
    v.push_back(make("astar", WC::LatencyLimited, 0.12, 1.81,
                     0.10, 0.60, 0.30, 16, 1.00, 2, 0.20, 0.9, 0.20));

    // Near-past reuse overrides (default 0.3): stencil/solver codes
    // revisit recently produced planes heavily; libquantum is the one
    // genuinely single-pass stream in the suite.
    for (auto &p : v) {
        if (p.name == "libquantum")
            p.nearReuseFrac = 0.0;
        else if (p.category == WC::CapacityLimited && p.name != "mcf")
            p.nearReuseFrac = 0.40;
        else if (p.name == "milc" || p.name == "leslie3d" ||
                 p.name == "sphinx3")
            p.nearReuseFrac = 0.35;
    }
    return v;
}

} // namespace

const std::vector<WorkloadProfile> &
allWorkloads()
{
    static const std::vector<WorkloadProfile> registry = buildRegistry();
    return registry;
}

std::vector<WorkloadProfile>
workloadsInCategory(WorkloadCategory category)
{
    std::vector<WorkloadProfile> out;
    for (const auto &p : allWorkloads()) {
        if (p.category == category)
            out.push_back(p);
    }
    return out;
}

const WorkloadProfile *
findWorkload(const std::string &name)
{
    for (const auto &p : allWorkloads()) {
        if (p.name == name)
            return &p;
    }
    return nullptr;
}

std::vector<WorkloadProfile>
workloadsByNames(std::string_view csv, std::vector<std::string> *unknown)
{
    std::vector<WorkloadProfile> out;
    std::size_t pos = 0;
    while (pos <= csv.size()) {
        const std::size_t comma = csv.find(',', pos);
        const std::size_t end =
            comma == std::string_view::npos ? csv.size() : comma;
        const std::string name(csv.substr(pos, end - pos));
        if (!name.empty()) {
            if (const WorkloadProfile *profile = findWorkload(name))
                out.push_back(*profile);
            else if (unknown != nullptr)
                unknown->push_back(name);
        }
        if (comma == std::string_view::npos)
            break;
        pos = comma + 1;
    }
    return out;
}

} // namespace cameo
