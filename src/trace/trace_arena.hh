/**
 * @file
 * Trace arenas: record a workload's deterministic access stream once,
 * replay it everywhere.
 *
 * A sweep (9 organizations x N config points) re-runs the synthetic
 * generator's RNG state machine for the *same* (profile, params, seed)
 * dozens of times, and TLM-Oracle runs it twice more per job for its
 * page-heat pre-pass. Since the stream is deterministic given those
 * inputs, the process-wide TraceArenaCache materializes it exactly
 * once into a packed arena (see packed_trace.hh, ~5-9 bytes/record vs
 * the 24-byte in-memory Access) and every later job replays it through
 * an ArenaReplaySource whose refill() is a branch-light unpack loop.
 *
 * Replay is bit-identical to a fresh generator by construction — the
 * arena *is* the generator's output — so golden statistics do not move
 * when the cache is enabled (property-tested in test_trace_arena.cc).
 *
 * Memory policy: the cache is capped (CAMEO_TRACE_ARENA_MB, strict
 * parse, default 512); when inserting an arena pushes the resident
 * total over the cap, least-recently-acquired arenas are evicted.
 * Live ArenaReplaySources keep their arena alive via shared_ptr, so
 * eviction only drops the cache's reference. A cap of 0 disables the
 * cache entirely: source() then degrades to handing out fresh
 * generators.
 *
 * Persistence: with a cache directory set (--trace-cache-dir or
 * CAMEO_TRACE_CACHE_DIR), recorded arenas are written as version-2
 * packed trace files and mmap'd back on the next run, so repeated
 * sweeps skip recording entirely. Files embed the full cache key and
 * are re-recorded on any mismatch, so stale files can only cost time,
 * never correctness.
 */

#ifndef CAMEO_TRACE_TRACE_ARENA_HH
#define CAMEO_TRACE_TRACE_ARENA_HH

#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "trace/access_source.hh"
#include "trace/generator.hh"
#include "trace/packed_trace.hh"
#include "trace/workloads.hh"

namespace cameo
{

class MmapFile;

/**
 * One immutable recorded stream. Owns either an in-memory PackedTrace
 * (recorded this run) or an mmap'd trace file (loaded from the cache
 * directory); either way view() exposes the packed payload without
 * copying it again.
 */
class TraceArena
{
  public:
    /** Record @p count records from a fresh generator. */
    static std::shared_ptr<const TraceArena>
    record(const WorkloadProfile &profile, const GeneratorParams &params,
           std::uint64_t seed, std::uint64_t count);

    /** Wrap an already-packed stream. */
    static std::shared_ptr<const TraceArena> fromPacked(PackedTrace packed);

    /**
     * Load a persisted arena, mmap-backed when the platform allows.
     * Returns nullptr (with @p error set) when the file is missing,
     * corrupt, or its embedded key differs from @p expected_key —
     * callers then fall back to recording.
     */
    static std::shared_ptr<const TraceArena>
    fromFile(const std::string &path, const std::string &expected_key,
             std::string *error);

    PackedTraceView view() const { return view_; }
    std::uint64_t records() const { return view_.count; }

    /** Bytes charged against the cache cap (payload + checkpoints). */
    std::uint64_t memoryBytes() const { return memoryBytes_; }

    /** True when the payload is served from an mmap'd file. */
    bool mapped() const { return map_ != nullptr; }

  private:
    TraceArena() = default;

    PackedTrace packed_;               ///< Storage when recorded.
    std::shared_ptr<MmapFile> map_;    ///< Storage when mmap-loaded.
    std::vector<TraceCheckpoint> checkpoints_; ///< Copied in mmap mode.
    PackedTraceView view_;
    std::uint64_t memoryBytes_ = 0;
};

/**
 * AccessSource replaying an arena from the start. Each source has its
 * own cursor, so any number of cores/jobs can replay one arena
 * concurrently; the shared_ptr keeps the arena alive past eviction.
 */
class ArenaReplaySource : public AccessSource
{
  public:
    explicit ArenaReplaySource(std::shared_ptr<const TraceArena> arena)
        : arena_(std::move(arena)), cursor_(arena_->view())
    {
    }

    void refill(Access *buf, std::size_t n) override
    {
        cursor_.refill(buf, n);
    }

    /** Checkpoint-accelerated fast-forward (see PackedTraceCursor). */
    void skip(std::uint64_t n) override { cursor_.skip(n); }

    const TraceArena &arena() const { return *arena_; }

  private:
    std::shared_ptr<const TraceArena> arena_;
    PackedTraceCursor cursor_;
};

/** Observability counters for the process-wide cache. */
struct TraceArenaStats
{
    std::uint64_t hits = 0;       ///< acquire() found a resident arena.
    std::uint64_t misses = 0;     ///< acquire() had to materialize.
    std::uint64_t recordings = 0; ///< Misses served by running the generator.
    std::uint64_t diskLoads = 0;  ///< Misses served from the cache dir.
    std::uint64_t evictions = 0;  ///< Arenas dropped for the memory cap.
    std::uint64_t residentBytes = 0; ///< Current charged total.
    std::uint64_t heatHits = 0;   ///< pageHeat() served from cache.
    std::uint64_t heatMisses = 0; ///< pageHeat() had to profile.
};

/**
 * Process-wide, thread-safe arena cache. Keyed by everything that
 * shapes the stream: profile fields + generator params + seed + record
 * count (keyOf()). Concurrent first touches of one key are collapsed
 * onto a single recording via a shared future, so a jobs=8 sweep
 * records each workload exactly once no matter who gets there first.
 */
class TraceArenaCache
{
  public:
    /** @p cap_bytes = 0 disables caching (source() returns fresh
     *  generators). */
    explicit TraceArenaCache(std::uint64_t cap_bytes);

    /**
     * The process-wide instance. Cap from CAMEO_TRACE_ARENA_MB (strict
     * parse; malformed values warn and fall back to the 512MB
     * default), cache directory from CAMEO_TRACE_CACHE_DIR when set.
     */
    static TraceArenaCache &instance();

    bool enabled() const { return capBytes_ > 0; }
    std::uint64_t capBytes() const { return capBytes_; }

    /**
     * The arena for (profile, params, seed) holding @p count records.
     * First caller records (or loads from the cache directory); every
     * concurrent and later caller shares the result. Throws only if
     * recording itself throws (allocation failure).
     */
    std::shared_ptr<const TraceArena>
    acquire(const WorkloadProfile &profile, const GeneratorParams &params,
            std::uint64_t seed, std::uint64_t count);

    /**
     * An AccessSource for the stream: an ArenaReplaySource when the
     * cache is enabled, a fresh SyntheticGenerator otherwise. This is
     * the one sanctioned way for sweeps/benches to build sources.
     */
    std::unique_ptr<AccessSource>
    source(const WorkloadProfile &profile, const GeneratorParams &params,
           std::uint64_t seed, std::uint64_t count);

    /**
     * Memoized page-heat profile for TLM-Oracle's pre-pass: the
     * histogram of records [warmup, warmup + accesses) of the stream,
     * built with @p footprint_pages_hint (part of the key — the hint
     * fixes the FlatMap layout and thus iteration order, which the
     * merged heat map's contents depend on). One profiling pass per
     * distinct request, shared across all jobs; concurrent first
     * touches collapse onto a single profiling pass via a shared
     * future, exactly like acquire().
     */
    std::shared_ptr<const PageHeatProfile>
    pageHeat(const WorkloadProfile &profile, const GeneratorParams &params,
             std::uint64_t seed, std::uint64_t count, std::uint64_t warmup,
             std::uint64_t accesses, std::size_t footprint_pages_hint);

    /** Set (or clear, with "") the persistence directory. */
    void setCacheDir(std::string dir);
    std::string cacheDir() const;

    /** Drop every resident arena and heat profile (not the stats). */
    void clear();

    TraceArenaStats stats() const;

    /** The canonical cache key (also embedded in persisted files). */
    static std::string keyOf(const WorkloadProfile &profile,
                             const GeneratorParams &params,
                             std::uint64_t seed, std::uint64_t count);

  private:
    using ArenaFuture =
        std::shared_future<std::shared_ptr<const TraceArena>>;
    using HeatFuture =
        std::shared_future<std::shared_ptr<const PageHeatProfile>>;

    struct Entry
    {
        ArenaFuture future;
        std::uint64_t bytes = 0;   ///< 0 until the build finishes.
        std::uint64_t lastUse = 0; ///< LRU clock at last acquire().
        bool ready = false;
    };

    /** Evict ready LRU entries until residentBytes_ <= capBytes_.
     *  Caller holds mutex_. */
    void evictOverCap();

    std::string diskPathFor(const std::string &key) const;

    const std::uint64_t capBytes_;

    mutable std::mutex mutex_;
    std::map<std::string, Entry> entries_;
    std::map<std::string, HeatFuture> heat_;
    std::string cacheDir_;
    std::uint64_t useClock_ = 0;
    TraceArenaStats stats_;
};

} // namespace cameo

#endif // CAMEO_TRACE_TRACE_ARENA_HH
