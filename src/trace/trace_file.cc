#include "trace/trace_file.hh"

#include <algorithm>
#include <array>
#include <cassert>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "util/mmap_file.hh"

namespace cameo
{

namespace
{

constexpr std::size_t kRawHeaderBytes = 8 + 4 + 8 + 4;
constexpr std::size_t kRawRecordBytes = 8 + 8 + 4 + 1 + 3;
constexpr std::size_t kPackedHeaderBytes = 8 + 4 + 8 + 8 + 4 + 4 + 4 + 4;
constexpr std::size_t kCheckpointBytes = 8 + 8 + 8;

void
put32(void *dst, std::uint32_t v)
{
    std::memcpy(dst, &v, sizeof(v));
}

void
put64(void *dst, std::uint64_t v)
{
    std::memcpy(dst, &v, sizeof(v));
}

std::uint32_t
get32(const void *src)
{
    std::uint32_t v;
    std::memcpy(&v, src, sizeof(v));
    return v;
}

std::uint64_t
get64(const void *src)
{
    std::uint64_t v;
    std::memcpy(&v, src, sizeof(v));
    return v;
}

Access
decodeRawRecord(const std::uint8_t *rec)
{
    Access a;
    a.pc = get64(rec);
    a.vaddr = get64(rec + 8);
    a.gapInstructions = get32(rec + 16);
    a.isWrite = (rec[20] & 1) != 0;
    a.dependsOnPrev = (rec[20] & 2) != 0;
    return a;
}

/** Printable rendering of the magic actually found in a bad file. */
std::string
renderBytes(const std::uint8_t *data, std::size_t n)
{
    std::string out;
    for (std::size_t i = 0; i < n; ++i) {
        const char c = static_cast<char>(data[i]);
        if (c >= 0x20 && c < 0x7f) {
            out += c;
        } else {
            char hex[8];
            std::snprintf(hex, sizeof(hex), "\\x%02x", data[i]);
            out += hex;
        }
    }
    return out;
}

bool
setError(std::string *error, const std::string &path,
         const std::string &detail)
{
    if (error != nullptr)
        *error = "trace file " + path + ": " + detail;
    return false;
}

/** Whole-file bytes, either owned or mapped. */
struct TraceBytes
{
    std::vector<std::uint8_t> owned;
    std::shared_ptr<MmapFile> map;
    const std::uint8_t *data = nullptr;
    std::size_t size = 0;
};

TraceMode
resolveMode(TraceMode mode)
{
    if (mode == TraceMode::Auto)
        return MmapFile::supported() ? TraceMode::Mmap : TraceMode::Load;
    return mode;
}

bool
openTraceBytes(const std::string &path, TraceMode mode, TraceBytes *out,
               std::string *error)
{
    if (resolveMode(mode) == TraceMode::Mmap) {
        auto map = std::make_shared<MmapFile>(path);
        if (!map->valid())
            return setError(error, path, map->error());
        out->data = map->data();
        out->size = map->size();
        out->map = std::move(map);
        return true;
    }
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return setError(error, path, "cannot open for reading");
    in.seekg(0, std::ios::end);
    const auto size = static_cast<std::size_t>(in.tellg());
    in.seekg(0, std::ios::beg);
    out->owned.resize(size);
    if (size > 0) {
        in.read(reinterpret_cast<char *>(out->owned.data()),
                static_cast<std::streamsize>(size));
        if (!in)
            return setError(error, path, "read failed");
    }
    out->data = out->owned.data();
    out->size = size;
    return true;
}

/** Decoded header of either format. */
struct ParsedHeader
{
    TraceFormat format = TraceFormat::Raw;
    std::uint64_t count = 0;
    std::uint64_t payloadBytes = 0;    // Packed only.
    std::uint32_t checkpointCount = 0; // Packed only.
    std::uint32_t metaLength = 0;      // Packed only.
    std::size_t headerBytes = 0;
};

bool
parseHeader(const std::string &path, const std::uint8_t *data,
            std::size_t size, ParsedHeader *out, std::string *error)
{
    if (size < 12) {
        return setError(error, path,
                        "expected at least 12 header bytes (magic + "
                        "version), found " +
                            std::to_string(size));
    }
    if (std::memcmp(data, kTraceMagic, 8) != 0) {
        return setError(error, path,
                        "bad magic at offset 0: expected \"CAMEOTRC\", "
                        "found \"" +
                            renderBytes(data, 8) + "\"");
    }
    const std::uint32_t version = get32(data + 8);

    if (version == static_cast<std::uint32_t>(TraceFormat::Raw)) {
        if (size < kRawHeaderBytes) {
            return setError(error, path,
                            "truncated header: version-1 header needs " +
                                std::to_string(kRawHeaderBytes) +
                                " bytes, found " + std::to_string(size));
        }
        out->format = TraceFormat::Raw;
        out->count = get64(data + 12);
        out->headerBytes = kRawHeaderBytes;
        if (out->count == 0)
            return setError(error, path, "empty trace (0 records)");
        const std::uint64_t expected =
            kRawHeaderBytes + out->count * kRawRecordBytes;
        if (size < expected) {
            const std::uint64_t record =
                (size - kRawHeaderBytes) / kRawRecordBytes;
            return setError(
                error, path,
                "truncated at offset " + std::to_string(size) +
                    ": record " + std::to_string(record) + " of " +
                    std::to_string(out->count) + " is incomplete (" +
                    std::to_string(out->count) + " records need " +
                    std::to_string(expected) + " bytes, found " +
                    std::to_string(size) + ")");
        }
        if (size > expected) {
            return setError(error, path,
                            std::to_string(size - expected) +
                                " trailing bytes after the last record "
                                "at offset " +
                                std::to_string(expected));
        }
        return true;
    }

    if (version == static_cast<std::uint32_t>(TraceFormat::Packed)) {
        if (size < kPackedHeaderBytes) {
            return setError(error, path,
                            "truncated header: version-2 header needs " +
                                std::to_string(kPackedHeaderBytes) +
                                " bytes, found " + std::to_string(size));
        }
        out->format = TraceFormat::Packed;
        out->count = get64(data + 12);
        out->payloadBytes = get64(data + 20);
        out->checkpointCount = get32(data + 28);
        const std::uint32_t interval = get32(data + 32);
        out->metaLength = get32(data + 36);
        out->headerBytes = kPackedHeaderBytes;
        if (out->count == 0)
            return setError(error, path, "empty trace (0 records)");
        if (interval != kTraceCheckpointInterval) {
            return setError(error, path,
                            "unsupported checkpoint interval " +
                                std::to_string(interval) +
                                " at offset 32 (this build uses " +
                                std::to_string(kTraceCheckpointInterval) +
                                ")");
        }
        const std::uint64_t expected =
            kPackedHeaderBytes + out->metaLength +
            static_cast<std::uint64_t>(out->checkpointCount) *
                kCheckpointBytes +
            out->payloadBytes;
        if (size != expected) {
            return setError(
                error, path,
                "body size mismatch: header promises " +
                    std::to_string(expected) + " bytes (meta " +
                    std::to_string(out->metaLength) + " + " +
                    std::to_string(out->checkpointCount) +
                    " checkpoints + payload " +
                    std::to_string(out->payloadBytes) + "), found " +
                    std::to_string(size));
        }
        return true;
    }

    return setError(error, path,
                    "unsupported trace version " +
                        std::to_string(version) +
                        " at offset 8 (this build reads 1 and 2)");
}

/**
 * Fill @p out from parsed version-2 bytes. Copies the payload when the
 * bytes are not mapped (they die with the local buffer); keeps the
 * mapping and copies only the checkpoint table otherwise.
 */
bool
parsePackedBody(const std::string &path, TraceBytes &&bytes,
                const ParsedHeader &header, PackedTraceFile *out,
                std::string *error)
{
    assert(header.format == TraceFormat::Packed);
    const std::uint8_t *cursor = bytes.data + header.headerBytes;
    out->meta.assign(reinterpret_cast<const char *>(cursor),
                     header.metaLength);
    cursor += header.metaLength;

    std::vector<TraceCheckpoint> checkpoints(header.checkpointCount);
    for (std::uint32_t i = 0; i < header.checkpointCount; ++i) {
        checkpoints[i].byteOffset = get64(cursor);
        checkpoints[i].pc = get64(cursor + 8);
        checkpoints[i].vaddr = get64(cursor + 16);
        cursor += kCheckpointBytes;
    }

    if (bytes.map != nullptr) {
        out->map = std::move(bytes.map);
        out->checkpoints = std::move(checkpoints);
        out->view =
            PackedTraceView{cursor, header.payloadBytes,
                            out->checkpoints.data(),
                            out->checkpoints.size(), header.count};
    } else {
        out->owned.bytes.assign(cursor, cursor + header.payloadBytes);
        out->owned.checkpoints = std::move(checkpoints);
        out->owned.count = header.count;
        out->view = out->owned.view();
    }

    std::string detail;
    if (!validatePackedTrace(out->view, &detail))
        return setError(error, path, detail);
    return true;
}

/** Serialize a version-2 file body into @p out_stream. */
bool
writePackedBytes(std::ofstream &out_stream, const PackedTraceView &view,
                 const std::string &meta)
{
    std::array<char, kPackedHeaderBytes> header{};
    std::memcpy(header.data(), kTraceMagic, 8);
    put32(header.data() + 8,
          static_cast<std::uint32_t>(TraceFormat::Packed));
    put64(header.data() + 12, view.count);
    put64(header.data() + 20, view.byteSize);
    put32(header.data() + 28,
          static_cast<std::uint32_t>(view.numCheckpoints));
    put32(header.data() + 32,
          static_cast<std::uint32_t>(kTraceCheckpointInterval));
    put32(header.data() + 36,
          static_cast<std::uint32_t>(meta.size()));
    put32(header.data() + 40, 0); // reserved
    out_stream.write(header.data(), header.size());
    out_stream.write(meta.data(),
                     static_cast<std::streamsize>(meta.size()));
    for (std::uint64_t i = 0; i < view.numCheckpoints; ++i) {
        std::array<char, kCheckpointBytes> cp{};
        put64(cp.data(), view.checkpoints[i].byteOffset);
        put64(cp.data() + 8, view.checkpoints[i].pc);
        put64(cp.data() + 16, view.checkpoints[i].vaddr);
        out_stream.write(cp.data(), cp.size());
    }
    out_stream.write(reinterpret_cast<const char *>(view.bytes),
                     static_cast<std::streamsize>(view.byteSize));
    return out_stream.good();
}

} // namespace

TraceWriter::TraceWriter(const std::string &path, TraceFormat format,
                         std::string meta)
    : out_(path, std::ios::binary | std::ios::trunc), format_(format),
      meta_(std::move(meta))
{
    if (!out_)
        return;
    if (format_ == TraceFormat::Raw) {
        std::array<char, kRawHeaderBytes> header{};
        std::memcpy(header.data(), kTraceMagic, 8);
        put32(header.data() + 8,
              static_cast<std::uint32_t>(TraceFormat::Raw));
        put64(header.data() + 12, 0); // record count patched on close
        put32(header.data() + 20, 0); // reserved
        out_.write(header.data(), header.size());
    }
    good_ = out_.good();
}

TraceWriter::~TraceWriter()
{
    close();
}

void
TraceWriter::append(const Access &access)
{
    if (!good_ || closed_)
        return;
    if (format_ == TraceFormat::Packed) {
        encoder_.append(access);
        ++count_;
        return;
    }
    std::array<char, kRawRecordBytes> rec{};
    put64(rec.data(), access.pc);
    put64(rec.data() + 8, access.vaddr);
    put32(rec.data() + 16, access.gapInstructions);
    rec[20] = static_cast<char>((access.isWrite ? 1 : 0) |
                                (access.dependsOnPrev ? 2 : 0));
    out_.write(rec.data(), rec.size());
    ++count_;
}

void
TraceWriter::close()
{
    if (closed_ || !good_)
        return;
    closed_ = true;
    if (format_ == TraceFormat::Packed) {
        const PackedTrace packed = encoder_.take();
        good_ = writePackedBytes(out_, packed.view(), meta_);
        out_.close();
        good_ = good_ && !out_.fail();
        return;
    }
    // Patch the record count into the header.
    out_.seekp(12, std::ios::beg);
    std::array<char, 8> count_bytes{};
    put64(count_bytes.data(), count_);
    out_.write(count_bytes.data(), count_bytes.size());
    out_.close();
    good_ = !out_.fail();
}

TraceReader::TraceReader(const std::string &path, TraceMode mode)
{
    TraceBytes bytes;
    std::string error;
    if (!openTraceBytes(path, mode, &bytes, &error))
        throw std::runtime_error(error);

    ParsedHeader header;
    if (!parseHeader(path, bytes.data, bytes.size, &header, &error))
        throw std::runtime_error(error);
    format_ = header.format;
    count_ = header.count;

    if (format_ == TraceFormat::Raw) {
        const std::uint8_t *base = bytes.data + header.headerBytes;
        if (bytes.map != nullptr) {
            map_ = std::move(bytes.map);
            rawBase_ = base;
        } else {
            records_.reserve(count_);
            for (std::uint64_t i = 0; i < count_; ++i)
                records_.push_back(
                    decodeRawRecord(base + i * kRawRecordBytes));
        }
        return;
    }

    PackedTraceFile file;
    if (!parsePackedBody(path, std::move(bytes), header, &file, &error))
        throw std::runtime_error(error);
    meta_ = std::move(file.meta);
    map_ = std::move(file.map);
    packed_ = std::move(file.owned);
    checkpoints_ = std::move(file.checkpoints);
    // Rebuild the view against the members the storage now lives in.
    if (map_ != nullptr) {
        view_ = PackedTraceView{file.view.bytes, file.view.byteSize,
                                checkpoints_.data(), checkpoints_.size(),
                                count_};
    } else {
        view_ = packed_.view();
    }
    packedCursor_.emplace(view_);
}

TraceReader::~TraceReader() = default;

void
TraceReader::refill(Access *buf, std::size_t n)
{
    if (format_ == TraceFormat::Packed) {
        packedCursor_->refill(buf, n);
        return;
    }
    if (rawBase_ != nullptr) {
        // Mmap mode: decode records straight out of the mapping.
        for (std::size_t i = 0; i < n; ++i) {
            buf[i] =
                decodeRawRecord(rawBase_ + cursor_ * kRawRecordBytes);
            if (++cursor_ == count_)
                cursor_ = 0;
        }
        return;
    }
    // Chunked copies instead of a per-record modulo: one memcpy-able
    // block per wrap of the trace.
    while (n > 0) {
        const std::size_t chunk = std::min(
            n, static_cast<std::size_t>(records_.size() - cursor_));
        std::copy_n(records_.begin() +
                        static_cast<std::ptrdiff_t>(cursor_),
                    chunk, buf);
        cursor_ += chunk;
        if (cursor_ == records_.size())
            cursor_ = 0;
        buf += chunk;
        n -= chunk;
    }
}

void
TraceReader::skip(std::uint64_t n)
{
    if (format_ == TraceFormat::Packed) {
        packedCursor_->skip(n);
        return;
    }
    // Raw records are fixed-width: a skip is cursor arithmetic.
    cursor_ = (cursor_ + n) % count_;
}

void
TraceReader::rewind()
{
    cursor_ = 0;
    if (packedCursor_)
        packedCursor_->rewind();
}

bool
writePackedTraceFile(const std::string &path, const PackedTraceView &view,
                     const std::string &meta, std::string *error)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        return setError(error, path, "cannot open for writing");
    if (!writePackedBytes(out, view, meta))
        return setError(error, path, "write failed");
    out.close();
    if (out.fail())
        return setError(error, path, "close failed");
    return true;
}

bool
loadPackedTraceFile(const std::string &path, TraceMode mode,
                    PackedTraceFile *out, std::string *error)
{
    TraceBytes bytes;
    if (!openTraceBytes(path, mode, &bytes, error))
        return false;
    ParsedHeader header;
    if (!parseHeader(path, bytes.data, bytes.size, &header, error))
        return false;
    if (header.format != TraceFormat::Packed) {
        return setError(error, path,
                        "is a version-1 raw trace; expected a packed "
                        "(version-2) trace");
    }
    return parsePackedBody(path, std::move(bytes), header, out, error);
}

std::uint64_t
recordTrace(AccessSource &source, const std::string &path,
            std::uint64_t count, TraceFormat format)
{
    TraceWriter writer(path, format);
    if (!writer.good())
        return 0;
    std::array<Access, 256> chunk;
    std::uint64_t left = count;
    while (left > 0) {
        const std::size_t n = static_cast<std::size_t>(
            std::min<std::uint64_t>(left, chunk.size()));
        source.refill(chunk.data(), n);
        for (std::size_t i = 0; i < n; ++i)
            writer.append(chunk[i]);
        left -= n;
    }
    writer.close();
    return writer.good() ? writer.recordsWritten() : 0;
}

} // namespace cameo
