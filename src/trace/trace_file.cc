#include "trace/trace_file.hh"

#include <algorithm>
#include <array>
#include <cassert>
#include <cstring>
#include <stdexcept>

namespace cameo
{

namespace
{

constexpr std::size_t kHeaderBytes = 8 + 4 + 8 + 4;
constexpr std::size_t kRecordBytes = 8 + 8 + 4 + 1 + 3;

void
put32(char *dst, std::uint32_t v)
{
    std::memcpy(dst, &v, sizeof(v));
}

void
put64(char *dst, std::uint64_t v)
{
    std::memcpy(dst, &v, sizeof(v));
}

std::uint32_t
get32(const char *src)
{
    std::uint32_t v;
    std::memcpy(&v, src, sizeof(v));
    return v;
}

std::uint64_t
get64(const char *src)
{
    std::uint64_t v;
    std::memcpy(&v, src, sizeof(v));
    return v;
}

} // namespace

TraceWriter::TraceWriter(const std::string &path)
    : out_(path, std::ios::binary | std::ios::trunc)
{
    if (!out_)
        return;
    std::array<char, kHeaderBytes> header{};
    std::memcpy(header.data(), kTraceMagic, 8);
    put32(header.data() + 8, kTraceVersion);
    put64(header.data() + 12, 0); // record count patched on close
    put32(header.data() + 20, 0); // reserved
    out_.write(header.data(), header.size());
    good_ = out_.good();
}

TraceWriter::~TraceWriter()
{
    close();
}

void
TraceWriter::append(const Access &access)
{
    if (!good_ || closed_)
        return;
    std::array<char, kRecordBytes> rec{};
    put64(rec.data(), access.pc);
    put64(rec.data() + 8, access.vaddr);
    put32(rec.data() + 16, access.gapInstructions);
    rec[20] = static_cast<char>((access.isWrite ? 1 : 0) |
                                (access.dependsOnPrev ? 2 : 0));
    out_.write(rec.data(), rec.size());
    ++count_;
}

void
TraceWriter::close()
{
    if (closed_ || !good_)
        return;
    closed_ = true;
    // Patch the record count into the header.
    out_.seekp(12, std::ios::beg);
    std::array<char, 8> count_bytes{};
    put64(count_bytes.data(), count_);
    out_.write(count_bytes.data(), count_bytes.size());
    out_.close();
    good_ = !out_.fail();
}

TraceReader::TraceReader(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw std::runtime_error("cannot open trace file: " + path);

    std::array<char, kHeaderBytes> header{};
    in.read(header.data(), header.size());
    if (!in || std::memcmp(header.data(), kTraceMagic, 8) != 0)
        throw std::runtime_error("not a CAMEO trace file: " + path);
    const std::uint32_t version = get32(header.data() + 8);
    if (version != kTraceVersion) {
        throw std::runtime_error("unsupported trace version " +
                                 std::to_string(version));
    }
    const std::uint64_t count = get64(header.data() + 12);
    records_.reserve(count);

    std::array<char, kRecordBytes> rec{};
    for (std::uint64_t i = 0; i < count; ++i) {
        in.read(rec.data(), rec.size());
        if (!in)
            throw std::runtime_error("truncated trace file: " + path);
        Access a;
        a.pc = get64(rec.data());
        a.vaddr = get64(rec.data() + 8);
        a.gapInstructions = get32(rec.data() + 16);
        a.isWrite = (rec[20] & 1) != 0;
        a.dependsOnPrev = (rec[20] & 2) != 0;
        records_.push_back(a);
    }
    if (records_.empty())
        throw std::runtime_error("empty trace file: " + path);
}

void
TraceReader::refill(Access *buf, std::size_t n)
{
    // Chunked copies instead of a per-record modulo: one memcpy-able
    // block per wrap of the trace.
    while (n > 0) {
        const std::size_t chunk =
            std::min(n, records_.size() - cursor_);
        std::copy_n(records_.begin() +
                        static_cast<std::ptrdiff_t>(cursor_),
                    chunk, buf);
        cursor_ += chunk;
        if (cursor_ == records_.size())
            cursor_ = 0;
        buf += chunk;
        n -= chunk;
    }
}

std::uint64_t
recordTrace(AccessSource &source, const std::string &path,
            std::uint64_t count)
{
    TraceWriter writer(path);
    if (!writer.good())
        return 0;
    for (std::uint64_t i = 0; i < count; ++i)
        writer.append(source.next());
    writer.close();
    return writer.good() ? writer.recordsWritten() : 0;
}

} // namespace cameo
