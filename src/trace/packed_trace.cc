#include "trace/packed_trace.hh"

#include <cstdio>

namespace cameo
{

namespace
{

// Flag-byte layout. Bits 3..7 are reserved and must be zero, which
// validatePackedTrace exploits to reject garbage payloads early.
constexpr std::uint8_t kFlagWrite = 0x01;
constexpr std::uint8_t kFlagDependsOnPrev = 0x02;
constexpr std::uint8_t kFlagPcRepeats = 0x04;
constexpr std::uint8_t kFlagReservedMask = 0xf8;

// A 64-bit varint never needs more than 10 bytes.
constexpr int kMaxVarintBytes = 10;

inline std::uint64_t
zigzagEncode(std::uint64_t delta)
{
    const auto s = static_cast<std::int64_t>(delta);
    return (static_cast<std::uint64_t>(s) << 1) ^
           static_cast<std::uint64_t>(s >> 63);
}

inline std::uint64_t
zigzagDecode(std::uint64_t value)
{
    return (value >> 1) ^ (~(value & 1) + 1);
}

inline void
putVarint(std::vector<std::uint8_t> &out, std::uint64_t value)
{
    while (value >= 0x80) {
        out.push_back(static_cast<std::uint8_t>(value) | 0x80);
        value >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(value));
}

// Unchecked decode: only safe on payloads that passed
// validatePackedTrace (or came straight out of the encoder).
inline std::uint64_t
getVarint(const std::uint8_t *&cursor)
{
    std::uint64_t value = *cursor++;
    if (value < 0x80)
        return value;
    value &= 0x7f;
    int shift = 7;
    for (;;) {
        const std::uint64_t byte = *cursor++;
        value |= (byte & 0x7f) << shift;
        if (byte < 0x80)
            return value;
        shift += 7;
    }
}

inline void
skipVarint(const std::uint8_t *&cursor)
{
    while (*cursor++ >= 0x80) {
    }
}

// Bounds-checked decode for validation of untrusted bytes. Returns
// false when the varint runs past @p end or exceeds 10 bytes.
bool
checkedVarint(const std::uint8_t *&cursor, const std::uint8_t *end,
              std::uint64_t *out)
{
    std::uint64_t value = 0;
    int shift = 0;
    for (int i = 0; i < kMaxVarintBytes; ++i) {
        if (cursor == end)
            return false;
        const std::uint64_t byte = *cursor++;
        value |= (byte & 0x7f) << shift;
        if (byte < 0x80) {
            *out = value;
            return true;
        }
        shift += 7;
    }
    return false;
}

} // namespace

void
PackedTraceEncoder::append(const Access &access)
{
    if (trace_.count % kTraceCheckpointInterval == 0) {
        trace_.checkpoints.push_back(
            TraceCheckpoint{trace_.bytes.size(), prevPc_, prevVaddr_});
    }

    std::uint8_t flags = 0;
    if (access.isWrite)
        flags |= kFlagWrite;
    if (access.dependsOnPrev)
        flags |= kFlagDependsOnPrev;
    const bool pcRepeats = access.pc == prevPc_;
    if (pcRepeats)
        flags |= kFlagPcRepeats;
    trace_.bytes.push_back(flags);

    putVarint(trace_.bytes, access.gapInstructions);
    putVarint(trace_.bytes, zigzagEncode(access.vaddr - prevVaddr_));
    if (!pcRepeats)
        putVarint(trace_.bytes, zigzagEncode(access.pc - prevPc_));

    prevPc_ = access.pc;
    prevVaddr_ = access.vaddr;
    ++trace_.count;
}

PackedTrace
PackedTraceEncoder::take()
{
    PackedTrace out = std::move(trace_);
    trace_ = PackedTrace{};
    prevPc_ = 0;
    prevVaddr_ = 0;
    return out;
}

PackedTraceCursor::PackedTraceCursor(const PackedTraceView &view)
    : view_(view)
{
    rewind();
}

void
PackedTraceCursor::rewind()
{
    cursor_ = view_.bytes;
    record_ = 0;
    pc_ = 0;
    vaddr_ = 0;
}

void
PackedTraceCursor::decodeOne(Access &out)
{
    const std::uint8_t flags = *cursor_++;
    const auto gap = static_cast<std::uint32_t>(getVarint(cursor_));
    vaddr_ += zigzagDecode(getVarint(cursor_));
    if ((flags & kFlagPcRepeats) == 0)
        pc_ += zigzagDecode(getVarint(cursor_));

    out.pc = pc_;
    out.vaddr = vaddr_;
    out.isWrite = (flags & kFlagWrite) != 0;
    out.dependsOnPrev = (flags & kFlagDependsOnPrev) != 0;
    out.gapInstructions = gap;
    ++record_;
}

void
PackedTraceCursor::skipOne()
{
    const std::uint8_t flags = *cursor_++;
    skipVarint(cursor_);
    vaddr_ += zigzagDecode(getVarint(cursor_));
    if ((flags & kFlagPcRepeats) == 0)
        pc_ += zigzagDecode(getVarint(cursor_));
    ++record_;
}

void
PackedTraceCursor::refill(Access *buf, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        if (record_ == view_.count)
            rewind();
        decodeOne(buf[i]);
    }
}

void
PackedTraceCursor::skip(std::uint64_t n)
{
    if (view_.count == 0 || n == 0)
        return;
    // Wrap-aware absolute target, then jump to the nearest preceding
    // checkpoint and walk at most one interval's worth of records.
    const std::uint64_t target = (record_ + n) % view_.count;
    const std::uint64_t cp = target / kTraceCheckpointInterval;
    const TraceCheckpoint &check = view_.checkpoints[cp];
    cursor_ = view_.bytes + check.byteOffset;
    record_ = cp * kTraceCheckpointInterval;
    pc_ = check.pc;
    vaddr_ = check.vaddr;
    while (record_ < target)
        skipOne();
}

bool
validatePackedTrace(const PackedTraceView &view, std::string *error)
{
    const auto fail = [&](std::uint64_t record, std::uint64_t offset,
                          const std::string &what) {
        if (error != nullptr) {
            char head[96];
            std::snprintf(head, sizeof(head),
                          "packed trace record %llu at payload offset "
                          "%llu: ",
                          static_cast<unsigned long long>(record),
                          static_cast<unsigned long long>(offset));
            *error = head + what;
        }
        return false;
    };

    const std::uint64_t expectedCheckpoints =
        view.count == 0
            ? 0
            : (view.count + kTraceCheckpointInterval - 1) /
                  kTraceCheckpointInterval;
    if (view.numCheckpoints != expectedCheckpoints) {
        return fail(0, 0,
                    "expected " + std::to_string(expectedCheckpoints) +
                        " checkpoints for " + std::to_string(view.count) +
                        " records, found " +
                        std::to_string(view.numCheckpoints));
    }

    const std::uint8_t *cursor = view.bytes;
    const std::uint8_t *const end = view.bytes + view.byteSize;
    InstAddr pc = 0;
    Addr vaddr = 0;

    for (std::uint64_t i = 0; i < view.count; ++i) {
        const auto offset = static_cast<std::uint64_t>(cursor - view.bytes);
        if (i % kTraceCheckpointInterval == 0) {
            const TraceCheckpoint &check =
                view.checkpoints[i / kTraceCheckpointInterval];
            if (check.byteOffset != offset || check.pc != pc ||
                check.vaddr != vaddr) {
                return fail(i, offset,
                            "checkpoint " +
                                std::to_string(i /
                                               kTraceCheckpointInterval) +
                                " disagrees with decoded stream "
                                "(expected offset " +
                                std::to_string(offset) + ", found " +
                                std::to_string(check.byteOffset) + ")");
            }
        }
        if (cursor == end)
            return fail(i, offset, "payload ends before flag byte");
        const std::uint8_t flags = *cursor++;
        if ((flags & kFlagReservedMask) != 0) {
            return fail(i, offset,
                        "reserved flag bits set (flags byte 0x" +
                            std::to_string(flags) + ")");
        }
        std::uint64_t value = 0;
        if (!checkedVarint(cursor, end, &value))
            return fail(i, offset, "truncated or overlong gap varint");
        if (value > 0xffffffffULL) {
            return fail(i, offset,
                        "instruction gap " + std::to_string(value) +
                            " exceeds 32 bits");
        }
        if (!checkedVarint(cursor, end, &value))
            return fail(i, offset, "truncated or overlong vaddr varint");
        vaddr += zigzagDecode(value);
        if ((flags & kFlagPcRepeats) == 0) {
            if (!checkedVarint(cursor, end, &value))
                return fail(i, offset, "truncated or overlong pc varint");
            pc += zigzagDecode(value);
        }
    }

    if (cursor != end) {
        return fail(view.count,
                    static_cast<std::uint64_t>(cursor - view.bytes),
                    "payload has " +
                        std::to_string(end - cursor) +
                        " trailing bytes past the last record");
    }
    return true;
}

PackedTrace
packAccesses(const Access *buf, std::size_t n)
{
    PackedTraceEncoder encoder;
    encoder.append(buf, n);
    return encoder.take();
}

} // namespace cameo
