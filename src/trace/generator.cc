#include "trace/generator.hh"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "util/bitops.hh"

namespace cameo
{

namespace
{

// PC pool base addresses per mode; spaced so pools never collide.
constexpr InstAddr kStreamPcBase = 0x400000;
constexpr InstAddr kPointerPcBase = 0x500000;
constexpr InstAddr kHotPcBase = 0x600000;

// Burst length scales (accesses per burst before re-rolling the mode).
constexpr std::uint32_t kPointerBurst = 16;
constexpr std::uint32_t kHotBurst = 24;
constexpr std::uint32_t kStreamPages = 4;

} // namespace

SyntheticGenerator::SyntheticGenerator(const WorkloadProfile &profile,
                                       const GeneratorParams &params,
                                       std::uint64_t seed)
    : profile_(profile), params_(params),
      rng_(seed ^ mix64(std::hash<std::string>{}(profile.name))),
      numPages_(std::max<std::uint64_t>(1,
                                        params.footprintBytes / kPageBytes)),
      hotPages_(std::max<std::uint64_t>(1, params.hotSetBytes / kPageBytes)),
      zipf_(numPages_, profile.zipfExponent)
{
    assert(profile_.linesPerPage >= 1 && profile_.linesPerPage <= 64);
    assert(profile_.numStreams >= 1);
    assert(profile_.streamWindowFrac > 0.0 &&
           profile_.streamWindowFrac <= 1.0);

    windowPages_ = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(profile_.streamWindowFrac *
                                      static_cast<double>(numPages_)));

    // Affine permutation for Zipf-rank scattering: find a multiplier
    // coprime to the footprint size.
    scatterMult_ = 0x9E3779B9 | 1; // large odd constant
    while (std::gcd(scatterMult_, numPages_) != 1)
        scatterMult_ += 2;
    scatterOffset_ = rng_.next(numPages_);

    // Burst-selection weights: access share / expected burst length.
    const double stream_len =
        (kStreamPages / 2 + kStreamPages * 2) / 2.0 *
        std::max(1u, profile_.linesPerPage);
    const double pointer_len = (kPointerBurst / 2 + kPointerBurst * 2) / 2.0;
    const double hot_len = (kHotBurst / 2 + kHotBurst * 2) / 2.0;
    streamBurstProb_ = profile_.streamFrac / stream_len;
    pointerBurstProb_ = profile_.pointerFrac / pointer_len;
    hotBurstProb_ = profile_.hotFrac / hot_len;
    streams_.resize(profile_.numStreams);
    for (std::uint32_t s = 0; s < profile_.numStreams; ++s) {
        Stream &stream = streams_[s];
        // Scatter stream regions across cores and across streams.
        stream.windowBase = rng_.next(numPages_);
        stream.cursor = 0;
        stream.lapPages = windowPages_;
        stream.pc = kStreamPcBase + 4 * (s % profile_.streamPcs);
    }
    startBurst();
}

void
SyntheticGenerator::startBurst()
{
    // Mode fractions in the profile are *access* shares. Bursts have
    // very different lengths (a stream burst covers several pages), so
    // burst-selection probabilities are the access shares divided by
    // the expected burst length of each mode, renormalized.
    const double roll = rng_.nextDouble() * (streamBurstProb_ +
                                             pointerBurstProb_ +
                                             hotBurstProb_);
    firstInBurst_ = true;
    if (roll < streamBurstProb_) {
        mode_ = Mode::Stream;
        activeStream_ = static_cast<std::uint32_t>(
            rng_.next(streams_.size()));
        const std::uint32_t pages = static_cast<std::uint32_t>(
            rng_.range(kStreamPages / 2, kStreamPages * 2));
        burstLeft_ = std::max(1u, pages * profile_.linesPerPage);
    } else if (roll < streamBurstProb_ + pointerBurstProb_) {
        mode_ = Mode::Pointer;
        burstLeft_ = static_cast<std::uint32_t>(
            rng_.range(kPointerBurst / 2, kPointerBurst * 2));
        pointerPage_ = scatterPage(zipf_(rng_));
        pointerPc_ = kPointerPcBase + 4 * rng_.next(profile_.pointerPcs);
    } else {
        mode_ = Mode::Hot;
        burstLeft_ = static_cast<std::uint32_t>(
            rng_.range(kHotBurst / 2, kHotBurst * 2));
    }
}

PageAddr
SyntheticGenerator::scatterPage(std::uint64_t rank) const
{
    // Scatter Zipf ranks over the virtual space with an affine
    // permutation (multiplier coprime to numPages_), so popular pages
    // are spread out yet every footprint page remains reachable — a
    // hash would leave ~1/e of the pages uncovered and silently shrink
    // the footprint.
    return (rank * scatterMult_ + scatterOffset_) % numPages_;
}

Addr
SyntheticGenerator::composeAddr(PageAddr page, std::uint32_t line_in_page,
                                Addr offset) const
{
    assert(line_in_page < kLinesPerPage);
    return pageToAddr(page) + std::uint64_t{line_in_page} * kLineBytes +
           (offset % kLineBytes);
}

Addr
SyntheticGenerator::streamAddr()
{
    Stream &s = streams_[activeStream_];
    const std::uint32_t spacing = 64 / std::max(1u, profile_.linesPerPage);

    // Near-past reuse: stencil/solver codes re-touch pages they just
    // produced. These re-touches are spread too widely for the L3 but
    // sit comfortably in stacked memory.
    lastStreamWasReuse_ = false;
    if (s.recentCount > 0 && rng_.chance(profile_.nearReuseFrac)) {
        lastStreamWasReuse_ = true;
        const PageAddr page =
            s.recent[rng_.next(std::min(s.recentCount,
                                        Stream::kRecentPages))];
        const auto slot = static_cast<std::uint32_t>(
            rng_.next(profile_.linesPerPage));
        const std::uint32_t line_idx =
            std::min<std::uint32_t>(63, slot * std::max(1u, spacing));
        return composeAddr(page, line_idx, 0);
    }

    // Touch linesPerPage evenly spaced lines, then advance the cursor
    // within the current lap of the working-set window.
    const std::uint32_t line_idx =
        std::min<std::uint32_t>(63, s.lineIdx * std::max(1u, spacing));
    const PageAddr page = (s.windowBase + s.cursor) % numPages_;
    const Addr addr = composeAddr(page, line_idx, 0);
    if (s.lineIdx == 0) {
        // Entering a new page: remember it for near-past reuse.
        s.recent[s.recentHead] = page;
        s.recentHead = (s.recentHead + 1) % Stream::kRecentPages;
        s.recentCount = std::min(s.recentCount + 1, Stream::kRecentPages);
    }
    if (++s.lineIdx >= profile_.linesPerPage) {
        s.lineIdx = 0;
        if (++s.cursor >= s.lapPages) {
            // Lap complete. Real blocked code revisits inner blocks
            // far more often than the full array: choose the next lap
            // to cover the whole window, a quarter, or a sixteenth,
            // giving the access stream the tiered (heavy-tailed) reuse
            // intensity that caches exploit. The window itself drifts
            // across the footprint only on full laps.
            s.cursor = 0;
            const double roll = rng_.nextDouble();
            if (roll < 0.40) {
                s.lapPages = windowPages_;
                const std::uint64_t drift =
                    std::max<std::uint64_t>(1, windowPages_ / 16);
                s.windowBase = (s.windowBase + drift) % numPages_;
            } else if (roll < 0.75) {
                s.lapPages = std::max<std::uint64_t>(1, windowPages_ / 4);
            } else {
                s.lapPages = std::max<std::uint64_t>(1, windowPages_ / 16);
            }
        }
    }
    return addr;
}

Addr
SyntheticGenerator::pointerAddr()
{
    // Occasionally hop to another page mid-burst (linked structures
    // span pages); otherwise chase within the current page.
    if (rng_.chance(0.4))
        pointerPage_ = scatterPage(zipf_(rng_));
    const std::uint32_t spacing = 64 / std::max(1u, profile_.linesPerPage);
    const std::uint32_t slot =
        static_cast<std::uint32_t>(rng_.next(profile_.linesPerPage));
    const std::uint32_t line_idx =
        std::min<std::uint32_t>(63, slot * std::max(1u, spacing));
    return composeAddr(pointerPage_, line_idx, rng_.next(kLineBytes));
}

Addr
SyntheticGenerator::hotAddr()
{
    // The hot region sits after the footprint pages.
    const PageAddr page = numPages_ + rng_.next(hotPages_);
    const auto line_idx =
        static_cast<std::uint32_t>(rng_.next(kLinesPerPage));
    return composeAddr(page, line_idx, 0);
}

void
SyntheticGenerator::refill(Access *buf, std::size_t n)
{
    // One virtual call per batch; generate() and the RNG inline here.
    for (std::size_t i = 0; i < n; ++i)
        buf[i] = generate();
}

void
SyntheticGenerator::skip(std::uint64_t n)
{
    // The state machine must still run (every record advances RNG and
    // cursor state), but skipping avoids the scratch-buffer round-trip
    // of the base-class default.
    for (std::uint64_t i = 0; i < n; ++i)
        (void)generate();
}

Access
SyntheticGenerator::generate()
{
    if (burstLeft_ == 0)
        startBurst();
    --burstLeft_;

    Access acc;
    acc.gapInstructions = static_cast<std::uint32_t>(std::min<std::uint64_t>(
        rng_.geometric(params_.gapMeanInstructions), 1u << 20));
    acc.isWrite = rng_.chance(profile_.writeFrac);

    switch (mode_) {
      case Mode::Stream:
        acc.vaddr = streamAddr();
        // One instruction walks one array (the PC <-> region binding
        // the LLP exploits); near-past re-touches come from a separate
        // static load in the loop body, hence a distinct PC.
        acc.pc = streams_[activeStream_].pc +
                 (lastStreamWasReuse_ ? 2 : 0);
        acc.dependsOnPrev = false;
        break;
      case Mode::Pointer:
        acc.vaddr = pointerAddr();
        acc.pc = pointerPc_;
        acc.dependsOnPrev =
            !firstInBurst_ && rng_.chance(profile_.dependentFrac);
        break;
      case Mode::Hot:
      default:
        acc.vaddr = hotAddr();
        acc.pc = kHotPcBase + 4 * rng_.next(profile_.hotPcs);
        acc.dependsOnPrev = false;
        break;
    }
    firstInBurst_ = false;
    return acc;
}

PageHeatProfile
profilePageHeat(const WorkloadProfile &profile,
                const GeneratorParams &params, std::uint64_t seed,
                std::uint64_t num_accesses)
{
    SyntheticGenerator gen(profile, params, seed);
    return profilePageHeat(
        gen, num_accesses,
        static_cast<std::size_t>(gen.numPages() + gen.hotPages()));
}

PageHeatProfile
profilePageHeat(AccessSource &source, std::uint64_t num_accesses,
                std::size_t footprint_pages_hint)
{
    PageHeatProfile heat(footprint_pages_hint);
    std::array<Access, 256> buf;
    std::uint64_t remaining = num_accesses;
    while (remaining > 0) {
        const std::size_t n = static_cast<std::size_t>(
            std::min<std::uint64_t>(buf.size(), remaining));
        source.refill(buf.data(), n);
        for (std::size_t i = 0; i < n; ++i)
            ++heat[pageOf(buf[i].vaddr)];
        remaining -= n;
    }
    return heat;
}

} // namespace cameo
