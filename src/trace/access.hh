/**
 * @file
 * The unit of work consumed by a simulated core: one L3-level memory
 * access (i.e. an L2 miss reaching the shared L3), together with the
 * instruction gap preceding it and dependence information.
 */

#ifndef CAMEO_TRACE_ACCESS_HH
#define CAMEO_TRACE_ACCESS_HH

#include <cstdint>

#include "util/types.hh"

namespace cameo
{

/** One memory access of a synthetic trace. */
struct Access
{
    /** Instruction address of the access (feeds PC-indexed predictors). */
    InstAddr pc = 0;

    /** Virtual byte address. */
    Addr vaddr = 0;

    /** Store (true) or load (false). */
    bool isWrite = false;

    /**
     * True when this access depends on the previous one (pointer
     * chasing): the core may not issue it before the previous access
     * completes, capping memory-level parallelism at 1 for such runs.
     */
    bool dependsOnPrev = false;

    /**
     * Non-memory instructions executed since the previous access.
     * Together with the core width this sets the compute time between
     * memory operations, and hence the workload's MPKI.
     */
    std::uint32_t gapInstructions = 0;
};

} // namespace cameo

#endif // CAMEO_TRACE_ACCESS_HH
