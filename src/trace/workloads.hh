/**
 * @file
 * Workload registry: the 17 SPEC CPU2006 benchmarks of Table II,
 * re-expressed as synthetic-generator profiles.
 *
 * We do not have SPEC binaries or the authors' Pin traces, so each
 * benchmark becomes a profile that reproduces the characteristics the
 * paper's evaluation actually depends on:
 *
 *  - memory footprint (Table II, scaled with the system),
 *  - L3 miss rate (Table II MPKI, via inter-access instruction gaps),
 *  - spatial locality (lines touched per page — e.g. milc's "10 out of
 *    64 lines" that makes page migration wasteful),
 *  - temporal locality (Zipf page popularity + drifting streams),
 *  - memory-level parallelism (streaming vs pointer-chasing),
 *  - PC locality (small per-mode PC pools, which the LLP exploits).
 */

#ifndef CAMEO_TRACE_WORKLOADS_HH
#define CAMEO_TRACE_WORKLOADS_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/types.hh"

namespace cameo
{

/** Table II workload classification. */
enum class WorkloadCategory
{
    /** Memory footprint exceeds the baseline's 12GB off-chip memory. */
    CapacityLimited,

    /** Fits in memory; performance limited by access latency. */
    LatencyLimited,
};

/** Printable name of a category ("Capacity" / "Latency"). */
const char *categoryName(WorkloadCategory category);

/** Synthetic-generator description of one benchmark. */
struct WorkloadProfile
{
    std::string name;
    WorkloadCategory category = WorkloadCategory::LatencyLimited;

    /** Aggregate footprint at paper scale (Table II, 32 copies). */
    double paperFootprintGb = 1.0;

    /** Target L3 misses per thousand instructions (Table II). */
    double paperMpki = 10.0;

    /**
     * Behaviour mix; fractions of access bursts spent in each mode.
     * Must sum to 1.
     */
    double streamFrac = 0.5;  ///< Sequential walks over the footprint.
    double pointerFrac = 0.2; ///< Dependent random accesses (MLP = 1).
    double hotFrac = 0.3;     ///< Small hot set that lives in the L3.

    /**
     * Distinct lines referenced per 4KB page visit (1..64). Low values
     * (milc: ~10) make page-granularity migration waste bandwidth.
     */
    std::uint32_t linesPerPage = 64;

    /** Zipf exponent for page popularity in pointer mode. */
    double zipfExponent = 0.8;

    /**
     * Fraction of pointer-mode accesses that depend on their
     * predecessor (true linked-structure chasing, MLP = 1). Scattered
     * but independent access patterns (milc's strided lattice) use
     * pointer mode with a low dependentFrac.
     */
    double dependentFrac = 1.0;

    /**
     * Active working-set window of each stream, as a fraction of the
     * footprint. Streams walk a window of this size repeatedly and the
     * window drifts slowly across the whole footprint — the standard
     * SPEC temporal-locality shape. 1.0 degenerates to full-footprint
     * laps (pure streaming, libquantum/lbm).
     */
    double streamWindowFrac = 0.25;

    /** Number of concurrent streams ("arrays"), each with its own
     *  cursor and instruction address. */
    std::uint32_t numStreams = 4;

    /**
     * Fraction of stream accesses that re-touch one of the stream's
     * recently visited pages instead of advancing (stencil planes and
     * solver blocks revisit what they just produced). This is the
     * short-range line-level temporal locality that stacked caches and
     * CAMEO exploit; it is too wide for the L3 but comfortably fits
     * stacked DRAM. Table III's ~70% stacked-service fraction depends
     * on it.
     */
    double nearReuseFrac = 0.3;

    /** Maximum outstanding L3 misses for this workload's core model. */
    std::uint32_t mlp = 4;

    /** Fraction of accesses that are stores. */
    double writeFrac = 0.3;

    /** PC pool sizes per mode (LLP/MAP-I index locality). */
    std::uint32_t streamPcs = 8;
    std::uint32_t pointerPcs = 24;
    std::uint32_t hotPcs = 16;
};

/** All 17 benchmarks of Table II, capacity-limited first. */
const std::vector<WorkloadProfile> &allWorkloads();

/** Profiles in @p category only. */
std::vector<WorkloadProfile> workloadsInCategory(WorkloadCategory category);

/** Find a profile by benchmark name; nullptr if unknown. */
const WorkloadProfile *findWorkload(const std::string &name);

/**
 * Profiles named in the comma-separated list @p csv, in list order.
 * Empty tokens are skipped; names that match no profile are dropped
 * and appended to @p unknown (when non-null) so callers can warn
 * instead of silently narrowing the sweep.
 */
std::vector<WorkloadProfile>
workloadsByNames(std::string_view csv,
                 std::vector<std::string> *unknown = nullptr);

} // namespace cameo

#endif // CAMEO_TRACE_WORKLOADS_HH
