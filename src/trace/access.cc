#include "trace/access.hh"

// Access is a plain struct; translation unit kept for symmetry.
