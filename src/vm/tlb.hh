/**
 * @file
 * TranslationCache: a per-core direct-mapped software TLB in front of
 * VirtualMemory::translate.
 *
 * The resident-page common case — by far the hottest path of a run —
 * previously paid a hash-map probe per access. The TLB caches
 * (core, vpage) -> frame in a small direct-mapped array per core, so a
 * hit costs one indexed load and a compare. Entries are invalidated
 * whenever the page table unmaps a page (frame eviction), which keeps
 * every cached mapping exact: a TLB hit returns precisely what the
 * page-table probe would have, the frame's reference bit is still set
 * on every touch, and fault classification is untouched. Simulated
 * stats and timing are therefore bit-identical with the TLB on or off
 * (proven by TlbEquivalence tests in test_vm.cc).
 *
 * This mirrors the paper's own LLT/LLP argument (Section IV): make the
 * common-case lookup cheap and keep a slow exact fallback.
 */

#ifndef CAMEO_VM_TLB_HH
#define CAMEO_VM_TLB_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "util/types.hh"

namespace cameo
{

/** Per-core direct-mapped (core, vpage) -> frame cache. */
class TranslationCache
{
  public:
    /** Entries per core; power of two, indexed by the low vpage bits. */
    static constexpr std::uint32_t kEntriesPerCore = 1024;

    /** Frame of (core, vpage) if cached; counts hits/misses. */
    std::optional<std::uint32_t> lookup(std::uint32_t core, PageAddr vpage)
    {
        if (core < sets_.size()) {
            const Entry &entry = sets_[core][indexOf(vpage)];
            if (entry.valid && entry.vpage == vpage) {
                ++hits_;
                return entry.frame;
            }
        }
        ++misses_;
        return std::nullopt;
    }

    /** Cache (core, vpage) -> frame, displacing the slot's occupant. */
    void insert(std::uint32_t core, PageAddr vpage, std::uint32_t frame)
    {
        if (core >= sets_.size())
            sets_.resize(core + 1, Set(kEntriesPerCore));
        Entry &entry = sets_[core][indexOf(vpage)];
        entry.vpage = vpage;
        entry.frame = frame;
        entry.valid = true;
    }

    /** Drop (core, vpage) if cached (page unmapped / frame evicted). */
    void invalidate(std::uint32_t core, PageAddr vpage)
    {
        if (core >= sets_.size())
            return;
        Entry &entry = sets_[core][indexOf(vpage)];
        if (entry.valid && entry.vpage == vpage)
            entry.valid = false;
    }

    /** Drop every cached translation. */
    void flush()
    {
        for (Set &set : sets_) {
            for (Entry &entry : set)
                entry.valid = false;
        }
    }

    /** Host-side effectiveness telemetry (not simulated stats). */
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

  private:
    struct Entry
    {
        PageAddr vpage = 0;
        std::uint32_t frame = 0;
        bool valid = false;
    };

    using Set = std::vector<Entry>;

    static std::uint32_t indexOf(PageAddr vpage)
    {
        return static_cast<std::uint32_t>(vpage) & (kEntriesPerCore - 1);
    }

    std::vector<Set> sets_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace cameo

#endif // CAMEO_VM_TLB_HH
