/**
 * @file
 * Solid-state-disk backing-store model.
 *
 * Table I: "Page Fault Latency: 32 micro seconds (100K cycles)". The
 * model charges that fixed service latency per page fault and accounts
 * storage bus traffic (4KB per page read or written) for Table IV's
 * storage-bandwidth column.
 */

#ifndef CAMEO_VM_SSD_MODEL_HH
#define CAMEO_VM_SSD_MODEL_HH

#include <cstdint>

#include "stats/counter.hh"
#include "stats/registry.hh"
#include "util/types.hh"

namespace cameo
{

/** Fixed-latency SSD with byte accounting. */
class SsdModel
{
  public:
    /** @param fault_latency Service latency per page fault, in cycles. */
    explicit SsdModel(Tick fault_latency = 100'000);

    SsdModel(const SsdModel &) = delete;
    SsdModel &operator=(const SsdModel &) = delete;

    /**
     * Service a page read (major fault).
     * @return Completion time: @p now plus the fault latency.
     */
    Tick readPage(Tick now);

    /**
     * Queue a page writeback (dirty eviction). Writebacks are
     * asynchronous — they cost bandwidth, not demand latency.
     */
    void writePage();

    Tick faultLatency() const { return faultLatency_; }

    /** Total storage bus traffic in bytes (reads + writes). */
    std::uint64_t bytesTransferred() const
    {
        return readBytes_.value() + writeBytes_.value();
    }

    void registerStats(StatRegistry &registry);

    const Counter &pageReads() const { return pageReads_; }
    const Counter &pageWrites() const { return pageWrites_; }
    const Counter &readBytes() const { return readBytes_; }
    const Counter &writeBytes() const { return writeBytes_; }

  private:
    Tick faultLatency_;
    Counter pageReads_;
    Counter pageWrites_;
    Counter readBytes_;
    Counter writeBytes_;
};

} // namespace cameo

#endif // CAMEO_VM_SSD_MODEL_HH
