/**
 * @file
 * VirtualMemory: the demand-paging facade tying together the page
 * table, frame allocator, and SSD.
 *
 * Each memory organization exposes a different OS-visible capacity
 * (Cache hides the stacked DRAM; TLM and CAMEO expose it), so each
 * simulated System owns one VirtualMemory sized by the organization.
 * The capacity difference is what produces the paper's Capacity-Limited
 * results: smaller visible memory means more page faults at 100K cycles
 * apiece.
 */

#ifndef CAMEO_VM_VIRTUAL_MEMORY_HH
#define CAMEO_VM_VIRTUAL_MEMORY_HH

#include <functional>
#include <optional>

#include "snapshot/snapshot.hh"
#include "stats/counter.hh"
#include "stats/registry.hh"
#include "util/types.hh"
#include "vm/frame_allocator.hh"
#include "vm/page_table.hh"
#include "vm/ssd_model.hh"
#include "vm/tlb.hh"

namespace cameo
{

/** Result of a virtual-address translation. */
struct Translation
{
    /** OS-physical page frame index. */
    std::uint32_t frame = 0;

    /**
     * Time at which the translation (and any fault service) completes;
     * equals the request time when the page was resident.
     */
    Tick readyTick = 0;

    /** Fault that read the page from storage (evicted earlier). */
    bool majorFault = false;

    /** First-touch fault (zero-fill, no storage read). */
    bool minorFault = false;
};

/** Demand-paged virtual memory for all cores of one simulated system. */
class VirtualMemory
{
  public:
    /**
     * Called when a virtual page becomes resident in a frame. Used by
     * organizations that steer page placement (TLM-Oracle).
     */
    using MapHook =
        std::function<void(std::uint32_t frame, std::uint32_t core,
                           PageAddr vpage)>;

    /**
     * @param visible_bytes OS-visible memory capacity (whole frames).
     * @param fault_latency SSD page-fault service latency in cycles.
     * @param seed          RNG seed for frame placement/victim probes.
     * @param enable_tlb    Per-core translation cache in front of the
     *                      page table. On and off are bit-identical in
     *                      every simulated stat (the cache only skips
     *                      the hash probe); off exists as the reference
     *                      path for the equivalence tests.
     */
    VirtualMemory(std::uint64_t visible_bytes, Tick fault_latency,
                  std::uint64_t seed, bool enable_tlb = true);

    VirtualMemory(const VirtualMemory &) = delete;
    VirtualMemory &operator=(const VirtualMemory &) = delete;

    /**
     * Translate (core, vpage) at time @p now, faulting the page in if
     * needed.
     *
     * The TLB-hit common case is inline — one indexed load, a compare,
     * and the frame's reference/dirty bookkeeping — because this runs
     * once per simulated access in both fidelity modes. Misses fall
     * through to the out-of-line page-table/fault path.
     *
     * @param is_write Marks the frame dirty.
     */
    Translation translate(Tick now, std::uint32_t core, PageAddr vpage,
                          bool is_write)
    {
        if (tlbEnabled_) {
            if (const auto frame = tlb_.lookup(core, vpage)) {
                Translation result;
                result.readyTick = now;
                result.frame = *frame;
                allocator_.touch(*frame);
                if (is_write)
                    allocator_.markDirty(*frame);
                return result;
            }
        }
        return translateSlow(now, core, vpage, is_write);
    }

    /** Register a page-mapped hook (at most one; TLM-Oracle uses it). */
    void setMapHook(MapHook hook) { mapHook_ = std::move(hook); }

    std::uint32_t numFrames() const { return allocator_.numFrames(); }
    std::uint64_t visibleBytes() const
    {
        return std::uint64_t{allocator_.numFrames()} * kPageBytes;
    }

    const SsdModel &ssd() const { return ssd_; }
    const PageTable &pageTable() const { return pageTable_; }
    const FrameAllocator &allocator() const { return allocator_; }
    const TranslationCache &tlb() const { return tlb_; }

    void registerStats(StatRegistry &registry);

    /**
     * Checkpoint the allocator and page table. The TLB is deliberately
     * NOT serialized: its hit/miss tallies are host-side telemetry
     * (unregistered), and TLB-on and TLB-off runs are bit-identical in
     * every simulated stat, so restore() simply flushes it — the same
     * state a fresh run would reach after its first access anyway
     * differs only in telemetry. The SSD holds no dynamic state beyond
     * registered counters.
     */
    void save(SnapshotWriter &w) const;
    void restore(SnapshotReader &r);

    const Counter &majorFaults() const { return majorFaults_; }
    const Counter &minorFaults() const { return minorFaults_; }

  private:
    /** Page-table lookup / demand-fault path behind a TLB miss. */
    Translation translateSlow(Tick now, std::uint32_t core, PageAddr vpage,
                              bool is_write);

    FrameAllocator allocator_;
    PageTable pageTable_;
    TranslationCache tlb_;
    bool tlbEnabled_;
    SsdModel ssd_;
    MapHook mapHook_;

    Counter majorFaults_;
    Counter minorFaults_;
};

} // namespace cameo

#endif // CAMEO_VM_VIRTUAL_MEMORY_HH
