/**
 * @file
 * Physical frame allocator with the paper's victim selection policy.
 *
 * Section III-A: "The victim page is selected using a clock algorithm
 * (if an invalid page is not found after probing five random
 * locations)." We implement exactly that: allocation prefers free
 * frames (handed out in randomized order, which doubles as TLM-Static's
 * random page placement); when memory is full, five random frames are
 * probed for a clear reference bit, and failing that a clock hand
 * sweeps, clearing reference bits until one is found.
 */

#ifndef CAMEO_VM_FRAME_ALLOCATOR_HH
#define CAMEO_VM_FRAME_ALLOCATOR_HH

#include <cassert>
#include <cstdint>
#include <optional>
#include <vector>

#include "snapshot/snapshot.hh"
#include "stats/counter.hh"
#include "stats/registry.hh"
#include "util/rng.hh"
#include "util/types.hh"

namespace cameo
{

/** Identifies the virtual page occupying a frame. */
struct FrameOwner
{
    std::uint32_t core = 0;
    PageAddr vpage = 0;

    bool operator==(const FrameOwner &) const = default;
};

/** Outcome of a frame allocation. */
struct FrameAllocation
{
    /** The granted frame index. */
    std::uint32_t frame = 0;

    /** Previous occupant evicted to make room, if any. */
    std::optional<FrameOwner> evicted;

    /** True if the evicted page was dirty (must go to storage). */
    bool evictedDirty = false;
};

/** Allocates and recycles OS-physical page frames. */
class FrameAllocator
{
  public:
    /**
     * @param num_frames Number of 4KB frames of OS-visible memory.
     * @param seed       Determines the randomized free-list order and
     *                   random victim probes.
     */
    FrameAllocator(std::uint32_t num_frames, std::uint64_t seed);

    FrameAllocator(const FrameAllocator &) = delete;
    FrameAllocator &operator=(const FrameAllocator &) = delete;

    /**
     * Allocate a frame for (core, vpage). If no frame is free, evicts a
     * victim per the paper's policy and reports it in the result.
     */
    FrameAllocation allocate(std::uint32_t core, PageAddr vpage);

    /** Mark a frame referenced (sets its reference bit). Inline: this
     *  runs once per simulated access on the translation fast path. */
    void touch(std::uint32_t frame)
    {
        assert(frame < frames_.size() && frames_[frame].valid);
        frames_[frame].refBit = true;
    }

    /** Mark a frame's page dirty. */
    void markDirty(std::uint32_t frame)
    {
        assert(frame < frames_.size() && frames_[frame].valid);
        frames_[frame].dirty = true;
    }

    /** Number of frames currently free. */
    std::uint32_t freeFrames() const
    {
        return static_cast<std::uint32_t>(freeList_.size());
    }

    std::uint32_t numFrames() const
    {
        return static_cast<std::uint32_t>(frames_.size());
    }

    /** Owner of @p frame; nullopt if the frame is free. */
    std::optional<FrameOwner> ownerOf(std::uint32_t frame) const;

    void registerStats(StatRegistry &registry);

    /**
     * Checkpoint frame ownership, the randomized free list (order
     * matters: it is the future allocation order), the clock hand, and
     * the RNG cursor. The frame count is structural; restore() verifies
     * it. Counters travel in the stats section.
     */
    void save(SnapshotWriter &w) const;
    void restore(SnapshotReader &r);

    const Counter &evictions() const { return evictions_; }
    const Counter &randomProbeHits() const { return randomProbeHits_; }
    const Counter &clockSweeps() const { return clockSweeps_; }

  private:
    /** Pick a victim frame: 5 random probes, then clock sweep. */
    std::uint32_t selectVictim();

    struct Frame
    {
        bool valid = false;
        bool refBit = false;
        bool dirty = false;
        FrameOwner owner;
    };

    std::vector<Frame> frames_;
    std::vector<std::uint32_t> freeList_;
    std::uint32_t clockHand_ = 0;
    Rng rng_;

    Counter evictions_;
    Counter randomProbeHits_;
    Counter clockSweeps_;
};

} // namespace cameo

#endif // CAMEO_VM_FRAME_ALLOCATOR_HH
