#include "vm/page_table.hh"

#include "snapshot/flat_map_io.hh"

namespace cameo
{

std::optional<std::uint32_t>
PageTable::lookup(std::uint32_t core, PageAddr vpage) const
{
    const auto it = table_.find(keyOf(core, vpage));
    if (it == table_.end())
        return std::nullopt;
    return it->second;
}

void
PageTable::map(std::uint32_t core, PageAddr vpage, std::uint32_t frame)
{
    table_[keyOf(core, vpage)] = frame;
}

void
PageTable::unmap(std::uint32_t core, PageAddr vpage)
{
    const std::uint64_t key = keyOf(core, vpage);
    table_.erase(key);
    everEvicted_.insert(key);
}

bool
PageTable::wasEvicted(std::uint32_t core, PageAddr vpage) const
{
    return everEvicted_.contains(keyOf(core, vpage));
}

void
PageTable::save(SnapshotWriter &w) const
{
    saveFlatMap(w, table_);
    saveFlatMap(w, everEvicted_.raw());
}

void
PageTable::restore(SnapshotReader &r)
{
    restoreFlatMap(r, table_, "page table");
    restoreFlatMap(r, everEvicted_.raw(), "ever-evicted set");
}

} // namespace cameo
