#include "vm/ssd_model.hh"

namespace cameo
{

SsdModel::SsdModel(Tick fault_latency)
    : faultLatency_(fault_latency),
      pageReads_("ssd.pageReads", "pages read from storage"),
      pageWrites_("ssd.pageWrites", "pages written to storage"),
      readBytes_("ssd.readBytes", "bytes read from storage"),
      writeBytes_("ssd.writeBytes", "bytes written to storage")
{
}

Tick
SsdModel::readPage(Tick now)
{
    pageReads_.inc();
    readBytes_.inc(kPageBytes);
    return now + faultLatency_;
}

void
SsdModel::writePage()
{
    pageWrites_.inc();
    writeBytes_.inc(kPageBytes);
}

void
SsdModel::registerStats(StatRegistry &registry)
{
    registry.add(pageReads_);
    registry.add(pageWrites_);
    registry.add(readBytes_);
    registry.add(writeBytes_);
}

} // namespace cameo
