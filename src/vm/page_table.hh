/**
 * @file
 * Global (core, virtual page) -> frame mapping.
 *
 * The paper runs rate-mode workloads whose virtual-to-physical mapping
 * "ensures that multiple benchmarks do not map to the same physical
 * address"; we get the same property by keying the table on
 * (core, vpage). The table also remembers which pages have ever been
 * evicted, to distinguish major faults (SSD read) from first-touch
 * minor faults (zero-fill, no storage read).
 *
 * Both tables are open-addressing FlatMap/FlatSet (util/flat_map.hh):
 * the lookup is on the per-access hot path, and the resident set is
 * bounded by the frame count, so VirtualMemory pre-reserves capacity
 * at construction and the table never rehashes mid-run.
 */

#ifndef CAMEO_VM_PAGE_TABLE_HH
#define CAMEO_VM_PAGE_TABLE_HH

#include <cstdint>
#include <optional>

#include "snapshot/snapshot.hh"
#include "util/flat_map.hh"
#include "util/types.hh"

namespace cameo
{

/** Maps (core, vpage) to physical frames. */
class PageTable
{
  public:
    PageTable() = default;

    PageTable(const PageTable &) = delete;
    PageTable &operator=(const PageTable &) = delete;

    /** Pre-size both tables for @p pages entries (no mid-run rehash
     *  while at most that many pages are resident / were evicted). */
    void reserve(std::size_t pages)
    {
        table_.reserve(pages);
        everEvicted_.reserve(pages);
    }

    /** Look up the frame for (core, vpage); nullopt if not resident. */
    std::optional<std::uint32_t> lookup(std::uint32_t core,
                                        PageAddr vpage) const;

    /** Install a mapping (page became resident in @p frame). */
    void map(std::uint32_t core, PageAddr vpage, std::uint32_t frame);

    /** Remove a mapping (page evicted); remembers it for major-fault
     *  classification. */
    void unmap(std::uint32_t core, PageAddr vpage);

    /** True if this page was resident before and has been evicted. */
    bool wasEvicted(std::uint32_t core, PageAddr vpage) const;

    std::size_t residentPages() const { return table_.size(); }

    /**
     * Checkpoint both tables at exact slot granularity: the physical
     * layout (not just the entry set) is serialized so probe chains and
     * iteration order survive a restore bit-identically.
     */
    void save(SnapshotWriter &w) const;
    void restore(SnapshotReader &r);

  private:
    static std::uint64_t
    keyOf(std::uint32_t core, PageAddr vpage)
    {
        return (static_cast<std::uint64_t>(core) << 48) | vpage;
    }

    FlatMap<std::uint64_t, std::uint32_t> table_;
    FlatSet<std::uint64_t> everEvicted_;
};

} // namespace cameo

#endif // CAMEO_VM_PAGE_TABLE_HH
