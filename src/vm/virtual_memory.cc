#include "vm/virtual_memory.hh"

#include <cassert>

namespace cameo
{

VirtualMemory::VirtualMemory(std::uint64_t visible_bytes, Tick fault_latency,
                             std::uint64_t seed, bool enable_tlb)
    : allocator_(static_cast<std::uint32_t>(visible_bytes / kPageBytes),
                 seed),
      tlbEnabled_(enable_tlb), ssd_(fault_latency),
      majorFaults_("vm.majorFaults", "page faults serviced from storage"),
      minorFaults_("vm.minorFaults", "first-touch (zero-fill) faults")
{
    assert(visible_bytes >= kPageBytes);
    // At most numFrames pages are resident at once, and the evicted-
    // page history grows from the same pool: pre-reserving both sides
    // keeps the hot lookup free of mid-run rehashes.
    pageTable_.reserve(allocator_.numFrames());
}

Translation
VirtualMemory::translateSlow(Tick now, std::uint32_t core, PageAddr vpage,
                             bool is_write)
{
    Translation result;
    result.readyTick = now;

    if (const auto frame = pageTable_.lookup(core, vpage)) {
        result.frame = *frame;
        allocator_.touch(*frame);
        if (is_write)
            allocator_.markDirty(*frame);
        if (tlbEnabled_)
            tlb_.insert(core, vpage, *frame);
        return result;
    }

    // Page fault: allocate a frame, possibly evicting.
    const FrameAllocation alloc = allocator_.allocate(core, vpage);
    if (alloc.evicted) {
        pageTable_.unmap(alloc.evicted->core, alloc.evicted->vpage);
        if (tlbEnabled_)
            tlb_.invalidate(alloc.evicted->core, alloc.evicted->vpage);
        if (alloc.evictedDirty)
            ssd_.writePage();
    }
    pageTable_.map(core, vpage, alloc.frame);
    if (tlbEnabled_)
        tlb_.insert(core, vpage, alloc.frame);

    if (pageTable_.wasEvicted(core, vpage)) {
        // Major fault: the page's contents live on storage.
        result.majorFault = true;
        majorFaults_.inc();
        result.readyTick = ssd_.readPage(now);
    } else {
        // First touch: zero-fill, no storage read, negligible latency.
        result.minorFault = true;
        minorFaults_.inc();
    }

    result.frame = alloc.frame;
    if (is_write)
        allocator_.markDirty(alloc.frame);
    if (mapHook_)
        mapHook_(alloc.frame, core, vpage);
    return result;
}

void
VirtualMemory::registerStats(StatRegistry &registry)
{
    registry.add(majorFaults_);
    registry.add(minorFaults_);
    allocator_.registerStats(registry);
    ssd_.registerStats(registry);
}

void
VirtualMemory::save(SnapshotWriter &w) const
{
    allocator_.save(w);
    pageTable_.save(w);
}

void
VirtualMemory::restore(SnapshotReader &r)
{
    allocator_.restore(r);
    pageTable_.restore(r);
    // Translation-cache entries are reconstructible (and their tallies
    // are host telemetry): restart cold. See the header comment.
    tlb_.flush();
}

} // namespace cameo
