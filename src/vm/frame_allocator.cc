#include "vm/frame_allocator.hh"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace cameo
{

FrameAllocator::FrameAllocator(std::uint32_t num_frames, std::uint64_t seed)
    : frames_(num_frames), rng_(seed),
      evictions_("vm.evictions", "pages evicted to storage"),
      randomProbeHits_("vm.randomProbeHits",
                       "victims found by the 5 random probes"),
      clockSweeps_("vm.clockSweeps", "victims found by clock sweep")
{
    assert(num_frames != 0);
    // Randomized free order: first-touch allocation scatters pages
    // uniformly over the physical space (TLM-Static's random mapping).
    freeList_.resize(num_frames);
    std::iota(freeList_.begin(), freeList_.end(), 0u);
    std::shuffle(freeList_.begin(), freeList_.end(), rng_);
}

FrameAllocation
FrameAllocator::allocate(std::uint32_t core, PageAddr vpage)
{
    FrameAllocation result;
    if (!freeList_.empty()) {
        result.frame = freeList_.back();
        freeList_.pop_back();
    } else {
        result.frame = selectVictim();
        Frame &victim = frames_[result.frame];
        result.evicted = victim.owner;
        result.evictedDirty = victim.dirty;
        evictions_.inc();
    }
    Frame &frame = frames_[result.frame];
    frame.valid = true;
    frame.refBit = true;
    frame.dirty = false;
    frame.owner = FrameOwner{core, vpage};
    return result;
}

std::uint32_t
FrameAllocator::selectVictim()
{
    // Five random probes for an unreferenced page.
    for (int probe = 0; probe < 5; ++probe) {
        const auto f = static_cast<std::uint32_t>(rng_.next(frames_.size()));
        if (!frames_[f].refBit) {
            randomProbeHits_.inc();
            return f;
        }
    }
    // Clock sweep: clear reference bits until one is found clear.
    clockSweeps_.inc();
    for (std::size_t scanned = 0; scanned < 2 * frames_.size(); ++scanned) {
        Frame &frame = frames_[clockHand_];
        const std::uint32_t hand = clockHand_;
        clockHand_ = (clockHand_ + 1) % frames_.size();
        if (!frame.refBit)
            return hand;
        frame.refBit = false;
    }
    // All frames referenced twice around (cannot happen: we clear as we
    // go), but fall back to the hand position for robustness.
    return clockHand_;
}

std::optional<FrameOwner>
FrameAllocator::ownerOf(std::uint32_t frame) const
{
    assert(frame < frames_.size());
    if (!frames_[frame].valid)
        return std::nullopt;
    return frames_[frame].owner;
}

void
FrameAllocator::registerStats(StatRegistry &registry)
{
    registry.add(evictions_);
    registry.add(randomProbeHits_);
    registry.add(clockSweeps_);
}

void
FrameAllocator::save(SnapshotWriter &w) const
{
    w.u32(static_cast<std::uint32_t>(frames_.size()));
    for (const Frame &f : frames_) {
        w.b(f.valid);
        w.b(f.refBit);
        w.b(f.dirty);
        w.u32(f.owner.core);
        w.u64(f.owner.vpage);
    }
    w.vecU32(freeList_);
    w.u32(clockHand_);
    for (const std::uint64_t s : rng_.state())
        w.u64(s);
}

void
FrameAllocator::restore(SnapshotReader &r)
{
    const std::uint32_t nFrames = r.u32();
    if (!r.ok())
        return;
    if (nFrames != frames_.size()) {
        r.fail("vm: frame count mismatch: snapshot has " +
               std::to_string(nFrames) + " frames, this allocator has " +
               std::to_string(frames_.size()));
        return;
    }
    for (Frame &f : frames_) {
        f.valid = r.b();
        f.refBit = r.b();
        f.dirty = r.b();
        f.owner.core = r.u32();
        f.owner.vpage = r.u64();
    }
    r.vecU32(freeList_);
    if (r.ok() && freeList_.size() > frames_.size()) {
        r.fail("vm: free list larger than the frame array");
        return;
    }
    clockHand_ = r.u32();
    Rng::State rngState;
    for (std::uint64_t &s : rngState)
        s = r.u64();
    rng_.setState(rngState);
}

} // namespace cameo
