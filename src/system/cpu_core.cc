#include "system/cpu_core.hh"

#include <algorithm>
#include <cassert>

namespace cameo
{

CpuCore::CpuCore(std::uint32_t id, std::unique_ptr<AccessSource> source,
                 std::uint64_t num_accesses, double cpi, std::uint32_t mlp,
                 Tick l3_hit_stall, VirtualMemory &vm, Llc &llc,
                 MemoryOrganization &org)
    : id_(id), source_(std::move(source)), numAccesses_(num_accesses),
      cpi_(cpi), mlp_(std::max(1u, mlp)), l3HitStall_(l3_hit_stall),
      vm_(vm), llc_(llc), org_(org)
{
    assert(source_ != nullptr);
    outstanding_.reserve(mlp_);
}

void
CpuCore::tryIssuePendingMiss()
{
    assert(pendingMiss_);
    if (outstanding_.size() + unresolved_ >= mlp_) {
        if (outstanding_.empty()) {
            // Every slot is unresolved (Queued timing): no completion
            // tick to advance to — park until one arrives.
            blockReason_ = BlockReason::WindowFull;
            return;
        }
        const auto oldest =
            std::min_element(outstanding_.begin(), outstanding_.end());
        if (*oldest > clock_) {
            // Yield: wait for the oldest miss to return, then retry.
            clock_ = *oldest;
            return;
        }
        outstanding_.erase(oldest);
    }
    const PendingMiss miss = *pendingMiss_;
    pendingMiss_.reset();
    std::uint64_t tag = kNoTag;
    if (miss.isLoad) {
        tag = nextLoadTag_++;
        lastLoadTag_ = tag;
        lastLoadResolved_ = false;
    }
    ++unresolved_;
    org_.submit(clock_, miss.line, false, miss.pc, id_, tag, this);
    // The core continues past the load (OoO overlap); backpressure
    // comes from the window and from dependences.
    clock_ += 1;
}

void
CpuCore::onMemComplete(const MemRequest &req, Tick done)
{
    assert(unresolved_ > 0);
    --unresolved_;
    outstanding_.push_back(done);
    if (req.tag != kNoTag && req.tag == lastLoadTag_) {
        lastMissComplete_ = done;
        lastLoadResolved_ = true;
    }
    if (blockReason_ == BlockReason::WindowFull ||
        (blockReason_ == BlockReason::Dependence && lastLoadResolved_)) {
        // Unpark at the data-arrival time; the event queue delivers in
        // global-time order, so this never regresses the clock below a
        // tick the kernel already dispatched.
        blockReason_ = BlockReason::None;
        clock_ = std::max(clock_, done);
    }
}

void
CpuCore::finishAccess()
{
    assert(inflight_ && inflight_->stage == Stage::NeedFinish);
    const Access acc = inflight_->acc;
    const std::uint32_t frame = inflight_->frame;
    inflight_.reset();

    const LineAddr phys_line =
        std::uint64_t{frame} * kLinesPerPage +
        (lineOf(acc.vaddr) & (kLinesPerPage - 1));

    const CacheAccessResult res = llc_.access(phys_line, acc.isWrite);
    if (res.hit) {
        // An OoO core hides most of the pipelined L3 hit latency;
        // loads charge only the configured residue, stores retire
        // through the store buffer without blocking.
        if (!acc.isWrite)
            clock_ += l3HitStall_;
        return;
    }

    // Miss path: the request leaves after the L3 lookup.
    clock_ += llc_.hitLatency();

    // Evicted dirty line goes out through the writeback queue; it
    // costs bandwidth but never blocks the core (fire-and-forget: no
    // client, no window slot).
    if (res.writeback)
        org_.submit(clock_, *res.writeback, true, acc.pc, id_);

    pendingMiss_ = PendingMiss{phys_line, acc.pc, !acc.isWrite};
    tryIssuePendingMiss();
}

void
CpuCore::step()
{
    assert(!done());

    if (pendingMiss_) {
        tryIssuePendingMiss();
        return;
    }

    if (!inflight_) {
        const Access acc = fetchAccess();
        ++processed_;
        instructions_ += acc.gapInstructions;
        // Compute phase between memory operations.
        clock_ += static_cast<Tick>(
            static_cast<double>(acc.gapInstructions) * cpi_);
        inflight_ = InFlight{acc, 0, Stage::NeedTranslate};
        // Dependent (pointer-chase) accesses cannot start before the
        // producer's data arrives; yield so other cores fill the gap.
        // With the producer still unresolved (Queued timing) there is
        // no arrival tick to yield to yet — park for its completion.
        if (acc.dependsOnPrev) {
            if (!lastLoadResolved_) {
                blockReason_ = BlockReason::Dependence;
                return;
            }
            if (lastMissComplete_ > clock_) {
                clock_ = lastMissComplete_;
                return;
            }
        }
    }

    if (inflight_->stage == Stage::NeedTranslate) {
        const Translation tr = vm_.translate(
            clock_, id_, pageOf(inflight_->acc.vaddr),
            inflight_->acc.isWrite);
        inflight_->frame = tr.frame;
        inflight_->stage = Stage::NeedFinish;
        if (tr.majorFault) {
            // Yield across the SSD stall: the clock jumps 100K cycles
            // and other cores must run that interval first.
            clock_ = tr.readyTick;
            return;
        }
    }

    finishAccess();
}

Access
CpuCore::fetchAccess()
{
    if (ringPos_ == ringLen_) {
        assert(processed_ < numAccesses_);
        const std::uint64_t remaining = numAccesses_ - processed_;
        ringLen_ = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(kRefillBatch, remaining));
        source_->refill(ring_.data(), ringLen_);
        ringPos_ = 0;
    }
    return ring_[ringPos_++];
}

Tick
CpuCore::finishTick() const
{
    Tick finish = clock_;
    for (const Tick t : outstanding_)
        finish = std::max(finish, t);
    return std::max(finish, lastMissComplete_);
}

} // namespace cameo
