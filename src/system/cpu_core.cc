#include "system/cpu_core.hh"

#include <algorithm>
#include <cassert>

namespace cameo
{

CpuCore::CpuCore(std::uint32_t id, std::unique_ptr<AccessSource> source,
                 std::uint64_t num_accesses, double cpi, std::uint32_t mlp,
                 Tick l3_hit_stall, VirtualMemory &vm, Llc &llc,
                 MemoryOrganization &org)
    : id_(id), source_(std::move(source)), numAccesses_(num_accesses),
      cpi_(cpi), mlp_(std::max(1u, mlp)), l3HitStall_(l3_hit_stall),
      vm_(vm), llc_(llc), org_(org)
{
    assert(source_ != nullptr);
    outstanding_.reserve(mlp_);
}

void
CpuCore::tryIssuePendingMiss()
{
    assert(pendingMiss_);
    if (outstanding_.size() + unresolved_ >= mlp_) {
        if (outstanding_.empty()) {
            // Every slot is unresolved (Queued timing): no completion
            // tick to advance to — park until one arrives.
            blockReason_ = BlockReason::WindowFull;
            return;
        }
        const auto oldest =
            std::min_element(outstanding_.begin(), outstanding_.end());
        if (*oldest > clock_) {
            // Yield: wait for the oldest miss to return, then retry.
            clock_ = *oldest;
            return;
        }
        outstanding_.erase(oldest);
    }
    const PendingMiss miss = *pendingMiss_;
    pendingMiss_.reset();
    std::uint64_t tag = kNoTag;
    if (miss.isLoad) {
        tag = nextLoadTag_++;
        lastLoadTag_ = tag;
        lastLoadResolved_ = false;
    }
    ++unresolved_;
    org_.submit(clock_, miss.line, false, miss.pc, id_, tag, this);
    // The core continues past the load (OoO overlap); backpressure
    // comes from the window and from dependences.
    clock_ += 1;
}

void
CpuCore::onMemComplete(const MemRequest &req, Tick done)
{
    assert(unresolved_ > 0);
    --unresolved_;
    outstanding_.push_back(done);
    if (req.tag != kNoTag && req.tag == lastLoadTag_) {
        lastMissComplete_ = done;
        lastLoadResolved_ = true;
    }
    if (blockReason_ == BlockReason::WindowFull ||
        (blockReason_ == BlockReason::Dependence && lastLoadResolved_)) {
        // Unpark at the data-arrival time; the event queue delivers in
        // global-time order, so this never regresses the clock below a
        // tick the kernel already dispatched.
        blockReason_ = BlockReason::None;
        clock_ = std::max(clock_, done);
    }
}

void
CpuCore::finishAccess()
{
    assert(inflight_ && inflight_->stage == Stage::NeedFinish);
    const Access acc = inflight_->acc;
    const std::uint32_t frame = inflight_->frame;
    inflight_.reset();

    const LineAddr phys_line =
        std::uint64_t{frame} * kLinesPerPage +
        (lineOf(acc.vaddr) & (kLinesPerPage - 1));

    const CacheAccessResult res = llc_.access(phys_line, acc.isWrite);
    if (res.hit) {
        // An OoO core hides most of the pipelined L3 hit latency;
        // loads charge only the configured residue, stores retire
        // through the store buffer without blocking.
        if (!acc.isWrite)
            clock_ += l3HitStall_;
        return;
    }

    // Miss path: the request leaves after the L3 lookup.
    clock_ += llc_.hitLatency();

    // Evicted dirty line goes out through the writeback queue; it
    // costs bandwidth but never blocks the core (fire-and-forget: no
    // client, no window slot).
    if (res.hasWriteback)
        org_.submit(clock_, res.writebackLine, true, acc.pc, id_);

    pendingMiss_ = PendingMiss{phys_line, acc.pc, !acc.isWrite};
    tryIssuePendingMiss();
}

void
CpuCore::step()
{
    assert(!done());

    if (pendingMiss_) {
        tryIssuePendingMiss();
        return;
    }

    if (!inflight_) {
        const Access acc = fetchAccess();
        ++processed_;
        instructions_ += acc.gapInstructions;
        // Compute phase between memory operations.
        clock_ += static_cast<Tick>(
            static_cast<double>(acc.gapInstructions) * cpi_);
        inflight_ = InFlight{acc, 0, Stage::NeedTranslate};
        // Dependent (pointer-chase) accesses cannot start before the
        // producer's data arrives; yield so other cores fill the gap.
        // With the producer still unresolved (Queued timing) there is
        // no arrival tick to yield to yet — park for its completion.
        if (acc.dependsOnPrev) {
            if (!lastLoadResolved_) {
                blockReason_ = BlockReason::Dependence;
                return;
            }
            if (lastMissComplete_ > clock_) {
                clock_ = lastMissComplete_;
                return;
            }
        }
    }

    if (inflight_->stage == Stage::NeedTranslate) {
        const Translation tr = vm_.translate(
            clock_, id_, pageOf(inflight_->acc.vaddr),
            inflight_->acc.isWrite);
        inflight_->frame = tr.frame;
        inflight_->stage = Stage::NeedFinish;
        if (tr.majorFault) {
            // Yield across the SSD stall: the clock jumps 100K cycles
            // and other cores must run that interval first.
            clock_ = tr.readyTick;
            return;
        }
    }

    finishAccess();
}

Access
CpuCore::fetchAccess()
{
    if (ringPos_ == ringLen_) {
        assert(processed_ < numAccesses_);
        const std::uint64_t remaining = numAccesses_ - processed_;
        ringLen_ = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(kRefillBatch, remaining));
        source_->refill(ring_.data(), ringLen_);
        ringPos_ = 0;
    }
    return ring_[ringPos_++];
}

void
CpuCore::save(SnapshotWriter &w) const
{
    w.u64(clock_);
    w.u64(lastMissComplete_);
    w.vecU64(outstanding_);
    w.u32(unresolved_);
    w.u64(lastLoadTag_);
    w.u64(nextLoadTag_);
    w.b(lastLoadResolved_);
    w.u8(static_cast<std::uint8_t>(blockReason_));
    w.b(inflight_.has_value());
    if (inflight_) {
        w.u64(inflight_->acc.pc);
        w.u64(inflight_->acc.vaddr);
        w.b(inflight_->acc.isWrite);
        w.b(inflight_->acc.dependsOnPrev);
        w.u32(inflight_->acc.gapInstructions);
        w.u32(inflight_->frame);
        w.u8(static_cast<std::uint8_t>(inflight_->stage));
    }
    w.b(pendingMiss_.has_value());
    if (pendingMiss_) {
        w.u64(pendingMiss_->line);
        w.u64(pendingMiss_->pc);
        w.b(pendingMiss_->isLoad);
    }
    w.u64(processed_);
    w.u64(instructions_);
}

void
CpuCore::restore(SnapshotReader &r)
{
    clock_ = r.u64();
    lastMissComplete_ = r.u64();
    r.vecU64(outstanding_);
    if (r.ok() && outstanding_.size() > mlp_) {
        r.fail("core: more outstanding misses than the miss window holds");
        return;
    }
    unresolved_ = r.u32();
    if (r.ok() && outstanding_.size() + unresolved_ > mlp_) {
        r.fail("core: miss window overcommitted in snapshot");
        return;
    }
    lastLoadTag_ = r.u64();
    nextLoadTag_ = r.u64();
    lastLoadResolved_ = r.b();
    const std::uint8_t reason = r.u8();
    if (r.ok() &&
        reason > static_cast<std::uint8_t>(BlockReason::Dependence)) {
        r.fail("core: invalid block reason in snapshot");
        return;
    }
    blockReason_ = static_cast<BlockReason>(reason);
    inflight_.reset();
    if (r.b()) {
        InFlight f;
        f.acc.pc = r.u64();
        f.acc.vaddr = r.u64();
        f.acc.isWrite = r.b();
        f.acc.dependsOnPrev = r.b();
        f.acc.gapInstructions = r.u32();
        f.frame = r.u32();
        const std::uint8_t stage = r.u8();
        if (r.ok() &&
            stage > static_cast<std::uint8_t>(Stage::NeedFinish)) {
            r.fail("core: invalid in-flight stage in snapshot");
            return;
        }
        f.stage = static_cast<Stage>(stage);
        inflight_ = f;
    }
    pendingMiss_.reset();
    if (r.b()) {
        PendingMiss miss{};
        miss.line = r.u64();
        miss.pc = r.u64();
        miss.isLoad = r.b();
        pendingMiss_ = miss;
    }
    processed_ = r.u64();
    instructions_ = r.u64();
    if (!r.ok())
        return;
    if (processed_ > numAccesses_) {
        r.fail("core: snapshot processed " + std::to_string(processed_) +
               " accesses but this core is configured for only " +
               std::to_string(numAccesses_));
        return;
    }
    // The source is freshly constructed (and already past any warmup
    // skip): advance it to the trace cursor and start the ring empty —
    // the next fetchAccess() refills from record processed_.
    source_->skip(processed_);
    ringPos_ = 0;
    ringLen_ = 0;
}

void
CpuCore::beginMeasurement(std::uint64_t num_accesses)
{
    assert(!inflight_ && !pendingMiss_ && unresolved_ == 0 &&
           "warmup must drain before the measured region starts");
    numAccesses_ = num_accesses;
    clock_ = 0;
    lastMissComplete_ = 0;
    outstanding_.clear();
    lastLoadTag_ = 0;
    nextLoadTag_ = 1;
    lastLoadResolved_ = true;
    blockReason_ = BlockReason::None;
    processed_ = 0;
    instructions_ = 0;
    ringPos_ = 0;
    ringLen_ = 0;
}

Tick
CpuCore::finishTick() const
{
    Tick finish = clock_;
    for (const Tick t : outstanding_)
        finish = std::max(finish, t);
    return std::max(finish, lastMissComplete_);
}

} // namespace cameo
