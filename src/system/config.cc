#include "system/config.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace cameo
{

GeneratorParams
SystemConfig::generatorParamsFor(const WorkloadProfile &profile) const
{
    GeneratorParams params;

    // Table II footprints are aggregate over all rate-mode copies;
    // scale to this system and split across cores.
    const double paper_bytes = profile.paperFootprintGb * (1ull << 30);
    const double scaled = paper_bytes / scaleFactor / numCores;
    params.footprintBytes = std::max<std::uint64_t>(
        2 * kPageBytes, static_cast<std::uint64_t>(scaled));

    // The hot set models the cache-resident fraction: size it to this
    // core's fair share of the L3 (half, to survive conflict).
    params.hotSetBytes = std::max<std::uint64_t>(
        kPageBytes,
        std::min<std::uint64_t>(l3Bytes / numCores / 2,
                                params.footprintBytes / 2));

    // Target MPKI: misses come from the non-hot fraction of accesses,
    // so gap = 1000 * (1 - hotFrac) / MPKI instructions per access.
    const double miss_frac =
        std::clamp(1.0 - profile.hotFrac, 0.05, 1.0);
    params.gapMeanInstructions =
        std::max(1.0, 1000.0 * miss_frac / profile.paperMpki);
    return params;
}

OrgConfig
SystemConfig::orgConfig() const
{
    OrgConfig oc;
    oc.stackedBytes = stackedBytes;
    oc.offchipBytes = offchipBytes;
    oc.stacked = stacked;
    oc.offchip = offchip;
    oc.numCores = numCores;
    oc.seed = seed;
    oc.llt.kind = lltKind;
    oc.llt.predictor = predictorKind;
    oc.llt.llpTableEntries = llpTableEntries;
    oc.freq.epochAccesses = freqEpochAccesses;
    oc.migrate.victimProbes = tlmVictimProbes;
    oc.migrate.migrateThreshold = tlmMigrateThreshold;
    oc.banshee.sampleRate = bansheeSampleRate;
    oc.banshee.hotThreshold = bansheeHotThreshold;
    oc.banshee.pteCacheEntries = bansheePteCacheEntries;
    oc.timingMode = timingMode;
    oc.queues = dramQueues;
    assert(oc.validate() == nullptr && "invalid organization config");
    return oc;
}

SystemConfig
defaultConfig()
{
    SystemConfig c;
    c.numCores = 8;
    c.scaleFactor = 512.0;
    c.stackedBytes = 4ull << 30 >> 9;  // 4GB / 512 = 8MB
    c.offchipBytes = 12ull << 30 >> 9; // 12GB / 512 = 24MB
    c.l3Bytes = 32ull << 20 >> 9;      // 32MB / 512 = 64KB
    c.l3Ways = 16;
    c.l3HitLatency = 24;
    c.accessesPerCore = 200'000;
    // The paper runs 32 cores against 16 stacked / 8 off-chip channels
    // (4 cores per off-chip channel — a bandwidth-saturated baseline,
    // which is what makes the 8x-bandwidth stacked DRAM matter). At 8
    // cores we scale the channel counts by the same factor to keep the
    // cores-per-channel ratio, and with it the saturation regime. Bank
    // parallelism per channel does not shrink with the machine (ranks
    // multiply the per-channel bank count), so we raise banksPerChannel
    // to keep the bus — not bank conflicts — the off-chip bottleneck,
    // as in the paper's premise.
    c.stacked.channels = 4;
    c.stacked.banksPerChannel = 32;
    c.offchip.channels = 2;
    c.offchip.banksPerChannel = 64;
    return c;
}

SystemConfig
paperConfig()
{
    SystemConfig c;
    c.numCores = 32;
    c.scaleFactor = 1.0;
    c.stackedBytes = 4ull << 30;
    c.offchipBytes = 12ull << 30;
    c.l3Bytes = 32ull << 20;
    c.l3Ways = 16;
    c.l3HitLatency = 24;
    c.accessesPerCore = 20'000'000'000ull / 32; // 20B instructions
    return c;
}

SystemConfig
tinyConfig()
{
    SystemConfig c;
    c.numCores = 2;
    c.scaleFactor = 16384.0;
    c.stackedBytes = 256 << 10; // 256KB
    c.offchipBytes = 768 << 10; // 768KB
    c.l3Bytes = 16 << 10;       // 16KB
    c.l3Ways = 8;
    c.l3HitLatency = 24;
    c.accessesPerCore = 20'000;
    c.freqEpochAccesses = 4096;
    // 2 cores: keep the paper's 4-cores-per-off-chip-channel ratio as
    // closely as the minimum of one channel allows.
    c.stacked.channels = 2;
    c.stacked.banksPerChannel = 32;
    c.offchip.channels = 1;
    c.offchip.banksPerChannel = 32;
    return c;
}

} // namespace cameo
