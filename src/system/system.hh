/**
 * @file
 * System: one complete simulated machine — cores + shared L3 + virtual
 * memory + one memory organization — and the RunResult it produces.
 */

#ifndef CAMEO_SYSTEM_SYSTEM_HH
#define CAMEO_SYSTEM_SYSTEM_HH

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "orgs/memory_organization.hh"
#include "sim/kernel.hh"
#include "snapshot/snapshot.hh"
#include "stats/registry.hh"
#include "system/config.hh"
#include "system/cpu_core.hh"
#include "system/llc.hh"
#include "trace/workloads.hh"
#include "vm/virtual_memory.hh"

namespace cameo
{

/** Everything a bench or test needs from one simulation run. */
struct RunResult
{
    std::string orgName;
    std::string workload;
    WorkloadCategory category = WorkloadCategory::LatencyLimited;

    /** Execution time: completion of the slowest core (rate mode). */
    Tick execTime = 0;

    /** Agent steps the kernel executed for this run. */
    std::uint64_t kernelSteps = 0;

    /**
     * True when the run stopped at SystemConfig::maxKernelSteps with
     * unfinished cores: execTime and all counters understate the full
     * run and must not be compared against untruncated results.
     */
    bool truncated = false;

    std::uint64_t instructions = 0;
    std::uint64_t accesses = 0;

    /**
     * Accesses consumed warming state before the measured region
     * (summed over cores). 0 under WarmupPolicy::Skip — skipped
     * records never touch the simulated machine. Not included in
     * accesses or any other measured statistic.
     */
    std::uint64_t warmupAccesses = 0;

    std::uint64_t l3Hits = 0;
    std::uint64_t l3Misses = 0;

    /** Bus traffic per module (Table IV's raw numbers). */
    std::uint64_t stackedBytes = 0;
    std::uint64_t offchipBytes = 0;
    std::uint64_t storageBytes = 0;

    std::uint64_t majorFaults = 0;
    std::uint64_t minorFaults = 0;

    /** CAMEO-specific (zero for other organizations). */
    std::uint64_t servicedStacked = 0;
    std::uint64_t servicedOffchip = 0;
    std::uint64_t swaps = 0;
    std::array<std::uint64_t, 5> llpCases{};
    double llpAccuracy = 0.0;

    /** TLM-specific. */
    std::uint64_t pageMigrations = 0;

    /**
     * Fold another run's result into this one (sharded-sweep / fleet
     * aggregation). Count and byte fields add; execTime takes the
     * slower of the two (rate-mode semantics: the fleet finishes when
     * its slowest member does); truncated ORs; llpAccuracy is
     * re-derived from the merged llpCases tallies, exactly as
     * LineLocationPredictor::accuracy() defines it. orgName/workload
     * are kept when equal and join with '+' when they differ; category
     * keeps this result's value.
     */
    void merge(const RunResult &other);

    /** Measured L3 misses per thousand instructions. */
    double mpki() const
    {
        if (instructions == 0)
            return 0.0;
        return 1000.0 * static_cast<double>(l3Misses) /
               static_cast<double>(instructions);
    }

    /** Fraction of CAMEO accesses serviced by stacked memory. */
    double stackedServiceFraction() const
    {
        const std::uint64_t total = servicedStacked + servicedOffchip;
        if (total == 0)
            return 0.0;
        return static_cast<double>(servicedStacked) /
               static_cast<double>(total);
    }
};

/** A complete simulated machine for one (organization, workload) pair. */
class System
{
  public:
    /**
     * Builds the organization, sizes virtual memory by its OS-visible
     * capacity, and instantiates rate-mode cores (every core runs
     * @p profile with a distinct seed, the paper's methodology). For
     * TLM-Oracle the constructor also runs the profiling pass and
     * injects page heat.
     */
    System(const SystemConfig &config, OrgKind kind,
           const WorkloadProfile &profile);

    /**
     * Multi-programmed variant: core i runs profiles[i % size]. This
     * extends the paper's rate-mode methodology to heterogeneous mixes
     * (e.g. a capacity hog next to latency-sensitive neighbours).
     */
    System(const SystemConfig &config, OrgKind kind,
           const std::vector<WorkloadProfile> &profiles);

    System(const System &) = delete;
    System &operator=(const System &) = delete;

    /**
     * Run (the rest of) the simulation to completion and collect
     * results. May follow any number of runUntil() segments and/or a
     * restore(); the result is bit-identical to an uninterrupted run.
     * Call once.
     */
    RunResult run();

    /**
     * Run until the cores have processed @p total_accesses measured
     * accesses in aggregate (across all cores), then pause with the
     * memory system mid-flight — the natural point to save() a
     * checkpoint. Returns true if the target paused the run, false if
     * every core finished first.
     */
    bool runUntil(std::uint64_t total_accesses);

    /** Measured accesses processed so far, summed over cores. */
    std::uint64_t totalAccesses() const;

    /**
     * Serialize the full simulation state as snapshot sections:
     * "meta" (configuration fingerprint, verified on restore), "stats"
     * (every registered counter/distribution), "vm", "llc", "core.N"
     * per core, and "org" (organization + DRAM modules + in-flight
     * transactions). Restoring into a freshly constructed System with
     * the same configuration and then running to completion produces
     * byte-identical statistics to the uninterrupted run. The restoring
     * config may enlarge accessesPerCore (warm-start fan-out).
     */
    void save(SnapshotWriter &w) const;
    void restore(SnapshotReader &r);

    /** save() framed and written to @p path; false + message on error. */
    bool saveSnapshot(const std::string &path,
                      std::string *error = nullptr) const;

    /** Read @p path, validate, restore(); false + message on error. */
    bool restoreSnapshot(const std::string &path,
                         std::string *error = nullptr);

    MemoryOrganization &org() { return *org_; }
    VirtualMemory &vm() { return *vm_; }
    Llc &llc() { return *llc_; }
    StatRegistry &stats() { return registry_; }

  private:
    /** Profile core @p c runs. */
    const WorkloadProfile &profileFor(std::uint32_t c) const
    {
        return profiles_[c % profiles_.size()];
    }

    /**
     * Bind the organization to the kernel's event queue (Queued mode)
     * if not already bound / unbind it (flushes the drained-queue
     * audit). Binding is lazy so a checkpointed system keeps its
     * pipeline live between segments.
     */
    void bindEvents();
    void unbindEvents();

    /**
     * One kernel segment: run until all cores finish, the remaining
     * step budget is exhausted, or (when not kNoTarget) the aggregate
     * processed-access target is reached.
     */
    static constexpr std::uint64_t kNoTarget = ~std::uint64_t{0};
    void runSegment(std::uint64_t target_accesses);

    /**
     * Run the warmup phase once, before the first kernel segment
     * (DESIGN.md §13). Skip policy does nothing (sources were
     * fast-forwarded at construction). Functional replays the warmup
     * records through the tight functional loop; Detailed runs them
     * through the full timing model. Both then pass the switch barrier
     * (enterMeasuredRegion) into detailed mode.
     */
    void ensureWarmup();

    /** Batch-refilled, record-major round-robin functional replay of
     *  the warmup prefix of every core's stream. */
    void runFunctionalWarmup();

    /** Full-timing warmup: cores run their warmup-length trace to
     *  completion (a natural drain barrier). The kernel step budget
     *  and kernelSteps accounting apply to the measured region only. */
    void runDetailedWarmup();

    /**
     * The warmup→measured switch: reset DRAM timing state (banks,
     * buses, queues, protocol auditor), zero every registered
     * statistic, and rewind each core's execution progress — the
     * measured region starts from a cold pipeline over warm
     * architectural state. Also credits fidelity.warmupAccesses.
     */
    void enterMeasuredRegion();

    /** One record through VM -> L3 -> organization at functional
     *  fidelity (same call order as CpuCore::finishAccess). */
    void functionalAccess(std::uint32_t core, const Access &acc);

    SystemConfig config_;
    OrgKind kind_;
    std::vector<WorkloadProfile> profiles_;

    std::unique_ptr<MemoryOrganization> org_;
    std::unique_ptr<VirtualMemory> vm_;
    std::unique_ptr<Llc> llc_;
    std::vector<std::unique_ptr<CpuCore>> cores_;
    StatRegistry registry_;

    SimKernel kernel_;
    bool eventsBound_ = false;

    /** Agent steps accumulated across segments (and via restore()). */
    std::uint64_t kernelSteps_ = 0;
    bool truncated_ = false;
    bool finished_ = false;

    /** Warmup phase already executed (or not configured). */
    bool warmupDone_ = false;

    /** Registered only under a non-Skip warmup policy, so Skip-mode
     *  stat dumps (the golden configurations) are unchanged. */
    Counter warmupAccesses_{"fidelity.warmupAccesses",
                            "accesses consumed warming state before "
                            "the measured region"};
};

/** Convenience: build a System and run it. */
RunResult runWorkload(const SystemConfig &config, OrgKind kind,
                      const WorkloadProfile &profile);

/** Convenience: build a multi-programmed System and run it. */
RunResult runMix(const SystemConfig &config, OrgKind kind,
                 const std::vector<WorkloadProfile> &profiles);

} // namespace cameo

#endif // CAMEO_SYSTEM_SYSTEM_HH
