/**
 * @file
 * System: one complete simulated machine — cores + shared L3 + virtual
 * memory + one memory organization — and the RunResult it produces.
 */

#ifndef CAMEO_SYSTEM_SYSTEM_HH
#define CAMEO_SYSTEM_SYSTEM_HH

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "orgs/memory_organization.hh"
#include "stats/registry.hh"
#include "system/config.hh"
#include "system/cpu_core.hh"
#include "system/llc.hh"
#include "trace/workloads.hh"
#include "vm/virtual_memory.hh"

namespace cameo
{

/** Everything a bench or test needs from one simulation run. */
struct RunResult
{
    std::string orgName;
    std::string workload;
    WorkloadCategory category = WorkloadCategory::LatencyLimited;

    /** Execution time: completion of the slowest core (rate mode). */
    Tick execTime = 0;

    /** Agent steps the kernel executed for this run. */
    std::uint64_t kernelSteps = 0;

    /**
     * True when the run stopped at SystemConfig::maxKernelSteps with
     * unfinished cores: execTime and all counters understate the full
     * run and must not be compared against untruncated results.
     */
    bool truncated = false;

    std::uint64_t instructions = 0;
    std::uint64_t accesses = 0;
    std::uint64_t l3Hits = 0;
    std::uint64_t l3Misses = 0;

    /** Bus traffic per module (Table IV's raw numbers). */
    std::uint64_t stackedBytes = 0;
    std::uint64_t offchipBytes = 0;
    std::uint64_t storageBytes = 0;

    std::uint64_t majorFaults = 0;
    std::uint64_t minorFaults = 0;

    /** CAMEO-specific (zero for other organizations). */
    std::uint64_t servicedStacked = 0;
    std::uint64_t servicedOffchip = 0;
    std::uint64_t swaps = 0;
    std::array<std::uint64_t, 5> llpCases{};
    double llpAccuracy = 0.0;

    /** TLM-specific. */
    std::uint64_t pageMigrations = 0;

    /** Measured L3 misses per thousand instructions. */
    double mpki() const
    {
        if (instructions == 0)
            return 0.0;
        return 1000.0 * static_cast<double>(l3Misses) /
               static_cast<double>(instructions);
    }

    /** Fraction of CAMEO accesses serviced by stacked memory. */
    double stackedServiceFraction() const
    {
        const std::uint64_t total = servicedStacked + servicedOffchip;
        if (total == 0)
            return 0.0;
        return static_cast<double>(servicedStacked) /
               static_cast<double>(total);
    }
};

/** A complete simulated machine for one (organization, workload) pair. */
class System
{
  public:
    /**
     * Builds the organization, sizes virtual memory by its OS-visible
     * capacity, and instantiates rate-mode cores (every core runs
     * @p profile with a distinct seed, the paper's methodology). For
     * TLM-Oracle the constructor also runs the profiling pass and
     * injects page heat.
     */
    System(const SystemConfig &config, OrgKind kind,
           const WorkloadProfile &profile);

    /**
     * Multi-programmed variant: core i runs profiles[i % size]. This
     * extends the paper's rate-mode methodology to heterogeneous mixes
     * (e.g. a capacity hog next to latency-sensitive neighbours).
     */
    System(const SystemConfig &config, OrgKind kind,
           const std::vector<WorkloadProfile> &profiles);

    System(const System &) = delete;
    System &operator=(const System &) = delete;

    /** Run to completion and collect results. Call once. */
    RunResult run();

    MemoryOrganization &org() { return *org_; }
    VirtualMemory &vm() { return *vm_; }
    Llc &llc() { return *llc_; }
    StatRegistry &stats() { return registry_; }

  private:
    /** Profile core @p c runs. */
    const WorkloadProfile &profileFor(std::uint32_t c) const
    {
        return profiles_[c % profiles_.size()];
    }

    SystemConfig config_;
    OrgKind kind_;
    std::vector<WorkloadProfile> profiles_;

    std::unique_ptr<MemoryOrganization> org_;
    std::unique_ptr<VirtualMemory> vm_;
    std::unique_ptr<Llc> llc_;
    std::vector<std::unique_ptr<CpuCore>> cores_;
    StatRegistry registry_;
    bool ran_ = false;
};

/** Convenience: build a System and run it. */
RunResult runWorkload(const SystemConfig &config, OrgKind kind,
                      const WorkloadProfile &profile);

/** Convenience: build a multi-programmed System and run it. */
RunResult runMix(const SystemConfig &config, OrgKind kind,
                 const std::vector<WorkloadProfile> &profiles);

} // namespace cameo

#endif // CAMEO_SYSTEM_SYSTEM_HH
