/**
 * @file
 * CpuCore: the trace-driven core model (one Agent per core).
 *
 * Table I's cores are 2-wide out-of-order at 3.2GHz. The model charges
 * cyclesPerInstruction for the non-memory instruction gap of each trace
 * record, services the access through VM -> shared L3 -> memory
 * organization, and approximates out-of-order overlap with a bounded
 * window of outstanding misses (per-workload MLP): independent misses
 * overlap up to the window size, dependent (pointer-chasing) misses
 * serialize, stores never block retirement, and page faults stall the
 * core for the full SSD latency.
 *
 * Scheduling discipline: every memory-system call is issued at the
 * core's *current* local clock, and any operation that would advance
 * the clock past other cores (dependence wait, page-fault stall, full
 * miss window) instead advances the clock and *yields* — step()
 * returns and the kernel resumes the core once the other cores have
 * caught up. This keeps request arrival times near-monotonic across
 * cores, which the DRAM reservation model relies on; without it, a
 * core returning from a 100K-cycle fault would reserve buses far in
 * the future and stall everyone else behind phantom queueing.
 *
 * Misses enter the memory system through MemoryOrganization::submit()
 * and return through onMemComplete() (the core is a MemClient). In
 * Blocking timing the completion fires inside submit(), reproducing
 * the legacy synchronous flow bit-for-bit. In Queued timing it arrives
 * later from the kernel's event queue; until then the miss occupies an
 * *unresolved* window slot, and a core whose window is all-unresolved
 * (or that depends on an unresolved load) parks — blocked() goes true,
 * the kernel removes it from the dispatch heap, and the completion
 * unparks it at the data-arrival tick.
 */

#ifndef CAMEO_SYSTEM_CPU_CORE_HH
#define CAMEO_SYSTEM_CPU_CORE_HH

#include <array>
#include <cassert>
#include <cstddef>
#include <memory>
#include <optional>
#include <vector>

#include "orgs/memory_organization.hh"
#include "sim/kernel.hh"
#include "sim/mem_request.hh"
#include "system/llc.hh"
#include "trace/access_source.hh"
#include "trace/generator.hh"
#include "vm/virtual_memory.hh"

namespace cameo
{

/** One simulated core consuming a synthetic trace. */
class CpuCore : public Agent, public MemClient
{
  public:
    /**
     * @param id           Core id (also the VM address-space id).
     * @param source       The core's access stream (synthetic
     *                     generator or trace replay). Owned.
     * @param num_accesses Trace length for this core.
     * @param cpi          Cycles per non-memory instruction.
     * @param mlp          Outstanding-miss window size.
     * @param l3_hit_stall Core stall charged per L3 load hit.
     * @param vm           Shared virtual memory.
     * @param llc          Shared L3.
     * @param org          Memory organization under test.
     */
    CpuCore(std::uint32_t id, std::unique_ptr<AccessSource> source,
            std::uint64_t num_accesses, double cpi, std::uint32_t mlp,
            Tick l3_hit_stall, VirtualMemory &vm, Llc &llc,
            MemoryOrganization &org);

    Tick nextReadyTick() const override { return clock_; }
    bool done() const override
    {
        return processed_ >= numAccesses_ && !inflight_ && !pendingMiss_;
    }
    bool blocked() const override
    {
        return blockReason_ != BlockReason::None;
    }
    void step() override;

    /** Miss completion (from submit() or the event queue). */
    void onMemComplete(const MemRequest &req, Tick done) override;

    /** Completion time including in-flight misses. */
    Tick finishTick() const;

    std::uint64_t instructions() const { return instructions_; }
    std::uint64_t accesses() const { return processed_; }

    /**
     * Pull @p n warmup records straight from the source into @p buf —
     * the functional warmup's batch path (no refill ring, no
     * processed_ accounting, no per-record virtual dispatch). Only
     * valid before the core has fetched anything (fresh or just after
     * beginMeasurement()); the measured region then starts at the
     * source cursor this leaves behind.
     */
    void warmupRefill(Access *buf, std::size_t n)
    {
        assert(processed_ == 0 && ringLen_ == 0);
        source_->refill(buf, n);
    }

    /** Fast-forward the source past @p n records without processing
     *  them (restore path of a post-warmup snapshot). */
    void skipWarmup(std::uint64_t n)
    {
        assert(processed_ == 0 && ringLen_ == 0);
        source_->skip(n);
    }

    /**
     * Reset all execution progress for the measured region after a
     * warmup phase (DESIGN.md §13): clock, miss window, dependence
     * tracking, instruction and access counts, and the refill ring all
     * return to power-on. The source cursor is NOT touched — it stays
     * wherever the warmup left it — and the trace length becomes
     * @p num_accesses. Requires the warmup to have drained (no
     * in-flight access, no pending or unresolved misses).
     */
    void beginMeasurement(std::uint64_t num_accesses);

    /**
     * Checkpoint the core's architectural progress: clock, miss window,
     * dependence state, the in-flight access, and the trace cursor. The
     * refill ring is NOT serialized — batch boundaries never change the
     * record stream (AccessSource contract), so restore() rewinds the
     * ring and fast-forwards the freshly constructed source by
     * processed_ records instead. A snapshot may be restored into a
     * core configured for a LONGER trace (warm-start fan-out): the only
     * requirement checked is processed_ <= numAccesses_.
     */
    void save(SnapshotWriter &w) const;
    void restore(SnapshotReader &r);

  private:
    /** Progress of the access currently being processed. */
    enum class Stage
    {
        NeedTranslate, ///< Gap charged; next: VM translation.
        NeedFinish,    ///< Translated; next: L3 and memory.
    };

    /** The access currently being processed (between yields). */
    struct InFlight
    {
        Access acc;
        std::uint32_t frame = 0;
        Stage stage = Stage::NeedTranslate;
    };

    /** An L3 miss waiting for a free miss-window slot. */
    struct PendingMiss
    {
        LineAddr line;
        InstAddr pc;
        bool isLoad;
    };

    /** Why the core is parked (Queued timing only; see blocked()). */
    enum class BlockReason
    {
        None,       ///< Runnable.
        WindowFull, ///< Every miss-window slot is unresolved.
        Dependence, ///< Next access depends on an unresolved load.
    };

    /** Records pulled from the source per refill() virtual call. */
    static constexpr std::uint32_t kRefillBatch = 64;

    /** Issue the pending miss if a window slot is free; else yield. */
    void tryIssuePendingMiss();

    /** L3 + memory for the in-flight access (after translation). */
    void finishAccess();

    /**
     * Next trace record, served from the refill ring. Refills pull at
     * most the records this core will still process, so the source is
     * never advanced past the trace length.
     */
    Access fetchAccess();

    std::uint32_t id_;
    std::unique_ptr<AccessSource> source_;
    std::uint64_t numAccesses_;
    double cpi_;
    std::uint32_t mlp_;
    Tick l3HitStall_;

    VirtualMemory &vm_;
    Llc &llc_;
    MemoryOrganization &org_;

    Tick clock_ = 0;
    Tick lastMissComplete_ = 0;

    /** Completion ticks of *resolved* misses still holding a window
     *  slot (freed when the clock catches up with them). */
    std::vector<Tick> outstanding_;

    /** Submitted misses whose completion has not arrived yet (always 0
     *  between steps in Blocking timing). */
    std::uint32_t unresolved_ = 0;

    /** Tag of the most recently issued load miss (see MemRequest::tag);
     *  dependence stalls wait for exactly this one. */
    std::uint64_t lastLoadTag_ = 0;
    std::uint64_t nextLoadTag_ = 1;
    bool lastLoadResolved_ = true;

    BlockReason blockReason_ = BlockReason::None;

    std::optional<InFlight> inflight_;
    std::optional<PendingMiss> pendingMiss_;
    std::uint64_t processed_ = 0;
    std::uint64_t instructions_ = 0;

    /** Ring of prefetched trace records (see fetchAccess). */
    std::array<Access, kRefillBatch> ring_{};
    std::uint32_t ringPos_ = 0;
    std::uint32_t ringLen_ = 0;
};

} // namespace cameo

#endif // CAMEO_SYSTEM_CPU_CORE_HH
