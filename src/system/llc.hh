/**
 * @file
 * Llc: the shared last-level cache built from a SystemConfig.
 *
 * A thin wrapper over SetAssocCache that owns the Table I parameters
 * (32MB, 16-way, 24 cycles at paper scale) and tracks the miss rate
 * statistics the workload-calibration bench (Table II) reports.
 */

#ifndef CAMEO_SYSTEM_LLC_HH
#define CAMEO_SYSTEM_LLC_HH

#include <memory>

#include "cache/set_assoc_cache.hh"
#include "system/config.hh"

namespace cameo
{

/** The shared L3 of one simulated system. */
class Llc
{
  public:
    explicit Llc(const SystemConfig &config);

    /** Access on behalf of a core; see SetAssocCache::access. */
    CacheAccessResult access(LineAddr line, bool is_write)
    {
        return cache_.access(line, is_write);
    }

    Tick hitLatency() const { return cache_.hitLatency(); }

    std::uint64_t hits() const { return cache_.hits().value(); }
    std::uint64_t misses() const { return cache_.misses().value(); }

    double missRate() const;

    void registerStats(StatRegistry &registry)
    {
        cache_.registerStats(registry);
    }

    /** Checkpoint/restore pass-through to the underlying cache. */
    void save(SnapshotWriter &w) const { cache_.save(w); }
    void restore(SnapshotReader &r) { cache_.restore(r); }

    SetAssocCache &cache() { return cache_; }

  private:
    SetAssocCache cache_;
};

} // namespace cameo

#endif // CAMEO_SYSTEM_LLC_HH
