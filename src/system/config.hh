/**
 * @file
 * SystemConfig: every knob of a simulated system, with presets.
 *
 * The paper's system (Table I) is 32 cores, 4GB stacked + 12GB off-chip
 * DRAM, and a 32MB L3. Simulating 20 billion instructions against
 * gigabytes of memory is a cluster job; CAMEO's trade-offs, however,
 * are set by *ratios* (stacked : total capacity, footprint : capacity,
 * line : page granularity), so the default preset scales every capacity
 * down by kDefaultScale while preserving all ratios and using the exact
 * Table I timing parameters. paperConfig() builds the full-size
 * configuration for capacity-math tests; tinyConfig() is for unit
 * tests.
 */

#ifndef CAMEO_SYSTEM_CONFIG_HH
#define CAMEO_SYSTEM_CONFIG_HH

#include <cstdint>
#include <functional>
#include <memory>

#include "dram/timings.hh"
#include "orgs/memory_organization.hh"
#include "sim/fidelity.hh"
#include "trace/access_source.hh"
#include "trace/generator.hh"
#include "trace/workloads.hh"
#include "util/types.hh"

namespace cameo
{

/** Full description of one simulated system. */
struct SystemConfig
{
    // --- Processor ---------------------------------------------------
    std::uint32_t numCores = 8;

    /** Cycles per non-memory instruction (2-wide core: 0.5). */
    double cyclesPerInstruction = 0.5;

    /** Cap on outstanding L3 misses per core (profile.mlp also caps). */
    std::uint32_t maxMlp = 8;

    // --- Last-level cache (Table I, scaled) --------------------------
    std::uint64_t l3Bytes = 64 << 10;
    std::uint32_t l3Ways = 16;

    /** L3 load-to-use latency; misses leave for memory after this. */
    Tick l3HitLatency = 24;

    /**
     * Effective core stall per L3 *hit*: an out-of-order core hides
     * most of the pipelined 24-cycle L3 latency, so hits charge only
     * this residue. Misses still pay the full lookup before memory.
     */
    Tick l3HitStall = 6;

    // --- Memories (Table I, scaled) ----------------------------------
    std::uint64_t stackedBytes = 8ull << 20;
    std::uint64_t offchipBytes = 24ull << 20;
    DramTimings stacked = stackedTimings();
    DramTimings offchip = offchipTimings();

    // --- Storage -----------------------------------------------------
    Tick pageFaultLatency = 100'000;

    // --- Memory pipeline ---------------------------------------------
    /**
     * Timing mode for the memory pipeline (DESIGN.md §9): Blocking is
     * the original synchronous model (bit-identical statistics);
     * Queued models DRAM controller queues and event-delivered miss
     * completions, i.e. real queuing contention.
     */
    TimingMode timingMode = TimingMode::Blocking;

    /** DRAM controller queue geometry (Queued timing only). */
    DramQueueConfig dramQueues;

    // --- CAMEO / TLM design points -----------------------------------
    LltKind lltKind = LltKind::CoLocated;
    PredictorKind predictorKind = PredictorKind::Llp;
    std::uint32_t llpTableEntries = 256;
    std::uint64_t freqEpochAccesses = 64 * 1024;
    std::uint32_t tlmVictimProbes = 8;
    std::uint32_t tlmMigrateThreshold = 2;
    std::uint32_t bansheeSampleRate = 32;
    std::uint32_t bansheeHotThreshold = 2;
    std::uint32_t bansheePteCacheEntries = 128;

    // --- Workload ------------------------------------------------------
    /** Capacity scale factor versus the paper's 16GB system. */
    double scaleFactor = 512.0;

    /** Trace length per core (L3-level accesses). */
    std::uint64_t accessesPerCore = 200'000;

    /**
     * Accesses per core consumed before measurement starts: each
     * core's source is fast-forwarded this far (AccessSource::skip)
     * before simulation, so caches and predictors see a stream that
     * is already past its cold start. 0 (the default, and the golden
     * configuration) measures from the first record.
     */
    std::uint64_t warmupAccessesPerCore = 0;

    /**
     * What the warmup prefix does (DESIGN.md §13). Skip fast-forwards
     * the trace cursor only (state stays cold; the golden
     * configuration). Functional replays the warmup records through
     * the functional access path — exact architectural state, no
     * timing — then switches to detailed mode for the measured region.
     * Detailed runs the warmup through the full timing model and
     * resets timing state at the switch; it is the (slow) reference
     * the functional path is differentially tested against. Ignored
     * when warmupAccessesPerCore is 0.
     */
    WarmupPolicy warmupPolicy = WarmupPolicy::Skip;

    /**
     * Records fetched per core per refill in the functional warmup
     * loop (clamped to [1, 4096]). Purely a host-efficiency knob: the
     * warmup interleaves cores record-by-record regardless, so results
     * are invariant to the batch size (proven in test_fidelity.cc).
     */
    std::uint32_t functionalRefillBatch = 1024;

    /**
     * Route access streams through the process-wide TraceArenaCache
     * (trace/trace_arena.hh): the first run for a (profile, params,
     * seed) records the stream once into a packed arena, every later
     * run replays it. Replay is bit-identical to fresh generation, so
     * results do not change — only redundant generator work goes away.
     * Ignored when sourceFactory is set or the cache is disabled
     * (CAMEO_TRACE_ARENA_MB=0). Off by default so single-run tools and
     * tests pay no cache residency; sweeps turn it on (SweepOptions).
     */
    bool useTraceArena = false;

    /**
     * Runaway guard for the simulation kernel: maximum agent steps per
     * run (0 = unlimited). A run that hits the limit is reported as
     * truncated in RunResult — its execution time understates reality.
     */
    std::uint64_t maxKernelSteps = 0;

    std::uint64_t seed = 42;

    /**
     * Optional access-source factory. When set, System builds each
     * core's stream from it (e.g. TraceReader replay of recorded or
     * externally produced traces) instead of the synthetic generator.
     * Called once per core with (core id, profile, scaled params,
     * per-core seed); must also be usable for TLM-Oracle's profiling
     * pre-pass, i.e. repeated calls with the same arguments must yield
     * streams with identical page-visit statistics.
     */
    using SourceFactory = std::function<std::unique_ptr<AccessSource>(
        std::uint32_t core, const WorkloadProfile &profile,
        const GeneratorParams &params, std::uint64_t seed)>;
    SourceFactory sourceFactory;

    /** Derive per-core generator knobs for @p profile. */
    GeneratorParams generatorParamsFor(const WorkloadProfile &profile) const;

    /** Organization-construction view of this config. */
    OrgConfig orgConfig() const;

    /** Total OS-visible capacity when stacked DRAM counts (TLM/CAMEO). */
    std::uint64_t totalMemoryBytes() const
    {
        return stackedBytes + offchipBytes;
    }
};

/** Default scaled configuration (1/512 of Table I capacities). */
SystemConfig defaultConfig();

/** Full-size Table I configuration (capacity math / documentation). */
SystemConfig paperConfig();

/** Very small configuration for fast unit tests. */
SystemConfig tinyConfig();

} // namespace cameo

#endif // CAMEO_SYSTEM_CONFIG_HH
