#include "system/system.hh"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "sim/kernel.hh"
#include "trace/trace_arena.hh"
#include "util/bitops.hh"

namespace cameo
{

namespace
{

std::uint64_t
coreSeed(std::uint64_t base, std::uint32_t core)
{
    return mix64(base + 0x517cc1b727220a95ULL * (core + 1));
}

} // namespace

System::System(const SystemConfig &config, OrgKind kind,
               const WorkloadProfile &profile)
    : System(config, kind, std::vector<WorkloadProfile>{profile})
{
}

System::System(const SystemConfig &config, OrgKind kind,
               const std::vector<WorkloadProfile> &profiles)
    : config_(config), kind_(kind), profiles_(profiles),
      org_(makeOrganization(kind, config.orgConfig()))
{
    assert(org_ != nullptr);
    assert(!profiles_.empty());

    // Arena replay applies when nothing else supplies the stream: the
    // cache records each (profile, params, seed) once and replays it
    // bit-identically for every later run (DESIGN.md §10).
    const bool use_arena = !config_.sourceFactory &&
                           config_.useTraceArena &&
                           TraceArenaCache::instance().enabled();
    // Arena record count covers warmup + measurement, so a core that
    // consumes both never wraps the arena.
    const std::uint64_t stream_records =
        config_.warmupAccessesPerCore + config_.accessesPerCore;

    // Each core's access stream: a synthetic generator by default, an
    // arena replay when enabled, or whatever the configured factory
    // provides (trace replay). Under the Skip policy warmup records are
    // skipped here so the core's first fetched record is the first
    // measured one; under Functional/Detailed the warmup phase itself
    // consumes them (ensureWarmup), so the cursor starts at record 0.
    const auto make_source = [&](std::uint32_t c, bool skip_warmup)
        -> std::unique_ptr<AccessSource> {
        const WorkloadProfile &p = profileFor(c);
        const GeneratorParams gp = config_.generatorParamsFor(p);
        const std::uint64_t seed = coreSeed(config_.seed, c);
        std::unique_ptr<AccessSource> source;
        if (config_.sourceFactory) {
            source = config_.sourceFactory(c, p, gp, seed);
        } else if (use_arena) {
            source = TraceArenaCache::instance().source(
                p, gp, seed, stream_records);
        } else {
            source = std::make_unique<SyntheticGenerator>(p, gp, seed);
        }
        if (skip_warmup && config_.warmupAccessesPerCore > 0)
            source->skip(config_.warmupAccessesPerCore);
        return source;
    };

    // TLM-Oracle: replay the deterministic sources standalone to build
    // the oracular page-heat profile before any simulation. Footprint
    // hints size both maps up front so the profiling pass never
    // rehashes. With the arena active the per-core histograms are
    // memoized in the cache, so a sweep profiles each stream once
    // instead of once per oracle job.
    if (kind_ == OrgKind::TlmOracle) {
        const auto pages_hint = [&](std::uint32_t c) -> std::size_t {
            const GeneratorParams gp =
                config_.generatorParamsFor(profileFor(c));
            return static_cast<std::size_t>(
                (gp.footprintBytes + gp.hotSetBytes) / kPageBytes + 2);
        };
        std::size_t total_hint = 0;
        for (std::uint32_t c = 0; c < config_.numCores; ++c)
            total_hint += pages_hint(c);
        PageHeatMap heat(total_hint);
        for (std::uint32_t c = 0; c < config_.numCores; ++c) {
            if (use_arena) {
                const WorkloadProfile &p = profileFor(c);
                const auto core_heat =
                    TraceArenaCache::instance().pageHeat(
                        p, config_.generatorParamsFor(p),
                        coreSeed(config_.seed, c), stream_records,
                        config_.warmupAccessesPerCore,
                        config_.accessesPerCore, pages_hint(c));
                for (const auto &[vpage, count] : *core_heat)
                    heat[pageHeatKey(c, vpage)] += count;
            } else {
                const auto source = make_source(c, /*skip_warmup=*/true);
                const auto core_heat = profilePageHeat(
                    *source, config_.accessesPerCore, pages_hint(c));
                for (const auto &[vpage, count] : core_heat)
                    heat[pageHeatKey(c, vpage)] += count;
            }
        }
        if (!org_->setPageHeat(std::move(heat)))
            throw std::runtime_error(
                std::string(orgKindName(kind)) +
                " does not take page-heat oracles");
    }

    vm_ = std::make_unique<VirtualMemory>(org_->visibleBytes(),
                                          config_.pageFaultLatency,
                                          config_.seed ^ 0xF00D);
    vm_->setMapHook([this](std::uint32_t frame, std::uint32_t core,
                           PageAddr vpage) {
        org_->onPageMapped(frame, core, vpage);
    });

    llc_ = std::make_unique<Llc>(config_);

    // Under a warming policy the source cursor starts at record 0 (the
    // warmup phase consumes the prefix). A Detailed-policy core is
    // born with the *warmup* as its trace — the warmup kernel run
    // finishes when every core has retired it — and is re-targeted to
    // the measured length by beginMeasurement() at the switch.
    const bool skip_warmup =
        config_.warmupPolicy == WarmupPolicy::Skip;
    const bool detailed_warmup =
        !skip_warmup && config_.warmupPolicy == WarmupPolicy::Detailed &&
        config_.warmupAccessesPerCore > 0;
    const std::uint64_t initial_accesses = detailed_warmup
                                               ? config_.warmupAccessesPerCore
                                               : config_.accessesPerCore;

    cores_.reserve(config_.numCores);
    for (std::uint32_t c = 0; c < config_.numCores; ++c) {
        const std::uint32_t mlp =
            std::min(config_.maxMlp, profileFor(c).mlp);
        cores_.push_back(std::make_unique<CpuCore>(
            c, make_source(c, skip_warmup), initial_accesses,
            config_.cyclesPerInstruction, mlp, config_.l3HitStall, *vm_,
            *llc_, *org_));
    }

    org_->registerStats(registry_);
    vm_->registerStats(registry_);
    llc_->registerStats(registry_);
    if (!skip_warmup)
        registry_.add(warmupAccesses_);

    for (auto &core : cores_)
        kernel_.addAgent(core.get());
}

void
System::bindEvents()
{
    // Queued timing: miss completions travel through the kernel's
    // event queue for the duration of the run.
    if (config_.timingMode == TimingMode::Queued && !eventsBound_) {
        org_->bindEventQueue(&kernel_.events());
        eventsBound_ = true;
    }
}

void
System::unbindEvents()
{
    if (eventsBound_) {
        org_->bindEventQueue(nullptr);
        eventsBound_ = false;
    }
}

void
System::ensureWarmup()
{
    if (warmupDone_)
        return;
    warmupDone_ = true;
    if (config_.warmupAccessesPerCore == 0 ||
        config_.warmupPolicy == WarmupPolicy::Skip)
        return;
    if (config_.warmupPolicy == WarmupPolicy::Functional)
        runFunctionalWarmup();
    else
        runDetailedWarmup();
    enterMeasuredRegion();
}

void
System::runFunctionalWarmup()
{
    const std::uint64_t warmup = config_.warmupAccessesPerCore;
    const std::size_t n = cores_.size();
    const std::size_t batch = std::clamp<std::size_t>(
        config_.functionalRefillBatch, 1, 4096);

    // One prefetch ring per core, all in one flat allocation. The
    // replay is record-major round robin — round r feeds record r of
    // every core, matching the Skip-mode contract that per-core streams
    // are independent — so the interleaving (and therefore every
    // architectural state update) is invariant to the batch size.
    std::vector<Access> buf(n * batch);
    struct Lane
    {
        Access *cur;
        Access *end;
    };
    std::vector<Lane> lanes(n);
    for (std::size_t c = 0; c < n; ++c) {
        Access *base = buf.data() + c * batch;
        lanes[c] = {base, base};
    }

    for (std::uint64_t rec = 0; rec < warmup; ++rec) {
        for (std::size_t c = 0; c < n; ++c) {
            Lane &lane = lanes[c];
            if (lane.cur == lane.end) {
                // Never pull past the warmup prefix: the measured
                // region must start exactly at record `warmup`.
                const auto len = static_cast<std::size_t>(
                    std::min<std::uint64_t>(batch, warmup - rec));
                Access *base = buf.data() + c * batch;
                cores_[c]->warmupRefill(base, len);
                lane = {base, base + len};
            }
            functionalAccess(static_cast<std::uint32_t>(c), *lane.cur++);
        }
    }
}

void
System::functionalAccess(std::uint32_t core, const Access &acc)
{
    // Same component order as CpuCore::step()/finishAccess(), minus all
    // timing: VM translation (page table, frame allocation, fault
    // accounting), shared L3 (tags + replacement), then the
    // organization's functional path for the miss — dirty writeback
    // first, then the demand fill (write misses allocate via a read;
    // the dirty bit lives in the L3).
    const Translation tr =
        vm_->translate(0, core, pageOf(acc.vaddr), acc.isWrite);
    const LineAddr phys_line =
        std::uint64_t{tr.frame} * kLinesPerPage +
        (lineOf(acc.vaddr) & (kLinesPerPage - 1));

    const CacheAccessResult res = llc_->access(phys_line, acc.isWrite);
    if (res.hit)
        return;
    if (res.hasWriteback)
        org_->accessFunctional(res.writebackLine, true, acc.pc, core);
    org_->accessFunctional(phys_line, false, acc.pc, core);
}

void
System::runDetailedWarmup()
{
    // The cores were constructed with the warmup as their trace; a
    // plain kernel run retires it through the full timing model and
    // drains every in-flight completion before returning. The step
    // budget (maxKernelSteps) and kernelSteps accounting are measured-
    // region properties, so neither applies here.
    bindEvents();
    kernel_.run();
    unbindEvents();
}

void
System::enterMeasuredRegion()
{
    // The switch barrier (DESIGN.md §13). Warmup has drained; discard
    // everything that only describes *when* things happened — DRAM
    // bank/bus reservations, controller queues, the protocol auditor's
    // clock — and every statistic accumulated so far, keeping all
    // architectural state (LLT, predictors, tags, page tables, heat).
    org_->resetTiming();
    registry_.resetAll();
    for (auto &core : cores_)
        core->beginMeasurement(config_.accessesPerCore);
    warmupAccesses_.inc(config_.warmupAccessesPerCore * cores_.size());
}

void
System::runSegment(std::uint64_t target_accesses)
{
    ensureWarmup();
    bindEvents();
    std::uint64_t budget = ~std::uint64_t{0};
    if (config_.maxKernelSteps != 0) {
        budget = config_.maxKernelSteps > kernelSteps_
                     ? config_.maxKernelSteps - kernelSteps_
                     : 0;
    }
    std::function<bool()> stop;
    if (target_accesses != kNoTarget) {
        stop = [this, target_accesses] {
            return totalAccesses() >= target_accesses;
        };
    }
    kernel_.run(budget, stop);
    kernelSteps_ += kernel_.stepsExecuted();
    if (!kernel_.stoppedEarly()) {
        // The segment ran to completion (or its step budget): the
        // pipeline is drained, so the end-of-run audits may fire.
        truncated_ = truncated_ || kernel_.hitStepLimit();
        unbindEvents();
    }
}

std::uint64_t
System::totalAccesses() const
{
    std::uint64_t total = 0;
    for (const auto &core : cores_)
        total += core->accesses();
    return total;
}

bool
System::runUntil(std::uint64_t total_accesses)
{
    assert(!finished_ && "System already ran to completion");
    runSegment(total_accesses);
    return kernel_.stoppedEarly();
}

RunResult
System::run()
{
    assert(!finished_ && "System::run may be called once");
    runSegment(kNoTarget);
    finished_ = true;

    RunResult r;
    r.kernelSteps = kernelSteps_;
    r.truncated = truncated_;
    r.orgName = org_->name();
    if (profiles_.size() == 1) {
        r.workload = profiles_[0].name;
        r.category = profiles_[0].category;
    } else {
        r.workload = "mix(";
        for (std::size_t i = 0; i < profiles_.size(); ++i)
            r.workload += (i ? "+" : "") + profiles_[i].name;
        r.workload += ")";
        // A mix is capacity-limited if any member is.
        r.category = WorkloadCategory::LatencyLimited;
        for (const auto &p : profiles_) {
            if (p.category == WorkloadCategory::CapacityLimited)
                r.category = WorkloadCategory::CapacityLimited;
        }
    }

    for (const auto &core : cores_) {
        r.execTime = std::max(r.execTime, core->finishTick());
        r.instructions += core->instructions();
        r.accesses += core->accesses();
    }
    r.warmupAccesses = warmupAccesses_.value();

    r.l3Hits = llc_->hits();
    r.l3Misses = llc_->misses();

    if (const DramModule *stacked = org_->stackedModule())
        r.stackedBytes = stacked->bytesTransferred();
    r.offchipBytes = org_->offchipModule().bytesTransferred();
    r.storageBytes = vm_->ssd().bytesTransferred();
    r.majorFaults = vm_->majorFaults().value();
    r.minorFaults = vm_->minorFaults().value();

    if (const CameoController *ctrl = org_->cameo()) {
        r.servicedStacked = ctrl->servicedStacked().value();
        r.servicedOffchip = ctrl->servicedOffchip().value();
        r.swaps = ctrl->swaps().value();
        for (int c = 0; c < 5; ++c) {
            r.llpCases[c] = ctrl->predictor().caseCount(
                static_cast<PredictionCase>(c));
        }
        r.llpAccuracy = ctrl->predictor().accuracy();
    }

    if (const Counter *migrations =
            registry_.findCounter("tlm.pageMigrations")) {
        r.pageMigrations = migrations->value();
    }
    return r;
}

void
System::save(SnapshotWriter &w) const
{
    w.beginSection("meta");
    w.u8(static_cast<std::uint8_t>(kind_));
    w.u8(static_cast<std::uint8_t>(config_.timingMode));
    w.u32(config_.numCores);
    w.u64(config_.seed);
    w.u64(config_.warmupAccessesPerCore);
    w.u64(config_.accessesPerCore);
    w.u64(config_.stackedBytes);
    w.u64(config_.offchipBytes);
    w.u64(config_.l3Bytes);
    w.u32(config_.l3Ways);
    w.f64(config_.scaleFactor);
    w.u32(static_cast<std::uint32_t>(profiles_.size()));
    for (const WorkloadProfile &p : profiles_)
        w.str(p.name);
    w.u64(kernelSteps_);
    w.u8(static_cast<std::uint8_t>(config_.warmupPolicy));
    w.b(warmupDone_);
    w.endSection();

    w.beginSection("stats");
    registry_.save(w);
    w.endSection();

    w.beginSection("vm");
    vm_->save(w);
    w.endSection();

    w.beginSection("llc");
    llc_->save(w);
    w.endSection();

    for (std::size_t c = 0; c < cores_.size(); ++c) {
        w.beginSection("core." + std::to_string(c));
        cores_[c]->save(w);
        w.endSection();
    }

    w.beginSection("org");
    org_->save(w);
    w.endSection();
}

void
System::restore(SnapshotReader &r)
{
    assert(kernelSteps_ == 0 && !finished_ &&
           "restore only into a freshly constructed System");

    if (!r.enterSection("meta"))
        return;
    const auto kind = static_cast<OrgKind>(r.u8());
    const auto mode = static_cast<TimingMode>(r.u8());
    const std::uint32_t cores = r.u32();
    const std::uint64_t seed = r.u64();
    const std::uint64_t warmup = r.u64();
    const std::uint64_t accesses = r.u64();
    const std::uint64_t stackedBytes = r.u64();
    const std::uint64_t offchipBytes = r.u64();
    const std::uint64_t l3Bytes = r.u64();
    const std::uint32_t l3Ways = r.u32();
    const double scale = r.f64();
    const std::uint32_t nProfiles = r.u32();
    std::vector<std::string> names;
    for (std::uint32_t i = 0; i < nProfiles && r.ok(); ++i)
        names.push_back(r.str());
    const std::uint64_t steps = r.u64();
    const auto policy = static_cast<WarmupPolicy>(r.u8());
    const bool warmup_done = r.b();
    if (!r.leaveSection())
        return;

    if (kind != kind_) {
        r.fail(std::string("system: snapshot was taken of a ") +
               orgKindName(kind) + " organization, this system is " +
               orgKindName(kind_));
        return;
    }
    if (mode != config_.timingMode) {
        r.fail("system: timing mode differs between snapshot and config");
        return;
    }
    if (cores != config_.numCores) {
        r.fail("system: core count mismatch: snapshot has " +
               std::to_string(cores) + ", config has " +
               std::to_string(config_.numCores));
        return;
    }
    if (seed != config_.seed) {
        r.fail("system: seed mismatch (streams would diverge)");
        return;
    }
    if (warmup != config_.warmupAccessesPerCore) {
        r.fail("system: warmup length mismatch (streams would diverge)");
        return;
    }
    if (policy != config_.warmupPolicy) {
        r.fail("system: warmup policy mismatch (snapshot ran '" +
               std::string(warmupPolicyName(policy)) +
               "' warmup, this config uses '" +
               warmupPolicyName(config_.warmupPolicy) + "')");
        return;
    }
    if (accesses > config_.accessesPerCore) {
        r.fail("system: snapshot was taken of a longer run (" +
               std::to_string(accesses) + " accesses/core) than this "
               "config's " + std::to_string(config_.accessesPerCore));
        return;
    }
    if (stackedBytes != config_.stackedBytes ||
        offchipBytes != config_.offchipBytes ||
        l3Bytes != config_.l3Bytes || l3Ways != config_.l3Ways) {
        r.fail("system: memory geometry mismatch");
        return;
    }
    if (scale != config_.scaleFactor) {
        r.fail("system: scale factor mismatch (streams would diverge)");
        return;
    }
    if (names.size() != profiles_.size()) {
        r.fail("system: workload mix size mismatch");
        return;
    }
    for (std::size_t i = 0; i < names.size(); ++i) {
        if (names[i] != profiles_[i].name) {
            r.fail("system: workload mismatch: snapshot ran '" +
                   names[i] + "', this system runs '" +
                   profiles_[i].name + "'");
            return;
        }
    }
    kernelSteps_ = steps;
    warmupDone_ = warmup_done;

    // Snapshot taken after the warmup switch: replay the switch on the
    // fresh cores before their sections load. beginMeasurement()
    // re-targets Detailed-policy cores (constructed with the warmup as
    // their trace) to the measured length, and the cursor fast-forward
    // composes with the per-core skip(processed_) in CpuCore::restore()
    // to land the source at warmup + processed_.
    if (warmupDone_ && config_.warmupPolicy != WarmupPolicy::Skip &&
        config_.warmupAccessesPerCore > 0) {
        for (auto &core : cores_) {
            core->beginMeasurement(config_.accessesPerCore);
            core->skipWarmup(config_.warmupAccessesPerCore);
        }
    }

    if (!r.enterSection("stats"))
        return;
    registry_.restore(r);
    if (!r.leaveSection())
        return;

    if (!r.enterSection("vm"))
        return;
    vm_->restore(r);
    if (!r.leaveSection())
        return;

    if (!r.enterSection("llc"))
        return;
    llc_->restore(r);
    if (!r.leaveSection())
        return;

    for (std::size_t c = 0; c < cores_.size(); ++c) {
        if (!r.enterSection("core." + std::to_string(c)))
            return;
        cores_[c]->restore(r);
        if (!r.leaveSection())
            return;
    }

    if (!r.enterSection("org"))
        return;
    org_->restore(r);
    if (!r.leaveSection())
        return;
    if (!r.ok())
        return;

    // Queued mode with transactions mid-flight: re-arm their completion
    // events on the (fresh) kernel queue in original submission order.
    if (org_->inflightCount() > 0) {
        bindEvents();
        org_->rescheduleInflight([this](std::uint32_t c) -> MemClient * {
            assert(c < cores_.size());
            return cores_[c].get();
        });
    }
}

bool
System::saveSnapshot(const std::string &path, std::string *error) const
{
    SnapshotWriter w;
    save(w);
    return w.writeFile(path, error);
}

bool
System::restoreSnapshot(const std::string &path, std::string *error)
{
    SnapshotReader r;
    if (r.openFile(path)) {
        restore(r);
        // A clean restore must consume every section the file carries.
        if (r.ok() && r.sectionCount() != 5 + cores_.size())
            r.fail("system: snapshot carries unconsumed sections");
    }
    if (!r.ok()) {
        if (error != nullptr)
            *error = r.error();
        return false;
    }
    return true;
}

void
RunResult::merge(const RunResult &other)
{
    const auto join = [](std::string &mine, const std::string &theirs) {
        if (mine != theirs && !theirs.empty())
            mine = mine.empty() ? theirs : mine + '+' + theirs;
    };
    join(orgName, other.orgName);
    join(workload, other.workload);

    execTime = std::max(execTime, other.execTime);
    kernelSteps += other.kernelSteps;
    truncated = truncated || other.truncated;
    instructions += other.instructions;
    accesses += other.accesses;
    warmupAccesses += other.warmupAccesses;
    l3Hits += other.l3Hits;
    l3Misses += other.l3Misses;
    stackedBytes += other.stackedBytes;
    offchipBytes += other.offchipBytes;
    storageBytes += other.storageBytes;
    majorFaults += other.majorFaults;
    minorFaults += other.minorFaults;
    servicedStacked += other.servicedStacked;
    servicedOffchip += other.servicedOffchip;
    swaps += other.swaps;
    for (std::size_t c = 0; c < llpCases.size(); ++c)
        llpCases[c] += other.llpCases[c];
    pageMigrations += other.pageMigrations;

    // Re-derive accuracy from the merged tallies: cases 1 and 4 are
    // the correct predictions (LineLocationPredictor::accuracy()).
    std::uint64_t total = 0;
    for (const std::uint64_t c : llpCases)
        total += c;
    llpAccuracy =
        total == 0
            ? 0.0
            : static_cast<double>(llpCases[0] + llpCases[3]) /
                  static_cast<double>(total);
}

RunResult
runWorkload(const SystemConfig &config, OrgKind kind,
            const WorkloadProfile &profile)
{
    System system(config, kind, profile);
    return system.run();
}

RunResult
runMix(const SystemConfig &config, OrgKind kind,
       const std::vector<WorkloadProfile> &profiles)
{
    System system(config, kind, profiles);
    return system.run();
}

} // namespace cameo
