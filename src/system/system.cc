#include "system/system.hh"

#include <cassert>

#include "sim/kernel.hh"
#include "trace/trace_arena.hh"
#include "util/bitops.hh"

namespace cameo
{

namespace
{

std::uint64_t
coreSeed(std::uint64_t base, std::uint32_t core)
{
    return mix64(base + 0x517cc1b727220a95ULL * (core + 1));
}

} // namespace

System::System(const SystemConfig &config, OrgKind kind,
               const WorkloadProfile &profile)
    : System(config, kind, std::vector<WorkloadProfile>{profile})
{
}

System::System(const SystemConfig &config, OrgKind kind,
               const std::vector<WorkloadProfile> &profiles)
    : config_(config), kind_(kind), profiles_(profiles),
      org_(makeOrganization(kind, config.orgConfig()))
{
    assert(org_ != nullptr);
    assert(!profiles_.empty());

    // Arena replay applies when nothing else supplies the stream: the
    // cache records each (profile, params, seed) once and replays it
    // bit-identically for every later run (DESIGN.md §10).
    const bool use_arena = !config_.sourceFactory &&
                           config_.useTraceArena &&
                           TraceArenaCache::instance().enabled();
    // Arena record count covers warmup + measurement, so a core that
    // consumes both never wraps the arena.
    const std::uint64_t stream_records =
        config_.warmupAccessesPerCore + config_.accessesPerCore;

    // Each core's access stream: a synthetic generator by default, an
    // arena replay when enabled, or whatever the configured factory
    // provides (trace replay). Warmup records are skipped here so the
    // core's first fetched record is the first measured one.
    const auto make_source =
        [&](std::uint32_t c) -> std::unique_ptr<AccessSource> {
        const WorkloadProfile &p = profileFor(c);
        const GeneratorParams gp = config_.generatorParamsFor(p);
        const std::uint64_t seed = coreSeed(config_.seed, c);
        std::unique_ptr<AccessSource> source;
        if (config_.sourceFactory) {
            source = config_.sourceFactory(c, p, gp, seed);
        } else if (use_arena) {
            source = TraceArenaCache::instance().source(
                p, gp, seed, stream_records);
        } else {
            source = std::make_unique<SyntheticGenerator>(p, gp, seed);
        }
        if (config_.warmupAccessesPerCore > 0)
            source->skip(config_.warmupAccessesPerCore);
        return source;
    };

    // TLM-Oracle: replay the deterministic sources standalone to build
    // the oracular page-heat profile before any simulation. Footprint
    // hints size both maps up front so the profiling pass never
    // rehashes. With the arena active the per-core histograms are
    // memoized in the cache, so a sweep profiles each stream once
    // instead of once per oracle job.
    if (kind_ == OrgKind::TlmOracle) {
        const auto pages_hint = [&](std::uint32_t c) -> std::size_t {
            const GeneratorParams gp =
                config_.generatorParamsFor(profileFor(c));
            return static_cast<std::size_t>(
                (gp.footprintBytes + gp.hotSetBytes) / kPageBytes + 2);
        };
        std::size_t total_hint = 0;
        for (std::uint32_t c = 0; c < config_.numCores; ++c)
            total_hint += pages_hint(c);
        PageHeatMap heat(total_hint);
        for (std::uint32_t c = 0; c < config_.numCores; ++c) {
            if (use_arena) {
                const WorkloadProfile &p = profileFor(c);
                const auto core_heat =
                    TraceArenaCache::instance().pageHeat(
                        p, config_.generatorParamsFor(p),
                        coreSeed(config_.seed, c), stream_records,
                        config_.warmupAccessesPerCore,
                        config_.accessesPerCore, pages_hint(c));
                for (const auto &[vpage, count] : *core_heat)
                    heat[pageHeatKey(c, vpage)] += count;
            } else {
                const auto source = make_source(c);
                const auto core_heat = profilePageHeat(
                    *source, config_.accessesPerCore, pages_hint(c));
                for (const auto &[vpage, count] : core_heat)
                    heat[pageHeatKey(c, vpage)] += count;
            }
        }
        org_->setPageHeat(std::move(heat));
    }

    vm_ = std::make_unique<VirtualMemory>(org_->visibleBytes(),
                                          config_.pageFaultLatency,
                                          config_.seed ^ 0xF00D);
    vm_->setMapHook([this](std::uint32_t frame, std::uint32_t core,
                           PageAddr vpage) {
        org_->onPageMapped(frame, core, vpage);
    });

    llc_ = std::make_unique<Llc>(config_);

    cores_.reserve(config_.numCores);
    for (std::uint32_t c = 0; c < config_.numCores; ++c) {
        const std::uint32_t mlp =
            std::min(config_.maxMlp, profileFor(c).mlp);
        cores_.push_back(std::make_unique<CpuCore>(
            c, make_source(c), config_.accessesPerCore,
            config_.cyclesPerInstruction, mlp, config_.l3HitStall, *vm_,
            *llc_, *org_));
    }

    org_->registerStats(registry_);
    vm_->registerStats(registry_);
    llc_->registerStats(registry_);
}

RunResult
System::run()
{
    assert(!ran_ && "System::run may be called once");
    ran_ = true;

    SimKernel kernel;
    for (auto &core : cores_)
        kernel.addAgent(core.get());
    // Queued timing: miss completions travel through the kernel's
    // event queue for the duration of the run.
    if (config_.timingMode == TimingMode::Queued)
        org_->bindEventQueue(&kernel.events());
    kernel.run(config_.maxKernelSteps != 0 ? config_.maxKernelSteps
                                           : ~std::uint64_t{0});
    org_->bindEventQueue(nullptr);

    RunResult r;
    r.kernelSteps = kernel.stepsExecuted();
    r.truncated = kernel.hitStepLimit();
    r.orgName = org_->name();
    if (profiles_.size() == 1) {
        r.workload = profiles_[0].name;
        r.category = profiles_[0].category;
    } else {
        r.workload = "mix(";
        for (std::size_t i = 0; i < profiles_.size(); ++i)
            r.workload += (i ? "+" : "") + profiles_[i].name;
        r.workload += ")";
        // A mix is capacity-limited if any member is.
        r.category = WorkloadCategory::LatencyLimited;
        for (const auto &p : profiles_) {
            if (p.category == WorkloadCategory::CapacityLimited)
                r.category = WorkloadCategory::CapacityLimited;
        }
    }

    for (const auto &core : cores_) {
        r.execTime = std::max(r.execTime, core->finishTick());
        r.instructions += core->instructions();
        r.accesses += core->accesses();
    }

    r.l3Hits = llc_->hits();
    r.l3Misses = llc_->misses();

    if (const DramModule *stacked = org_->stackedModule())
        r.stackedBytes = stacked->bytesTransferred();
    r.offchipBytes = org_->offchipModule().bytesTransferred();
    r.storageBytes = vm_->ssd().bytesTransferred();
    r.majorFaults = vm_->majorFaults().value();
    r.minorFaults = vm_->minorFaults().value();

    if (const CameoController *ctrl = org_->cameo()) {
        r.servicedStacked = ctrl->servicedStacked().value();
        r.servicedOffchip = ctrl->servicedOffchip().value();
        r.swaps = ctrl->swaps().value();
        for (int c = 0; c < 5; ++c) {
            r.llpCases[c] = ctrl->predictor().caseCount(
                static_cast<PredictionCase>(c));
        }
        r.llpAccuracy = ctrl->predictor().accuracy();
    }

    if (const Counter *migrations =
            registry_.findCounter("tlm.pageMigrations")) {
        r.pageMigrations = migrations->value();
    }
    return r;
}

RunResult
runWorkload(const SystemConfig &config, OrgKind kind,
            const WorkloadProfile &profile)
{
    System system(config, kind, profile);
    return system.run();
}

RunResult
runMix(const SystemConfig &config, OrgKind kind,
       const std::vector<WorkloadProfile> &profiles)
{
    System system(config, kind, profiles);
    return system.run();
}

} // namespace cameo
