#include "system/llc.hh"

namespace cameo
{

Llc::Llc(const SystemConfig &config)
    : cache_("l3", config.l3Bytes, config.l3Ways, config.l3HitLatency,
             ReplPolicy::Lru, config.seed ^ 0x13)
{
}

double
Llc::missRate() const
{
    const std::uint64_t total = hits() + misses();
    if (total == 0)
        return 0.0;
    return static_cast<double>(misses()) / static_cast<double>(total);
}

} // namespace cameo
