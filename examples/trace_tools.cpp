/**
 * @file
 * trace_tools: record, inspect, and replay binary trace files.
 *
 *   trace_tools record <workload> <out.trc> [count] [raw|packed]
 *       Record a synthetic stream to a trace file (default packed,
 *       the compact version-2 format; raw emits fixed 24-byte
 *       records).
 *   trace_tools info <trace.trc>
 *       Print format, record count, and summary statistics.
 *   trace_tools replay <trace.trc> <org> [accessesPerCore]
 *       Run a simulation where every core replays the trace
 *       (rate mode, staggered start offsets per core). Traces are
 *       mmap'd where the platform allows, so replay is zero-copy.
 *
 * Both formats are documented in src/trace/trace_file.hh; external
 * tracers (Pin, DynamoRIO, gem5 probes) can emit the raw one
 * directly.
 */

#include <cstdlib>
#include <iostream>
#include <set>
#include <string>

#include "system/system.hh"
#include "trace/generator.hh"
#include "trace/trace_file.hh"

namespace
{

using namespace cameo;

int
cmdRecord(int argc, char **argv)
{
    if (argc < 4) {
        std::cerr << "usage: trace_tools record <workload> <out.trc> "
                     "[count] [raw|packed]\n";
        return EXIT_FAILURE;
    }
    const WorkloadProfile *profile = findWorkload(argv[2]);
    if (profile == nullptr) {
        std::cerr << "unknown workload '" << argv[2] << "'\n";
        return EXIT_FAILURE;
    }
    const std::uint64_t count =
        argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 200'000;
    TraceFormat format = TraceFormat::Packed;
    if (argc > 5) {
        const std::string name = argv[5];
        if (name == "raw")
            format = TraceFormat::Raw;
        else if (name != "packed") {
            std::cerr << "unknown format '" << name
                      << "' (raw|packed)\n";
            return EXIT_FAILURE;
        }
    }
    const SystemConfig config = defaultConfig();
    SyntheticGenerator gen(*profile,
                           config.generatorParamsFor(*profile),
                           config.seed);
    const std::uint64_t written =
        recordTrace(gen, argv[3], count, format);
    if (written == 0) {
        std::cerr << "failed to write " << argv[3] << "\n";
        return EXIT_FAILURE;
    }
    std::cout << "wrote " << written << " records to " << argv[3]
              << " ("
              << (format == TraceFormat::Packed ? "packed" : "raw")
              << ")\n";
    return EXIT_SUCCESS;
}

int
cmdInfo(int argc, char **argv)
{
    if (argc < 3) {
        std::cerr << "usage: trace_tools info <trace.trc>\n";
        return EXIT_FAILURE;
    }
    TraceReader reader(argv[2]);
    std::cout << argv[2] << ":\n  format       "
              << (reader.format() == TraceFormat::Packed ? "packed (v2)"
                                                         : "raw (v1)")
              << (reader.zeroCopy() ? ", mmap" : ", loaded") << "\n";
    std::set<PageAddr> pages;
    std::set<InstAddr> pcs;
    std::uint64_t writes = 0, dependent = 0, instructions = 0;
    for (std::uint64_t i = 0; i < reader.size(); ++i) {
        const Access a = reader.next();
        pages.insert(pageOf(a.vaddr));
        pcs.insert(a.pc);
        writes += a.isWrite;
        dependent += a.dependsOnPrev;
        instructions += a.gapInstructions;
    }
    std::cout << "  records      " << reader.size()
              << "\n  instructions " << instructions
              << "\n  footprint    " << pages.size() << " pages ("
              << (pages.size() * kPageBytes >> 10) << " KB)"
              << "\n  distinct PCs " << pcs.size() << "\n  writes       "
              << writes << " (" << 100.0 * writes / reader.size()
              << "%)\n  dependent    " << dependent << " ("
              << 100.0 * dependent / reader.size() << "%)\n";
    return EXIT_SUCCESS;
}

OrgKind
parseOrg(const std::string &s)
{
    if (s == "baseline")
        return OrgKind::Baseline;
    if (s == "cache")
        return OrgKind::AlloyCache;
    if (s == "tlm-static")
        return OrgKind::TlmStatic;
    if (s == "tlm-dynamic")
        return OrgKind::TlmDynamic;
    if (s == "doubleuse")
        return OrgKind::DoubleUse;
    return OrgKind::Cameo;
}

int
cmdReplay(int argc, char **argv)
{
    if (argc < 4) {
        std::cerr << "usage: trace_tools replay <trace.trc> <org> "
                     "[accessesPerCore]\n";
        return EXIT_FAILURE;
    }
    const std::string path = argv[2];
    SystemConfig config = defaultConfig();
    if (argc > 4)
        config.accessesPerCore = std::strtoull(argv[4], nullptr, 10);

    // Every core replays the same file, staggered so they do not move
    // in lockstep (rate-mode methodology).
    config.sourceFactory =
        [&path](std::uint32_t core, const WorkloadProfile &,
                const GeneratorParams &, std::uint64_t)
        -> std::unique_ptr<AccessSource> {
        auto reader = std::make_unique<TraceReader>(path);
        const std::uint64_t stagger =
            reader->size() / 8 * (core % 8);
        // O(1) for raw traces, checkpoint-bounded for packed ones —
        // no per-record discard loop.
        reader->skip(stagger);
        return reader;
    };

    // The profile only labels the run when replaying.
    const WorkloadProfile *profile = findWorkload("milc");
    const RunResult base =
        runWorkload(config, OrgKind::Baseline, *profile);
    const RunResult r = runWorkload(config, parseOrg(argv[3]), *profile);
    std::cout << "replayed " << path << " on " << r.orgName
              << ": execTime=" << r.execTime << " cycles, speedup vs "
              << "baseline=" << static_cast<double>(base.execTime) /
                                    static_cast<double>(r.execTime)
              << ", MPKI=" << r.mpki() << "\n";
    return EXIT_SUCCESS;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string cmd = argc > 1 ? argv[1] : "";
    try {
        if (cmd == "record")
            return cmdRecord(argc, argv);
        if (cmd == "info")
            return cmdInfo(argc, argv);
        if (cmd == "replay")
            return cmdReplay(argc, argv);
    } catch (const std::exception &e) {
        std::cerr << "error: " << e.what() << "\n";
        return EXIT_FAILURE;
    }
    std::cerr << "usage: trace_tools {record|info|replay} ...\n";
    return EXIT_FAILURE;
}
