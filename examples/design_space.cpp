/**
 * @file
 * design_space: an ablation tour of CAMEO's design choices beyond the
 * paper's published sweeps.
 *
 *  1. LLT design x predictor matrix (the cross product of Figures 9
 *     and 12) on one workload;
 *  2. stacked:total capacity ratio sweep — the paper fixes stacked at
 *     25% of memory ("a quarter or even half"); this shows how the
 *     congruence-group size K tracks the ratio and what it does to
 *     performance.
 *
 *   ./build/examples/design_space [workload] [accessesPerCore]
 */

#include <cstdlib>
#include <iostream>

#include "stats/table.hh"
#include "system/system.hh"
#include "trace/workloads.hh"
#include "util/math.hh"

namespace
{

using namespace cameo;

void
lltPredictorMatrix(const SystemConfig &base, const WorkloadProfile &wl)
{
    const RunResult baseline =
        runWorkload(base, OrgKind::Baseline, wl);

    TextTable table("LLT design x predictor (speedup over baseline)");
    table.setHeader({"LLT design", "SAM", "LLP", "Perfect"});
    for (const LltKind llt :
         {LltKind::Ideal, LltKind::Embedded, LltKind::CoLocated}) {
        std::vector<std::string> row{lltKindName(llt)};
        for (const PredictorKind pred :
             {PredictorKind::Sam, PredictorKind::Llp,
              PredictorKind::Perfect}) {
            SystemConfig c = base;
            c.lltKind = llt;
            c.predictorKind = pred;
            const RunResult r = runWorkload(c, OrgKind::Cameo, wl);
            row.push_back(TextTable::cell(
                speedup(static_cast<double>(baseline.execTime),
                        static_cast<double>(r.execTime))));
        }
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    std::cout << "\n";
}

void
capacityRatioSweep(const SystemConfig &base, const WorkloadProfile &wl)
{
    TextTable table("Stacked fraction of total memory (group size K = "
                    "total/stacked)");
    table.setHeader({"Stacked MB", "Off-chip MB", "K", "Speedup",
                     "StackedServiced%", "LLP acc%"});
    // Keep total memory constant; move the stacked:off-chip split.
    const std::uint64_t total = base.totalMemoryBytes();
    for (const std::uint64_t stacked_mb : {2ull, 4ull, 8ull, 16ull}) {
        SystemConfig c = base;
        c.stackedBytes = stacked_mb << 20;
        c.offchipBytes = total - c.stackedBytes;
        if (c.offchipBytes % c.stackedBytes != 0)
            continue; // group math needs an integer K
        const RunResult baseline =
            runWorkload(c, OrgKind::Baseline, wl);
        const RunResult r = runWorkload(c, OrgKind::Cameo, wl);
        table.addRow(
            {TextTable::cell(stacked_mb),
             TextTable::cell(c.offchipBytes >> 20),
             TextTable::cell(total / c.stackedBytes),
             TextTable::cell(
                 speedup(static_cast<double>(baseline.execTime),
                         static_cast<double>(r.execTime))),
             TextTable::cell(100.0 * r.stackedServiceFraction(), 1),
             TextTable::cell(100.0 * r.llpAccuracy, 1)});
    }
    table.print(std::cout);
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "soplex";
    const WorkloadProfile *profile = findWorkload(name);
    if (profile == nullptr) {
        std::cerr << "unknown workload '" << name << "'\n";
        return EXIT_FAILURE;
    }
    SystemConfig config = defaultConfig();
    config.accessesPerCore =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 100'000;

    std::cout << "CAMEO design-space ablations on " << profile->name
              << "\n\n";
    lltPredictorMatrix(config, *profile);
    capacityRatioSweep(config, *profile);
    return EXIT_SUCCESS;
}
