/**
 * @file
 * cameo_sim: the command-line entry point for one-off simulations —
 * the tool a downstream user reaches for first.
 *
 *   cameo_sim --org=cameo --workload=milc
 *   cameo_sim --org=cache --workload=mcf --accesses=100000 --json
 *   cameo_sim --org=cameo --llt=embedded --predictor=sam --dump-stats
 *   cameo_sim --list
 *
 * Flags:
 *   --org         any name from --list-orgs, matched case-
 *                 insensitively: baseline|cache|tlm-static|
 *                 tlm-dynamic|tlm-freq|tlm-oracle|doubleuse|cameo|
 *                 cameo-freq|banshee                      (default cameo)
 *   --workload    Table II benchmark name                  (default milc)
 *   --accesses    L3-level accesses per core               (default 200000)
 *   --max-steps   kernel step limit, 0 = unlimited         (default 0)
 *   --cores       number of cores                          (default 8)
 *   --stacked-mb  stacked DRAM capacity in MB              (default 8)
 *   --offchip-mb  off-chip DRAM capacity in MB             (default 24)
 *   --seed        RNG seed                                 (default 42)
 *   --llt         ideal|embedded|colocated                 (default colocated)
 *   --predictor   sam|llp|perfect                          (default llp)
 *   --llp-entries LLR entries per core                     (default 256)
 *   --timing      blocking|queued memory pipeline           (default blocking)
 *   --warmup      accesses per core consumed before measurement, in
 *                 addition to --accesses; what they do is set by
 *                 --fidelity. Must be < --accesses           (default 0)
 *   --fidelity    what the warmup prefix does (DESIGN.md §13):
 *                 skip       fast-forward the trace cursor only
 *                 functional replay through the functional access path
 *                            (exact architectural state, no timing),
 *                            then switch to detailed measurement
 *                 detailed   full-timing warmup, timing reset at the
 *                            switch (the slow reference)
 *                                                           (default skip)
 *   --switch-at   carve the first N accesses per core out of --accesses
 *                 as warmup (so the total trace length is unchanged) and
 *                 switch fidelity there; implies --fidelity=functional
 *                 unless --fidelity says otherwise. Mutually exclusive
 *                 with --warmup; must leave at least one measured
 *                 access                                     (default 0 = off)
 *   --checkpoint-at  pause after this many aggregate accesses (summed
 *                 over cores), snapshot the full simulation state to
 *                 --checkpoint-out, then continue to completion
 *                                                           (default 0 = off)
 *   --checkpoint-out snapshot path for --checkpoint-at (default cameo.snap)
 *   --restore     restore a snapshot before running: the run resumes
 *                 where the checkpoint paused and finishes bit-identical
 *                 to the uninterrupted run. The configuration must match
 *                 the snapshot's (--accesses may be larger, enabling
 *                 warm-started extensions; --warmup must be the value
 *                 the snapshotted run used — the restored trace cursor
 *                 already sits past warmup + processed records)
 *   --refresh     model DRAM refresh (tREFI 7.8us, tRFC 350ns)
 *   --baseline    also run the baseline and report speedup
 *   --jobs        sweep-engine worker threads (0 = auto; also
 *                 CAMEO_BENCH_JOBS). With --baseline the two runs
 *                 execute concurrently.
 *   --trace-cache-dir  persist recorded access streams as packed trace
 *                 files in this directory and mmap them back on later
 *                 runs (also CAMEO_TRACE_CACHE_DIR). Implies the trace
 *                 arena. Stale files are detected by an embedded key
 *                 and re-recorded, never silently replayed.
 *   --no-arena    never route streams through the trace-arena cache
 *                 (it is used automatically when this invocation would
 *                 generate the same stream twice, i.e. --baseline)
 *   --dump-stats  print the full statistics registry
 *   --json        machine-readable stats (implies --dump-stats)
 *   --csv         CSV stats with percentiles (implies --dump-stats)
 *   --list        list workloads and exit
 *   --list-orgs   list organizations with their composed mapping and
 *                 placement policies (DESIGN.md §14) and exit
 */

#include <iostream>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "exp/sweep.hh"
#include "system/system.hh"
#include "trace/trace_arena.hh"
#include "trace/workloads.hh"
#include "util/cli.hh"

namespace
{

using namespace cameo;

} // namespace

int
main(int argc, char **argv)
{
    const CliParser cli(argc, argv);

    if (cli.getBool("list")) {
        for (const auto &wl : allWorkloads()) {
            std::cout << wl.name << " (" << categoryName(wl.category)
                      << ", " << wl.paperFootprintGb << " GB, MPKI "
                      << wl.paperMpki << ")\n";
        }
        return EXIT_SUCCESS;
    }

    if (cli.getBool("list-orgs")) {
        for (const OrgKind k : allOrgKinds()) {
            const OrgComposition comp = orgComposition(k);
            std::cout << orgKindName(k) << " (mapping: " << comp.mapping
                      << ", placement: " << comp.placement << ")\n";
        }
        return EXIT_SUCCESS;
    }

    const std::string org_name = cli.getString("org", "cameo");
    const std::optional<OrgKind> parsed = orgKindFromName(org_name);
    if (!parsed) {
        std::cerr << "unknown --org \"" << org_name << "\"; valid names:";
        for (const OrgKind k : allOrgKinds())
            std::cerr << ' ' << orgKindName(k);
        std::cerr << " (see --list-orgs)\n";
        return EXIT_FAILURE;
    }
    const OrgKind kind = *parsed;
    const WorkloadProfile *profile =
        findWorkload(cli.getString("workload", "milc"));
    if (profile == nullptr) {
        std::cerr << "unknown --workload (try --list)\n";
        return EXIT_FAILURE;
    }

    SystemConfig config = defaultConfig();
    config.accessesPerCore = cli.getUint("accesses", 200'000);
    config.maxKernelSteps = cli.getUint("max-steps", 0);
    config.numCores =
        static_cast<std::uint32_t>(cli.getUint("cores", config.numCores));
    config.stackedBytes = cli.getUint("stacked-mb", 8) << 20;
    config.offchipBytes = cli.getUint("offchip-mb", 24) << 20;
    config.seed = cli.getUint("seed", config.seed);
    config.llpTableEntries = static_cast<std::uint32_t>(
        cli.getUint("llp-entries", config.llpTableEntries));

    const std::string llt = cli.getString("llt", "colocated");
    if (llt == "ideal")
        config.lltKind = LltKind::Ideal;
    else if (llt == "embedded")
        config.lltKind = LltKind::Embedded;
    else if (llt == "colocated")
        config.lltKind = LltKind::CoLocated;
    else {
        std::cerr << "unknown --llt\n";
        return EXIT_FAILURE;
    }

    const std::string pred = cli.getString("predictor", "llp");
    if (pred == "sam")
        config.predictorKind = PredictorKind::Sam;
    else if (pred == "llp")
        config.predictorKind = PredictorKind::Llp;
    else if (pred == "perfect")
        config.predictorKind = PredictorKind::Perfect;
    else {
        std::cerr << "unknown --predictor\n";
        return EXIT_FAILURE;
    }

    const std::string timing = cli.getString("timing", "blocking");
    if (timing == "blocking")
        config.timingMode = TimingMode::Blocking;
    else if (timing == "queued")
        config.timingMode = TimingMode::Queued;
    else {
        std::cerr << "unknown --timing (blocking|queued)\n";
        return EXIT_FAILURE;
    }

    if (cli.getBool("refresh")) {
        // DDR3-class refresh: tREFI 7.8us, tRFC ~350ns in bus cycles.
        config.offchip.tRefi = 6240; // 7.8us @ 800MHz
        config.offchip.tRfc = 280;   // 350ns @ 800MHz
        config.stacked.tRefi = 12480; // 7.8us @ 1.6GHz
        config.stacked.tRfc = 560;
    }

    config.warmupAccessesPerCore = cli.getUint("warmup", 0);
    if (config.warmupAccessesPerCore != 0 &&
        config.warmupAccessesPerCore >= config.accessesPerCore) {
        std::cerr << "error: --warmup=" << config.warmupAccessesPerCore
                  << " must be smaller than --accesses="
                  << config.accessesPerCore
                  << " (warmup may not swallow the measured region)\n";
        return EXIT_FAILURE;
    }

    const std::string fidelity = cli.getString("fidelity", "");
    if (!fidelity.empty()) {
        if (fidelity == "skip")
            config.warmupPolicy = WarmupPolicy::Skip;
        else if (fidelity == "functional")
            config.warmupPolicy = WarmupPolicy::Functional;
        else if (fidelity == "detailed")
            config.warmupPolicy = WarmupPolicy::Detailed;
        else {
            std::cerr << "error: unknown --fidelity '" << fidelity
                      << "' (skip|functional|detailed)\n";
            return EXIT_FAILURE;
        }
    }

    const std::uint64_t switch_at = cli.getUint("switch-at", 0);
    if (switch_at != 0) {
        if (config.warmupAccessesPerCore != 0) {
            std::cerr << "error: --switch-at and --warmup are mutually "
                         "exclusive (--switch-at carves the warmup out "
                         "of --accesses, --warmup prepends records)\n";
            return EXIT_FAILURE;
        }
        if (switch_at >= config.accessesPerCore) {
            std::cerr << "error: --switch-at=" << switch_at
                      << " is past the end of the run (--accesses="
                      << config.accessesPerCore
                      << "); it must leave at least one measured "
                         "access\n";
            return EXIT_FAILURE;
        }
        config.warmupAccessesPerCore = switch_at;
        config.accessesPerCore -= switch_at;
        if (fidelity.empty())
            config.warmupPolicy = WarmupPolicy::Functional;
    }

    const std::uint64_t checkpoint_at = cli.getUint("checkpoint-at", 0);
    const std::string checkpoint_out =
        cli.getString("checkpoint-out", "cameo.snap");
    const std::string restore_path = cli.getString("restore", "");

    const bool want_baseline = cli.getBool("baseline");

    // Arena policy: replaying from the arena only pays off when the
    // same stream is consumed more than once — a --baseline comparison
    // does, and a persistent cache directory makes every later
    // invocation a consumer too.
    const std::string cache_dir = cli.getString("trace-cache-dir", "");
    if (!cache_dir.empty())
        TraceArenaCache::instance().setCacheDir(cache_dir);
    config.useTraceArena =
        (want_baseline || !cache_dir.empty()) && !cli.getBool("no-arena");

    const bool json = cli.getBool("json");
    const bool csv = cli.getBool("csv");
    const bool dump = cli.getBool("dump-stats") || json || csv;
    const unsigned jobs =
        static_cast<unsigned>(cli.getUint("jobs", want_baseline ? 0 : 1));

    for (const std::string &flag : cli.unknownFlags())
        std::cerr << "warning: unknown flag --" << flag << "\n";
    for (const std::string &err : cli.errors())
        std::cerr << "error: " << err << "\n";
    if (!cli.errors().empty())
        return EXIT_FAILURE;

    // Both runs go through the sweep engine; with --baseline and
    // --jobs >= 2 (or auto) they execute concurrently. The System of
    // the main run outlives the sweep so --dump-stats can read its
    // registry.
    std::unique_ptr<System> main_system;
    std::vector<SweepJob> sweep_jobs;
    if (want_baseline) {
        sweep_jobs.push_back({"baseline", [&config, profile] {
                                  return runWorkload(
                                      config, OrgKind::Baseline, *profile);
                              }});
    }
    sweep_jobs.push_back(
        {cli.getString("org", "cameo"), [&] {
             main_system = std::make_unique<System>(config, kind, *profile);
             if (!restore_path.empty()) {
                 std::string err;
                 if (!main_system->restoreSnapshot(restore_path, &err))
                     throw std::runtime_error("--restore failed: " + err);
             }
             if (checkpoint_at != 0) {
                 main_system->runUntil(checkpoint_at);
                 std::string err;
                 if (!main_system->saveSnapshot(checkpoint_out, &err))
                     throw std::runtime_error("--checkpoint-out failed: " +
                                              err);
                 std::cerr << "checkpoint written to " << checkpoint_out
                           << " at " << main_system->totalAccesses()
                           << " accesses\n";
             }
             return main_system->run();
         }});

    SweepOptions sweep_options;
    sweep_options.jobs = jobs;
    const std::vector<RunResult> sweep_results =
        SweepRunner(sweep_options).run(std::move(sweep_jobs));

    const RunResult base =
        want_baseline ? sweep_results.front() : RunResult{};
    const RunResult r = sweep_results.back();
    System &system = *main_system;

    if (r.truncated) {
        std::cerr << "warning: run truncated at --max-steps="
                  << config.maxKernelSteps << " (" << r.kernelSteps
                  << " steps executed); execTime and all statistics "
                     "understate the full run\n";
    }

    if (json) {
        system.stats().dumpJson(std::cout);
    } else if (csv) {
        system.stats().dumpCsv(std::cout);
    } else {
        std::cout << r.orgName << " / " << r.workload << ": execTime="
                  << r.execTime << " cycles, MPKI=" << r.mpki()
                  << ", majorFaults=" << r.majorFaults;
        if (r.servicedStacked + r.servicedOffchip > 0) {
            std::cout << ", stackedService="
                      << 100.0 * r.stackedServiceFraction()
                      << "%, llpAccuracy=" << 100.0 * r.llpAccuracy
                      << "%";
        }
        if (want_baseline) {
            std::cout << ", speedup="
                      << static_cast<double>(base.execTime) /
                             static_cast<double>(r.execTime);
        }
        std::cout << "\n";
        if (dump)
            system.stats().dump(std::cout);
    }
    return EXIT_SUCCESS;
}
