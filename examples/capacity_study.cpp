/**
 * @file
 * capacity_study: the paper's core capacity argument on one workload.
 *
 * Runs a Capacity-Limited workload (default GemsFDTD) across the
 * designs and shows where the time goes: page-fault counts, SSD
 * traffic, and the OS-visible memory each organization exposes. This
 * is the "stacked DRAM must count toward main memory" story of
 * Sections I-II in one screen.
 *
 *   ./build/examples/capacity_study [workload] [accessesPerCore]
 */

#include <cstdlib>
#include <iostream>

#include "stats/table.hh"
#include "system/system.hh"
#include "trace/workloads.hh"
#include "util/math.hh"

int
main(int argc, char **argv)
{
    using namespace cameo;

    const std::string name = argc > 1 ? argv[1] : "GemsFDTD";
    const WorkloadProfile *profile = findWorkload(name);
    if (profile == nullptr) {
        std::cerr << "unknown workload '" << name << "'\n";
        return EXIT_FAILURE;
    }

    SystemConfig config = defaultConfig();
    config.accessesPerCore =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 150'000;

    std::cout << "Capacity study: " << profile->name << " ("
              << categoryName(profile->category) << "-limited), paper "
              << "footprint " << profile->paperFootprintGb
              << " GB scaled to "
              << (profile->paperFootprintGb * (1ull << 30) /
                  config.scaleFactor / (1 << 20))
              << " MB against " << (config.offchipBytes >> 20)
              << " MB off-chip + " << (config.stackedBytes >> 20)
              << " MB stacked DRAM\n\n";

    const RunResult base = runWorkload(config, OrgKind::Baseline, *profile);

    TextTable table("Where the time goes: OS-visible capacity drives "
                    "page faults");
    table.setHeader({"Design", "Visible MB", "MajorFaults", "SSD MB",
                     "Speedup"});
    const auto add = [&](OrgKind kind) {
        System system(config, kind, *profile);
        const std::uint64_t visible = system.org().visibleBytes();
        const RunResult r = system.run();
        table.addRow({r.orgName, TextTable::cell(visible >> 20),
                      TextTable::cell(r.majorFaults),
                      TextTable::cell(
                          static_cast<double>(r.storageBytes) / (1 << 20),
                          1),
                      TextTable::cell(speedup(
                          static_cast<double>(base.execTime),
                          static_cast<double>(r.execTime)))});
    };
    add(OrgKind::Baseline);
    add(OrgKind::AlloyCache);
    add(OrgKind::TlmStatic);
    add(OrgKind::TlmDynamic);
    add(OrgKind::Cameo);
    add(OrgKind::DoubleUse);
    table.print(std::cout);

    std::cout << "\nReading: the hardware cache leaves the OS with only "
                 "the off-chip capacity, so Capacity-Limited workloads "
                 "keep faulting; TLM and CAMEO add the stacked DRAM to "
                 "the address space and the fault time collapses. CAMEO "
                 "additionally manages lines like a cache, which is why "
                 "it tracks DoubleUse.\n";
    return EXIT_SUCCESS;
}
