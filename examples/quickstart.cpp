/**
 * @file
 * Quickstart: simulate one workload on the three headline memory
 * organizations (hardware cache, two-level memory, CAMEO) and print
 * their speedups over the no-stacked-DRAM baseline.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart [workload] [accessesPerCore]
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "stats/table.hh"
#include "exp/experiment.hh"
#include "system/system.hh"
#include "trace/workloads.hh"
#include "util/math.hh"

int
main(int argc, char **argv)
{
    using namespace cameo;

    const std::string workload_name = argc > 1 ? argv[1] : "milc";
    const WorkloadProfile *profile = findWorkload(workload_name);
    if (profile == nullptr) {
        std::cerr << "unknown workload '" << workload_name
                  << "'; available:";
        for (const auto &w : allWorkloads())
            std::cerr << " " << w.name;
        std::cerr << "\n";
        return EXIT_FAILURE;
    }

    SystemConfig config = defaultConfig();
    if (argc > 2)
        config.accessesPerCore = std::strtoull(argv[2], nullptr, 10);

    std::cout << "CAMEO quickstart: workload=" << profile->name
              << " (" << categoryName(profile->category) << "-limited), "
              << config.numCores << " cores, stacked="
              << (config.stackedBytes >> 20) << "MB, off-chip="
              << (config.offchipBytes >> 20) << "MB, "
              << config.accessesPerCore << " accesses/core\n\n";

    const RunResult base =
        runWorkload(config, OrgKind::Baseline, *profile);

    TextTable table("Speedup over baseline (no stacked DRAM)");
    table.setHeader({"Design", "ExecTime(cycles)", "Speedup", "MPKI",
                     "MajorFaults"});
    const auto add = [&](const RunResult &r) {
        table.addRow({r.orgName, TextTable::cell(r.execTime),
                      TextTable::cell(speedup(
                          static_cast<double>(base.execTime),
                          static_cast<double>(r.execTime))),
                      TextTable::cell(r.mpki()),
                      TextTable::cell(r.majorFaults)});
    };

    add(base);
    add(runWorkload(config, OrgKind::AlloyCache, *profile));
    add(runWorkload(config, OrgKind::TlmStatic, *profile));
    add(runWorkload(config, OrgKind::TlmDynamic, *profile));
    const RunResult cameo_run =
        runWorkload(config, OrgKind::Cameo, *profile);
    add(cameo_run);
    add(runWorkload(config, OrgKind::DoubleUse, *profile));
    table.print(std::cout);

    std::cout << "\nCAMEO details: " << cameo_run.servicedStacked
              << " accesses serviced by stacked DRAM, "
              << cameo_run.servicedOffchip << " by off-chip, "
              << cameo_run.swaps << " line swaps, LLP accuracy "
              << TextTable::cell(100.0 * cameo_run.llpAccuracy, 1)
              << "%\n";
    return EXIT_SUCCESS;
}
