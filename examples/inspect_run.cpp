/**
 * @file
 * inspect_run: run one (organization, workload) pair and dump the full
 * statistics registry — the debugging workhorse for calibrating the
 * simulator. Also prints derived quantities (hit rates, average
 * latencies, bandwidth) that the registry alone does not show.
 */

#include <iostream>
#include <string>

#include "system/system.hh"
#include "trace/workloads.hh"

namespace
{

cameo::OrgKind
parseOrg(const std::string &s)
{
    using cameo::OrgKind;
    if (s == "baseline")
        return OrgKind::Baseline;
    if (s == "cache")
        return OrgKind::AlloyCache;
    if (s == "tlm-static")
        return OrgKind::TlmStatic;
    if (s == "tlm-dynamic")
        return OrgKind::TlmDynamic;
    if (s == "tlm-freq")
        return OrgKind::TlmFreq;
    if (s == "tlm-oracle")
        return OrgKind::TlmOracle;
    if (s == "doubleuse")
        return OrgKind::DoubleUse;
    return OrgKind::Cameo;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace cameo;

    const std::string org_name = argc > 1 ? argv[1] : "cameo";
    const std::string workload_name = argc > 2 ? argv[2] : "milc";
    const WorkloadProfile *profile = findWorkload(workload_name);
    if (profile == nullptr) {
        std::cerr << "unknown workload '" << workload_name << "'\n";
        return 1;
    }

    SystemConfig config = defaultConfig();
    if (argc > 3)
        config.accessesPerCore = std::strtoull(argv[3], nullptr, 10);

    // CAMEO variants: "cameo-sam", "cameo-perfect", "cameo-ideal",
    // "cameo-embedded" select predictor / LLT design.
    if (org_name == "cameo-sam")
        config.predictorKind = PredictorKind::Sam;
    else if (org_name == "cameo-perfect")
        config.predictorKind = PredictorKind::Perfect;
    else if (org_name == "cameo-ideal")
        config.lltKind = LltKind::Ideal;
    else if (org_name == "cameo-embedded")
        config.lltKind = LltKind::Embedded;

    System system(config, parseOrg(org_name), *profile);
    const RunResult r = system.run();

    std::cout << "org=" << r.orgName << " workload=" << r.workload
              << " execTime=" << r.execTime << " cycles\n"
              << "accesses=" << r.accesses << " instr=" << r.instructions
              << " MPKI=" << r.mpki() << "\n"
              << "cycles/access="
              << static_cast<double>(r.execTime) *
                     config.numCores / static_cast<double>(r.accesses)
              << " (per-core trace position)\n"
              << "stackedBytes=" << r.stackedBytes
              << " offchipBytes=" << r.offchipBytes
              << " storageBytes=" << r.storageBytes << "\n"
              << "majorFaults=" << r.majorFaults
              << " minorFaults=" << r.minorFaults << "\n";
    if (r.servicedStacked + r.servicedOffchip > 0) {
        std::cout << "cameo stackedServiceFraction="
                  << r.stackedServiceFraction()
                  << " llpAccuracy=" << r.llpAccuracy << " cases=[";
        for (int i = 0; i < 5; ++i)
            std::cout << r.llpCases[i] << (i < 4 ? "," : "]\n");
    }
    std::cout << "\n--- full registry ---\n";
    system.stats().dump(std::cout);

    // Latency histograms (when the distribution has buckets).
    for (const Distribution *d : system.stats().distributions()) {
        if (d->buckets().empty() || d->count() == 0)
            continue;
        std::cout << "histogram " << d->name() << " (bucket "
                  << d->bucketWidth() << "):";
        for (std::size_t i = 0; i < d->buckets().size(); ++i) {
            if (d->buckets()[i])
                std::cout << " [" << i * d->bucketWidth() << "]="
                          << d->buckets()[i];
        }
        std::cout << " overflow=" << d->overflow() << "\n";
    }
    return 0;
}
