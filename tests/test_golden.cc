/**
 * @file
 * Golden-stats regression test (Blocking timing): simulates a fixed
 * 2-workload x {Baseline, Cache, CAMEO} matrix at a short trace length
 * and compares every tracked statistic (execution time, module byte
 * counters, LLP accuracy, ...) against the checked-in reference JSON
 * (tests/golden/golden_stats.json). Any drift fails with a readable
 * per-stat diff naming the run, the stat, and both values. This is the
 * bit-identity gate for the transaction pipeline: Blocking timing must
 * keep these numbers exactly where the pre-pipeline simulator put them.
 *
 * The matrix executes on the parallel sweep engine, so a pass also
 * certifies that golden values are independent of the worker count.
 *
 * Regenerate the reference after an *intentional* behaviour change:
 *
 *     CAMEO_UPDATE_GOLDEN=1 ./build/tests/test_golden
 *
 * and commit the rewritten JSON together with the change that moved
 * the numbers.
 */

#include <gtest/gtest.h>

#include "golden_common.hh"

#ifndef CAMEO_GOLDEN_STATS_PATH
#error "CAMEO_GOLDEN_STATS_PATH must be defined by the build"
#endif

namespace cameo
{
namespace
{

/** The pinned golden matrix: short traces, default seed. */
SystemConfig
goldenConfig()
{
    SystemConfig config = defaultConfig();
    config.accessesPerCore = 20'000;
    return config;
}

TEST(GoldenStatsTest, MatrixMatchesCheckedInReference)
{
    golden::compareAgainstReference(
        golden::simulateGoldenMatrix(goldenConfig()),
        CAMEO_GOLDEN_STATS_PATH);
}

TEST(GoldenStatsTest, ReferenceCoversTheFullMatrix)
{
    golden::expectFullCoverage(CAMEO_GOLDEN_STATS_PATH);
}

} // namespace
} // namespace cameo
