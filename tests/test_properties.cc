/**
 * @file
 * Property-style tests: invariants that must hold under randomized
 * operation sequences, swept over parameter spaces with
 * INSTANTIATE_TEST_SUITE_P.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/cameo_controller.hh"
#include "core/congruence_group.hh"
#include "core/line_location_table.hh"
#include "orgs/tlm_dynamic.hh"
#include "system/config.hh"
#include "system/system.hh"
#include "util/rng.hh"
#include "vm/virtual_memory.hh"

namespace cameo
{
namespace
{

/** LLT permutation invariant across group sizes. */
class LltPropertyTest : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(LltPropertyTest, RandomSwapSequencesPreservePermutation)
{
    const std::uint32_t k = GetParam();
    LineLocationTable llt(128, k);
    Rng rng(k * 7 + 1);
    for (int i = 0; i < 50000; ++i) {
        const std::uint64_t g = rng.next(128);
        llt.swapSlots(g, static_cast<std::uint32_t>(rng.next(k)),
                      static_cast<std::uint32_t>(rng.next(k)));
        if (i % 977 == 0) {
            for (std::uint64_t gg = 0; gg < 128; ++gg)
                ASSERT_TRUE(llt.verifyGroup(gg));
        }
    }
    // slotAt is the exact inverse of locationOf everywhere.
    for (std::uint64_t g = 0; g < 128; ++g) {
        for (std::uint32_t s = 0; s < k; ++s)
            ASSERT_EQ(llt.slotAt(g, llt.locationOf(g, s)), s);
    }
}

INSTANTIATE_TEST_SUITE_P(GroupSizes, LltPropertyTest,
                         ::testing::Values(2u, 4u, 8u, 16u));

/** Congruence-group round trip across geometries. */
class CongruencePropertyTest
    : public ::testing::TestWithParam<std::pair<std::uint64_t,
                                                std::uint64_t>>
{
};

TEST_P(CongruencePropertyTest, RoundTripAndBounds)
{
    const auto [stacked, k] = GetParam();
    CongruenceGroups cg(stacked, stacked * k);
    Rng rng(stacked + k);
    for (int i = 0; i < 20000; ++i) {
        const LineAddr line = rng.next(cg.totalLines());
        const std::uint64_t g = cg.groupOf(line);
        const std::uint32_t s = cg.slotOf(line);
        ASSERT_LT(g, cg.numGroups());
        ASSERT_LT(s, cg.groupSize());
        ASSERT_EQ(cg.lineOf(g, s), line);
        if (s > 0) {
            const std::uint64_t off = cg.offchipLineOf(g, s);
            ASSERT_LT(off, (k - 1) * stacked);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CongruencePropertyTest,
    ::testing::Values(std::pair<std::uint64_t, std::uint64_t>{1 << 10, 2},
                      std::pair<std::uint64_t, std::uint64_t>{1 << 10, 4},
                      std::pair<std::uint64_t, std::uint64_t>{1 << 14, 4},
                      std::pair<std::uint64_t, std::uint64_t>{1 << 12,
                                                              8}));

TEST(VmPropertyTest, NoFrameEverDoubleMapped)
{
    VirtualMemory vm(32 * kPageBytes, 100000, 5);
    Rng rng(9);
    for (int i = 0; i < 50000; ++i) {
        vm.translate(i * 10,
                     static_cast<std::uint32_t>(rng.next(4)),
                     rng.next(256), rng.chance(0.3));
        if (i % 1000 == 0) {
            // Every resident (core, vpage) maps to a distinct frame
            // whose allocator owner matches.
            std::set<std::uint32_t> frames;
            for (std::uint32_t core = 0; core < 4; ++core) {
                for (PageAddr vp = 0; vp < 256; ++vp) {
                    const auto f = vm.pageTable().lookup(core, vp);
                    if (!f)
                        continue;
                    ASSERT_TRUE(frames.insert(*f).second)
                        << "frame " << *f << " double-mapped";
                    const auto owner = vm.allocator().ownerOf(*f);
                    ASSERT_TRUE(owner.has_value());
                    ASSERT_EQ(owner->core, core);
                    ASSERT_EQ(owner->vpage, vp);
                }
            }
        }
    }
}

TEST(VmPropertyTest, ResidentPagesNeverExceedFrames)
{
    VirtualMemory vm(16 * kPageBytes, 100000, 6);
    Rng rng(10);
    for (int i = 0; i < 20000; ++i) {
        vm.translate(i, 0, rng.next(1000), false);
        ASSERT_LE(vm.pageTable().residentPages(), 16u);
    }
}

TEST(TlmPropertyTest, RemapStaysBijective)
{
    OrgConfig c;
    c.stackedBytes = 256 << 10;
    c.offchipBytes = 768 << 10;
    c.migrate.migrateThreshold = 1;
    TlmDynamicOrg org(c);
    Rng rng(11);
    const std::uint64_t lines = org.visibleBytes() / kLineBytes;
    Tick now = 0;
    for (int i = 0; i < 30000; ++i) {
        org.access(now, rng.next(lines), rng.chance(0.3), 0x400, 0);
        now += 20;
    }
    // phys -> device must be a bijection.
    std::set<std::uint64_t> devices;
    for (PageAddr p = 0; p < org.totalPages(); ++p)
        ASSERT_TRUE(devices.insert(org.devicePageOfPublic(p)).second);
    EXPECT_EQ(devices.size(), org.totalPages());
    EXPECT_EQ(*devices.rbegin(), org.totalPages() - 1);
}

TEST(CameoPropertyTest, EveryLineRemainsReachable)
{
    // After heavy random traffic with swapping, every OS-physical line
    // must still resolve to exactly one device location (the LLT
    // permutation guarantees it; this exercises the full controller).
    DramTimings st = stackedTimings();
    st.linesPerRow = LeadLayout::kLeadsPerRow;
    DramModule stacked("p.stk", st, 256 << 10);
    DramModule offchip("p.off", offchipTimings(), 768 << 10);
    CameoController ctrl(
        CameoParams{LltKind::CoLocated, PredictorKind::Llp, 2}, stacked,
        offchip, (256 << 10) / 64, (1 << 20) / 64);
    Rng rng(12);
    Tick now = 0;
    for (int i = 0; i < 50000; ++i) {
        ctrl.access(now, rng.next((1 << 20) / 64), rng.chance(0.25),
                    0x400000 + 4 * rng.next(128),
                    static_cast<std::uint32_t>(rng.next(2)));
        now += 30;
    }
    const auto &groups = ctrl.groups();
    for (std::uint64_t g = 0; g < groups.numGroups(); g += 37) {
        ASSERT_TRUE(ctrl.llt().verifyGroup(g));
        // Locations of the group tile {0..K-1}.
        std::set<std::uint32_t> locs;
        for (std::uint32_t s = 0; s < groups.groupSize(); ++s)
            locs.insert(ctrl.llt().locationOf(g, s));
        ASSERT_EQ(locs.size(), groups.groupSize());
    }
}

/** Whole-system determinism across every organization kind. */
class OrgDeterminismTest : public ::testing::TestWithParam<OrgKind>
{
};

TEST_P(OrgDeterminismTest, ByteCountsReproducible)
{
    SystemConfig c = tinyConfig();
    c.accessesPerCore = 8000;
    const WorkloadProfile &wl = *findWorkload("soplex");
    const RunResult a = runWorkload(c, GetParam(), wl);
    const RunResult b = runWorkload(c, GetParam(), wl);
    EXPECT_EQ(a.execTime, b.execTime);
    EXPECT_EQ(a.stackedBytes, b.stackedBytes);
    EXPECT_EQ(a.offchipBytes, b.offchipBytes);
    EXPECT_EQ(a.storageBytes, b.storageBytes);
}

INSTANTIATE_TEST_SUITE_P(
    AllOrgs, OrgDeterminismTest,
    ::testing::Values(OrgKind::Baseline, OrgKind::AlloyCache,
                      OrgKind::TlmStatic, OrgKind::TlmDynamic,
                      OrgKind::TlmFreq, OrgKind::TlmOracle,
                      OrgKind::DoubleUse, OrgKind::Cameo,
                      OrgKind::Banshee));

/** Stats conservation: counters that must add up for every org. */
class OrgConservationTest : public ::testing::TestWithParam<OrgKind>
{
};

TEST_P(OrgConservationTest, CountersConserveUnderRandomTraces)
{
    const OrgKind kind = GetParam();
    Rng rng(static_cast<std::uint64_t>(kind) * 131 + 5);
    const std::vector<std::string> workloads{"mcf", "milc", "soplex"};
    for (int round = 0; round < 2; ++round) {
        SystemConfig c = tinyConfig();
        c.accessesPerCore = 5000 + rng.next(5000);
        c.seed = rng.next(1 << 20);
        c.timingMode = rng.chance(0.5) ? TimingMode::Queued
                                       : TimingMode::Blocking;
        const WorkloadProfile &wl = *findWorkload(
            workloads[static_cast<std::size_t>(rng.next(3))]);
        const RunResult r = runWorkload(c, kind, wl);
        const std::string what = std::string(orgKindName(kind)) + "/" +
                                 wl.name + " seed " +
                                 std::to_string(c.seed);

        // Every measured access either hit or missed the shared L3.
        EXPECT_EQ(r.accesses, r.l3Hits + r.l3Misses) << what;
        // The untruncated run measured exactly the configured trace.
        EXPECT_FALSE(r.truncated) << what;
        EXPECT_EQ(r.accesses, c.accessesPerCore * c.numCores) << what;
        EXPECT_GT(r.instructions, 0u) << what;
        EXPECT_GT(r.kernelSteps, 0u) << what;
        // Memory beyond the L3 only ever sees misses: no module can
        // report service for traffic the cache absorbed.
        if (kind == OrgKind::Baseline) {
            EXPECT_EQ(r.stackedBytes, 0u) << what;
            EXPECT_EQ(r.servicedStacked, 0u) << what;
            EXPECT_EQ(r.swaps, 0u) << what;
        }
        if (kind == OrgKind::Cameo || kind == OrgKind::CameoFreq) {
            // Each L3 miss is serviced by exactly one of the two
            // memories (swap traffic only adds to the counts).
            EXPECT_GE(r.servicedStacked + r.servicedOffchip, r.l3Misses)
                << what;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllOrgs, OrgConservationTest,
    ::testing::Values(OrgKind::Baseline, OrgKind::AlloyCache,
                      OrgKind::TlmStatic, OrgKind::TlmDynamic,
                      OrgKind::TlmFreq, OrgKind::TlmOracle,
                      OrgKind::DoubleUse, OrgKind::Cameo,
                      OrgKind::CameoFreq, OrgKind::Banshee));

/** CAMEO invariants across LLT designs and predictors. */
class CameoVariantTest
    : public ::testing::TestWithParam<std::pair<LltKind, PredictorKind>>
{
};

TEST_P(CameoVariantTest, ServiceCountsAddUp)
{
    const auto [llt, pred] = GetParam();
    SystemConfig c = tinyConfig();
    c.accessesPerCore = 8000;
    c.lltKind = llt;
    c.predictorKind = pred;
    const WorkloadProfile &wl = *findWorkload("milc");
    const RunResult r = runWorkload(c, OrgKind::Cameo, wl);
    // Every L3 miss (demand or writeback-induced) was serviced by one
    // of the two memories.
    EXPECT_EQ(r.servicedStacked + r.servicedOffchip > 0, true);
    EXPECT_GT(r.execTime, 0u);
    if (pred == PredictorKind::Perfect) {
        EXPECT_DOUBLE_EQ(r.llpAccuracy, 1.0);
    }
    // Table III cases are tracked on the Co-Located path only (the
    // Ideal and Embedded designs never consult the predictor).
    std::uint64_t total_cases = 0;
    for (const auto v : r.llpCases)
        total_cases += v;
    if (llt == LltKind::CoLocated)
        EXPECT_GT(total_cases, 0u);
    else
        EXPECT_EQ(total_cases, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Variants, CameoVariantTest,
    ::testing::Values(
        std::pair<LltKind, PredictorKind>{LltKind::Ideal,
                                          PredictorKind::Sam},
        std::pair<LltKind, PredictorKind>{LltKind::Embedded,
                                          PredictorKind::Sam},
        std::pair<LltKind, PredictorKind>{LltKind::CoLocated,
                                          PredictorKind::Sam},
        std::pair<LltKind, PredictorKind>{LltKind::CoLocated,
                                          PredictorKind::Llp},
        std::pair<LltKind, PredictorKind>{LltKind::CoLocated,
                                          PredictorKind::Perfect}));

} // namespace
} // namespace cameo
