/**
 * @file
 * Tests for the CAMEO + frequency-hints extension (Section VI-D's
 * closing suggestion): cold pages are serviced in place, hot pages
 * swap as in stock CAMEO.
 */

#include <gtest/gtest.h>

#include "orgs/cameo_freq.hh"
#include "system/system.hh"
#include "trace/workloads.hh"
#include "util/rng.hh"

namespace cameo
{
namespace
{

OrgConfig
smallConfig()
{
    OrgConfig c;
    c.stackedBytes = 1 << 20;
    c.offchipBytes = 3 << 20;
    c.numCores = 2;
    c.freq.epochAccesses = 1 << 20; // no decay during short tests
    return c;
}

TEST(CameoFreqTest, ColdPageServicedInPlace)
{
    CameoFreqOrg org(smallConfig());
    const std::uint64_t groups =
        org.cameo()->groups().numGroups();
    // One touch of an off-chip line: page not yet hot -> no swap.
    org.access(0, groups + 7, false, 0x400, 0);
    EXPECT_EQ(org.cameo()->swaps().value(), 0u);
    EXPECT_EQ(org.cameo()->swapsFiltered().value(), 1u);
    // The line is still off-chip.
    EXPECT_EQ(org.cameo()->llt().locationOf(7, 1), 1u);
}

TEST(CameoFreqTest, HotPageAdmitsSwaps)
{
    CameoFreqOrg org(smallConfig());
    const std::uint64_t groups = org.cameo()->groups().numGroups();
    // Touch lines of the same OS page repeatedly until it crosses the
    // hot threshold; page of line (groups + g) for small g is page 0
    // of the second quarter... use distinct lines of one page:
    // lines [groups + 0, groups + 63] share OS page groups/64.
    Tick now = 0;
    for (std::uint32_t i = 0; i < CameoFreqOrg::kHotThreshold + 4; ++i) {
        org.access(now, groups + (i % kLinesPerPage), false, 0x400, 0);
        now += 1000;
    }
    EXPECT_GT(org.cameo()->swaps().value(), 0u);
    EXPECT_GT(org.hotPages().value(), 0u);
}

TEST(CameoFreqTest, FilterSavesVictimWriteBandwidth)
{
    // Touch every off-chip page fewer times than the hot threshold:
    // stock CAMEO swaps (and writes a victim) on every access; the
    // filter admits none of them.
    const OrgConfig config = smallConfig();
    CameoOrg stock(config);
    CameoFreqOrg filtered(config);
    const std::uint64_t groups = stock.cameo()->groups().numGroups();
    const std::uint64_t offchip_pages = 2 * groups / kLinesPerPage;
    Tick now = 0;
    for (std::uint64_t p = 0; p < offchip_pages; ++p) {
        for (std::uint32_t t = 0; t + 1 < CameoFreqOrg::kHotThreshold;
             ++t) {
            const LineAddr line = groups + p * kLinesPerPage + t;
            stock.access(now, line, false, 0x400, 0);
            filtered.access(now, line, false, 0x400, 0);
            now += 40;
        }
    }
    EXPECT_GT(stock.cameo()->swaps().value(), 0u);
    EXPECT_EQ(filtered.cameo()->swaps().value(), 0u);
    EXPECT_LT(filtered.offchipModule().writeBytes().value(),
              stock.offchipModule().writeBytes().value() / 2);
}

TEST(CameoFreqTest, FactoryAndSystemIntegration)
{
    SystemConfig c = tinyConfig();
    c.accessesPerCore = 8000;
    const WorkloadProfile &wl = *findWorkload("milc");
    const RunResult r = runWorkload(c, OrgKind::CameoFreq, wl);
    EXPECT_GT(r.execTime, 0u);
    EXPECT_EQ(r.orgName, "CAMEO-Freq");
    EXPECT_GT(r.servicedStacked + r.servicedOffchip, 0u);
}

TEST(CameoFreqTest, DeterministicLikeOtherOrgs)
{
    SystemConfig c = tinyConfig();
    c.accessesPerCore = 6000;
    const WorkloadProfile &wl = *findWorkload("soplex");
    const RunResult a = runWorkload(c, OrgKind::CameoFreq, wl);
    const RunResult b = runWorkload(c, OrgKind::CameoFreq, wl);
    EXPECT_EQ(a.execTime, b.execTime);
    EXPECT_EQ(a.offchipBytes, b.offchipBytes);
}

} // namespace
} // namespace cameo
